//! Shared workload builder for the scheduler dispatch benchmarks
//! (`benches/master_bench.rs` and `src/bin/bench_sched.rs`).
//!
//! The shape is chosen to stress the dispatch path specifically: many more
//! 1-core tasks than cluster slots (deep pending queue), several categories
//! (slow-start and label churn under Auto), and optionally cacheable shared
//! inputs (exercises the file-affinity scan, which in the reference matcher
//! multiplies every worker probe by the input list length).

use lfm_core::monitor::sim::SimTaskProfile;
use lfm_core::workqueue::allocate::{AutoConfig, Strategy};
use lfm_core::workqueue::files::FileRef;
use lfm_core::workqueue::master::MasterConfig;
use lfm_core::workqueue::sched::SchedImpl;
use lfm_core::workqueue::task::{TaskId, TaskSpec};

/// `n` 1-core tasks in four categories; with `cacheable` the tasks share an
/// environment pack and a calibration file (cache-affinity matters), without
/// it every input is per-task throwaway data.
pub fn bench_tasks(n: u64, cacheable: bool) -> Vec<TaskSpec> {
    let env = FileRef::environment("bench-env", 100 << 20, 300 << 20, 2000, 400);
    let calib = FileRef::shared_data("bench-calib", 4 << 20);
    (0..n)
        .map(|i| {
            let mut inputs = vec![FileRef::data(format!("in-{i}"), 64 << 10)];
            if cacheable {
                inputs.push(env.clone());
                inputs.push(calib.clone());
            }
            TaskSpec::new(
                TaskId(i),
                format!("cat{}", i % 4),
                inputs,
                1 << 20,
                SimTaskProfile::new(30.0 + (i % 11) as f64, 1.0, 300 + 50 * (i % 4), 200),
            )
        })
        .collect()
}

/// Auto strategy (the label-learning hot path), fixed seed, chosen impl.
pub fn bench_config(sched: SchedImpl) -> MasterConfig {
    MasterConfig::new(Strategy::Auto(AutoConfig::default()))
        .with_seed(7)
        .with_sched(sched)
}
