//! Regenerates Figure 5: cumulative TensorFlow import time, direct vs.
//! packed+local-unpack, per site.

use lfm_core::experiments::fig5::{self, Method};
use lfm_core::render::{fmt_secs, render_table};

fn main() {
    let points = fig5::run();
    println!("Figure 5 — cumulative import time (TensorFlow environment)\n");
    let mut sites: Vec<String> = points.iter().map(|p| p.site.clone()).collect();
    sites.dedup();
    for site in sites {
        println!("{site}:");
        let rows: Vec<Vec<String>> = fig5::NODE_COUNTS
            .iter()
            .map(|&n| {
                let get = |m: Method| {
                    points
                        .iter()
                        .find(|p| p.site == site && p.nodes == n && p.method == m)
                        .expect("full grid")
                        .cumulative_secs
                };
                vec![
                    n.to_string(),
                    fmt_secs(get(Method::DirectAccess)),
                    fmt_secs(get(Method::LocalUnpack)),
                    format!(
                        "{:.1}x",
                        get(Method::DirectAccess) / get(Method::LocalUnpack)
                    ),
                ]
            })
            .collect();
        print!(
            "{}",
            render_table(
                &["nodes", "direct access", "local unpack", "speedup"],
                &rows
            )
        );
        println!();
    }
}
