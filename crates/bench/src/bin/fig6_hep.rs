//! Regenerates Figure 6: HEP completion time under four strategies.

use lfm_bench::{pivot_sweep, retry_summary, save_sweep_csv, TraceOpts};
use lfm_core::experiments::fig6;

fn main() {
    let trace = TraceOpts::from_args();
    lfm_bench::shards_from_args();
    println!("Figure 6 — HEP workflow (ND-CRC)\n");

    println!("(a) varying analysis tasks, 6 workers x 8 cores:");
    let points = fig6::by_tasks(&[50, 100, 200, 400], 6, 8, 2021);
    let csv = save_sweep_csv("fig6_by_tasks", &points);
    println!("[csv: {}]", csv.display());
    print!("{}", pivot_sweep(&points, "tasks"));
    println!();
    print!("{}", retry_summary(&points));

    println!("\n(b) varying workers (16 tasks/core-worker), 8-core workers:");
    let points = fig6::by_workers(&[2, 4, 8, 16], 2, 8, 2021);
    let csv = save_sweep_csv("fig6_by_workers", &points);
    println!("[csv: {}]", csv.display());
    print!("{}", pivot_sweep(&points, "workers"));

    println!("\n(c) varying worker size, 200 tasks on 6 workers:");
    let points = fig6::by_worker_size(200, 6, 2021);
    let csv = save_sweep_csv("fig6_by_worker_size", &points);
    println!("[csv: {}]", csv.display());
    print!("{}", pivot_sweep(&points, "cores/worker"));
    trace.finish();
}
