//! Regenerates Figure 7: drug-screening pipeline on Theta.

use lfm_bench::{pivot_sweep, retry_summary, save_sweep_csv, TraceOpts};
use lfm_core::experiments::fig7;

fn main() {
    let trace = TraceOpts::from_args();
    lfm_bench::shards_from_args();
    println!("Figure 7 — drug screening (Theta)\n");

    println!("(left) varying total tasks on 14 workers:");
    let points = fig7::by_tasks(&[20, 60, 120, 240], 2021);
    let csv = save_sweep_csv("fig7_by_tasks", &points);
    println!("[csv: {}]", csv.display());
    print!("{}", pivot_sweep(&points, "tasks"));
    println!();
    print!("{}", retry_summary(&points));

    println!("\n(right) varying workers, ~4 tasks per worker:");
    let points = fig7::by_workers(&[4, 8, 16, 32], 2021);
    let csv = save_sweep_csv("fig7_by_workers", &points);
    println!("[csv: {}]", csv.display());
    print!("{}", pivot_sweep(&points, "workers"));
    trace.finish();
}
