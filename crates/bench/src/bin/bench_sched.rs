//! Before/after dispatch-throughput measurement for the indexed scheduler:
//! runs the same workloads under `SchedImpl::Reference` (the original
//! rescan-everything matcher) and `SchedImpl::Indexed`, and writes
//! `BENCH_sched.json` with tasks/sec and wall time per configuration.
//!
//! Invoked by `scripts/bench_sched.sh`. Flags:
//!
//! * `--out <path>`   output JSON path (default `BENCH_sched.json`)
//! * `--quick`        drop the 10k-task configs (smoke mode for CI)

use lfm_bench::sched_bench::{bench_config, bench_tasks};
use lfm_core::simcluster::node::NodeSpec;
use lfm_core::workqueue::master::run_workload;
use lfm_core::workqueue::sched::SchedImpl;
use std::io::Write as _;
use std::time::Instant;

struct Row {
    tasks: u64,
    workers: u32,
    cacheable: bool,
    reference_secs: f64,
    indexed_secs: f64,
}

fn measure(sched: SchedImpl, tasks_n: u64, workers: u32, cacheable: bool) -> f64 {
    let tasks = bench_tasks(tasks_n, cacheable);
    let spec = NodeSpec::new(16, 64 * 1024, 128 * 1024);
    // Best of `reps` to shave scheduler noise; the big reference configs are
    // expensive enough that one timing is already stable.
    let reps = if tasks_n >= 10_000 { 1 } else { 3 };
    (0..reps)
        .map(|_| {
            let cfg = bench_config(sched);
            let t = Instant::now();
            let report = run_workload(&cfg, tasks.clone(), workers, spec);
            let dt = t.elapsed().as_secs_f64();
            assert_eq!(report.abandoned_tasks, 0);
            dt
        })
        .fold(f64::INFINITY, f64::min)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = String::from("BENCH_sched.json");
    let mut quick = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out_path = it.next().expect("--out needs a path").clone(),
            "--quick" => quick = true,
            other => panic!("unknown flag {other:?} (expected --out <path> | --quick)"),
        }
    }

    let mut configs = vec![(1_000u64, 32u32), (1_000, 256)];
    if !quick {
        configs.extend([(10_000, 32), (10_000, 256)]);
    }

    let mut rows = Vec::new();
    for (n, w) in configs {
        for cacheable in [false, true] {
            eprintln!("measuring {n} tasks x {w} workers (cacheable={cacheable}) ...");
            let reference_secs = measure(SchedImpl::Reference, n, w, cacheable);
            let indexed_secs = measure(SchedImpl::Indexed, n, w, cacheable);
            eprintln!(
                "  reference {reference_secs:.3}s  indexed {indexed_secs:.3}s  speedup {:.1}x",
                reference_secs / indexed_secs
            );
            rows.push(Row {
                tasks: n,
                workers: w,
                cacheable,
                reference_secs,
                indexed_secs,
            });
        }
    }

    let mut json = String::from("{\n  \"bench\": \"sched_dispatch\",\n  \"configs\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"tasks\": {}, \"workers\": {}, \"cacheable\": {}, \
             \"reference\": {{\"wall_secs\": {:.6}, \"tasks_per_sec\": {:.1}}}, \
             \"indexed\": {{\"wall_secs\": {:.6}, \"tasks_per_sec\": {:.1}}}, \
             \"speedup\": {:.2}}}{}\n",
            r.tasks,
            r.workers,
            r.cacheable,
            r.reference_secs,
            r.tasks as f64 / r.reference_secs,
            r.indexed_secs,
            r.tasks as f64 / r.indexed_secs,
            r.reference_secs / r.indexed_secs,
            sep,
        ));
    }
    json.push_str("  ]\n}\n");

    let mut f = std::fs::File::create(&out_path).expect("create output file");
    f.write_all(json.as_bytes()).expect("write output");
    println!("wrote {out_path}");
}
