//! Serving-gateway latency vs offered load: calibrates the gateway's
//! effective capacity with a flood run, then sweeps a multi-tenant
//! open-loop arrival mix from well under to well over that capacity. Each
//! point runs twice — with admission control and with the unlimited (no
//! admission) baseline — and the sweep is written to `BENCH_serving.json`
//! with per-point p50/p95/p99/p99.9 latency, success rate, and warm-pool
//! stats.
//!
//! The headline comparison: with admission, outstanding work (and
//! therefore p99) stays bounded at any offered load and excess arrivals
//! get explicit rejections; without it the gateway buffers everything, so
//! p99 grows with the overload factor while "success" is only deferred.
//! Both claims are asserted here, not just plotted.
//!
//! Invoked by `scripts/bench_serving.sh`. Flags:
//!
//! * `--out <path>`     output JSON path (default `BENCH_serving.json`)
//! * `--workers <n>`    worker count (default 4; 16 cores each)
//! * `--horizon <s>`    arrival horizon in sim-seconds (default 60)
//! * `--loads <list>`   comma-separated fractions of calibrated capacity
//!   (default `0.25,0.5,0.75,1.0,1.5,2.0`)
//! * `--quick`          horizon 20s over loads 0.5,1.0,2.0 (CI smoke mode)
//! * `--trace <chrome|jsonl|perfetto>[:stream]=<path>` trace the sweep's
//!   gateway runs (repeatable; `:stream` tails the ring buffers live —
//!   see [`lfm_bench::TraceOpts`])

use lfm_bench::TraceOpts;
use lfm_core::funcx::container::ActivationTech;
use lfm_core::monitor::sim::SimTaskProfile;
use lfm_core::serving::admission::AdmissionConfig;
use lfm_core::serving::arrivals::ArrivalConfig;
use lfm_core::serving::gateway::{ServingConfig, ServingFunction, ServingGateway};
use lfm_core::serving::report::ServingReport;
use lfm_core::serving::tenant::TenantConfig;
use lfm_core::simcluster::node::NodeSpec;
use lfm_core::telemetry::Recorder;
use std::io::Write as _;

const CORES_PER_WORKER: u32 = 16;
const TASK_SECS: f64 = 0.5;
const SEED: u64 = 11;
/// Global backpressure bound: arrivals shed once this much work is queued
/// in the gateway (on top of the master's in-flight dispatch window).
const SHED_THRESHOLD: usize = 300;
const DISPATCH_WINDOW: usize = 256;

fn functions() -> Vec<ServingFunction> {
    // One 1-core function; effective per-invocation duration is
    // TASK_SECS + activation overhead (mostly warm ~0.16s).
    vec![ServingFunction::synthetic(
        "classify",
        50 << 20,
        ActivationTech::Docker,
        SimTaskProfile::new(TASK_SECS, 1.0, 1024, 256),
        64 << 10,
    )]
}

/// Three tenants (weights 1/2/4) splitting `rate` proportionally; the
/// heaviest also carries diurnal swing and burst episodes so the
/// non-homogeneous arrival paths are exercised at every load point. The
/// diurnal period equals the horizon (one full cycle), so the mean
/// offered rate stays at `rate`.
fn tenants(rate: f64, horizon: f64) -> Vec<TenantConfig> {
    let unit = rate / 7.0;
    vec![
        TenantConfig::new("free", 1, ArrivalConfig::poisson(unit)).with_max_queue_depth(256),
        TenantConfig::new("pro", 2, ArrivalConfig::poisson(2.0 * unit)).with_max_queue_depth(256),
        TenantConfig::new(
            "enterprise",
            4,
            ArrivalConfig::poisson(4.0 * unit)
                .with_diurnal(0.25, horizon)
                .with_bursts(0.01, 2.0, 2.0),
        )
        .with_max_queue_depth(256),
    ]
}

fn run_point(
    workers: u32,
    horizon: f64,
    tenants: Vec<TenantConfig>,
    admission: AdmissionConfig,
    telemetry: &Recorder,
) -> ServingReport {
    let node = NodeSpec::new(CORES_PER_WORKER, 64 * 1024, 100 * 1024);
    let config = ServingConfig::new(workers, node)
        .with_seed(SEED)
        .with_horizon(horizon)
        .with_tick(0.25)
        .with_dispatch_window(DISPATCH_WINDOW)
        .with_admission(admission)
        .with_telemetry(telemetry.clone());
    ServingGateway::new(config, functions(), tenants).run()
}

/// Measure effective capacity: flood one tenant far past any plausible
/// service rate with bounded queues; steady-state completions per
/// sim-second is the gateway's sustainable throughput.
fn calibrate(workers: u32, horizon: f64) -> f64 {
    let flood =
        vec![TenantConfig::new("cal", 1, ArrivalConfig::poisson(2000.0)).with_max_queue_depth(512)];
    // Calibration stays untraced: it is a measuring stick, not part of
    // the sweep the trace is meant to show.
    let report = run_point(
        workers,
        horizon,
        flood,
        AdmissionConfig::new(SHED_THRESHOLD),
        &Recorder::disabled(),
    );
    assert!(report.completed > 0, "calibration run completed nothing");
    report.completed as f64 / report.end_secs
}

fn main() {
    let trace = TraceOpts::from_args();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = String::from("BENCH_serving.json");
    let mut workers = 4u32;
    let mut horizon = 60.0f64;
    let mut loads = vec![0.25f64, 0.5, 0.75, 1.0, 1.5, 2.0];
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out_path = it.next().expect("--out needs a path").clone(),
            "--workers" => {
                workers = it
                    .next()
                    .expect("--workers needs a count")
                    .parse()
                    .expect("--workers must be an integer")
            }
            "--horizon" => {
                horizon = it
                    .next()
                    .expect("--horizon needs seconds")
                    .parse()
                    .expect("--horizon must be a float")
            }
            "--loads" => {
                loads = it
                    .next()
                    .expect("--loads needs a comma-separated list")
                    .split(',')
                    .map(|s| s.trim().parse().expect("--loads entries must be floats"))
                    .collect()
            }
            "--quick" => {
                horizon = 20.0;
                loads = vec![0.5, 1.0, 2.0];
            }
            "--trace" | "--trace-stream" | "--trace-out" | "--trace-jsonl" | "--trace-perfetto" => {
                // Already consumed by TraceOpts::from_args; skip the value.
                it.next();
            }
            other => panic!(
                "unknown flag {other:?} \
                 (expected --out <path> | --workers <n> | --horizon <s> | --loads <list> | \
                 --quick | --trace <fmt>[:stream]=<path>)"
            ),
        }
    }
    assert!(
        loads.iter().any(|&f| f >= 1.5),
        "load sweep must include an overload point (>= 1.5x capacity)"
    );
    let capacity = calibrate(workers, horizon);
    eprintln!(
        "calibrated capacity: {capacity:.1} inv/s ({workers} workers x {CORES_PER_WORKER} cores)"
    );
    let admission = AdmissionConfig::new(SHED_THRESHOLD);
    // With admission, queue wait is bounded by (queued + in-flight) work
    // over the service rate; everything past this bound is divergence.
    let p99_bound = (SHED_THRESHOLD + DISPATCH_WINDOW) as f64 / capacity + 3.0;

    let mut rows = Vec::new();
    let mut checked_determinism = false;
    for &frac in &loads {
        let rate = frac * capacity;
        eprintln!(
            "offered {frac:.2}x capacity ({rate:.0} inv/s) x {horizon:.0}s, {workers} workers ..."
        );
        let telemetry = trace.recorder();
        let with = run_point(
            workers,
            horizon,
            tenants(rate, horizon),
            admission,
            &telemetry,
        );
        let without = run_point(
            workers,
            horizon,
            tenants(rate, horizon),
            AdmissionConfig::unlimited(),
            &telemetry,
        );
        if !checked_determinism {
            // Same seed, same config: the report must be byte-identical.
            let again = run_point(
                workers,
                horizon,
                tenants(rate, horizon),
                admission,
                &telemetry,
            );
            assert_eq!(
                with.summary_json(),
                again.summary_json(),
                "serving runs with identical seeds must be byte-identical"
            );
            checked_determinism = true;
        }
        eprintln!(
            "  admission:    p99 {:.2}s  success {:.3}  rejected {:.3}  warm {:.2}",
            with.latency.p99,
            with.success_rate(),
            with.rejection_rate(),
            with.warm_hit_rate
        );
        eprintln!(
            "  no admission: p99 {:.2}s  success {:.3}",
            without.latency.p99,
            without.success_rate()
        );

        assert_eq!(with.failed, 0, "admitted invocations must all complete");
        assert!(
            with.warm_hit_rate > 0.0,
            "warm pool never hit at {frac}x load"
        );
        assert!(
            with.latency.p99 < p99_bound,
            "admission failed to bound p99 at {frac}x: {} (bound {p99_bound:.1})",
            with.latency.p99
        );
        if frac <= 0.75 {
            assert!(
                with.success_rate() > 0.99,
                "underloaded point {frac}x should complete ~everything, got {}",
                with.success_rate()
            );
        }
        if frac >= 1.5 {
            // Bounded vs divergent p99 — the tentpole claim. Without
            // admission the backlog (and the wait) grows with how long
            // the overload lasts: ~(frac-1)*horizon of queued work by the
            // end. With admission, p99 stays under the load-independent
            // bound asserted above.
            assert!(
                without.latency.p99 > 1.5 * with.latency.p99,
                "no-admission p99 ({}) should diverge past admission p99 ({}) at {frac}x",
                without.latency.p99,
                with.latency.p99
            );
            assert!(
                without.latency.p99 > with.latency.p99 + 0.2 * (frac - 1.0) * horizon,
                "no-admission p99 ({}) should grow with overload duration ({frac}x, {horizon}s)",
                without.latency.p99
            );
            // Graceful degradation: goodput tracks capacity, not collapse.
            let ideal = 1.0 / frac;
            assert!(
                with.success_rate() > 0.6 * ideal,
                "success rate {} collapsed at {frac}x (ideal {ideal})",
                with.success_rate()
            );
            assert!(
                with.rejection_rate() > 0.0,
                "overload must produce explicit rejections"
            );
        }

        rows.push(format!(
            "{{\"offered_fraction\": {frac}, \"offered_rate\": {rate}, \
             \"admission\": {}, \"no_admission\": {}}}",
            with.summary_json(),
            without.summary_json()
        ));
    }

    let mut json = format!(
        "{{\n  \"bench\": \"serving\",\n  \"workers\": {workers},\n  \
         \"cores_per_worker\": {CORES_PER_WORKER},\n  \
         \"calibrated_capacity_inv_per_sec\": {capacity},\n  \
         \"horizon_secs\": {horizon},\n  \"seed\": {SEED},\n  \
         \"shed_threshold\": {SHED_THRESHOLD},\n  \"loads\": [\n"
    );
    for (i, row) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        json.push_str(&format!("    {row}{sep}\n"));
    }
    json.push_str("  ]\n}\n");
    lfm_core::telemetry::export::validate_json(&json).expect("report must be valid JSON");

    let mut f = std::fs::File::create(&out_path).expect("create output file");
    f.write_all(json.as_bytes()).expect("write output");
    println!("wrote {out_path}");
    trace.finish();
}
