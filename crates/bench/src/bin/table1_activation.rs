//! Regenerates Table I: hello-world latency, Conda vs. containers.

use lfm_core::experiments::table1;
use lfm_core::render::render_table;

fn main() {
    println!("Table I — environment activation latency (50 trials)\n");
    let rows: Vec<Vec<String>> = table1::run(50, 2021)
        .into_iter()
        .map(|r| {
            vec![
                r.site,
                format!("{:.2} ± {:.2} s", r.conda.mean_secs, r.conda.std_secs),
                r.container.tech.name().to_string(),
                format!(
                    "{:.2} ± {:.2} s",
                    r.container.mean_secs, r.container.std_secs
                ),
                format!("{:.1}x", r.container.mean_secs / r.conda.mean_secs),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &["site", "Conda", "container tech", "container", "ratio"],
            &rows
        )
    );
}
