//! Regenerates Figure 4: import time vs. scale on Theta.

use lfm_core::experiments::fig4;
use lfm_core::render::{fmt_secs, render_table};

fn main() {
    let points = fig4::run();
    println!("Figure 4 — per-core import time on Theta (64 cores/node)\n");
    let mut headers: Vec<&str> = vec!["cores"];
    headers.extend_from_slice(fig4::MODULES);
    let rows: Vec<Vec<String>> = fig4::NODE_COUNTS
        .iter()
        .map(|&nodes| {
            let cores = nodes * 64;
            let mut row = vec![cores.to_string()];
            for m in fig4::MODULES {
                let p = points
                    .iter()
                    .find(|p| p.nodes == nodes && p.module == *m)
                    .expect("full grid");
                row.push(fmt_secs(p.import_secs));
            }
            row
        })
        .collect();
    print!("{}", render_table(&headers, &rows));
    println!("\nShape check: small modules stay flat; TensorFlow climbs with scale.");
}
