//! Recovery sweep: goodput of a crashing master under three durability
//! modes — no journal (every crash is a full restart), write-ahead journal
//! only (recovery replays the whole record history), and journal with
//! compacting snapshots (recovery replays only the tail since the last
//! snapshot). Writes `BENCH_recovery.json`.
//!
//! At each crash intensity `k` the fault plan injects `k` master crashes at
//! exponentially spaced event indices scaled to land inside the run. All
//! modes run the identical plan and seed; only `DurabilityConfig` differs,
//! so the deltas are purely the cost of lost state (full restart) vs replay
//! length (journal-only) vs snapshot cadence.
//!
//! Invoked by `scripts/bench_recovery.sh`. Flags:
//!
//! * `--out <path>`   output JSON path (default `BENCH_recovery.json`)
//! * `--quick`        smaller workload (smoke mode for CI)

use lfm_core::prelude::*;
use lfm_core::workloads::hep;
use std::io::Write as _;

struct Row {
    crashes: u32,
    full_restart: Outcome,
    journal_only: Outcome,
    snap_64: Outcome,
    snap_256: Outcome,
}

struct Outcome {
    makespan_secs: f64,
    goodput_per_hour: f64,
    successes: u64,
    abandoned: u64,
    master_crashes: u32,
    recoveries: u32,
    replayed_events: u64,
    journal_bytes: u64,
}

fn crash_plan(crashes: u32, est_events: f64) -> FaultPlan {
    if crashes == 0 {
        return FaultPlan::reliable();
    }
    // Spread the crash points across the run: mean gap = span / (k + 1)
    // keeps the k-th point inside the base run's event horizon with room
    // to spare.
    let mean = (est_events / (crashes as f64 + 1.0)).max(1.0);
    FaultPlan::reliable().with(FaultSpec::master_crash(mean, crashes))
}

fn run(
    tasks: &[TaskSpec],
    spec: NodeSpec,
    crashes: u32,
    est_events: f64,
    durability: DurabilityConfig,
) -> Outcome {
    let cfg = hep::master_config(Strategy::Auto(AutoConfig::default()), 3)
        .with_faults(crash_plan(crashes, est_events))
        .with_durability(durability)
        .with_seed(97);
    let report = run_workload(&cfg, tasks.to_vec(), 8, spec);
    let successes = report
        .results
        .iter()
        .filter(|r| r.outcome.is_success())
        .count() as u64;
    Outcome {
        makespan_secs: report.makespan_secs,
        goodput_per_hour: successes as f64 / (report.makespan_secs / 3600.0),
        successes,
        abandoned: report.abandoned_tasks,
        master_crashes: report.master_crashes,
        recoveries: report.recoveries,
        replayed_events: report.replayed_events,
        journal_bytes: report.journal_bytes,
    }
}

fn outcome_json(o: &Outcome) -> String {
    format!(
        "{{\"makespan_secs\": {:.3}, \"goodput_tasks_per_hour\": {:.2}, \
         \"successes\": {}, \"abandoned\": {}, \"master_crashes\": {}, \
         \"recoveries\": {}, \"replayed_events\": {}, \"journal_bytes\": {}}}",
        o.makespan_secs,
        o.goodput_per_hour,
        o.successes,
        o.abandoned,
        o.master_crashes,
        o.recoveries,
        o.replayed_events,
        o.journal_bytes,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = String::from("BENCH_recovery.json");
    let mut quick = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out_path = it.next().expect("--out needs a path").clone(),
            "--quick" => quick = true,
            other => panic!("unknown flag {other:?} (expected --out <path> | --quick)"),
        }
    }

    let n = if quick { 60 } else { 240 };
    let workload = hep::build(n, 3);
    let spec = hep::worker_spec(8);
    // Events in an uninterrupted run: one TaskDone per attempt plus the
    // worker pool's arrivals — the crash-point horizon.
    let est_events = n as f64 * 1.1 + 8.0;
    eprintln!(
        "recovery sweep: {} HEP tasks x 8 workers, full-restart vs journal vs journal+snapshot",
        workload.tasks.len()
    );

    let mut rows = Vec::new();
    for crashes in [0u32, 1, 2, 4, 8] {
        let full_restart = run(
            &workload.tasks,
            spec,
            crashes,
            est_events,
            DurabilityConfig::none(),
        );
        let journal_only = run(
            &workload.tasks,
            spec,
            crashes,
            est_events,
            DurabilityConfig::journal_only(),
        );
        let snap_64 = run(
            &workload.tasks,
            spec,
            crashes,
            est_events,
            DurabilityConfig::journal_with_snapshots(64),
        );
        let snap_256 = run(
            &workload.tasks,
            spec,
            crashes,
            est_events,
            DurabilityConfig::journal_with_snapshots(256),
        );
        eprintln!(
            "  k={crashes}  restart: {:>7.1} tasks/h   journal: {:>7.1}   \
             snap64: {:>7.1} ({} replayed)   snap256: {:>7.1} ({} replayed)",
            full_restart.goodput_per_hour,
            journal_only.goodput_per_hour,
            snap_64.goodput_per_hour,
            snap_64.replayed_events,
            snap_256.goodput_per_hour,
            snap_256.replayed_events,
        );
        rows.push(Row {
            crashes,
            full_restart,
            journal_only,
            snap_64,
            snap_256,
        });
    }

    // The headline invariant the PR promises: at every nonzero crash rate,
    // journaled recovery (with snapshots) strictly beats the full restart.
    for r in &rows {
        if r.crashes > 0 && r.full_restart.master_crashes > 0 {
            assert!(
                r.snap_64.goodput_per_hour > r.full_restart.goodput_per_hour,
                "k={}: snapshot recovery ({:.1}) not ahead of full restart ({:.1})",
                r.crashes,
                r.snap_64.goodput_per_hour,
                r.full_restart.goodput_per_hour
            );
        }
    }

    let mut json = String::from("{\n  \"bench\": \"recovery_sweep\",\n  \"points\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"crashes\": {}, \"full_restart\": {}, \"journal_only\": {}, \
             \"journal_snap64\": {}, \"journal_snap256\": {}}}{}\n",
            r.crashes,
            outcome_json(&r.full_restart),
            outcome_json(&r.journal_only),
            outcome_json(&r.snap_64),
            outcome_json(&r.snap_256),
            sep,
        ));
    }
    json.push_str("  ]\n}\n");

    let mut f = std::fs::File::create(&out_path).expect("create output file");
    f.write_all(json.as_bytes()).expect("write output");
    println!("wrote {out_path}");
}
