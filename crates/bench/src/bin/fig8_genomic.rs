//! Regenerates Figure 8: GDC genomic pipeline on NSCC Aspire.

use lfm_bench::{pivot_sweep, retry_summary, save_sweep_csv, TraceOpts};
use lfm_core::experiments::fig8;

fn main() {
    let trace = TraceOpts::from_args();
    lfm_bench::shards_from_args();
    println!("Figure 8 — genomic analysis (NSCC Aspire)\n");

    println!("(left) varying genomes on 14 workers:");
    let points = fig8::by_genomes(&[4, 10, 20, 40], 2021);
    let csv = save_sweep_csv("fig8_by_genomes", &points);
    println!("[csv: {}]", csv.display());
    print!("{}", pivot_sweep(&points, "genomes"));
    println!();
    print!("{}", retry_summary(&points));

    println!("\n(right) varying workers, one genome per worker:");
    let points = fig8::by_workers(&[1, 2, 4, 8, 16], 2021);
    let csv = save_sweep_csv("fig8_by_workers", &points);
    println!("[csv: {}]", csv.display());
    print!("{}", pivot_sweep(&points, "workers"));
    trace.finish();
}
