//! Numeric acceptance bench for live telemetry tailing. Measures:
//!
//! 1. **Tail overhead** — a fig7-scale drug-screening run at ≥1M events
//!    with a live tailer draining the ring buffers while the run
//!    executes, vs the same instrumented run decoded post-hoc; live
//!    tailing must add < 2% wall time.
//! 2. **Stream identity** — the live-tailed merged stream must be
//!    record-identical (same multiset, same total order) to the post-hoc
//!    `take()` of an identically-seeded run.
//! 3. **Bounded memory** — the tailer's peak pending-record and
//!    buffered-byte footprint, which must stay under a constant bound
//!    independent of run length.
//! 4. **Alert latency** — a seeded serving overload run with SLO burn
//!    rules; the first page must fire during the arrival phase.
//!
//! Writes `BENCH_tail.json`. Invoked by `scripts/bench_tail.sh`. Flags:
//!
//! * `--out <path>`   output JSON path (default `BENCH_tail.json`)
//! * `--quick`        smaller workload + fewer repetitions (CI smoke)

use lfm_core::funcx::container::ActivationTech;
use lfm_core::monitor::sim::SimTaskProfile;
use lfm_core::prelude::*;
use lfm_core::simcluster::node::NodeSpec;
use lfm_core::telemetry::slo::{BurnWindow, Severity, SloConfig};
use lfm_core::telemetry::{Record, Recorder};
use lfm_core::workloads::drug;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Per-shard capacity for the instrumented arms: the simulation is
/// single-threaded, so every record lands in one shard, and the run must
/// not hit the drop path (dropped records would skew both arms).
const SHARD_CAP: usize = 4_000_000;

/// What the tailer thread saw over one run.
#[derive(Debug, Default, Clone, Copy)]
struct TailStats {
    records: u64,
    dropped: u64,
    polls: u64,
    peak_pending: usize,
    peak_buffered_bytes: usize,
}

/// One fig7-style run; returns wall seconds (workload only).
fn run_drug(batches: u64, recorder: &Recorder) -> f64 {
    let workload = drug::build(batches, 1234);
    let config = drug::master_config(Strategy::Auto(AutoConfig::default()), 1234)
        .with_telemetry(recorder.clone());
    let t = Instant::now();
    let report = run_workload(&config, workload.tasks, 14, drug::worker_spec());
    let wall = t.elapsed().as_secs_f64();
    assert_eq!(report.abandoned_tasks, 0);
    wall
}

/// Instrumented run decoded post-hoc: wall time includes the final
/// `take()` (the work the live tailer does concurrently instead).
fn run_posthoc(batches: u64) -> (f64, u64) {
    let r = Recorder::enabled_with_capacity(SHARD_CAP);
    let t = Instant::now();
    run_drug(batches, &r);
    assert_eq!(r.dropped(), 0, "shard capacity too small for run");
    let records = r.take();
    let wall = t.elapsed().as_secs_f64();
    (wall, records.len() as u64)
}

/// Instrumented run with a live tailer draining concurrently. `keep`
/// retains the drained records (for the identity check); the perf arms
/// pass `false` so the tailer only counts and discards.
fn run_tailed(batches: u64, keep: bool) -> (f64, TailStats, Vec<Record>) {
    let r = Recorder::enabled_with_capacity(SHARD_CAP);
    let stop = Arc::new(AtomicBool::new(false));
    let tail_rec = r.clone();
    let tail_stop = Arc::clone(&stop);
    let handle = std::thread::spawn(move || {
        let mut cursor = tail_rec.cursor();
        let mut stats = TailStats::default();
        let mut kept = Vec::new();
        loop {
            let done = tail_stop.load(Ordering::Acquire);
            let batch = if done {
                tail_rec.finish_tail(&mut cursor)
            } else {
                tail_rec.drain_since(&mut cursor)
            };
            stats.records += batch.records.len() as u64;
            stats.dropped += batch.dropped_delta;
            stats.polls += 1;
            stats.peak_pending = stats.peak_pending.max(cursor.pending_len());
            stats.peak_buffered_bytes = stats.peak_buffered_bytes.max(cursor.buffered_bytes());
            if keep {
                kept.extend(batch.records);
            }
            if done {
                return (stats, kept);
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
    });
    let t = Instant::now();
    let wall_run = run_drug(batches, &r);
    stop.store(true, Ordering::Release);
    let (stats, kept) = handle.join().expect("tailer panicked");
    let wall = t.elapsed().as_secs_f64();
    let _ = wall_run;
    (wall, stats, kept)
}

/// Scale the workload until one run emits at least `target` events.
fn calibrate(target: u64) -> (u64, u64) {
    const CAL_BATCHES: u64 = 100;
    let (_, cal_events) = run_posthoc(CAL_BATCHES);
    let mut batches = (target * 11 / 10 * CAL_BATCHES).div_ceil(cal_events);
    loop {
        let (_, events) = run_posthoc(batches);
        if events >= target {
            return (batches, events);
        }
        batches = batches * 5 / 4;
    }
}

/// Seeded serving overload with live SLO tailing; returns the report.
fn alert_run(horizon_secs: f64) -> ServingReport {
    let node = NodeSpec::new(16, 64 * 1024, 100 * 1024);
    let profile = SimTaskProfile::new(0.5, 1.0, 1024, 256);
    let f = ServingFunction::synthetic(
        "classify",
        50 << 20,
        ActivationTech::Docker,
        profile,
        64 << 10,
    );
    let slo = SloConfig::new(0.95)
        .with_bucket_secs(1.0)
        .with_windows(vec![BurnWindow::new(5.0, 15.0, 2.0, Severity::Page)]);
    let cfg = ServingConfig::new(4, node)
        .with_seed(11)
        .with_horizon(horizon_secs)
        .with_tick(0.25)
        .with_admission(AdmissionConfig::new(512))
        .with_slo(slo);
    let tenants = vec![
        TenantConfig::new("flood", 1, ArrivalConfig::poisson(400.0)).with_max_queue_depth(128)
    ];
    ServingGateway::new(cfg, vec![f], tenants).run()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = String::from("BENCH_tail.json");
    let mut quick = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out_path = it.next().expect("--out needs a path").clone(),
            "--quick" => quick = true,
            other => panic!("unknown flag {other:?} (expected --out <path> | --quick)"),
        }
    }
    let reps = if quick { 3 } else { 5 };
    let target_events: u64 = if quick { 200_000 } else { 1_000_000 };
    // The 2% budget is defined at the full 1M-event scale, where the
    // tailer's fixed costs (thread spawn, ~1 poll per 10ms) amortize over
    // a multi-second run. The quick smoke run is ~25x shorter, so those
    // constants loom larger; it only guards against regressions.
    let budget_pct = if quick { 5.0 } else { 2.0 };

    eprintln!("calibrating workload to >= {target_events} events ...");
    let (batches, events) = calibrate(target_events);
    eprintln!("  {batches} batches, {events} events/run");

    eprintln!("live-tail overhead (best of {reps}, interleaved) ...");
    let mut posthoc_best = f64::INFINITY;
    let mut tailed_best = f64::INFINITY;
    let mut mem = TailStats::default();
    for _ in 0..reps {
        let (p, _) = run_posthoc(batches);
        posthoc_best = posthoc_best.min(p);
        let (t, stats, _) = run_tailed(batches, false);
        tailed_best = tailed_best.min(t);
        assert_eq!(stats.dropped, 0, "tailed run must not overflow");
        assert_eq!(stats.records, events, "tailer lost records");
        mem.polls = mem.polls.max(stats.polls);
        mem.peak_pending = mem.peak_pending.max(stats.peak_pending);
        mem.peak_buffered_bytes = mem.peak_buffered_bytes.max(stats.peak_buffered_bytes);
    }
    let overhead_pct = (tailed_best / posthoc_best - 1.0) * 100.0;
    eprintln!(
        "  posthoc {posthoc_best:.3}s  tailed {tailed_best:.3}s  overhead {overhead_pct:.2}%"
    );

    eprintln!("stream identity (live vs post-hoc) ...");
    let (_, _, live) = run_tailed(batches, true);
    let r = Recorder::enabled_with_capacity(SHARD_CAP);
    run_drug(batches, &r);
    let posthoc = r.take();
    let identical = live == posthoc;
    eprintln!("  {} live records, identical: {identical}", live.len());

    eprintln!("alert latency (seeded serving overload) ...");
    let horizon = if quick { 10.0 } else { 20.0 };
    let report = alert_run(horizon);
    let fired_at = report.alerts.first().map(|a| a.fired_at_secs);
    eprintln!(
        "  {} alert(s), first fired at {:?} (horizon {horizon}s)",
        report.alerts.len(),
        fired_at
    );

    let json = format!(
        "{{\n  \"bench\": \"tail\",\n  \"overhead\": {{\n    \"events_per_run\": {events},\n    \
         \"posthoc_secs\": {posthoc_best:.6},\n    \"tailed_secs\": {tailed_best:.6},\n    \
         \"overhead_pct\": {overhead_pct:.3},\n    \"budget_pct\": {budget_pct:.1}\n  }},\n  \"identity\": {{\n    \
         \"records\": {},\n    \"identical\": {identical}\n  }},\n  \"memory\": {{\n    \
         \"polls\": {},\n    \"peak_pending_records\": {},\n    \
         \"peak_buffered_bytes\": {}\n  }},\n  \"alert\": {{\n    \"horizon_secs\": {horizon},\n    \
         \"alerts\": {},\n    \"first_fired_at_secs\": {}\n  }}\n}}\n",
        live.len(),
        mem.polls,
        mem.peak_pending,
        mem.peak_buffered_bytes,
        report.alerts.len(),
        fired_at.map_or("null".to_string(), |t| t.to_string()),
    );
    let mut f = std::fs::File::create(&out_path).expect("create output file");
    f.write_all(json.as_bytes()).expect("write output file");
    println!("wrote {out_path}");

    assert!(
        identical,
        "live-tailed stream diverged from post-hoc decode"
    );
    assert!(
        overhead_pct < budget_pct,
        "live tailing overhead {overhead_pct:.2}% exceeds the {budget_pct}% budget"
    );
    // Bounded memory: the tailer may transiently hold at most one ring's
    // worth of bytes per shard plus a small pending reorder window —
    // constants set by capacity, not by how long the run was.
    assert!(
        mem.peak_buffered_bytes <= SHARD_CAP * 2,
        "tailer buffered {} bytes, beyond the ring-capacity bound",
        mem.peak_buffered_bytes
    );
    assert!(!report.alerts.is_empty(), "overload fired no SLO alert");
    let fired = fired_at.unwrap();
    assert!(
        fired < horizon,
        "alert fired at {fired}s, after the {horizon}s arrival phase"
    );
    println!(
        "tail bench: OK ({overhead_pct:.2}% overhead, {} records identical, alert at {fired:.1}s)",
        live.len()
    );
}
