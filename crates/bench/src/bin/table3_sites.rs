//! Regenerates Table III: the evaluation-site inventory.

use lfm_core::experiments::table3;
use lfm_core::render::render_table;

fn main() {
    println!("Table III — evaluation sites\n");
    print!("{}", render_table(table3::HEADERS, &table3::rows()));
}
