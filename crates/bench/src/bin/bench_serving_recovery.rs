//! Crash-safe serving: journaled gateway recovery vs full restart, and
//! alert-driven admission control vs static admission under overload.
//!
//! Two experiments, written to `BENCH_serving_recovery.json`:
//!
//! 1. **Crash sweep** — the same steady serving workload with 0/1/2/4/8
//!    master crashes injected, run twice per point: with the journal
//!    (master snapshot ⊕ tail recovery + gateway state image) and without
//!    (full restart — the master re-runs everything it admitted while the
//!    gateway forgets its queues, bucket levels, warm instances, and
//!    in-flight matches). Headline, asserted in-binary: at every crash
//!    count > 0 the journaled gateway's goodput (completions per
//!    sim-second) is strictly ahead of the full-restart baseline, it
//!    loses zero admissions, and both modes conserve invocations
//!    (`admitted == completed + failed + lost`).
//!
//! 2. **Degradation curve** — offered load swept past capacity with deep
//!    tenant queues. Static admission buffers everything: completed-work
//!    latency grows with how long the overload lasts. The alert-driven
//!    control loop (latency-SLO burn alerts → staged depth/quota
//!    tightening with hysteresis) sheds the backlog explicitly and keeps
//!    p99 bounded. Asserted at every point ≥ 2x capacity.
//!
//! Invoked by `scripts/bench_serving_recovery.sh`. Flags:
//!
//! * `--out <path>`   output JSON path (default `BENCH_serving_recovery.json`)
//! * `--workers <n>`  worker count (default 4; 16 cores each)
//! * `--horizon <s>`  arrival horizon in sim-seconds (default 30)
//! * `--quick`        horizon 15s, crash counts 0,1,4, factors 1.0,3.0

use lfm_core::funcx::container::ActivationTech;
use lfm_core::monitor::sim::SimTaskProfile;
use lfm_core::serving::admission::AdmissionConfig;
use lfm_core::serving::arrivals::ArrivalConfig;
use lfm_core::serving::control::ControlConfig;
use lfm_core::serving::gateway::{ServingConfig, ServingFunction, ServingGateway};
use lfm_core::serving::report::ServingReport;
use lfm_core::serving::tenant::TenantConfig;
use lfm_core::simcluster::node::NodeSpec;
use lfm_core::telemetry::slo::{BurnWindow, Severity, SloConfig};
use lfm_core::workqueue::faults::{FaultPlan, FaultSpec};
use lfm_core::workqueue::journal::DurabilityConfig;
use std::io::Write as _;

const CORES_PER_WORKER: u32 = 16;
const TASK_SECS: f64 = 0.5;
const SEED: u64 = 11;

fn node() -> NodeSpec {
    NodeSpec::new(CORES_PER_WORKER, 64 * 1024, 100 * 1024)
}

fn functions() -> Vec<ServingFunction> {
    vec![ServingFunction::synthetic(
        "classify",
        50 << 20,
        ActivationTech::Docker,
        SimTaskProfile::new(TASK_SECS, 1.0, 1024, 256),
        64 << 10,
    )]
}

fn config(workers: u32, horizon: f64) -> ServingConfig {
    ServingConfig::new(workers, node())
        .with_seed(SEED)
        .with_horizon(horizon)
        .with_tick(0.25)
}

/// Exponentially spaced crash points with the mean picked so ~`crashes`
/// of them land inside the run's estimated event count.
fn crash_plan(crashes: u32, est_events: f64) -> FaultPlan {
    if crashes == 0 {
        return FaultPlan::reliable();
    }
    let mean = (est_events / (crashes + 1) as f64).max(1.0);
    FaultPlan::reliable().with(FaultSpec::master_crash(mean, crashes))
}

fn goodput(r: &ServingReport) -> f64 {
    r.completed as f64 / r.end_secs
}

/// Effective capacity: steady-state completions per sim-second under a
/// bounded-queue flood.
fn calibrate(workers: u32, horizon: f64) -> f64 {
    let flood =
        vec![TenantConfig::new("cal", 1, ArrivalConfig::poisson(2000.0)).with_max_queue_depth(512)];
    let report = ServingGateway::new(
        config(workers, horizon).with_admission(AdmissionConfig::new(300)),
        functions(),
        flood,
    )
    .run();
    assert!(report.completed > 0, "calibration run completed nothing");
    report.completed as f64 / report.end_secs
}

fn crash_point(
    workers: u32,
    horizon: f64,
    rate: f64,
    crashes: u32,
    durable: bool,
) -> ServingReport {
    // Events per invocation is ~4-6 (submit share, placement, transfers,
    // completion); estimating low keeps the crash points inside the run.
    let est_events = rate * horizon * 2.0;
    let mut cfg = config(workers, horizon).with_faults(crash_plan(crashes, est_events));
    if durable {
        cfg = cfg.with_durability(DurabilityConfig::journal_with_snapshots(256));
    }
    let tenants =
        vec![TenantConfig::new("acme", 1, ArrivalConfig::poisson(rate)).with_max_queue_depth(256)];
    ServingGateway::new(cfg, functions(), tenants).run()
}

fn crash_row(label: &str, r: &ServingReport) -> String {
    format!(
        "\"{label}\": {{\"goodput_inv_per_sec\": {}, \"admitted\": {}, \"completed\": {}, \
         \"failed\": {}, \"lost\": {}, \"crashes\": {}, \"gateway_recoveries\": {}, \
         \"journal_bytes\": {}, \"end_secs\": {}, \"p99_secs\": {}}}",
        goodput(r),
        r.admitted,
        r.completed,
        r.failed,
        r.lost,
        r.master_crashes,
        r.gateway_recoveries,
        r.journal_bytes,
        r.end_secs,
        r.latency.p99
    )
}

fn degradation_point(workers: u32, horizon: f64, rate: f64, controlled: bool) -> ServingReport {
    // Deep queues + effectively-unbounded shed threshold: the *static*
    // configuration buffers overload instead of rejecting it. A tight
    // dispatch window keeps the backlog in the gateway queue (where a
    // control trim can reach it) instead of the master's in-flight set.
    let mut cfg = config(workers, horizon)
        .with_admission(AdmissionConfig::new(1_000_000))
        .with_dispatch_window(96);
    if controlled {
        cfg = cfg
            .with_slo(
                SloConfig::new(0.95)
                    .with_bucket_secs(1.0)
                    .with_latency_threshold(3.0)
                    .with_windows(vec![BurnWindow::new(3.0, 9.0, 2.0, Severity::Page)]),
            )
            .with_control(
                ControlConfig::new()
                    .with_cooldown(2.0)
                    .with_depth_factor(0.25)
                    .with_max_level(5),
            );
    }
    let tenants = vec![
        TenantConfig::new("flood", 1, ArrivalConfig::poisson(rate)).with_max_queue_depth(4096)
    ];
    ServingGateway::new(cfg, functions(), tenants).run()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = String::from("BENCH_serving_recovery.json");
    let mut workers = 4u32;
    let mut horizon = 30.0f64;
    let mut crash_counts: Vec<u32> = vec![0, 1, 2, 4, 8];
    let mut factors = vec![1.0f64, 2.0, 3.0];
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out_path = it.next().expect("--out needs a path").clone(),
            "--workers" => {
                workers = it
                    .next()
                    .expect("--workers needs a count")
                    .parse()
                    .expect("--workers must be an integer")
            }
            "--horizon" => {
                horizon = it
                    .next()
                    .expect("--horizon needs seconds")
                    .parse()
                    .expect("--horizon must be a float")
            }
            "--quick" => {
                horizon = 15.0;
                crash_counts = vec![0, 1, 4];
                factors = vec![1.0, 3.0];
            }
            other => panic!(
                "unknown flag {other:?} \
                 (expected --out <path> | --workers <n> | --horizon <s> | --quick)"
            ),
        }
    }
    let capacity = calibrate(workers, horizon);
    eprintln!(
        "calibrated capacity: {capacity:.1} inv/s ({workers} workers x {CORES_PER_WORKER} cores)"
    );

    // Experiment 1: crash sweep at ~80% of capacity (steady, no overload,
    // so every difference between the modes is recovery, not admission).
    let rate = 0.8 * capacity;
    let mut crash_rows = Vec::new();
    for &crashes in &crash_counts {
        eprintln!("crash sweep: {crashes} crashes over {horizon:.0}s at {rate:.0} inv/s ...");
        let journaled = crash_point(workers, horizon, rate, crashes, true);
        let restart = crash_point(workers, horizon, rate, crashes, false);
        for (label, r) in [("journaled", &journaled), ("full_restart", &restart)] {
            assert!(
                r.invocations_conserved(),
                "{label} with {crashes} crashes: admitted {} != completed {} + failed {} + lost {}",
                r.admitted,
                r.completed,
                r.failed,
                r.lost
            );
        }
        assert_eq!(journaled.lost, 0, "journaled recovery must lose nothing");
        assert_eq!(journaled.gateway_recoveries, journaled.master_crashes);
        if crashes > 0 {
            assert!(
                restart.master_crashes > 0,
                "crash plan for {crashes} never fired"
            );
            assert!(
                restart.lost > 0,
                "a full restart with work in flight must lose admissions"
            );
            // The headline: recovery strictly beats restarting from zero.
            assert!(
                goodput(&journaled) > goodput(&restart),
                "{crashes} crashes: journaled goodput {:.2} not ahead of full-restart {:.2}",
                goodput(&journaled),
                goodput(&restart)
            );
        }
        eprintln!(
            "  journaled:    goodput {:.1} inv/s, {} crashes, lost {}",
            goodput(&journaled),
            journaled.master_crashes,
            journaled.lost
        );
        eprintln!(
            "  full restart: goodput {:.1} inv/s, {} crashes, lost {}",
            goodput(&restart),
            restart.master_crashes,
            restart.lost
        );
        crash_rows.push(format!(
            "{{\"crashes_requested\": {crashes}, {}, {}}}",
            crash_row("journaled", &journaled),
            crash_row("full_restart", &restart)
        ));
    }

    // Experiment 2: graceful degradation under overload. Static deep
    // queues buffer the excess (p99 grows with the overload duration);
    // the alert-driven control loop sheds it in stages and keeps p99
    // bounded near the post-tighten queue depth over the service rate.
    let mut degradation_rows = Vec::new();
    for &factor in &factors {
        let rate = factor * capacity;
        eprintln!("degradation: {factor:.1}x capacity ({rate:.0} inv/s) x {horizon:.0}s ...");
        let controlled = degradation_point(workers, horizon, rate, true);
        let static_run = degradation_point(workers, horizon, rate, false);
        eprintln!(
            "  control: p99 {:.2}s, {} actions, trimmed-lost {}",
            controlled.latency.p99,
            controlled.control_actions.len(),
            controlled.lost
        );
        for a in &controlled.alerts {
            eprintln!(
                "    alert {}/{}s thr {} fired {:.1}s resolved {:?} peak {:.1}",
                a.short_secs,
                a.long_secs,
                a.threshold,
                a.fired_at_secs,
                a.resolved_at_secs,
                a.peak_burn
            );
        }
        for a in &controlled.control_actions {
            eprintln!(
                "    t={:.1}s {} level {} depth {} trimmed {}",
                a.at_secs, a.action, a.level, a.queue_depth, a.trimmed
            );
        }
        eprintln!("  static:  p99 {:.2}s", static_run.latency.p99);
        assert!(controlled.invocations_conserved());
        assert!(static_run.invocations_conserved());
        if factor >= 2.0 {
            assert!(
                !controlled.alerts.is_empty(),
                "{factor}x overload must fire the burn alert"
            );
            assert!(
                !controlled.control_actions.is_empty(),
                "alert edges must drive control actions at {factor}x"
            );
            assert!(
                controlled.latency.p99 < 0.5 * static_run.latency.p99,
                "{factor}x: controlled p99 {:.1}s not bounded vs static {:.1}s",
                controlled.latency.p99,
                static_run.latency.p99
            );
            assert!(
                static_run.latency.p99 > 0.2 * (factor - 1.0) * horizon,
                "static p99 {:.1}s should grow with overload duration at {factor}x",
                static_run.latency.p99
            );
        }
        degradation_rows.push(format!(
            "{{\"offered_fraction\": {factor}, \"offered_rate\": {rate}, \
             \"control\": {{\"p99_secs\": {}, \"goodput_inv_per_sec\": {}, \
             \"control_actions\": {}, \"lost\": {}, \"alerts\": {}}}, \
             \"static\": {{\"p99_secs\": {}, \"goodput_inv_per_sec\": {}}}}}",
            controlled.latency.p99,
            goodput(&controlled),
            controlled.control_actions.len(),
            controlled.lost,
            controlled.alerts.len(),
            static_run.latency.p99,
            goodput(&static_run)
        ));
    }

    let mut json = format!(
        "{{\n  \"bench\": \"serving_recovery\",\n  \"workers\": {workers},\n  \
         \"cores_per_worker\": {CORES_PER_WORKER},\n  \
         \"calibrated_capacity_inv_per_sec\": {capacity},\n  \
         \"horizon_secs\": {horizon},\n  \"seed\": {SEED},\n  \"crash_sweep\": [\n"
    );
    for (i, row) in crash_rows.iter().enumerate() {
        let sep = if i + 1 == crash_rows.len() { "" } else { "," };
        json.push_str(&format!("    {row}{sep}\n"));
    }
    json.push_str("  ],\n  \"degradation\": [\n");
    for (i, row) in degradation_rows.iter().enumerate() {
        let sep = if i + 1 == degradation_rows.len() {
            ""
        } else {
            ","
        };
        json.push_str(&format!("    {row}{sep}\n"));
    }
    json.push_str("  ]\n}\n");
    lfm_core::telemetry::export::validate_json(&json).expect("report must be valid JSON");

    let mut f = std::fs::File::create(&out_path).expect("create output file");
    f.write_all(json.as_bytes()).expect("write output");
    println!("wrote {out_path}");
}
