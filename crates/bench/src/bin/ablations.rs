//! Ablation sweeps over the LFM design choices DESIGN.md calls out:
//!
//! 1. polling interval — enforcement tightness vs. monitor overhead;
//! 2. Auto first-allocation headroom — retry rate vs. packing density;
//! 3. Auto `min_samples` — measurement cost vs. label quality;
//! 4. worker file cache on/off (direct vs. packed distribution) and where
//!    the pack/unpack crossover falls as node count grows.
//!
//! Every parameter fan-out runs through the parallel engine
//! ([`lfm_core::parallel::par_map`]): each cell is an independent seeded
//! simulation, so the table contents are identical to the serial loops this
//! replaced while the wall clock scales with the core count.

use lfm_core::experiments::fig5::{self, Method};
use lfm_core::monitor::sim::SimMonitor;
use lfm_core::parallel::par_map;
use lfm_core::render::{fmt_secs, render_table};
use lfm_core::workloads::{genomic, hep};
use lfm_core::workqueue::allocate::{AutoConfig, Strategy};
use lfm_core::workqueue::master::{run_workload, DistMode, MasterConfig};

fn main() {
    let trace = lfm_bench::TraceOpts::from_args();
    lfm_bench::shards_from_args();
    poll_interval();
    headroom();
    min_samples();
    cache_and_crossover();
    schedule_policies();
    trace.finish();
}

/// Placement-order heuristics on a memory-heterogeneous workload.
fn schedule_policies() {
    use lfm_core::workloads::drug;
    use lfm_core::workqueue::master::SchedulePolicy;
    println!("\nAblation 5 — placement policy (drug screening, Oracle)\n");
    let w = drug::build(40, 23);
    let policies = vec![
        SchedulePolicy::Fifo,
        SchedulePolicy::LargestFirst,
        SchedulePolicy::SmallestFirst,
    ];
    let rows = par_map(policies, |policy| {
        let cfg = MasterConfig::new(w.oracle_strategy())
            .with_policy(policy)
            .with_seed(23);
        let rep = run_workload(&cfg, w.tasks.clone(), 6, drug::worker_spec());
        vec![
            format!("{policy:?}"),
            fmt_secs(rep.makespan_secs),
            format!("{:.1}%", rep.core_efficiency() * 100.0),
        ]
    });
    print!(
        "{}",
        render_table(&["policy", "makespan", "core efficiency"], &rows)
    );
}

/// Finer polls kill runaway tasks earlier (less wasted occupancy) at the
/// cost of more monitor work.
fn poll_interval() {
    println!("Ablation 1 — polling interval (genomic, tight Guess)\n");
    let w = genomic::build(20, 11);
    // A guess tight enough that heavy stages exceed it: enforcement
    // latency (how fast the poll notices) becomes visible in the makespan.
    let tight = Strategy::Guess(lfm_core::simcluster::node::Resources::new(
        12,
        8 * 1024,
        5 * 1024,
    ));
    let rows = par_map(vec![0.25, 1.0, 5.0, 20.0], |interval| {
        let cfg = MasterConfig::new(tight.clone())
            .with_monitor(SimMonitor {
                poll_interval: interval,
                per_poll_cost: 0.5e-3,
            })
            .with_seed(11);
        let rep = run_workload(&cfg, w.tasks.clone(), 10, genomic::worker_spec());
        let overhead: f64 = rep
            .results
            .iter()
            .map(|r| r.outcome.report().monitor_overhead_secs)
            .sum();
        vec![
            format!("{interval} s"),
            fmt_secs(rep.makespan_secs),
            format!("{:.1}%", rep.retry_fraction() * 100.0),
            fmt_secs(overhead),
        ]
    });
    print!(
        "{}",
        render_table(
            &["poll interval", "makespan", "retries", "total monitor cpu"],
            &rows
        )
    );
    println!();
}

/// Headroom trades retry storms (too small) against wasted packing slots
/// (too large).
fn headroom() {
    println!("Ablation 2 — Auto label headroom (HEP)\n");
    let w = hep::build(200, 13);
    let rows = par_map(vec![1.0, 1.1, 1.25, 1.5, 2.0], |headroom| {
        let cfg = MasterConfig::new(Strategy::Auto(AutoConfig {
            min_samples: 4,
            headroom,
            slow_start_until: 16,
        }))
        .with_seed(13);
        let rep = run_workload(&cfg, w.tasks.clone(), 6, hep::worker_spec(8));
        vec![
            format!("{headroom:.2}"),
            fmt_secs(rep.makespan_secs),
            format!("{:.1}%", rep.retry_fraction() * 100.0),
            format!("{:.1}%", rep.core_efficiency() * 100.0),
        ]
    });
    print!(
        "{}",
        render_table(
            &["headroom", "makespan", "retries", "core efficiency"],
            &rows
        )
    );
    println!();
}

/// More measurement runs give better labels but occupy whole workers longer.
fn min_samples() {
    println!("Ablation 3 — Auto min_samples (HEP)\n");
    let w = hep::build(200, 17);
    let rows = par_map(vec![1usize, 2, 4, 8, 16], |min_samples| {
        let cfg = MasterConfig::new(Strategy::Auto(AutoConfig {
            min_samples,
            headroom: 1.25,
            slow_start_until: 16,
        }))
        .with_seed(17);
        let rep = run_workload(&cfg, w.tasks.clone(), 6, hep::worker_spec(8));
        vec![
            min_samples.to_string(),
            fmt_secs(rep.makespan_secs),
            format!("{:.1}%", rep.retry_fraction() * 100.0),
        ]
    });
    print!(
        "{}",
        render_table(&["min samples", "makespan", "retries"], &rows)
    );
    println!();
}

/// The worker cache is what makes packed distribution pay: with it off
/// (direct mode) every task re-imports; the crossover vs. node count is
/// Figure 5's underlying economics.
fn cache_and_crossover() {
    println!("Ablation 4 — distribution mode (HEP, Oracle strategy)\n");
    let w = hep::build(120, 19);
    let rows = par_map(
        vec![DistMode::PackedTransfer, DistMode::SharedFsDirect],
        |mode| {
            let cfg = MasterConfig::new(w.oracle_strategy())
                .with_dist_mode(mode)
                .with_seed(19);
            let rep = run_workload(&cfg, w.tasks.clone(), 6, hep::worker_spec(8));
            vec![
                format!("{mode:?}"),
                fmt_secs(rep.makespan_secs),
                rep.cache_hits.to_string(),
                rep.fs_md_ops.to_string(),
            ]
        },
    );
    print!(
        "{}",
        render_table(
            &["mode", "makespan", "cache hits", "shared-FS md ops"],
            &rows
        )
    );

    println!("\npack-vs-direct cumulative crossover (TensorFlow env, Theta):");
    let points = fig5::run();
    let rows: Vec<Vec<String>> = fig5::NODE_COUNTS
        .iter()
        .map(|&n| {
            let get = |m: Method| {
                points
                    .iter()
                    .find(|p| p.site == "Theta (ALCF)" && p.nodes == n && p.method == m)
                    .expect("grid")
                    .cumulative_secs
            };
            vec![
                n.to_string(),
                fmt_secs(get(Method::DirectAccess)),
                fmt_secs(get(Method::LocalUnpack)),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(&["nodes", "direct", "packed+unpack"], &rows)
    );
}
