//! Chaos sweep: goodput and accounting of the resilient master under
//! increasing fault intensity, against a naive-retry baseline (no backoff,
//! no quarantine, no degradation). Writes `BENCH_faults.json`.
//!
//! At each intensity `x` the fault plan layers stragglers (probability `x`,
//! 3-6x slowdown), stage-in failures (`x/2`), result-message loss
//! (`0.3 * x`) and spurious monitor kills (`0.3 * x`) onto a HEP-style
//! workload. Both modes run the identical plan and seed; only the
//! `ResilienceConfig` differs.
//!
//! Invoked by `scripts/bench_faults.sh`. Flags:
//!
//! * `--out <path>`   output JSON path (default `BENCH_faults.json`)
//! * `--quick`        smaller workload (smoke mode for CI)

use lfm_core::prelude::*;
use lfm_core::workloads::hep;
use std::io::Write as _;

struct Row {
    intensity: f64,
    resilient: Outcome,
    naive: Outcome,
}

struct Outcome {
    makespan_secs: f64,
    goodput_per_hour: f64,
    core_efficiency: f64,
    successes: u64,
    abandoned: u64,
    infra_retries: u64,
    lease_reclaims: u64,
    quarantines: u32,
    spurious_kills: u64,
    stage_in_failures: u64,
}

fn chaos_plan(x: f64) -> FaultPlan {
    if x == 0.0 {
        return FaultPlan::reliable();
    }
    // Stragglers dominate the mix: they are worker-correlated (a slow node
    // stays slow), which is the failure mode quarantine is built to bench.
    // The stream faults (stage-in, loss, spurious kills) are uncorrelated
    // background noise that stresses the retry budget instead.
    FaultPlan::reliable()
        .with(FaultSpec::straggler((1.5 * x).min(0.5), 5.0, 10.0))
        .with(FaultSpec::stage_in_failure(x / 4.0))
        .with(FaultSpec::message_loss(0.15 * x))
        .with(FaultSpec::spurious_kill(0.15 * x))
}

fn run(tasks: &[TaskSpec], spec: NodeSpec, x: f64, resilience: ResilienceConfig) -> Outcome {
    let cfg = hep::master_config(Strategy::Auto(AutoConfig::default()), 3)
        .with_faults(chaos_plan(x))
        .with_resilience(resilience)
        .with_seed(97);
    let report = run_workload(&cfg, tasks.to_vec(), 8, spec);
    let successes = report
        .results
        .iter()
        .filter(|r| r.outcome.is_success())
        .count() as u64;
    Outcome {
        makespan_secs: report.makespan_secs,
        goodput_per_hour: successes as f64 / (report.makespan_secs / 3600.0),
        core_efficiency: report.core_efficiency(),
        successes,
        abandoned: report.abandoned_tasks,
        infra_retries: report.infra_retried_tasks,
        lease_reclaims: report.lease_reclaims,
        quarantines: report.quarantines,
        spurious_kills: report.spurious_kills,
        stage_in_failures: report.stage_in_failures,
    }
}

fn outcome_json(o: &Outcome) -> String {
    format!(
        "{{\"makespan_secs\": {:.3}, \"goodput_tasks_per_hour\": {:.2}, \
         \"core_efficiency\": {:.4}, \"successes\": {}, \"abandoned\": {}, \
         \"infra_retries\": {}, \"lease_reclaims\": {}, \"quarantines\": {}, \
         \"spurious_kills\": {}, \"stage_in_failures\": {}}}",
        o.makespan_secs,
        o.goodput_per_hour,
        o.core_efficiency,
        o.successes,
        o.abandoned,
        o.infra_retries,
        o.lease_reclaims,
        o.quarantines,
        o.spurious_kills,
        o.stage_in_failures,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = String::from("BENCH_faults.json");
    let mut quick = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out_path = it.next().expect("--out needs a path").clone(),
            "--quick" => quick = true,
            other => panic!("unknown flag {other:?} (expected --out <path> | --quick)"),
        }
    }

    let n = if quick { 60 } else { 240 };
    let workload = hep::build(n, 3);
    let spec = hep::worker_spec(8);
    eprintln!(
        "chaos sweep: {} HEP tasks x 8 workers, resilient vs naive-retry",
        workload.tasks.len()
    );

    let mut rows = Vec::new();
    for x in [0.0, 0.05, 0.1, 0.2, 0.3] {
        let resilient = run(&workload.tasks, spec, x, ResilienceConfig::default());
        let naive = run(&workload.tasks, spec, x, ResilienceConfig::naive_retry());
        eprintln!(
            "  x={x:<4}  resilient: {:>7.1} tasks/h ({} ok, {} quar)   \
             naive: {:>7.1} tasks/h ({} ok)",
            resilient.goodput_per_hour,
            resilient.successes,
            resilient.quarantines,
            naive.goodput_per_hour,
            naive.successes,
        );
        rows.push(Row {
            intensity: x,
            resilient,
            naive,
        });
    }

    let mut json = String::from("{\n  \"bench\": \"fault_sweep\",\n  \"points\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"intensity\": {}, \"resilient\": {}, \"naive\": {}}}{}\n",
            r.intensity,
            outcome_json(&r.resilient),
            outcome_json(&r.naive),
            sep,
        ));
    }
    json.push_str("  ]\n}\n");

    let mut f = std::fs::File::create(&out_path).expect("create output file");
    f.write_all(json.as_bytes()).expect("write output");
    println!("wrote {out_path}");
}
