//! Regenerates Figure 9: funcX image classification, LFM vs. containers.

use lfm_bench::{pivot_sweep, retry_summary, save_sweep_csv, TraceOpts};
use lfm_core::experiments::fig9;

fn main() {
    let trace = TraceOpts::from_args();
    lfm_bench::shards_from_args();
    println!("Figure 9 — funcX ResNet image classification\n");

    println!("(left) varying tasks on 4 workers:");
    let points = fig9::by_tasks(&[32, 64, 128, 256], 4, 2021);
    let csv = save_sweep_csv("fig9_by_tasks", &points);
    println!("[csv: {}]", csv.display());
    print!("{}", pivot_sweep(&points, "tasks"));
    println!();
    print!("{}", retry_summary(&points));

    println!("\n(right) varying workers, 16 tasks per worker:");
    let points = fig9::by_workers(&[1, 2, 4, 8], 16, 2021);
    let csv = save_sweep_csv("fig9_by_workers", &points);
    println!("[csv: {}]", csv.display());
    print!("{}", pivot_sweep(&points, "workers"));
    trace.finish();
}
