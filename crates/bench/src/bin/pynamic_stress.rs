//! Pynamic-style front-end stress test (the paper cites the Pynamic
//! benchmark for Python-at-scale costs): generate progressively larger
//! synthetic modules and measure — for real — tokenizer, parser, analyzer,
//! and interpreter-load throughput.

use lfm_core::parallel::par_map;
use lfm_core::pyenv::analyze::analyze_source;
use lfm_core::pyenv::interp::Interp;
use lfm_core::pyenv::lexer::Lexer;
use lfm_core::pyenv::parser::parse_module;
use lfm_core::pyenv::source::synthetic_module;
use lfm_core::render::render_table;
use std::time::Instant;

fn time_it(mut f: impl FnMut()) -> f64 {
    // Best of 3 to shave scheduler noise — with the shapes fanned across
    // cores, taking the minimum also absorbs cross-shape interference.
    (0..3)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn main() {
    let trace = lfm_bench::TraceOpts::from_args();
    println!("Pynamic-style front-end stress (real measurements)\n");
    let shapes = vec![(8, 4, 4), (32, 16, 8), (128, 64, 12), (512, 256, 16)];
    let rows: Vec<Vec<String>> = par_map(shapes, |(imports, functions, stmts)| {
        let src = synthetic_module(imports, functions, stmts);
        let kb = src.len() as f64 / 1024.0;
        let lex = time_it(|| {
            Lexer::tokenize(&src).unwrap();
        });
        let parse = time_it(|| {
            parse_module(&src).unwrap();
        });
        let analyze = time_it(|| {
            analyze_source(&src).unwrap();
        });
        let load = time_it(|| {
            // Interpreter module-load: defs + imports execute. The
            // synthetic module imports only registered stdlib modules
            // plus science stubs, so stub them out.
            let mut interp = Interp::new();
            for m in [
                "numpy",
                "scipy",
                "pandas",
                "sklearn",
                "matplotlib",
                "os",
                "sys",
                "json",
                "re",
                "time",
                "itertools",
                "functools",
                "collections",
                "tensorflow",
                "keras",
            ] {
                interp.register_module(lfm_core::pyenv::interp::ModuleBuilder::new(m));
            }
            interp.load_source(&src).unwrap();
        });
        vec![
            format!("{imports}i/{functions}f"),
            format!("{kb:.1} KB"),
            format!("{:.2} ms ({:.1} MB/s)", lex * 1e3, kb / 1024.0 / lex),
            format!("{:.2} ms", parse * 1e3),
            format!("{:.2} ms", analyze * 1e3),
            format!("{:.2} ms", load * 1e3),
        ]
    });
    print!(
        "{}",
        render_table(
            &["module", "size", "lex", "parse", "analyze", "interp load"],
            &rows
        )
    );
    println!("\nThe 'analyze' column is the per-function cost the LFM pipeline");
    println!("pays at submit time (Table II's analyze column at scale).");
    trace.finish();
}
