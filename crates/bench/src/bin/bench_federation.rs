//! Aggregate scheduler throughput vs shard count for the federated master:
//! runs the same workload under 1, 2, 4, and 8 foreman shards and writes
//! `BENCH_federation.json` with per-shard-count aggregate tasks/sec (sum
//! over shards of terminal tasks ÷ wall seconds stepping that shard's
//! event loop) plus balancer/handoff telemetry.
//!
//! The workload is the dispatch-stress shape from `sched_bench` (deep
//! pending queue of 1-core tasks in four categories); tasks are
//! independent, so `PartitionPolicy::ByComponent` balances them by
//! duration and the scaling measures pure event-loop parallelism —
//! near-linear when per-event cost does not degrade with shard count.
//!
//! Invoked by `scripts/bench_federation.sh`. Flags:
//!
//! * `--out <path>`     output JSON path (default `BENCH_federation.json`)
//! * `--tasks <n>`      workload size (default 100000; paper-scale 1000000)
//! * `--shards <list>`  comma-separated shard counts (default `1,2,4,8`)
//! * `--quick`          20k tasks over shards 1,2,4 (smoke mode for CI)

use lfm_bench::sched_bench::{bench_config, bench_tasks};
use lfm_core::simcluster::node::NodeSpec;
use lfm_core::workqueue::federation::{run_federated, FederationConfig, FederationReport};
use lfm_core::workqueue::sched::SchedImpl;
use std::io::Write as _;
use std::time::Instant;

fn measure(shards: u32, tasks_n: u64, workers: u32) -> (FederationReport, f64) {
    let tasks = bench_tasks(tasks_n, true);
    let spec = NodeSpec::new(16, 64 * 1024, 128 * 1024);
    let cfg = bench_config(SchedImpl::Indexed);
    let t = Instant::now();
    let report = run_federated(&cfg, &FederationConfig::new(shards), tasks, workers, spec);
    let wall = t.elapsed().as_secs_f64();
    assert_eq!(report.merged.abandoned_tasks, 0);
    assert_eq!(report.merged.task_count as u64, tasks_n);
    (report, wall)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = String::from("BENCH_federation.json");
    let mut tasks_n = 100_000u64;
    let mut shard_counts = vec![1u32, 2, 4, 8];
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out_path = it.next().expect("--out needs a path").clone(),
            "--tasks" => {
                tasks_n = it
                    .next()
                    .expect("--tasks needs a count")
                    .parse()
                    .expect("--tasks must be an integer")
            }
            "--shards" => {
                shard_counts = it
                    .next()
                    .expect("--shards needs a comma-separated list")
                    .split(',')
                    .map(|s| s.trim().parse().expect("--shards entries must be integers"))
                    .collect()
            }
            "--quick" => {
                tasks_n = 20_000;
                shard_counts = vec![1, 2, 4];
            }
            other => panic!(
                "unknown flag {other:?} \
                 (expected --out <path> | --tasks <n> | --shards <list> | --quick)"
            ),
        }
    }
    let workers = 256u32;

    let mut rows = Vec::new();
    let mut base_agg = 0.0f64;
    for &s in &shard_counts {
        eprintln!("measuring {tasks_n} tasks across {s} shard(s) x {workers} workers ...");
        let (report, wall) = measure(s, tasks_n, workers);
        let agg = report.aggregate_tasks_per_sec();
        if s == 1 {
            base_agg = agg;
        }
        let speedup = if base_agg > 0.0 { agg / base_agg } else { 0.0 };
        eprintln!(
            "  aggregate {agg:.0} tasks/s  wall {wall:.3}s  steals {}  \
             cross-shard releases {}  speedup vs 1 shard {speedup:.2}x",
            report.steals, report.cross_shard_releases
        );
        // Splice the driver-level fields into the report's own summary.
        let summary = report.summary_json();
        rows.push(format!(
            "{}, \"driver_wall_secs\": {:.6}, \"speedup_vs_1shard\": {:.3}}}",
            &summary[..summary.len() - 1],
            wall,
            speedup,
        ));
    }

    let mut json = format!(
        "{{\n  \"bench\": \"federation\",\n  \"tasks\": {tasks_n},\n  \"workers\": {workers},\n  \"configs\": [\n"
    );
    for (i, row) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        json.push_str(&format!("    {row}{sep}\n"));
    }
    json.push_str("  ]\n}\n");

    let mut f = std::fs::File::create(&out_path).expect("create output file");
    f.write_all(json.as_bytes()).expect("write output");
    println!("wrote {out_path}");
}
