//! Numeric acceptance bench for the binary telemetry protocol. Measures:
//!
//! 1. **Encode throughput** — ≥1M mixed events through the binary wire
//!    path vs the heap reference recorder (`bench_api::HeapRecorder`);
//!    the binary path must be ≥5× faster.
//! 2. **End-to-end overhead** — a fig7-scale drug-screening run with a
//!    live recorder vs a disabled one; the enabled run must stay within
//!    5% wall time while emitting ≥1M events (the workload is scaled up
//!    until it does).
//!
//! Writes `BENCH_telemetry.json` with both measurements. Invoked by
//! `scripts/bench_telemetry.sh`. Flags:
//!
//! * `--out <path>`   output JSON path (default `BENCH_telemetry.json`)
//! * `--quick`        fewer repetitions (smoke mode for CI)

use lfm_core::prelude::*;
use lfm_core::telemetry::bench_api::{emit_mixed, emit_mixed_heap, HeapRecorder};
use lfm_core::telemetry::Recorder;
use lfm_core::workloads::drug;
use std::io::Write as _;
use std::time::Instant;

const ENCODE_EVENTS: u64 = 1_200_000;

/// Best-of-N wall time for `f`, which returns the number of events it
/// processed (so the caller can turn time into throughput).
fn best_of<F: FnMut() -> u64>(reps: usize, mut f: F) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut events = 0;
    for _ in 0..reps {
        let t = Instant::now();
        events = f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    (best, events)
}

fn encode_bench(reps: usize) -> (f64, f64) {
    let (binary_secs, _) = best_of(reps, || {
        let r = Recorder::enabled();
        emit_mixed(&r, ENCODE_EVENTS);
        // Drop buffers without decoding: this measures pure emission.
        ENCODE_EVENTS
    });
    let (heap_secs, _) = best_of(reps, || {
        let r = HeapRecorder::new();
        emit_mixed_heap(&r, ENCODE_EVENTS);
        ENCODE_EVENTS
    });
    (binary_secs, heap_secs)
}

/// Per-shard capacity for the instrumented arms: the simulation is
/// single-threaded, so every record lands in one shard, and a ≥1M-event
/// run must not hit the drop path (that would undercount the work).
const SHARD_CAP: usize = 4_000_000;

/// One fig7-style run; returns (wall seconds, events recorded).
fn run_drug(batches: u64, recorder: &Recorder) -> (f64, u64) {
    let workload = drug::build(batches, 1234);
    let config = drug::master_config(Strategy::Auto(AutoConfig::default()), 1234)
        .with_telemetry(recorder.clone());
    let t = Instant::now();
    let report = run_workload(&config, workload.tasks, 14, drug::worker_spec());
    let wall = t.elapsed().as_secs_f64();
    assert_eq!(report.abandoned_tasks, 0);
    assert_eq!(recorder.dropped(), 0, "shard capacity too small for run");
    let events = recorder.take().len() as u64;
    (wall, events)
}

fn overhead_bench(reps: usize) -> (f64, f64, u64) {
    // Calibrate events/batch on a small run, then jump straight to a
    // workload sized to emit ≥1M events (with ~10% headroom).
    const CAL_BATCHES: u64 = 100;
    let r = Recorder::enabled_with_capacity(SHARD_CAP);
    let (_, cal_events) = run_drug(CAL_BATCHES, &r);
    let mut batches = (1_100_000 * CAL_BATCHES).div_ceil(cal_events);
    let events = loop {
        let r = Recorder::enabled_with_capacity(SHARD_CAP);
        let (_, events) = run_drug(batches, &r);
        if events >= 1_000_000 {
            break events;
        }
        batches = batches * 5 / 4;
    };
    eprintln!("  overhead workload: {batches} batches, {events} events/run");

    let mut disabled_best = f64::INFINITY;
    let mut enabled_best = f64::INFINITY;
    // Interleave so machine drift hits both arms equally.
    for _ in 0..reps {
        let (d, _) = run_drug(batches, &Recorder::disabled());
        disabled_best = disabled_best.min(d);
        let r = Recorder::enabled_with_capacity(SHARD_CAP);
        let (e, _) = run_drug(batches, &r);
        enabled_best = enabled_best.min(e);
    }
    (disabled_best, enabled_best, events)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = String::from("BENCH_telemetry.json");
    let mut quick = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out_path = it.next().expect("--out needs a path").clone(),
            "--quick" => quick = true,
            other => panic!("unknown flag {other:?} (expected --out <path> | --quick)"),
        }
    }
    let reps = if quick { 2 } else { 5 };

    eprintln!("encode throughput ({ENCODE_EVENTS} events, best of {reps}) ...");
    let (binary_secs, heap_secs) = encode_bench(reps);
    let speedup = heap_secs / binary_secs;
    eprintln!(
        "  binary {:.1}M ev/s  heap {:.1}M ev/s  speedup {speedup:.1}x",
        ENCODE_EVENTS as f64 / binary_secs / 1e6,
        ENCODE_EVENTS as f64 / heap_secs / 1e6,
    );

    eprintln!("end-to-end overhead (fig7-scale, best of {reps}) ...");
    let (disabled_secs, enabled_secs, events) = overhead_bench(reps);
    let overhead_pct = (enabled_secs / disabled_secs - 1.0) * 100.0;
    eprintln!(
        "  disabled {disabled_secs:.3}s  enabled {enabled_secs:.3}s  overhead {overhead_pct:.2}%"
    );

    let json = format!(
        "{{\n  \"bench\": \"telemetry\",\n  \"encode\": {{\n    \"events\": {ENCODE_EVENTS},\n    \
         \"binary_secs\": {binary_secs:.6},\n    \"heap_secs\": {heap_secs:.6},\n    \
         \"binary_events_per_sec\": {:.1},\n    \"heap_events_per_sec\": {:.1},\n    \
         \"speedup\": {speedup:.2}\n  }},\n  \"overhead\": {{\n    \"events_per_run\": {events},\n    \
         \"disabled_secs\": {disabled_secs:.6},\n    \"enabled_secs\": {enabled_secs:.6},\n    \
         \"overhead_pct\": {overhead_pct:.3}\n  }}\n}}\n",
        ENCODE_EVENTS as f64 / binary_secs,
        ENCODE_EVENTS as f64 / heap_secs,
    );
    let mut f = std::fs::File::create(&out_path).expect("create output file");
    f.write_all(json.as_bytes()).expect("write output file");
    println!("wrote {out_path}");

    assert!(
        speedup >= 5.0,
        "binary encode speedup {speedup:.2}x below the 5x bar"
    );
    assert!(
        overhead_pct < 5.0,
        "telemetry overhead {overhead_pct:.2}% exceeds the 5% budget"
    );
    println!("telemetry bench: OK ({speedup:.1}x encode, {overhead_pct:.2}% overhead)");
}
