//! Regenerates Table II: analyze / create / run costs per package.

use lfm_core::experiments::table2;
use lfm_core::render::{fmt_bytes, fmt_secs, render_table};

fn main() {
    println!("Table II — packaging costs\n");
    let rows: Vec<Vec<String>> = table2::run()
        .into_iter()
        .map(|r| {
            vec![
                r.package,
                format!("{:.2} ms", r.analyze_secs * 1e3),
                fmt_secs(r.create_secs),
                fmt_secs(r.run_secs),
                fmt_bytes(r.size_bytes),
                r.dep_count.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &["package", "analyze", "create", "run", "size", "deps"],
            &rows
        )
    );
}
