//! # lfm-bench — regenerators and microbenchmarks
//!
//! One binary per paper table/figure (see `src/bin/`) and Criterion
//! microbenches for the hot paths (see `benches/`). This library holds the
//! shared rendering helpers for the strategy-sweep figures.

use lfm_core::experiments::sweep::SweepPoint;
use lfm_core::render::{fmt_secs, render_table};
use lfm_core::telemetry::{export, Recorder};
use std::io::Write as _;
use std::path::PathBuf;

pub mod sched_bench;

/// Tracing options shared by every regenerator binary.
///
/// Parse with [`TraceOpts::from_args`] at the top of `main`; when the user
/// passed `--trace-out <path>` (Chrome trace-event JSON), `--trace-jsonl
/// <path>` (flat JSONL), or `--trace-perfetto <path>` (binary Perfetto
/// protobuf, loadable at ui.perfetto.dev) this installs the process-wide
/// recorder — which every `MasterConfig::new()`, cache, and the parallel
/// engine then report into — and [`TraceOpts::finish`] writes the files and
/// prints a metrics summary once the figures are done.
pub struct TraceOpts {
    chrome_out: Option<PathBuf>,
    jsonl_out: Option<PathBuf>,
    perfetto_out: Option<PathBuf>,
    recorder: Recorder,
}

impl TraceOpts {
    /// Parse trace flags from the process argv. Unknown arguments are left
    /// for the binary's own parsing; a trace flag missing its path panics
    /// with a usage message.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        Self::from_arg_slice(&args)
    }

    /// [`TraceOpts::from_args`] over an explicit argument list (testable).
    pub fn from_arg_slice(args: &[String]) -> Self {
        let mut chrome_out = None;
        let mut jsonl_out = None;
        let mut perfetto_out = None;
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--trace-out" => {
                    let path = it.next().expect("--trace-out requires a path");
                    chrome_out = Some(PathBuf::from(path));
                }
                "--trace-jsonl" => {
                    let path = it.next().expect("--trace-jsonl requires a path");
                    jsonl_out = Some(PathBuf::from(path));
                }
                "--trace-perfetto" => {
                    let path = it.next().expect("--trace-perfetto requires a path");
                    perfetto_out = Some(PathBuf::from(path));
                }
                _ => {}
            }
        }
        let recorder = if chrome_out.is_some() || jsonl_out.is_some() || perfetto_out.is_some() {
            lfm_core::telemetry::install_global()
        } else {
            Recorder::disabled()
        };
        TraceOpts {
            chrome_out,
            jsonl_out,
            perfetto_out,
            recorder,
        }
    }

    /// Whether any trace output was requested.
    pub fn enabled(&self) -> bool {
        self.recorder.is_enabled()
    }

    /// Drain the recorder, write the requested trace files, and print the
    /// aggregated metrics as one JSON line. No-op without trace flags.
    pub fn finish(self) {
        if !self.recorder.is_enabled() {
            return;
        }
        let records = self.recorder.take();
        if let Some(path) = &self.chrome_out {
            export::write_chrome_trace(path, &records).expect("write chrome trace");
            println!("[trace: {} ({} records)]", path.display(), records.len());
        }
        if let Some(path) = &self.jsonl_out {
            export::write_jsonl(path, &records).expect("write jsonl trace");
            println!("[trace-jsonl: {}]", path.display());
        }
        if let Some(path) = &self.perfetto_out {
            export::write_perfetto_trace(path, &records).expect("write perfetto trace");
            println!("[trace-perfetto: {}]", path.display());
        }
        let mut metrics = lfm_core::telemetry::MetricsRegistry::from_records(&records);
        println!("[metrics] {}", metrics.to_json());
    }
}

/// Parse `--shards <n>` out of an argument list without installing it
/// (testable core of [`shards_from_args`]).
pub fn parse_shards(args: &[String]) -> Option<u32> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--shards" {
            let n: u32 = it
                .next()
                .expect("--shards requires a count")
                .parse()
                .expect("--shards must be an integer");
            return Some(n.max(1));
        }
    }
    None
}

/// Parse `--shards <n>` from the process argv and install it as the
/// process-wide default shard count, so every `MasterConfig::new()` the
/// figure builds routes through the federated master
/// (see `lfm_workqueue::federation`). Returns the shard count (1 when the
/// flag is absent). Call once at the top of `main`, alongside
/// [`TraceOpts::from_args`].
pub fn shards_from_args() -> u32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n = parse_shards(&args).unwrap_or(1);
    lfm_core::workqueue::federation::set_default_shards(n);
    if n > 1 {
        println!("[federation: {n} foreman shards]");
    }
    n
}

/// Where regenerators drop machine-readable outputs.
pub fn experiments_dir() -> PathBuf {
    let dir = PathBuf::from("target/experiments");
    std::fs::create_dir_all(&dir).expect("create target/experiments");
    dir
}

/// Write a CSV file under `target/experiments/`, returning its path.
pub fn write_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) -> PathBuf {
    let path = experiments_dir().join(format!("{name}.csv"));
    let mut f = std::fs::File::create(&path).expect("create csv");
    let quote = |cell: &str| -> String {
        if cell.contains(',') || cell.contains('"') {
            format!("\"{}\"", cell.replace('"', "\"\""))
        } else {
            cell.to_string()
        }
    };
    writeln!(f, "{}", headers.join(",")).unwrap();
    for row in rows {
        let line: Vec<String> = row.iter().map(|c| quote(c)).collect();
        writeln!(f, "{}", line.join(",")).unwrap();
    }
    path
}

/// Dump a sweep-point cloud as long-format CSV (x, strategy, makespan_s,
/// retry_fraction, core_efficiency).
pub fn save_sweep_csv(name: &str, points: &[SweepPoint]) -> PathBuf {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.x.to_string(),
                p.strategy.clone(),
                format!("{:.3}", p.makespan_secs),
                format!("{:.5}", p.retry_fraction),
                format!("{:.5}", p.core_efficiency),
            ]
        })
        .collect();
    write_csv(
        name,
        &[
            "x",
            "strategy",
            "makespan_s",
            "retry_fraction",
            "core_efficiency",
        ],
        &rows,
    )
}

/// Pivot a sweep-point cloud into a table: one row per x value, one column
/// per strategy (in first-appearance order).
pub fn pivot_sweep(points: &[SweepPoint], x_label: &str) -> String {
    let mut strategies: Vec<String> = Vec::new();
    for p in points {
        if !strategies.contains(&p.strategy) {
            strategies.push(p.strategy.clone());
        }
    }
    let mut xs: Vec<u64> = points.iter().map(|p| p.x).collect();
    xs.sort_unstable();
    xs.dedup();

    let mut headers: Vec<&str> = vec![x_label];
    let owned: Vec<String> = strategies.clone();
    for s in &owned {
        headers.push(s.as_str());
    }
    let rows: Vec<Vec<String>> = xs
        .iter()
        .map(|&x| {
            let mut row = vec![x.to_string()];
            for s in &strategies {
                let cell = points
                    .iter()
                    .find(|p| p.x == x && &p.strategy == s)
                    .map(|p| fmt_secs(p.makespan_secs))
                    .unwrap_or_else(|| "-".to_string());
                row.push(cell);
            }
            row
        })
        .collect();
    render_table(&headers, &rows)
}

/// Companion retry table for a sweep (the <1%-retries evidence).
pub fn retry_summary(points: &[SweepPoint]) -> String {
    let mut strategies: Vec<String> = Vec::new();
    for p in points {
        if !strategies.contains(&p.strategy) {
            strategies.push(p.strategy.clone());
        }
    }
    let rows: Vec<Vec<String>> = strategies
        .iter()
        .map(|s| {
            let mine: Vec<&SweepPoint> = points.iter().filter(|p| &p.strategy == s).collect();
            let max_retry = mine.iter().map(|p| p.retry_fraction).fold(0.0f64, f64::max);
            let mean_eff =
                mine.iter().map(|p| p.core_efficiency).sum::<f64>() / mine.len().max(1) as f64;
            vec![
                s.clone(),
                format!("{:.2}%", max_retry * 100.0),
                format!("{:.1}%", mean_eff * 100.0),
            ]
        })
        .collect();
    render_table(&["strategy", "max retries", "mean core efficiency"], &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(x: u64, s: &str, m: f64) -> SweepPoint {
        SweepPoint {
            x,
            strategy: s.into(),
            makespan_secs: m,
            retry_fraction: 0.004,
            core_efficiency: 0.8,
        }
    }

    #[test]
    fn pivot_shape() {
        let points = vec![
            pt(10, "Oracle", 100.0),
            pt(10, "Auto", 110.0),
            pt(20, "Oracle", 180.0),
        ];
        let t = pivot_sweep(&points, "tasks");
        assert!(t.contains("tasks"));
        assert!(t.contains("Oracle"));
        assert!(t.contains("Auto"));
        // Missing cell renders as dash.
        assert!(t.contains('-'));
    }

    #[test]
    fn csv_writer_quotes_and_persists() {
        let rows = vec![vec!["a,b".to_string(), "pla\"in".to_string()]];
        let path = write_csv("test_csv_writer", &["c1", "c2"], &rows);
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.starts_with("c1,c2\n"));
        assert!(body.contains("\"a,b\""));
        assert!(body.contains("\"pla\"\"in\""));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn sweep_csv_long_format() {
        let points = vec![pt(10, "Oracle", 100.0)];
        let path = save_sweep_csv("test_sweep_csv", &points);
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("x,strategy,makespan_s"));
        assert!(body.contains("10,Oracle,100.000"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn parse_shards_reads_flag_and_clamps() {
        assert_eq!(parse_shards(&[]), None);
        let args: Vec<String> = ["--seed", "7", "--shards", "4"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(parse_shards(&args), Some(4));
        let args: Vec<String> = ["--shards", "0"].iter().map(|s| s.to_string()).collect();
        assert_eq!(parse_shards(&args), Some(1), "clamped to at least 1");
    }

    #[test]
    fn trace_opts_absent_flags_stay_disabled() {
        let opts = TraceOpts::from_arg_slice(&["--seed".to_string(), "7".to_string()]);
        assert!(!opts.enabled());
        opts.finish(); // no-op, must not write anything or panic
    }

    #[test]
    fn trace_opts_install_write_and_validate() {
        let path = std::env::temp_dir().join("lfm_bench_trace_opts_test.json");
        let pftrace = std::env::temp_dir().join("lfm_bench_trace_opts_test.pftrace");
        let args = vec![
            "--trace-out".to_string(),
            path.display().to_string(),
            "--trace-perfetto".to_string(),
            pftrace.display().to_string(),
        ];
        let opts = TraceOpts::from_arg_slice(&args);
        assert!(opts.enabled());
        lfm_core::telemetry::global().counter("bench.test_counter", 3);
        opts.finish();
        let body = std::fs::read_to_string(&path).unwrap();
        lfm_core::telemetry::export::validate_json(&body).unwrap();
        assert!(body.contains("traceEvents"));
        assert!(body.contains("bench.test_counter"));
        let trace = std::fs::read(&pftrace).unwrap();
        lfm_core::telemetry::export::validate_trace(&trace).unwrap();
        std::fs::remove_file(path).ok();
        std::fs::remove_file(pftrace).ok();
    }

    #[test]
    fn retry_table_has_all_strategies() {
        let points = vec![pt(1, "Oracle", 1.0), pt(1, "Auto", 1.0)];
        let t = retry_summary(&points);
        assert!(t.contains("0.40%"));
        assert!(t.contains("80.0%"));
    }
}
