//! # lfm-bench — regenerators and microbenchmarks
//!
//! One binary per paper table/figure (see `src/bin/`) and Criterion
//! microbenches for the hot paths (see `benches/`). This library holds the
//! shared rendering helpers for the strategy-sweep figures.

use lfm_core::experiments::sweep::SweepPoint;
use lfm_core::render::{fmt_secs, render_table};
use lfm_core::telemetry::export::{
    ChromeSink, JsonlSink, PerfettoSink, PerfettoStreamSink, TraceSink,
};
use lfm_core::telemetry::{export, MetricsRegistry, Recorder};
use std::io::{BufWriter, Write as _};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

pub mod sched_bench;

/// Trace output formats accepted by `--trace`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// Chrome trace-event JSON (chrome://tracing, ui.perfetto.dev).
    Chrome,
    /// One JSON object per record, flat.
    Jsonl,
    /// Binary Perfetto protobuf (ui.perfetto.dev).
    Perfetto,
}

impl TraceFormat {
    pub fn name(&self) -> &'static str {
        match self {
            TraceFormat::Chrome => "chrome",
            TraceFormat::Jsonl => "jsonl",
            TraceFormat::Perfetto => "perfetto",
        }
    }
}

/// One parsed `--trace <chrome|jsonl|perfetto>[:stream]=<path>` spec.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpec {
    pub format: TraceFormat,
    /// Stream records to the sink while the run is live (bounded buffered
    /// memory) instead of buffering the full run and writing at the end.
    pub stream: bool,
    pub path: PathBuf,
}

impl TraceSpec {
    /// Parse `<chrome|jsonl|perfetto>[:stream]=<path>`.
    pub fn parse(s: &str) -> Result<TraceSpec, String> {
        let (head, path) = s
            .split_once('=')
            .ok_or_else(|| format!("trace spec `{s}` is missing `=<path>`"))?;
        if path.is_empty() {
            return Err(format!("trace spec `{s}` has an empty path"));
        }
        let (fmt, stream) = match head.split_once(':') {
            Some((f, "stream")) => (f, true),
            Some((_, mode)) => {
                return Err(format!(
                    "unknown trace mode `{mode}` in `{s}` (only `stream`)"
                ))
            }
            None => (head, false),
        };
        let format = match fmt {
            "chrome" => TraceFormat::Chrome,
            "jsonl" => TraceFormat::Jsonl,
            "perfetto" => TraceFormat::Perfetto,
            other => {
                return Err(format!(
                    "unknown trace format `{other}` in `{s}` (chrome|jsonl|perfetto)"
                ))
            }
        };
        Ok(TraceSpec {
            format,
            stream,
            path: PathBuf::from(path),
        })
    }

    /// Open the sink this spec describes. Non-stream Perfetto buffers the
    /// whole run for a globally time-sorted trace; everything else writes
    /// incrementally with O(1) buffered records.
    fn open(&self) -> std::io::Result<Box<dyn TraceSink + Send>> {
        let w = BufWriter::new(std::fs::File::create(&self.path)?);
        Ok(match (self.format, self.stream) {
            (TraceFormat::Chrome, _) => Box::new(ChromeSink::new(w)),
            (TraceFormat::Jsonl, _) => Box::new(JsonlSink::new(w)),
            (TraceFormat::Perfetto, false) => Box::new(PerfettoSink::new(w)),
            (TraceFormat::Perfetto, true) => Box::new(PerfettoStreamSink::new(w)),
        })
    }

    fn report_line(&self, records: u64) -> String {
        match self.format {
            TraceFormat::Chrome => format!("[trace: {} ({records} records)]", self.path.display()),
            TraceFormat::Jsonl => format!("[trace-jsonl: {}]", self.path.display()),
            TraceFormat::Perfetto => format!("[trace-perfetto: {}]", self.path.display()),
        }
    }
}

/// Parse every trace flag out of an argument list (the testable core of
/// [`TraceOpts::from_arg_slice`]). Accepts the unified
/// `--trace <spec>` flag plus the deprecated aliases `--trace-out`
/// (chrome), `--trace-jsonl`, `--trace-perfetto`, and
/// `--trace-stream <format>=<path>`; aliases emit a deprecation warning
/// on stderr. Unknown arguments are ignored (left for the binary's own
/// parser); a malformed spec or a flag missing its value panics with a
/// usage message.
pub fn parse_trace_specs(args: &[String]) -> Vec<TraceSpec> {
    let mut specs = Vec::new();
    let mut it = args.iter();
    let legacy = |flag: &str, hint: &str, path: &str| {
        eprintln!("[trace] warning: `{flag} <path>` is deprecated; use `--trace {hint}=<path>`");
        PathBuf::from(path)
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--trace" => {
                let val = it
                    .next()
                    .expect("--trace requires <chrome|jsonl|perfetto>[:stream]=<path>");
                specs.push(TraceSpec::parse(val).unwrap_or_else(|e| panic!("{e}")));
            }
            "--trace-stream" => {
                let val = it
                    .next()
                    .expect("--trace-stream requires <chrome|jsonl|perfetto>=<path>");
                let mut spec = TraceSpec::parse(val).unwrap_or_else(|e| panic!("{e}"));
                spec.stream = true;
                specs.push(spec);
            }
            "--trace-out" => {
                let path = legacy(
                    "--trace-out",
                    "chrome",
                    it.next().expect("--trace-out requires a path"),
                );
                specs.push(TraceSpec {
                    format: TraceFormat::Chrome,
                    stream: false,
                    path,
                });
            }
            "--trace-jsonl" => {
                let path = legacy(
                    "--trace-jsonl",
                    "jsonl",
                    it.next().expect("--trace-jsonl requires a path"),
                );
                specs.push(TraceSpec {
                    format: TraceFormat::Jsonl,
                    stream: false,
                    path,
                });
            }
            "--trace-perfetto" => {
                let path = legacy(
                    "--trace-perfetto",
                    "perfetto",
                    it.next().expect("--trace-perfetto requires a path"),
                );
                specs.push(TraceSpec {
                    format: TraceFormat::Perfetto,
                    stream: false,
                    path,
                });
            }
            _ => {}
        }
    }
    specs
}

/// What the background streamer hands back at shutdown.
struct StreamResult {
    records: u64,
    dropped: u64,
    /// High-water mark of undecoded bytes plus reorder-pending records
    /// held by the tail cursor — bounded by ring capacity, not run
    /// length (reported so long runs can see the bound holding).
    peak_buffered_bytes: usize,
    peak_pending_records: usize,
    registry: MetricsRegistry,
}

/// Handle to the live-tailing thread: one draining tail consumer feeding
/// every requested sink incrementally.
struct Streamer {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<StreamResult>,
}

/// The streamer body: poll the recorder's ring buffers, push each merged
/// record into every sink (and the metrics registry), repeat until told
/// to stop, then take the final tail — including records stuck behind a
/// cross-shard gap — and close the sinks. Buffered memory is bounded by
/// the ring capacity plus each sink's own state, independent of run
/// length; overflow between polls surfaces as a synthesized
/// `telemetry.dropped_events` count, never a decode error.
fn stream_loop(
    recorder: Recorder,
    stop: Arc<AtomicBool>,
    mut sinks: Vec<Box<dyn TraceSink + Send>>,
) -> StreamResult {
    let mut cursor = recorder.cursor();
    let mut registry = MetricsRegistry::new();
    let mut records = 0u64;
    let mut dropped = 0u64;
    let mut peak_buffered_bytes = 0usize;
    let mut peak_pending_records = 0usize;
    for sink in &mut sinks {
        sink.begin().expect("trace sink begin");
    }
    loop {
        let done = stop.load(Ordering::Acquire);
        let batch = if done {
            recorder.finish_tail(&mut cursor)
        } else {
            recorder.drain_since(&mut cursor)
        };
        dropped += batch.dropped_delta;
        records += batch.records.len() as u64;
        peak_buffered_bytes = peak_buffered_bytes.max(cursor.buffered_bytes());
        peak_pending_records = peak_pending_records.max(cursor.pending_len());
        for record in &batch.records {
            registry.observe_record(record);
            for sink in &mut sinks {
                sink.record(record).expect("trace sink write");
            }
        }
        if done {
            if let Some(record) = recorder.synthesize_dropped(dropped) {
                registry.observe_record(&record);
                records += 1;
                for sink in &mut sinks {
                    sink.record(&record).expect("trace sink write");
                }
            }
            for sink in &mut sinks {
                sink.finish().expect("trace sink finish");
            }
            return StreamResult {
                records,
                dropped,
                peak_buffered_bytes,
                peak_pending_records,
                registry,
            };
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
}

/// Tracing options shared by every regenerator binary.
///
/// Parse with [`TraceOpts::from_args`] at the top of `main`; any
/// `--trace <chrome|jsonl|perfetto>[:stream]=<path>` flag (repeatable;
/// see [`parse_trace_specs`] for the deprecated per-format aliases)
/// installs the process-wide recorder — which every
/// `MasterConfig::new()`, cache, and the parallel engine then report
/// into — and [`TraceOpts::finish`] closes the trace files and prints a
/// metrics summary once the figures are done.
///
/// Without `:stream`, records accumulate in the recorder's ring buffers
/// and are written in one pass at [`TraceOpts::finish`]. With at least
/// one `:stream` spec, a background thread tails the ring buffers while
/// the run is live and feeds **all** requested sinks incrementally, so
/// buffered-record memory stays bounded regardless of run length (the
/// chrome and jsonl formats produce byte-identical files either way).
pub struct TraceOpts {
    specs: Vec<TraceSpec>,
    recorder: Recorder,
    streamer: Option<Streamer>,
}

impl TraceOpts {
    /// Parse trace flags from the process argv. Unknown arguments are left
    /// for the binary's own parsing; a trace flag missing its value panics
    /// with a usage message.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        Self::from_arg_slice(&args)
    }

    /// [`TraceOpts::from_args`] over an explicit argument list (testable).
    pub fn from_arg_slice(args: &[String]) -> Self {
        let specs = parse_trace_specs(args);
        let recorder = if specs.is_empty() {
            Recorder::disabled()
        } else {
            lfm_core::telemetry::install_global()
        };
        Self::build(specs, recorder)
    }

    /// [`TraceOpts::from_arg_slice`] over an explicit recorder instead of
    /// the process-wide one — for tests and benchmarks that must not
    /// share (or drain) the global stream.
    pub fn with_recorder(args: &[String], recorder: Recorder) -> Self {
        Self::build(parse_trace_specs(args), recorder)
    }

    fn build(specs: Vec<TraceSpec>, recorder: Recorder) -> Self {
        let streamer = if recorder.is_enabled() && specs.iter().any(|s| s.stream) {
            let sinks: Vec<Box<dyn TraceSink + Send>> = specs
                .iter()
                .map(|s| {
                    s.open()
                        .unwrap_or_else(|e| panic!("open trace sink {}: {e}", s.path.display()))
                })
                .collect();
            let stop = Arc::new(AtomicBool::new(false));
            let handle = {
                let recorder = recorder.clone();
                let stop = Arc::clone(&stop);
                std::thread::Builder::new()
                    .name("trace-stream".into())
                    .spawn(move || stream_loop(recorder, stop, sinks))
                    .expect("spawn trace streamer")
            };
            Some(Streamer { stop, handle })
        } else {
            None
        };
        TraceOpts {
            specs,
            recorder,
            streamer,
        }
    }

    /// Whether any trace output was requested.
    pub fn enabled(&self) -> bool {
        self.recorder.is_enabled() && !self.specs.is_empty()
    }

    /// The parsed trace specs, in flag order.
    pub fn specs(&self) -> &[TraceSpec] {
        &self.specs
    }

    /// The recorder this trace session drains — hand it to subsystems
    /// (e.g. [`ServingConfig::with_telemetry`]) that default to a
    /// disabled recorder rather than the process-wide one. Disabled when
    /// no trace flag was given, so it is always safe to pass along.
    ///
    /// [`ServingConfig::with_telemetry`]: lfm_core::serving::gateway::ServingConfig::with_telemetry
    pub fn recorder(&self) -> Recorder {
        self.recorder.clone()
    }

    /// Close out tracing: stop the live streamer (if any) or drain the
    /// recorder and write each requested file, then print the aggregated
    /// metrics as one JSON line. No-op without trace flags.
    pub fn finish(self) {
        if !self.enabled() {
            return;
        }
        if let Some(streamer) = self.streamer {
            streamer.stop.store(true, Ordering::Release);
            let result = streamer.handle.join().expect("trace streamer panicked");
            for spec in &self.specs {
                println!("{}", spec.report_line(result.records));
            }
            if result.dropped > 0 {
                println!(
                    "[trace-stream] {} events dropped on ring overflow",
                    result.dropped
                );
            }
            println!(
                "[trace-stream] peak buffer: {} bytes undecoded, {} records pending",
                result.peak_buffered_bytes, result.peak_pending_records
            );
            let mut registry = result.registry;
            println!("[metrics] {}", registry.to_json());
            return;
        }
        let records = self.recorder.take();
        for spec in &self.specs {
            match spec.format {
                TraceFormat::Chrome => {
                    export::write_chrome_trace(&spec.path, &records).expect("write chrome trace");
                }
                TraceFormat::Jsonl => {
                    export::write_jsonl(&spec.path, &records).expect("write jsonl trace");
                }
                TraceFormat::Perfetto => {
                    export::write_perfetto_trace(&spec.path, &records)
                        .expect("write perfetto trace");
                }
            }
            println!("{}", spec.report_line(records.len() as u64));
        }
        let mut metrics = MetricsRegistry::from_records(&records);
        println!("[metrics] {}", metrics.to_json());
    }
}

/// Parse `--shards <n>` out of an argument list without installing it
/// (testable core of [`shards_from_args`]).
pub fn parse_shards(args: &[String]) -> Option<u32> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--shards" {
            let n: u32 = it
                .next()
                .expect("--shards requires a count")
                .parse()
                .expect("--shards must be an integer");
            return Some(n.max(1));
        }
    }
    None
}

/// Parse `--shards <n>` from the process argv and install it as the
/// process-wide default shard count, so every `MasterConfig::new()` the
/// figure builds routes through the federated master
/// (see `lfm_workqueue::federation`). Returns the shard count (1 when the
/// flag is absent). Call once at the top of `main`, alongside
/// [`TraceOpts::from_args`].
pub fn shards_from_args() -> u32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n = parse_shards(&args).unwrap_or(1);
    lfm_core::workqueue::federation::set_default_shards(n);
    if n > 1 {
        println!("[federation: {n} foreman shards]");
    }
    n
}

/// Where regenerators drop machine-readable outputs.
pub fn experiments_dir() -> PathBuf {
    let dir = PathBuf::from("target/experiments");
    std::fs::create_dir_all(&dir).expect("create target/experiments");
    dir
}

/// Write a CSV file under `target/experiments/`, returning its path.
pub fn write_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) -> PathBuf {
    let path = experiments_dir().join(format!("{name}.csv"));
    let mut f = std::fs::File::create(&path).expect("create csv");
    let quote = |cell: &str| -> String {
        if cell.contains(',') || cell.contains('"') {
            format!("\"{}\"", cell.replace('"', "\"\""))
        } else {
            cell.to_string()
        }
    };
    writeln!(f, "{}", headers.join(",")).unwrap();
    for row in rows {
        let line: Vec<String> = row.iter().map(|c| quote(c)).collect();
        writeln!(f, "{}", line.join(",")).unwrap();
    }
    path
}

/// Dump a sweep-point cloud as long-format CSV (x, strategy, makespan_s,
/// retry_fraction, core_efficiency).
pub fn save_sweep_csv(name: &str, points: &[SweepPoint]) -> PathBuf {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.x.to_string(),
                p.strategy.clone(),
                format!("{:.3}", p.makespan_secs),
                format!("{:.5}", p.retry_fraction),
                format!("{:.5}", p.core_efficiency),
            ]
        })
        .collect();
    write_csv(
        name,
        &[
            "x",
            "strategy",
            "makespan_s",
            "retry_fraction",
            "core_efficiency",
        ],
        &rows,
    )
}

/// Pivot a sweep-point cloud into a table: one row per x value, one column
/// per strategy (in first-appearance order).
pub fn pivot_sweep(points: &[SweepPoint], x_label: &str) -> String {
    let mut strategies: Vec<String> = Vec::new();
    for p in points {
        if !strategies.contains(&p.strategy) {
            strategies.push(p.strategy.clone());
        }
    }
    let mut xs: Vec<u64> = points.iter().map(|p| p.x).collect();
    xs.sort_unstable();
    xs.dedup();

    let mut headers: Vec<&str> = vec![x_label];
    let owned: Vec<String> = strategies.clone();
    for s in &owned {
        headers.push(s.as_str());
    }
    let rows: Vec<Vec<String>> = xs
        .iter()
        .map(|&x| {
            let mut row = vec![x.to_string()];
            for s in &strategies {
                let cell = points
                    .iter()
                    .find(|p| p.x == x && &p.strategy == s)
                    .map(|p| fmt_secs(p.makespan_secs))
                    .unwrap_or_else(|| "-".to_string());
                row.push(cell);
            }
            row
        })
        .collect();
    render_table(&headers, &rows)
}

/// Companion retry table for a sweep (the <1%-retries evidence).
pub fn retry_summary(points: &[SweepPoint]) -> String {
    let mut strategies: Vec<String> = Vec::new();
    for p in points {
        if !strategies.contains(&p.strategy) {
            strategies.push(p.strategy.clone());
        }
    }
    let rows: Vec<Vec<String>> = strategies
        .iter()
        .map(|s| {
            let mine: Vec<&SweepPoint> = points.iter().filter(|p| &p.strategy == s).collect();
            let max_retry = mine.iter().map(|p| p.retry_fraction).fold(0.0f64, f64::max);
            let mean_eff =
                mine.iter().map(|p| p.core_efficiency).sum::<f64>() / mine.len().max(1) as f64;
            vec![
                s.clone(),
                format!("{:.2}%", max_retry * 100.0),
                format!("{:.1}%", mean_eff * 100.0),
            ]
        })
        .collect();
    render_table(&["strategy", "max retries", "mean core efficiency"], &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(x: u64, s: &str, m: f64) -> SweepPoint {
        SweepPoint {
            x,
            strategy: s.into(),
            makespan_secs: m,
            retry_fraction: 0.004,
            core_efficiency: 0.8,
        }
    }

    #[test]
    fn pivot_shape() {
        let points = vec![
            pt(10, "Oracle", 100.0),
            pt(10, "Auto", 110.0),
            pt(20, "Oracle", 180.0),
        ];
        let t = pivot_sweep(&points, "tasks");
        assert!(t.contains("tasks"));
        assert!(t.contains("Oracle"));
        assert!(t.contains("Auto"));
        // Missing cell renders as dash.
        assert!(t.contains('-'));
    }

    #[test]
    fn csv_writer_quotes_and_persists() {
        let rows = vec![vec!["a,b".to_string(), "pla\"in".to_string()]];
        let path = write_csv("test_csv_writer", &["c1", "c2"], &rows);
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.starts_with("c1,c2\n"));
        assert!(body.contains("\"a,b\""));
        assert!(body.contains("\"pla\"\"in\""));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn sweep_csv_long_format() {
        let points = vec![pt(10, "Oracle", 100.0)];
        let path = save_sweep_csv("test_sweep_csv", &points);
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("x,strategy,makespan_s"));
        assert!(body.contains("10,Oracle,100.000"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn parse_shards_reads_flag_and_clamps() {
        assert_eq!(parse_shards(&[]), None);
        let args: Vec<String> = ["--seed", "7", "--shards", "4"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(parse_shards(&args), Some(4));
        let args: Vec<String> = ["--shards", "0"].iter().map(|s| s.to_string()).collect();
        assert_eq!(parse_shards(&args), Some(1), "clamped to at least 1");
    }

    #[test]
    fn trace_opts_absent_flags_stay_disabled() {
        let opts = TraceOpts::from_arg_slice(&["--seed".to_string(), "7".to_string()]);
        assert!(!opts.enabled());
        opts.finish(); // no-op, must not write anything or panic
    }

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn trace_spec_parser_matrix() {
        use TraceFormat::*;
        let ok = [
            ("chrome=/tmp/a.json", Chrome, false, "/tmp/a.json"),
            ("jsonl=/tmp/a.jsonl", Jsonl, false, "/tmp/a.jsonl"),
            ("perfetto=/tmp/a.pftrace", Perfetto, false, "/tmp/a.pftrace"),
            ("chrome:stream=/tmp/s.json", Chrome, true, "/tmp/s.json"),
            ("jsonl:stream=rel/path.jsonl", Jsonl, true, "rel/path.jsonl"),
            (
                "perfetto:stream=/tmp/s.pftrace",
                Perfetto,
                true,
                "/tmp/s.pftrace",
            ),
            // Only the first `=` splits: paths may contain `=`.
            ("chrome=/tmp/run=7.json", Chrome, false, "/tmp/run=7.json"),
        ];
        for (input, format, stream, path) in ok {
            let spec = TraceSpec::parse(input).unwrap_or_else(|e| panic!("{input}: {e}"));
            assert_eq!(spec.format, format, "{input}");
            assert_eq!(spec.stream, stream, "{input}");
            assert_eq!(spec.path, PathBuf::from(path), "{input}");
        }
        for bad in [
            "chrome",                  // no path
            "chrome=",                 // empty path
            "=/tmp/x.json",            // empty format
            "svg=/tmp/x.svg",          // unknown format
            "chrome:live=/tmp/x.json", // unknown mode
            "chrome:stream",           // stream but no path
        ] {
            assert!(TraceSpec::parse(bad).is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn legacy_trace_flags_alias_to_unified_specs() {
        let specs = parse_trace_specs(&strings(&[
            "--seed",
            "7",
            "--trace-out",
            "/tmp/a.json",
            "--trace-jsonl",
            "/tmp/b.jsonl",
            "--trace-perfetto",
            "/tmp/c.pftrace",
            "--trace-stream",
            "chrome=/tmp/d.json",
            "--trace",
            "perfetto:stream=/tmp/e.pftrace",
        ]));
        use TraceFormat::*;
        let expect = [
            (Chrome, false, "/tmp/a.json"),
            (Jsonl, false, "/tmp/b.jsonl"),
            (Perfetto, false, "/tmp/c.pftrace"),
            (Chrome, true, "/tmp/d.json"),
            (Perfetto, true, "/tmp/e.pftrace"),
        ];
        assert_eq!(specs.len(), expect.len());
        for (spec, (format, stream, path)) in specs.iter().zip(expect) {
            assert_eq!((spec.format, spec.stream), (format, stream));
            assert_eq!(spec.path, PathBuf::from(path));
        }
    }

    #[test]
    fn streamed_chrome_trace_matches_buffered_output() {
        use lfm_core::simcluster::time::SimTime;
        let emit = |rec: &Recorder| {
            for i in 0..500u64 {
                rec.counter("bench.stream_counter", 1 + i % 3);
                let t = i as f64 * 0.01;
                rec.span("work", "bench")
                    .at(SimTime::from_secs(t), SimTime::from_secs(t + 0.005))
                    .task(i)
                    .emit();
            }
        };
        // Reference: same emission order, post-hoc slice export.
        let reference = Recorder::enabled();
        emit(&reference);
        let expect = export::chrome_trace(&reference.take());

        let path = std::env::temp_dir().join("lfm_bench_stream_chrome.json");
        let rec = Recorder::enabled();
        let opts = TraceOpts::with_recorder(
            &strings(&["--trace", &format!("chrome:stream={}", path.display())]),
            rec.clone(),
        );
        assert!(opts.enabled());
        emit(&rec);
        opts.finish();
        let streamed = std::fs::read_to_string(&path).unwrap();
        assert_eq!(streamed, expect, "live tail must match post-hoc export");
        // The streamer drained everything; nothing is left to take.
        assert!(rec.take().is_empty());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn stream_mode_feeds_buffered_and_streaming_sinks_together() {
        use lfm_core::simcluster::time::SimTime;
        let chrome = std::env::temp_dir().join("lfm_bench_mixed_chrome.json");
        let pftrace = std::env::temp_dir().join("lfm_bench_mixed.pftrace");
        let rec = Recorder::enabled();
        let opts = TraceOpts::with_recorder(
            &strings(&[
                "--trace",
                &format!("chrome={}", chrome.display()),
                "--trace",
                &format!("perfetto:stream={}", pftrace.display()),
            ]),
            rec.clone(),
        );
        for i in 0..50u64 {
            let t = i as f64 * 0.1;
            rec.span("step", "bench")
                .at(SimTime::from_secs(t), SimTime::from_secs(t + 0.05))
                .emit();
            rec.gauge("bench.depth", (i % 7) as f64, SimTime::from_secs(t));
        }
        opts.finish();
        let body = std::fs::read_to_string(&chrome).unwrap();
        lfm_core::telemetry::export::validate_json(&body).unwrap();
        assert!(body.contains("bench.depth"));
        let trace = std::fs::read(&pftrace).unwrap();
        lfm_core::telemetry::export::validate_trace(&trace).unwrap();
        std::fs::remove_file(chrome).ok();
        std::fs::remove_file(pftrace).ok();
    }

    #[test]
    fn trace_opts_install_write_and_validate() {
        let path = std::env::temp_dir().join("lfm_bench_trace_opts_test.json");
        let pftrace = std::env::temp_dir().join("lfm_bench_trace_opts_test.pftrace");
        let args = vec![
            "--trace-out".to_string(),
            path.display().to_string(),
            "--trace-perfetto".to_string(),
            pftrace.display().to_string(),
        ];
        let opts = TraceOpts::from_arg_slice(&args);
        assert!(opts.enabled());
        lfm_core::telemetry::global().counter("bench.test_counter", 3);
        opts.finish();
        let body = std::fs::read_to_string(&path).unwrap();
        lfm_core::telemetry::export::validate_json(&body).unwrap();
        assert!(body.contains("traceEvents"));
        assert!(body.contains("bench.test_counter"));
        let trace = std::fs::read(&pftrace).unwrap();
        lfm_core::telemetry::export::validate_trace(&trace).unwrap();
        std::fs::remove_file(path).ok();
        std::fs::remove_file(pftrace).ok();
    }

    #[test]
    fn retry_table_has_all_strategies() {
        let points = vec![pt(1, "Oracle", 1.0), pt(1, "Auto", 1.0)];
        let t = retry_summary(&points);
        assert!(t.contains("0.40%"));
        assert!(t.contains("80.0%"));
    }
}
