//! Telemetry record-encode throughput: the binary wire path against the
//! heap reference it replaced, at two batch sizes, plus the streaming
//! decode cost of draining the binary buffers back into `Record`s.
//!
//! The acceptance bar (pinned numerically by `bench_telemetry`, see
//! `BENCH_telemetry.json`) is ≥5× encode throughput over the heap path:
//! an emission is a shard-mutex lock, a seq `fetch_add`, and a few dozen
//! varint bytes — no `String`s, no per-record `Vec`s.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lfm_core::telemetry::bench_api::{emit_mixed, emit_mixed_heap, HeapRecorder};
use lfm_core::telemetry::Recorder;

fn bench_encode(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry_encode");
    for &n in &[10_000u64, 100_000] {
        g.throughput(Throughput::Elements(n));
        g.bench_with_input(BenchmarkId::new("binary", n), &n, |b, &n| {
            let recorder = Recorder::enabled();
            b.iter(|| {
                emit_mixed(&recorder, n);
                // Reset buffers without leaving the measurement loop
                // unbounded; decode cost is measured separately below.
                recorder.take().len()
            })
        });
        g.bench_with_input(BenchmarkId::new("heap", n), &n, |b, &n| {
            let recorder = HeapRecorder::new();
            b.iter(|| {
                emit_mixed_heap(&recorder, n);
                recorder.take().len()
            })
        });
    }
    g.finish();
}

fn bench_encode_only(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry_encode_only");
    let n = 100_000u64;
    g.throughput(Throughput::Elements(n));
    g.bench_function("binary", |b| {
        b.iter(|| {
            let recorder = Recorder::enabled();
            emit_mixed(&recorder, n);
            recorder
        })
    });
    g.bench_function("heap", |b| {
        b.iter(|| {
            let recorder = HeapRecorder::new();
            emit_mixed_heap(&recorder, n);
            recorder
        })
    });
    g.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry_decode");
    let n = 100_000u64;
    let recorder = Recorder::enabled();
    emit_mixed(&recorder, n);
    g.throughput(Throughput::Elements(n));
    g.bench_function("merge_decode", |b| {
        b.iter(|| {
            let records = recorder.snapshot();
            assert_eq!(records.len() as u64, n);
            records.len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_encode, bench_encode_only, bench_decode);
criterion_main!(benches);
