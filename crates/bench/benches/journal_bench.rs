//! Journal hot-path microbenches: `Record` encode/decode throughput and
//! `MasterImage` snapshot round-trips.
//!
//! Every simulated event the durable master processes appends one or more
//! journal records, and every recovery replays them; with the federation
//! layer each shard keeps its own journal, so the encode path runs on N
//! event loops at once. These benches pin the per-record and per-snapshot
//! cost through `lfm_workqueue::journal::bench_api` (a representative
//! rotating mix of Enqueue/Placed/Result/Finished/Freed/Observe records,
//! and images with pending queues, placements, and allocator samples).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lfm_core::workqueue::journal::bench_api;

fn bench_records(c: &mut Criterion) {
    let mut g = c.benchmark_group("journal_records");
    for &n in &[1_000u64, 100_000] {
        g.throughput(Throughput::Elements(n));
        g.bench_with_input(BenchmarkId::new("encode", n), &n, |b, &n| {
            b.iter(|| bench_api::encode_records(n))
        });
        let buf = bench_api::encode_records(n);
        g.throughput(Throughput::Bytes(buf.len() as u64));
        g.bench_with_input(BenchmarkId::new("decode", n), &buf, |b, buf| {
            b.iter(|| {
                let decoded = bench_api::decode_records(buf);
                assert_eq!(decoded as u64, n);
                decoded
            })
        });
    }
    g.finish();
}

fn bench_snapshots(c: &mut Criterion) {
    let mut g = c.benchmark_group("journal_snapshot");
    for &tasks in &[1_000usize, 50_000] {
        g.throughput(Throughput::Elements(tasks as u64));
        g.bench_with_input(BenchmarkId::new("encode_image", tasks), &tasks, |b, &t| {
            b.iter(|| bench_api::encode_image(t))
        });
        let bytes = bench_api::encode_image(tasks);
        g.throughput(Throughput::Bytes(bytes.len() as u64));
        g.bench_with_input(BenchmarkId::new("roundtrip", tasks), &bytes, |b, bytes| {
            b.iter(|| assert!(bench_api::image_roundtrips(bytes)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_records, bench_snapshots);
criterion_main!(benches);
