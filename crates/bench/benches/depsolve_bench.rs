//! Microbenchmarks for dependency analysis and version resolution — the
//! "analyze" and solver share of Table II's create column.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lfm_core::pyenv::analyze::analyze_source;
use lfm_core::pyenv::index::PackageIndex;
use lfm_core::pyenv::requirements::{Requirement, RequirementSet};
use lfm_core::pyenv::resolve::resolve;
use lfm_core::pyenv::source::{drug_featurize_source, hep_process_source};

fn bench_analyze(c: &mut Criterion) {
    let mut g = c.benchmark_group("analyze");
    for (name, src) in [
        ("hep", hep_process_source()),
        ("drug", drug_featurize_source()),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &src, |b, src| {
            b.iter(|| analyze_source(src).unwrap())
        });
    }
    g.finish();
}

fn bench_resolve(c: &mut Criterion) {
    let index = PackageIndex::builtin();
    let mut g = c.benchmark_group("resolve");
    for pkg in ["numpy", "tensorflow", "drug-screen-app"] {
        let reqs: RequirementSet = [Requirement::any(pkg)].into_iter().collect();
        g.bench_with_input(BenchmarkId::from_parameter(pkg), &reqs, |b, reqs| {
            b.iter(|| resolve(&index, reqs).unwrap())
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_analyze, bench_resolve
}
criterion_main!(benches);
