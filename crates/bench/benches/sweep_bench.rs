//! Serial vs. parallel sweep execution over a Figure-6-sized HEP grid.
//!
//! On a multi-core machine the `parallel` rows should approach
//! `serial / min(cores, 16)`; on one core they match, since `par_map`
//! degrades to the serial loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lfm_core::experiments::sweep::{point_jobs, run_job, run_jobs, standard_strategies, SweepJob};
use lfm_core::workloads::hep;

/// A 4-point × 4-strategy HEP grid, the acceptance-benchmark shape.
fn build_jobs() -> Vec<SweepJob> {
    let (workers, cores, seed) = (6u32, 8u32, 2021u64);
    let mut jobs = Vec::new();
    for &n in &[40u64, 50, 60, 70] {
        let w = hep::build(n, seed ^ n);
        let strategies = standard_strategies(&w);
        jobs.extend(point_jobs(
            n,
            &w,
            &strategies,
            &|s| hep::master_config(s, seed),
            workers,
            hep::worker_spec(cores),
        ));
    }
    jobs
}

fn sweep_bench(c: &mut Criterion) {
    let jobs = build_jobs();
    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);
    group.throughput(Throughput::Elements(jobs.len() as u64));
    group.bench_with_input(BenchmarkId::new("serial", "4x4"), &jobs, |b, jobs| {
        b.iter(|| {
            jobs.clone().into_iter().map(run_job).collect::<Vec<_>>()
        })
    });
    group.bench_with_input(BenchmarkId::new("parallel", "4x4"), &jobs, |b, jobs| {
        b.iter(|| run_jobs(jobs.clone()))
    });
    group.finish();
}

criterion_group!(benches, sweep_bench);
criterion_main!(benches);
