//! Serial vs. parallel sweep execution over a Figure-6-sized HEP grid.
//!
//! On a multi-core machine the `parallel` rows should approach
//! `serial / min(cores, 16)`; on one core they match, since `par_map`
//! degrades to the serial loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lfm_core::experiments::sweep::{point_jobs, run_job, run_jobs, standard_strategies, SweepJob};
use lfm_core::workloads::hep;

/// A 4-point × 4-strategy HEP grid, the acceptance-benchmark shape.
fn build_jobs() -> Vec<SweepJob> {
    let (workers, cores, seed) = (6u32, 8u32, 2021u64);
    let mut jobs = Vec::new();
    for &n in &[40u64, 50, 60, 70] {
        let w = hep::build(n, seed ^ n);
        let strategies = standard_strategies(&w);
        jobs.extend(point_jobs(
            n,
            &w,
            &strategies,
            &|s| hep::master_config(s, seed),
            workers,
            hep::worker_spec(cores),
        ));
    }
    jobs
}

fn sweep_bench(c: &mut Criterion) {
    let jobs = build_jobs();
    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);
    group.throughput(Throughput::Elements(jobs.len() as u64));
    group.bench_with_input(BenchmarkId::new("serial", "4x4"), &jobs, |b, jobs| {
        b.iter(|| jobs.clone().into_iter().map(run_job).collect::<Vec<_>>())
    });
    group.bench_with_input(BenchmarkId::new("parallel", "4x4"), &jobs, |b, jobs| {
        b.iter(|| run_jobs(jobs.clone()))
    });
    group.finish();
}

/// Cost of a live recorder on one simulated workload: `enabled` should sit
/// within a few percent of `disabled` — recording is a seq fetch-add plus a
/// shard push per event, nothing on the sim's hot paths.
fn telemetry_overhead_bench(c: &mut Criterion) {
    use lfm_core::telemetry::Recorder;
    use lfm_core::workqueue::master::run_workload;
    let job = build_jobs().remove(0);
    let mut group = c.benchmark_group("telemetry_overhead");
    group.sample_size(10);
    for (label, recorder) in [
        ("disabled", Recorder::disabled()),
        ("enabled", Recorder::enabled()),
        // Tiny shards exercise the binary path's overflow check + drop
        // counting on most emissions: the cap must not add measurable cost.
        ("enabled_bounded", Recorder::enabled_with_capacity(64)),
    ] {
        let config = job.config.clone().with_telemetry(recorder.clone());
        group.bench_function(label, |b| {
            b.iter(|| {
                let report =
                    run_workload(&config, job.tasks.as_ref().clone(), job.workers, job.spec);
                // Drain so buffers don't grow across iterations.
                let _ = recorder.take();
                report.makespan_secs
            })
        });
    }
    group.finish();
}

criterion_group!(benches, sweep_bench, telemetry_overhead_bench);
criterion_main!(benches);
