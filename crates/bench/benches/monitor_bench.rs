//! Monitor-path microbenchmarks: the simulated LFM decision and the real
//! /proc sampling path (the "lightweight" claim quantified).

use criterion::{criterion_group, criterion_main, Criterion};
use lfm_core::monitor::limits::ResourceLimits;
use lfm_core::monitor::procfs;
use lfm_core::monitor::sim::{SimMonitor, SimTaskProfile};

fn bench_sim_monitor(c: &mut Criterion) {
    let m = SimMonitor::default();
    let profile = SimTaskProfile::new(60.0, 1.0, 110, 1024);
    let limits = ResourceLimits::unlimited()
        .with_memory_mb(84)
        .with_disk_mb(880);
    c.bench_function("sim_monitor_run", |b| b.iter(|| m.run(&profile, &limits)));
}

fn bench_procfs_sample(c: &mut Criterion) {
    let me = std::process::id();
    c.bench_function("procfs_self_stat", |b| b.iter(|| procfs::read_stat(me)));
    c.bench_function("procfs_self_tree", |b| b.iter(|| procfs::process_tree(me)));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_sim_monitor, bench_procfs_sample
}
criterion_main!(benches);
