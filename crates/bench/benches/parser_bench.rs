//! Microbenchmarks for the mini-Python front-end: tokenization and parsing
//! throughput on Pynamic-style synthetic modules.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lfm_core::pyenv::lexer::Lexer;
use lfm_core::pyenv::parser::parse_module;
use lfm_core::pyenv::source::synthetic_module;

fn bench_lexer(c: &mut Criterion) {
    let mut g = c.benchmark_group("lexer");
    for (imports, functions) in [(8, 4), (32, 16), (128, 64)] {
        let src = synthetic_module(imports, functions, 6);
        g.throughput(Throughput::Bytes(src.len() as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{imports}i-{functions}f")),
            &src,
            |b, src| b.iter(|| Lexer::tokenize(src).unwrap()),
        );
    }
    g.finish();
}

fn bench_parser(c: &mut Criterion) {
    let mut g = c.benchmark_group("parser");
    for (imports, functions) in [(8, 4), (32, 16), (128, 64)] {
        let src = synthetic_module(imports, functions, 6);
        g.throughput(Throughput::Bytes(src.len() as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{imports}i-{functions}f")),
            &src,
            |b, src| b.iter(|| parse_module(src).unwrap()),
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_lexer, bench_parser
}
criterion_main!(benches);
