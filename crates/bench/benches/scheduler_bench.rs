//! End-to-end scheduler throughput: discrete-event tasks scheduled per
//! second under each strategy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lfm_core::workloads::hep;
use lfm_core::workqueue::allocate::Strategy;
use lfm_core::workqueue::master::{run_workload, MasterConfig};

fn bench_strategies(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduler");
    g.sample_size(10);
    let n = 200u64;
    let w = hep::build(n, 7);
    for strategy in [
        w.oracle_strategy(),
        Strategy::Auto(Default::default()),
        w.guess_strategy(),
        Strategy::Unmanaged,
    ] {
        g.throughput(Throughput::Elements(n));
        g.bench_with_input(
            BenchmarkId::from_parameter(strategy.name()),
            &strategy,
            |b, s| {
                b.iter(|| {
                    run_workload(
                        &MasterConfig::new(s.clone()).with_seed(7),
                        w.tasks.clone(),
                        6,
                        hep::worker_spec(8),
                    )
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
