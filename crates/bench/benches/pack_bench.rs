//! Environment pack/unpack/serialize microbenchmarks.

use criterion::{criterion_group, criterion_main, Criterion};
use lfm_core::pyenv::environment::Environment;
use lfm_core::pyenv::index::PackageIndex;
use lfm_core::pyenv::pack::PackedEnv;
use lfm_core::pyenv::pickle::PyValue;
use lfm_core::pyenv::requirements::{Requirement, RequirementSet};
use lfm_core::pyenv::resolve::resolve;

fn tf_env() -> Environment {
    let index = PackageIndex::builtin();
    let reqs: RequirementSet = [Requirement::any("tensorflow")].into_iter().collect();
    let r = resolve(&index, &reqs).unwrap();
    Environment::from_resolution("tf", "/envs/tf", &index, &r).unwrap()
}

fn bench_pack(c: &mut Criterion) {
    let env = tf_env();
    c.bench_function("pack_env", |b| b.iter(|| PackedEnv::pack(&env)));
    let packed = PackedEnv::pack(&env);
    c.bench_function("unpack_env", |b| {
        b.iter(|| packed.unpack("/scratch/envs/tf").unwrap())
    });
    c.bench_function("archive_roundtrip", |b| {
        b.iter(|| PackedEnv::from_bytes(&packed.to_bytes()).unwrap())
    });
}

fn bench_pickle(c: &mut Criterion) {
    let value = PyValue::Dict(
        (0..100)
            .map(|i| {
                (
                    PyValue::Str(format!("key-{i}")),
                    PyValue::List(vec![PyValue::Float(i as f64); 20]),
                )
            })
            .collect(),
    );
    c.bench_function("pickle_roundtrip", |b| {
        b.iter(|| PyValue::loads(&value.dumps()).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_pack, bench_pickle
}
criterion_main!(benches);
