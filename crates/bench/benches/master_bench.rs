//! Master dispatch throughput: indexed scheduler vs the reference greedy
//! matcher, across queue depth × cluster width × input cacheability.
//!
//! The reference matcher rescans every pending task against every worker on
//! every dispatch, so its cost grows superlinearly with tasks × workers; it
//! is therefore benchmarked only on the 1k-task configs here. The full
//! 10k × 256 before/after comparison (where a single reference run takes
//! minutes) is produced by `scripts/bench_sched.sh` → `BENCH_sched.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lfm_bench::sched_bench::{bench_config, bench_tasks};
use lfm_core::simcluster::node::NodeSpec;
use lfm_core::workqueue::master::run_workload;
use lfm_core::workqueue::sched::SchedImpl;

fn bench_dispatch(c: &mut Criterion) {
    let spec = NodeSpec::new(16, 64 * 1024, 128 * 1024);
    let mut g = c.benchmark_group("master_dispatch");
    for &(n_tasks, workers) in &[(1_000u64, 32u32), (1_000, 256), (10_000, 32), (10_000, 256)] {
        for cacheable in [false, true] {
            let tasks = bench_tasks(n_tasks, cacheable);
            let cache_tag = if cacheable { "cached" } else { "nocache" };
            g.sample_size(if n_tasks >= 10_000 { 2 } else { 10 });
            g.throughput(Throughput::Elements(n_tasks));
            g.bench_with_input(
                BenchmarkId::from_parameter(format!("indexed/{n_tasks}x{workers}/{cache_tag}")),
                &tasks,
                |b, tasks| {
                    b.iter(|| {
                        run_workload(
                            &bench_config(SchedImpl::Indexed),
                            tasks.clone(),
                            workers,
                            spec,
                        )
                    })
                },
            );
            if n_tasks <= 1_000 {
                g.bench_with_input(
                    BenchmarkId::from_parameter(format!(
                        "reference/{n_tasks}x{workers}/{cache_tag}"
                    )),
                    &tasks,
                    |b, tasks| {
                        b.iter(|| {
                            run_workload(
                                &bench_config(SchedImpl::Reference),
                                tasks.clone(),
                                workers,
                                spec,
                            )
                        })
                    },
                );
            }
        }
    }
    g.finish();
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);
