//! The HEP columnar-analysis workload (§VI-C1, Figure 6).
//!
//! Coffea-style processing on ND-CRC: a preprocessing step fans out into a
//! variable number of analysis tasks over data chunks, then a postprocessing
//! step accumulates histograms. Paper parameters:
//!
//! * tasks run 40–70 s using at most 1 core, 110 MB memory, 1 GB disk;
//! * the largest input is the 240 MB Conda environment; all tasks share two
//!   common files totalling 1 MB; per-task data is 0.5 MB; output is 50 MB;
//! * Guess = 1 core / 1.5 GB / 2 GB; Auto converged to 84 MB / 880 MB;
//! * workers have 2/4/8 cores with 1 GB memory + 2 GB disk per core;
//! * tasks are I/O-heavy, so per-worker parallelism has limited benefit.

use crate::common::{sim_app, workflow_builder, Workload};
use lfm_monitor::sim::SimTaskProfile;
use lfm_simcluster::batch::BatchParams;
use lfm_simcluster::node::{NodeSpec, Resources};
use lfm_simcluster::rng::SimRng;
use lfm_simcluster::sharedfs::SharedFsParams;
use lfm_workqueue::allocate::Strategy;
use lfm_workqueue::files::FileRef;
use lfm_workqueue::master::MasterConfig;
use std::collections::BTreeMap;

/// Source for the analysis function (drives dependency analysis).
pub fn analysis_source() -> &'static str {
    lfm_pyenv::source::hep_process_source()
}

/// An ND-CRC worker with `cores` cores: 1 GB memory and 2 GB disk per core.
pub fn worker_spec(cores: u32) -> NodeSpec {
    NodeSpec::new(cores, 1024 * cores as u64, 2048 * cores as u64)
}

/// Build the HEP workload with `n_analysis` analysis tasks.
pub fn build(n_analysis: u64, seed: u64) -> Workload {
    let mut b = workflow_builder();
    let app_pre = sim_app(
        "hep_preprocess",
        "def hep_preprocess(dataset):\n    import coffea\n    import uproot\n    return dataset\n",
    );
    let app_proc = sim_app("hep_process", analysis_source());
    let app_post = sim_app(
        "hep_postprocess",
        "def hep_postprocess(hists):\n    import coffea\n    import matplotlib\n    return hists\n",
    );
    let mut rng = SimRng::seeded(seed);

    let common1 = FileRef::shared_data("hep-calib-a", 700 << 10);
    let common2 = FileRef::shared_data("hep-calib-b", 324 << 10);

    // Preprocessing: a quick metadata pass over the dataset.
    let pre = b
        .add_invocation(
            &app_pre,
            SimTaskProfile::new(rng.uniform(10.0, 15.0), 1.0, 96, 256),
            vec![common1.clone(), common2.clone()],
            1 << 20,
            vec![],
        )
        .expect("hep preprocess lowers");

    // Analysis fan-out.
    let mut analysis_ids = Vec::with_capacity(n_analysis as usize);
    for i in 0..n_analysis {
        let duration = rng.uniform(40.0, 70.0);
        // Peak memory clusters near 110 MB with small variation; disk near
        // 1 GB (the Auto label lands at ~84 MB / 880 MB because most tasks
        // sit below the extremes).
        let mem = rng.normal_trunc(84.0, 12.0, 40.0).min(110.0) as u64;
        let disk = rng.normal_trunc(880.0, 60.0, 500.0).min(1024.0) as u64;
        let id = b
            .add_invocation(
                &app_proc,
                SimTaskProfile::new(duration, 1.0, mem, disk),
                vec![
                    common1.clone(),
                    common2.clone(),
                    FileRef::data(format!("hep-chunk-{i}"), 512 << 10),
                ],
                50 << 20,
                vec![pre],
            )
            .expect("hep analysis lowers");
        analysis_ids.push(id);
    }

    // Postprocessing accumulates everything.
    b.add_invocation(
        &app_post,
        SimTaskProfile::new(rng.uniform(15.0, 25.0), 1.0, 220, 512),
        vec![],
        10 << 20,
        analysis_ids,
    )
    .expect("hep postprocess lowers");

    let mut oracle = BTreeMap::new();
    oracle.insert("hep_preprocess".to_string(), Resources::new(1, 96, 256));
    oracle.insert("hep_process".to_string(), Resources::new(1, 110, 1024));
    oracle.insert("hep_postprocess".to_string(), Resources::new(1, 220, 512));

    Workload {
        name: "HEP",
        tasks: b.build(),
        oracle,
        guess: Resources::new(1, 1536, 2048),
    }
}

/// Master configuration for the ND-CRC runs: campus batch system, campus
/// NFS, and I/O interference between co-resident tasks.
pub fn master_config(strategy: Strategy, seed: u64) -> MasterConfig {
    MasterConfig::new(strategy)
        .with_batch(BatchParams::campus_responsive())
        .with_fs(SharedFsParams::campus_nfs())
        .with_io_interference(0.08)
        .with_seed(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfm_workqueue::master::run_workload;

    #[test]
    fn workload_shape() {
        let w = build(20, 1);
        assert_eq!(w.tasks.len(), 22); // pre + 20 + post
                                       // Fan-out: every analysis task depends on preprocess.
        let analysis: Vec<_> = w
            .tasks
            .iter()
            .filter(|t| t.category == "hep_process")
            .collect();
        assert_eq!(analysis.len(), 20);
        assert!(analysis.iter().all(|t| t.deps.len() == 1));
        // Post depends on all analysis tasks.
        let post = w
            .tasks
            .iter()
            .find(|t| t.category == "hep_postprocess")
            .unwrap();
        assert_eq!(post.deps.len(), 20);
    }

    #[test]
    fn profiles_within_paper_ranges() {
        let w = build(50, 2);
        for t in w.tasks.iter().filter(|t| t.category == "hep_process") {
            assert!((40.0..70.0).contains(&t.profile.duration_secs));
            assert!(t.profile.peak_memory_mb <= 110);
            assert!(t.profile.peak_disk_mb <= 1024);
        }
    }

    #[test]
    fn env_archive_is_hep_sized() {
        let w = build(5, 3);
        let env = &w.tasks[1].inputs[0];
        // The paper's HEP env is a 240 MB file; ours lands in that regime.
        assert!(
            (50 << 20..500 << 20).contains(&env.size_bytes),
            "env bytes {}",
            env.size_bytes
        );
    }

    #[test]
    fn strategy_ordering_holds() {
        let w = build(32, 4);
        let spec = worker_spec(8);
        let oracle = run_workload(
            &master_config(w.oracle_strategy(), 4),
            w.tasks.clone(),
            4,
            spec,
        );
        let unmanaged = run_workload(
            &master_config(Strategy::Unmanaged, 4),
            w.tasks.clone(),
            4,
            spec,
        );
        assert!(
            unmanaged.makespan_secs > 2.0 * oracle.makespan_secs,
            "unmanaged {} vs oracle {}",
            unmanaged.makespan_secs,
            oracle.makespan_secs
        );
        assert_eq!(oracle.abandoned_tasks, 0);
    }
}
