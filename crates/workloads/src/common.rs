//! Shared workload scaffolding.

use lfm_dataflow::app::App;
use lfm_dataflow::lowering::WqWorkflowBuilder;
use lfm_pyenv::environment::user_environment_cached;
use lfm_pyenv::index::PackageIndex;
use lfm_pyenv::pickle::PyValue;
use lfm_simcluster::node::Resources;
use lfm_workqueue::allocate::Strategy;
use std::collections::BTreeMap;

/// A fully-described workload: tasks plus the strategy inputs the
/// evaluation compares.
pub struct Workload {
    /// Human name (figure caption).
    pub name: &'static str,
    /// The lowered task list.
    pub tasks: Vec<lfm_workqueue::task::TaskSpec>,
    /// Per-category true peaks for the Oracle strategy.
    pub oracle: BTreeMap<String, Resources>,
    /// The paper's Guess configuration for this application.
    pub guess: Resources,
}

impl Workload {
    pub fn oracle_strategy(&self) -> Strategy {
        Strategy::Oracle(self.oracle.clone())
    }

    pub fn guess_strategy(&self) -> Strategy {
        Strategy::Guess(self.guess)
    }
}

/// A builder primed with the builtin index and the kitchen-sink user env —
/// the starting state of every experiment. The env resolve is memoized
/// process-wide; only the first call pays the solver.
pub fn workflow_builder() -> WqWorkflowBuilder {
    let index = PackageIndex::builtin();
    let env = user_environment_cached(&index).expect("builtin user environment resolves");
    WqWorkflowBuilder::new(index, env)
}

/// A python app whose native implementation is a no-op (behaviour in the
/// simulator comes from the task profile, not the function body).
pub fn sim_app(name: &str, source: &str) -> App {
    App::python(name, source, |_| Ok(PyValue::None))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_app_compose() {
        let mut b = workflow_builder();
        let app = sim_app("t", "def t(x):\n    import numpy\n    return x\n");
        let f = b.prepare_environment(&app).unwrap();
        assert!(f.size_bytes > 0);
    }
}
