//! The GDC DNA-Seq genomic analysis pipeline (§VI-C3, Figure 8).
//!
//! Per genome: alignment → alignment co-cleaning → variant calling →
//! variant annotation (VEP) → mutation aggregation. Run on NSCC Aspire
//! (2×12-core, 96 GB nodes), one worker per node; Guess = 12 cores /
//! 40 GB / 5 GB.
//!
//! The defining behaviour: VEP's resource usage "depends on the number of
//! variants in the data" — heavy-tailed and effectively unpredictable, so
//! even the hand-configured Oracle is imperfect for it and Auto can win
//! (the paper observes exactly this).

use crate::common::{sim_app, workflow_builder, Workload};
use lfm_monitor::sim::SimTaskProfile;
use lfm_simcluster::batch::BatchParams;
use lfm_simcluster::node::{NodeSpec, Resources};
use lfm_simcluster::rng::SimRng;
use lfm_simcluster::sharedfs::SharedFsParams;
use lfm_workqueue::allocate::Strategy;
use lfm_workqueue::files::FileRef;
use lfm_workqueue::master::MasterConfig;
use std::collections::BTreeMap;

/// An NSCC Aspire node: 2×12 cores, 96 GB.
pub fn worker_spec() -> NodeSpec {
    NodeSpec::new(24, 96 * 1024, 200 * 1024)
}

/// Build the pipeline for `n_genomes` genomes.
pub fn build(n_genomes: u64, seed: u64) -> Workload {
    let mut b = workflow_builder();
    let mut rng = SimRng::seeded(seed);

    let align = sim_app(
        "gdc_align",
        "def gdc_align(fastq):\n    import subprocess\n    import pysam\n    return subprocess.run(['bwa', 'mem', fastq])\n",
    );
    let coclean = sim_app(
        "gdc_coclean",
        "def gdc_coclean(bam):\n    import subprocess\n    return subprocess.run(['gatk', 'BaseRecalibrator', bam])\n",
    );
    let call = sim_app(
        "gdc_varcall",
        "def gdc_varcall(bam):\n    import subprocess\n    import pysam\n    return subprocess.run(['gatk', 'Mutect2', bam])\n",
    );
    let vep = sim_app("gdc_vep", lfm_pyenv::source::genomic_vep_source());
    let aggregate = sim_app(
        "gdc_aggregate",
        "def gdc_aggregate(mafs):\n    import pandas\n    from Bio import SeqIO\n    return pandas.concat(mafs)\n",
    );

    let reference = FileRef::shared_data("grch38-reference", 3 << 30);
    let vep_cache = FileRef::shared_data("vep-cache", 14 << 30);

    let mut oracle = BTreeMap::new();
    oracle.insert(
        "gdc_align".to_string(),
        Resources::new(12, 28 * 1024, 4 * 1024),
    );
    oracle.insert(
        "gdc_coclean".to_string(),
        Resources::new(4, 12 * 1024, 3 * 1024),
    );
    oracle.insert(
        "gdc_varcall".to_string(),
        Resources::new(8, 20 * 1024, 4 * 1024),
    );
    // The Oracle's VEP setting is a *typical* peak; the heavy tail exceeds
    // it, which is precisely the artifact §VI-C3 describes.
    oracle.insert(
        "gdc_vep".to_string(),
        Resources::new(2, 10 * 1024, 2 * 1024),
    );
    oracle.insert(
        "gdc_aggregate".to_string(),
        Resources::new(1, 4 * 1024, 1024),
    );

    for g in 0..n_genomes {
        let fastq = FileRef::data(format!("genome-{g}.fastq"), 2 << 30);
        let t_align = b
            .add_invocation(
                &align,
                SimTaskProfile::new(
                    rng.normal_trunc(1100.0, 150.0, 600.0),
                    12.0,
                    rng.uniform(20_000.0, 28_000.0) as u64,
                    4 * 1024,
                ),
                vec![reference.clone(), fastq],
                1 << 30,
                vec![],
            )
            .expect("align lowers");
        let t_clean = b
            .add_invocation(
                &coclean,
                SimTaskProfile::new(
                    rng.normal_trunc(520.0, 60.0, 300.0),
                    4.0,
                    rng.uniform(8_000.0, 12_000.0) as u64,
                    3 * 1024,
                ),
                vec![reference.clone()],
                800 << 20,
                vec![t_align],
            )
            .expect("coclean lowers");
        let t_call = b
            .add_invocation(
                &call,
                SimTaskProfile::new(
                    rng.normal_trunc(850.0, 120.0, 400.0),
                    8.0,
                    rng.uniform(14_000.0, 20_000.0) as u64,
                    4 * 1024,
                ),
                vec![reference.clone()],
                200 << 20,
                vec![t_clean],
            )
            .expect("varcall lowers");
        // VEP: variant-count-driven. Memory is lognormal around ~7 GB with
        // a tail into tens of GB; duration scales with the same draw.
        let variants = rng.lognormal((60_000f64).ln(), 0.7);
        let vep_mem = ((variants / 60_000.0) * 7_000.0).clamp(2_000.0, 60_000.0);
        let vep_dur = ((variants / 60_000.0) * 380.0).clamp(120.0, 2_000.0);
        let t_vep = b
            .add_invocation(
                &vep,
                SimTaskProfile::new(vep_dur, 2.0, vep_mem as u64, 2 * 1024),
                vec![vep_cache.clone()],
                50 << 20,
                vec![t_call],
            )
            .expect("vep lowers");
        b.add_invocation(
            &aggregate,
            SimTaskProfile::new(rng.normal_trunc(110.0, 20.0, 60.0), 1.0, 3_800, 1024),
            vec![],
            20 << 20,
            vec![t_vep],
        )
        .expect("aggregate lowers");
    }

    Workload {
        name: "Genomic Analysis",
        tasks: b.build(),
        oracle,
        guess: Resources::new(12, 40 * 1024, 5 * 1024),
    }
}

/// NSCC master configuration.
pub fn master_config(strategy: Strategy, seed: u64) -> MasterConfig {
    MasterConfig::new(strategy)
        .with_batch(BatchParams::leadership_busy())
        .with_fs(SharedFsParams::lustre_leadership())
        .with_seed(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfm_workqueue::master::run_workload;

    #[test]
    fn pipeline_is_a_chain_per_genome() {
        let w = build(4, 1);
        assert_eq!(w.tasks.len(), 20); // 5 stages × 4 genomes
        for stage in [
            "gdc_align",
            "gdc_coclean",
            "gdc_varcall",
            "gdc_vep",
            "gdc_aggregate",
        ] {
            assert_eq!(
                w.tasks.iter().filter(|t| t.category == stage).count(),
                4,
                "{stage}"
            );
        }
        // Each non-align stage has exactly one dependency.
        for t in &w.tasks {
            let expect = usize::from(t.category != "gdc_align");
            assert_eq!(t.deps.len(), expect, "{}", t.category);
        }
    }

    #[test]
    fn vep_memory_is_heavy_tailed() {
        let w = build(200, 2);
        let mems: Vec<u64> = w
            .tasks
            .iter()
            .filter(|t| t.category == "gdc_vep")
            .map(|t| t.profile.peak_memory_mb)
            .collect();
        let max = *mems.iter().max().unwrap();
        let mut sorted = mems.clone();
        sorted.sort_unstable();
        let median = sorted[mems.len() / 2];
        assert!(
            max > 3 * median,
            "VEP tail should dwarf the median: max {max}, median {median}"
        );
        // Some runs exceed the Oracle's 10 GB setting.
        assert!(mems.iter().any(|&m| m > 10 * 1024));
    }

    #[test]
    fn oracle_suffers_vep_retries_auto_none_abandoned() {
        let w = build(12, 3);
        let cfg_o = MasterConfig::new(w.oracle_strategy()).with_seed(3);
        let o = run_workload(&cfg_o, w.tasks.clone(), 6, worker_spec());
        assert_eq!(o.abandoned_tasks, 0);
        // The Oracle's imperfect VEP knowledge shows up as retries whenever
        // the tail bites (may be zero for lucky seeds, but completion holds).
        let cfg_a = MasterConfig::new(Strategy::Auto(Default::default())).with_seed(3);
        let a = run_workload(&cfg_a, w.tasks.clone(), 6, worker_spec());
        assert_eq!(a.abandoned_tasks, 0);
        let ok = a.results.iter().filter(|r| r.outcome.is_success()).count();
        assert_eq!(ok, w.tasks.len());
    }

    #[test]
    fn tasks_fit_the_nscc_node() {
        let w = build(8, 4);
        let spec = worker_spec().resources;
        for t in &w.tasks {
            assert!(
                t.true_peak().fits_in(&spec),
                "{} peak {} exceeds node {}",
                t.category,
                t.true_peak(),
                spec
            );
        }
    }
}
