//! # lfm-workloads — the paper's evaluation applications
//!
//! Workload models for the four applications of §VI-C (dependency shapes
//! from Figure 3, parameters from the text):
//!
//! * [`hep`] — Coffea columnar HEP analysis on ND-CRC (Figure 6).
//! * [`drug`] — the COVID-19 drug-screening pipeline on Theta (Figure 7).
//! * [`genomic`] — the GDC DNA-Seq pipeline on NSCC Aspire (Figure 8).
//! * [`faas`] — the funcX ResNet image-classification benchmark (Figure 9).
//!
//! Each builds real [`lfm_workqueue::task::TaskSpec`]s through the full LFM
//! pipeline: mini-Python sources are statically analyzed, environments are
//! resolved and packed, and the packed archive rides along as a cacheable
//! input file.

pub mod common;
pub mod drug;
pub mod faas;
pub mod genomic;
pub mod hep;

pub mod prelude {
    pub use crate::common::Workload;
    pub use crate::{drug, faas, genomic, hep};
}
