//! The COVID-19 drug-screening pipeline (§VI-C2, Figure 7).
//!
//! Per molecule batch: canonicalize SMILES → three featurizers (molecular
//! descriptor, fingerprint, 2D image) → two TensorFlow docking-score
//! models consuming the features. Run on Theta (64-core nodes), one worker
//! per node; Guess = 16 cores / 40 GB / 5 GB disk.

use crate::common::{sim_app, workflow_builder, Workload};
use lfm_monitor::sim::SimTaskProfile;
use lfm_simcluster::batch::BatchParams;
use lfm_simcluster::node::{NodeSpec, Resources};
use lfm_simcluster::rng::SimRng;
use lfm_simcluster::sharedfs::SharedFsParams;
use lfm_workqueue::allocate::Strategy;
use lfm_workqueue::files::FileRef;
use lfm_workqueue::master::MasterConfig;
use std::collections::BTreeMap;

/// A Theta node.
pub fn worker_spec() -> NodeSpec {
    NodeSpec::new(64, 192 * 1024, 128 * 1024)
}

/// True per-category behaviour: (duration mean, duration sd, cores, mem MB,
/// disk MB).
fn profiles() -> Vec<(&'static str, &'static str, f64, f64, f64, u64, u64)> {
    vec![
        // (category, source, dur_mean, dur_sd, cores, mem, disk)
        (
            "canonicalize",
            "def canonicalize(smiles):\n    from rdkit import Chem\n    return Chem.MolToSmiles(Chem.MolFromSmiles(smiles))\n",
            12.0, 3.0, 1.0, 600, 256,
        ),
        (
            "descriptor",
            "def descriptor(smiles):\n    import numpy\n    from mordred import Calculator\n    from rdkit import Chem\n    return Calculator()(Chem.MolFromSmiles(smiles))\n",
            65.0, 12.0, 4.0, 4200, 1024,
        ),
        (
            "fingerprint",
            "def fingerprint(smiles):\n    import numpy\n    from rdkit import Chem\n    return numpy.array(Chem.RDKFingerprint(Chem.MolFromSmiles(smiles)))\n",
            30.0, 6.0, 1.0, 2100, 512,
        ),
        (
            "mol_image",
            "def mol_image(smiles):\n    from rdkit import Chem\n    from PIL import Image\n    return Chem.Draw(Chem.MolFromSmiles(smiles))\n",
            18.0, 4.0, 1.0, 1400, 768,
        ),
        (
            "model_a",
            "def model_a(features):\n    import numpy\n    from tensorflow.keras.models import load_model\n    return load_model('model_a.h5').predict(features)\n",
            95.0, 15.0, 8.0, 14000, 3000,
        ),
        (
            "model_b",
            "def model_b(features):\n    import numpy\n    from tensorflow.keras.models import load_model\n    return load_model('model_b.h5').predict(features)\n",
            80.0, 12.0, 8.0, 11500, 2800,
        ),
    ]
}

/// Build the pipeline for `n_batches` molecule batches. Each batch is a
/// 7-task DAG (1 canonicalize → 3 featurizers → 2 models), so the task
/// count is `7 × n_batches`... minus nothing: 6 categories + canonicalize
/// feeds all three featurizers; both models depend on all features.
pub fn build(n_batches: u64, seed: u64) -> Workload {
    let mut b = workflow_builder();
    let mut rng = SimRng::seeded(seed);
    let defs = profiles();
    let apps: Vec<_> = defs.iter().map(|(n, s, ..)| sim_app(n, s)).collect();
    let weights = FileRef::shared_data("docking-model-weights", 180 << 20);

    let mut oracle = BTreeMap::new();
    for (name, _, _, _, cores, mem, disk) in &defs {
        oracle.insert(
            name.to_string(),
            Resources::new(cores.ceil() as u32, *mem, *disk),
        );
    }

    for batch in 0..n_batches {
        let mut sample = |i: usize| -> SimTaskProfile {
            let (_, _, mean, sd, cores, mem, disk) = defs[i];
            let dur = rng.normal_trunc(mean, sd, mean * 0.4);
            // Memory varies ±15% under its category peak.
            let m = rng.uniform(0.7, 1.0) * mem as f64;
            SimTaskProfile::new(dur, cores, m as u64, disk)
        };
        let smiles_file = FileRef::data(format!("smiles-{batch}"), 2 << 20);
        let canon = b
            .add_invocation(&apps[0], sample(0), vec![smiles_file], 1 << 20, vec![])
            .expect("canonicalize lowers");
        let feats: Vec<_> = (1..=3)
            .map(|i| {
                b.add_invocation(&apps[i], sample(i), vec![], 8 << 20, vec![canon])
                    .expect("featurizer lowers")
            })
            .collect();
        for (i, app) in apps.iter().enumerate().take(6).skip(4) {
            b.add_invocation(
                app,
                sample(i),
                vec![weights.clone()],
                1 << 20,
                feats.clone(),
            )
            .expect("model lowers");
        }
    }

    Workload {
        name: "Drug Screening",
        tasks: b.build(),
        oracle,
        guess: Resources::new(16, 40 * 1024, 5 * 1024),
    }
}

/// Theta master configuration: leadership batch queue and Lustre.
pub fn master_config(strategy: Strategy, seed: u64) -> MasterConfig {
    MasterConfig::new(strategy)
        .with_batch(BatchParams::leadership_busy())
        .with_fs(SharedFsParams::lustre_leadership())
        .with_seed(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfm_workqueue::master::run_workload;

    #[test]
    fn batch_dag_shape() {
        let w = build(3, 1);
        assert_eq!(w.tasks.len(), 18); // 6 per batch
        let models: Vec<_> = w
            .tasks
            .iter()
            .filter(|t| t.category.starts_with("model_"))
            .collect();
        assert_eq!(models.len(), 6);
        assert!(models.iter().all(|t| t.deps.len() == 3));
    }

    #[test]
    fn categories_have_distinct_envs() {
        let w = build(1, 2);
        let canon_env = &w.tasks[0].inputs[0];
        let model = w.tasks.iter().find(|t| t.category == "model_a").unwrap();
        let model_env = &model.inputs[0];
        // The rdkit-only env is much smaller than the TF env.
        assert!(model_env.size_bytes > canon_env.size_bytes);
    }

    #[test]
    fn heterogeneous_resources() {
        let w = build(2, 3);
        let canon = w.oracle.get("canonicalize").unwrap();
        let model = w.oracle.get("model_a").unwrap();
        assert!(model.cores > canon.cores);
        assert!(model.memory_mb > 10 * canon.memory_mb);
    }

    #[test]
    fn pipeline_completes_under_all_strategies() {
        let w = build(6, 4);
        for strategy in [
            w.oracle_strategy(),
            w.guess_strategy(),
            Strategy::Unmanaged,
            Strategy::Auto(Default::default()),
        ] {
            // Instant batch for test speed.
            let cfg = MasterConfig::new(strategy.clone()).with_seed(4);
            let rep = run_workload(&cfg, w.tasks.clone(), 4, worker_spec());
            assert_eq!(rep.abandoned_tasks, 0, "{}", strategy.name());
            let ok = rep
                .results
                .iter()
                .filter(|r| r.outcome.is_success())
                .count();
            assert_eq!(ok, w.tasks.len(), "{}", strategy.name());
        }
    }

    #[test]
    fn oracle_beats_unmanaged_substantially() {
        let w = build(10, 5);
        let o = run_workload(
            &MasterConfig::new(w.oracle_strategy()).with_seed(5),
            w.tasks.clone(),
            4,
            worker_spec(),
        );
        let u = run_workload(
            &MasterConfig::new(Strategy::Unmanaged).with_seed(5),
            w.tasks.clone(),
            4,
            worker_spec(),
        );
        assert!(
            u.makespan_secs > 1.8 * o.makespan_secs,
            "unmanaged {} vs oracle {}",
            u.makespan_secs,
            o.makespan_secs
        );
    }
}
