//! The funcX image-classification benchmark (§VI-C4, Figure 9).
//!
//! Keras ResNet-50 inference via the funcX service: short, uniform tasks
//! whose per-invocation overhead (container activation vs. LFM) dominates
//! the comparison.

use lfm_monitor::sim::SimTaskProfile;
use lfm_simcluster::node::{NodeSpec, Resources};

/// Per-invocation true behaviour of the ResNet-50 classification function:
/// ~4 s on one core with a ~2 GB resident model.
pub fn resnet_profile() -> SimTaskProfile {
    SimTaskProfile::new(4.0, 1.0, 2048, 512)
}

/// The Guess configuration used for Figure 9's LFM(Guess) line.
pub fn guess() -> Resources {
    Resources::new(2, 4096, 1024)
}

/// Image payload per invocation (a 224×224 JPEG).
pub fn image_bytes() -> u64 {
    150 << 10
}

/// Endpoint node: a fat cloud/cluster node.
pub fn worker_spec() -> NodeSpec {
    NodeSpec::new(16, 64 * 1024, 100 * 1024)
}

/// The function source registered with funcX.
pub fn source() -> &'static str {
    lfm_pyenv::source::funcx_classify_source()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_fits_many_per_node() {
        let per_node = Resources::new(
            resnet_profile().cores_used as u32,
            resnet_profile().peak_memory_mb,
            resnet_profile().peak_disk_mb,
        )
        .copies_in(&worker_spec().resources);
        assert!(
            per_node >= 8,
            "should pack ≥8 classifications per node, got {per_node}"
        );
    }

    #[test]
    fn guess_overshoots_true_use() {
        let g = guess();
        let p = resnet_profile();
        assert!(g.memory_mb > p.peak_memory_mb);
        assert!(g.cores as f64 > p.cores_used);
    }
}
