//! Monitored local execution: run apps on the thread pool while an LFM-style
//! measurement records per-app resource consumption, and feed the
//! observations straight into a Work Queue [`Allocator`] — closing the loop
//! between *real* execution and automatic resource labeling.
//!
//! This is the local-executor counterpart of the simulated pipeline: the
//! same `observe → label → decide` machinery the cluster scheduler uses,
//! driven by measurements of functions that actually ran.

use crate::app::App;
use crate::dfk::{Arg, DataFlowKernel};
use crate::future::AppFuture;
use lfm_monitor::report::ResourceReport;
use lfm_simcluster::node::Resources;
use lfm_workqueue::allocate::{AllocationDecision, Allocator, AutoConfig, Strategy};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// A kernel wrapper that measures every invocation and learns per-app
/// resource labels.
pub struct MonitoredKernel {
    dfk: DataFlowKernel,
    allocator: Arc<Mutex<Allocator>>,
    reports: Arc<Mutex<BTreeMap<String, Vec<ResourceReport>>>>,
}

impl MonitoredKernel {
    /// Start a monitored kernel with `workers` threads and Auto labeling.
    pub fn new(workers: usize) -> Self {
        MonitoredKernel {
            dfk: DataFlowKernel::new(workers),
            allocator: Arc::new(Mutex::new(Allocator::new(Strategy::Auto(
                AutoConfig::default(),
            )))),
            reports: Arc::new(Mutex::new(BTreeMap::new())),
        }
    }

    /// Register an app; its native body is wrapped with measurement.
    pub fn register(&self, app: App) {
        let name = app.name.clone();
        let allocator = Arc::clone(&self.allocator);
        let reports = Arc::clone(&self.reports);
        let inner = app.clone();
        let mut wrapped = App::native(name.clone(), move |args| {
            let started = Instant::now();
            let rss_before = lfm_monitor::procfs::read_rss_bytes(std::process::id()).unwrap_or(0);
            let result = inner.call(args);
            let rss_after =
                lfm_monitor::procfs::read_rss_bytes(std::process::id()).unwrap_or(rss_before);
            let wall = started.elapsed().as_secs_f64();
            let report = ResourceReport {
                wall_secs: wall,
                cpu_secs: wall, // single-threaded native body
                peak_cores: 1.0,
                peak_rss_mb: rss_after.saturating_sub(rss_before) / (1024 * 1024),
                peak_processes: 1,
                polls: 1,
                ..Default::default()
            };
            allocator.lock().observe(&name, &report, result.is_ok());
            reports.lock().entry(name.clone()).or_default().push(report);
            result
        });
        // Keep the original source attached so dependency analysis still
        // sees the function's imports.
        wrapped.source = app.source;
        self.dfk.register(wrapped);
    }

    /// Submit an invocation (same contract as [`DataFlowKernel::submit`]).
    pub fn submit(&self, app_name: &str, args: Vec<Arg>) -> AppFuture {
        self.dfk.submit(app_name, args)
    }

    /// Wait for all submitted work.
    pub fn wait_all(&self) {
        self.dfk.wait_all();
    }

    /// All reports collected for an app.
    pub fn reports_for(&self, app: &str) -> Vec<ResourceReport> {
        self.reports.lock().get(app).cloned().unwrap_or_default()
    }

    /// What the allocator would request for the next invocation of `app`
    /// on a node of `capacity` — the learned label.
    pub fn label_for(&self, app: &str, capacity: &Resources) -> AllocationDecision {
        self.allocator.lock().decide(app, 0, capacity)
    }

    /// Completed observation count per app.
    pub fn samples_for(&self, app: &str) -> usize {
        self.allocator.lock().samples_for(app)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfm_pyenv::pickle::PyValue;
    use std::time::Duration;

    fn cap() -> Resources {
        Resources::new(8, 8192, 16384)
    }

    #[test]
    fn measurements_flow_into_allocator() {
        let mk = MonitoredKernel::new(4);
        mk.register(App::native("work", |args| {
            std::thread::sleep(Duration::from_millis(20));
            Ok(args[0].clone())
        }));
        // Before any samples: whole worker (measurement mode).
        assert_eq!(
            mk.label_for("work", &cap()),
            AllocationDecision::WholeWorker
        );
        let futures: Vec<_> = (0..8)
            .map(|i| mk.submit("work", vec![PyValue::Int(i).into()]))
            .collect();
        for f in &futures {
            f.result().unwrap();
        }
        mk.wait_all();
        assert_eq!(mk.samples_for("work"), 8);
        // Enough samples: the label materializes.
        assert!(matches!(
            mk.label_for("work", &cap()),
            AllocationDecision::Sized(_)
        ));
        let reports = mk.reports_for("work");
        assert_eq!(reports.len(), 8);
        assert!(reports.iter().all(|r| r.wall_secs >= 0.015));
    }

    #[test]
    fn failed_calls_observed_but_not_completed() {
        let mk = MonitoredKernel::new(2);
        mk.register(App::native("flaky", |_| Err("boom".into())));
        let f = mk.submit("flaky", vec![]);
        assert!(f.result().is_err());
        mk.wait_all();
        assert_eq!(mk.samples_for("flaky"), 0); // not a completed sample
        assert_eq!(mk.reports_for("flaky").len(), 1); // but measured
    }

    #[test]
    fn interpreted_apps_compose_with_monitoring() {
        let mk = MonitoredKernel::new(2);
        mk.register(App::interpreted(
            "square_sum",
            "def square_sum(n):\n    return sum([i * i for i in range(n)])\n",
            |_| {},
        ));
        let f = mk.submit("square_sum", vec![PyValue::Int(100).into()]);
        assert_eq!(f.result().unwrap(), PyValue::Int(328350));
        mk.wait_all();
        assert_eq!(mk.samples_for("square_sum"), 1);
    }
}
