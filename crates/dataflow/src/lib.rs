//! # lfm-dataflow — the Parsl-equivalent dataflow layer
//!
//! Implements the paper's parallel-framework tier (§III): decorated apps,
//! futures conforming to the `concurrent.futures` contract, a dynamic DAG
//! built by tracking futures passed between invocations, a real thread-pool
//! executor for native execution, and the lowering that turns app
//! invocations into Work Queue tasks with per-function packed environments.
//!
//! * [`app`] — apps: mini-Python source (for dependency analysis) + native
//!   implementation.
//! * [`future`] — blocking/cloneable [`future::AppFuture`]s.
//! * [`dfk`] — the DataFlowKernel: submit, dependency tracking, thread pool.
//! * [`lowering`] — the Parsl→WorkQueue executor: analyze → resolve → pack →
//!   attach env as cacheable input → emit [`lfm_workqueue::task::TaskSpec`]s.

pub mod app;
pub mod dfk;
pub mod future;
pub mod lowering;
pub mod monitored;

pub mod prelude {
    pub use crate::app::App;
    pub use crate::dfk::{Arg, DagStats, DataFlowKernel};
    pub use crate::future::{AppFuture, TaskError};
    pub use crate::lowering::{EnvPlan, WqWorkflowBuilder};
    pub use crate::monitored::MonitoredKernel;
}
