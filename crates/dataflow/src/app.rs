//! Apps: decorated functions the dataflow kernel can invoke.
//!
//! An app pairs an optional mini-Python source (what the static dependency
//! analyzer inspects, §V-B) with a native implementation (what actually
//! executes in this Rust reproduction). Parsl's `@python_app` decorator
//! corresponds to registering an [`App`] with the kernel.

use lfm_pyenv::analyze::{analyze_source, Analysis};
use lfm_pyenv::error::Result as PyResult;
use lfm_pyenv::interp::Interp;
use lfm_pyenv::pickle::PyValue;
use std::fmt;
use std::sync::Arc;

/// The native implementation of an app.
pub type NativeFn = dyn Fn(&[PyValue]) -> Result<PyValue, String> + Send + Sync;

/// A registered app.
#[derive(Clone)]
pub struct App {
    pub name: String,
    /// Mini-Python source for dependency analysis (optional — pure-native
    /// apps have no Python-level dependencies).
    pub source: Option<String>,
    imp: Arc<NativeFn>,
}

impl fmt::Debug for App {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("App")
            .field("name", &self.name)
            .field("has_source", &self.source.is_some())
            .finish()
    }
}

impl App {
    /// A pure-native app.
    pub fn native(
        name: impl Into<String>,
        imp: impl Fn(&[PyValue]) -> Result<PyValue, String> + Send + Sync + 'static,
    ) -> Self {
        App {
            name: name.into(),
            source: None,
            imp: Arc::new(imp),
        }
    }

    /// An app with mini-Python source attached for dependency analysis.
    pub fn python(
        name: impl Into<String>,
        source: impl Into<String>,
        imp: impl Fn(&[PyValue]) -> Result<PyValue, String> + Send + Sync + 'static,
    ) -> Self {
        App {
            name: name.into(),
            source: Some(source.into()),
            imp: Arc::new(imp),
        }
    }

    /// An app whose implementation IS its mini-Python source, executed by
    /// the interpreter: the function named `name` in `source` is called
    /// with the invocation's arguments. `setup` registers the native
    /// modules the source imports (numpy-like kernels etc.) on each fresh
    /// interpreter — invocations are isolated, like the paper's forked
    /// interpreter processes.
    pub fn interpreted(
        name: impl Into<String>,
        source: impl Into<String>,
        setup: impl Fn(&mut Interp) + Send + Sync + 'static,
    ) -> Self {
        let name = name.into();
        let source = source.into();
        let entry = name.clone();
        let src_for_imp = source.clone();
        App {
            name,
            source: Some(source),
            imp: Arc::new(move |args: &[PyValue]| {
                let mut interp = Interp::new();
                setup(&mut interp);
                interp
                    .load_source(&src_for_imp)
                    .map_err(|e| e.to_string())?;
                interp
                    .call_function(&entry, args)
                    .map_err(|e| e.to_string())
            }),
        }
    }

    /// Invoke the native implementation.
    pub fn call(&self, args: &[PyValue]) -> Result<PyValue, String> {
        (self.imp)(args)
    }

    /// Run static dependency analysis over the app's source. Pure-native
    /// apps analyze as empty.
    pub fn analyze(&self) -> PyResult<Analysis> {
        match &self.source {
            Some(src) => analyze_source(src),
            None => Ok(Analysis::default()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_app_calls_through() {
        let app = App::native("double", |args| {
            let x = args[0].as_int().ok_or("expected int")?;
            Ok(PyValue::Int(x * 2))
        });
        assert_eq!(app.call(&[PyValue::Int(21)]).unwrap(), PyValue::Int(42));
        assert_eq!(
            app.call(&[PyValue::Str("x".into())]).unwrap_err(),
            "expected int"
        );
        assert!(app.analyze().unwrap().top_level_modules().is_empty());
    }

    #[test]
    fn python_app_analyzes_source() {
        let app = App::python(
            "featurize",
            "@python_app\ndef featurize(s):\n    import numpy\n    from rdkit import Chem\n    return 1\n",
            |_| Ok(PyValue::None),
        );
        let a = app.analyze().unwrap();
        assert!(a.top_level_modules().contains("numpy"));
        assert!(a.top_level_modules().contains("rdkit"));
    }

    #[test]
    fn bad_source_surfaces_error() {
        let app = App::python("broken", "def f(:\n", |_| Ok(PyValue::None));
        assert!(app.analyze().is_err());
    }

    #[test]
    fn interpreted_app_runs_its_source() {
        let app = App::interpreted("triple", "def triple(x):\n    return x * 3\n", |_| {});
        assert_eq!(app.call(&[PyValue::Int(7)]).unwrap(), PyValue::Int(21));
        // And the same source feeds static analysis.
        assert!(app.analyze().unwrap().top_level_modules().is_empty());
    }

    #[test]
    fn interpreted_app_with_registered_module() {
        use lfm_pyenv::interp::builtins::iterate;
        use lfm_pyenv::interp::value::Value;
        use lfm_pyenv::interp::ModuleBuilder;
        let app = App::interpreted(
            "mean_of",
            "import numpy as np\n\ndef mean_of(xs):\n    return np.mean(xs)\n",
            |interp| {
                interp.register_module(ModuleBuilder::new("numpy").function("mean", |args| {
                    let xs = iterate(&args[0])?;
                    let nums: Vec<f64> = xs.iter().filter_map(Value::as_number).collect();
                    Ok(Value::Float(
                        nums.iter().sum::<f64>() / nums.len().max(1) as f64,
                    ))
                }));
            },
        );
        let out = app
            .call(&[PyValue::List(vec![PyValue::Int(2), PyValue::Int(4)])])
            .unwrap();
        assert_eq!(out, PyValue::Float(3.0));
        // Analysis sees the numpy import.
        assert!(app.analyze().unwrap().top_level_modules().contains("numpy"));
    }

    #[test]
    fn interpreted_app_exception_becomes_task_error() {
        let app = App::interpreted(
            "boom",
            "def boom():\n    raise ValueError('bad molecule')\n",
            |_| {},
        );
        let err = app.call(&[]).unwrap_err();
        assert!(err.contains("ValueError"), "{err}");
        assert!(err.contains("bad molecule"), "{err}");
    }

    #[test]
    fn interpreted_invocations_are_isolated() {
        // Global mutation in one call must not leak into the next: each
        // invocation gets a fresh interpreter (fork semantics).
        let app = App::interpreted(
            "bump",
            "count = 0\n\ndef bump():\n    global count\n    count = count + 1\n    return count\n",
            |_| {},
        );
        assert_eq!(app.call(&[]).unwrap(), PyValue::Int(1));
        assert_eq!(app.call(&[]).unwrap(), PyValue::Int(1));
    }
}
