//! App futures — the `concurrent.futures`-style handle Parsl returns.

use lfm_pyenv::pickle::PyValue;
use parking_lot::{Condvar, Mutex};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Why an invocation did not produce a value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TaskError {
    /// The function raised: carries the "traceback" message (the paper's
    /// LFM returns stack tracebacks over the result queue).
    Exception(String),
    /// A dependency failed, so this task never ran.
    DependencyFailed(String),
    /// The executor shut down before the task ran.
    ExecutorShutdown,
    /// Killed by the LFM for exceeding a resource limit.
    ResourceExhausted(String),
}

impl fmt::Display for TaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskError::Exception(m) => write!(f, "task raised: {m}"),
            TaskError::DependencyFailed(m) => write!(f, "dependency failed: {m}"),
            TaskError::ExecutorShutdown => write!(f, "executor shut down"),
            TaskError::ResourceExhausted(m) => write!(f, "resource limit exceeded: {m}"),
        }
    }
}

impl std::error::Error for TaskError {}

struct State {
    value: Mutex<Option<Result<PyValue, TaskError>>>,
    cond: Condvar,
}

/// A future for one app invocation. Cloning shares the underlying slot.
#[derive(Clone)]
pub struct AppFuture {
    state: Arc<State>,
    /// Task id within the kernel, for debugging and DAG lowering.
    pub task_id: u64,
}

impl fmt::Debug for AppFuture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AppFuture(t{}, done={})", self.task_id, self.is_done())
    }
}

impl AppFuture {
    /// A fresh, unresolved future.
    pub fn new(task_id: u64) -> Self {
        AppFuture {
            state: Arc::new(State {
                value: Mutex::new(None),
                cond: Condvar::new(),
            }),
            task_id,
        }
    }

    /// An already-resolved future (used for constant inputs).
    pub fn ready(value: PyValue) -> Self {
        let f = AppFuture::new(u64::MAX);
        f.resolve(Ok(value));
        f
    }

    /// Resolve exactly once; a second resolution is a logic error.
    pub fn resolve(&self, result: Result<PyValue, TaskError>) {
        let mut slot = self.state.value.lock();
        assert!(slot.is_none(), "future resolved twice");
        *slot = Some(result);
        self.state.cond.notify_all();
    }

    /// Non-blocking check.
    pub fn is_done(&self) -> bool {
        self.state.value.lock().is_some()
    }

    /// Non-blocking result peek.
    pub fn try_result(&self) -> Option<Result<PyValue, TaskError>> {
        self.state.value.lock().clone()
    }

    /// Block until resolved — "evaluation of a future either yields the
    /// result or blocks until the result is available".
    pub fn result(&self) -> Result<PyValue, TaskError> {
        let mut slot = self.state.value.lock();
        while slot.is_none() {
            self.state.cond.wait(&mut slot);
        }
        slot.clone().expect("loop exits only when resolved")
    }

    /// Block with a timeout; `None` on timeout.
    pub fn result_timeout(&self, timeout: Duration) -> Option<Result<PyValue, TaskError>> {
        let deadline = std::time::Instant::now() + timeout;
        let mut slot = self.state.value.lock();
        while slot.is_none() {
            if self.state.cond.wait_until(&mut slot, deadline).timed_out() {
                return slot.clone();
            }
        }
        slot.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn ready_future_is_done() {
        let f = AppFuture::ready(PyValue::Int(5));
        assert!(f.is_done());
        assert_eq!(f.result().unwrap(), PyValue::Int(5));
        assert_eq!(f.try_result().unwrap().unwrap(), PyValue::Int(5));
    }

    #[test]
    fn unresolved_future_try_is_none() {
        let f = AppFuture::new(1);
        assert!(!f.is_done());
        assert!(f.try_result().is_none());
        assert!(f.result_timeout(Duration::from_millis(20)).is_none());
    }

    #[test]
    fn result_blocks_until_resolved() {
        let f = AppFuture::new(2);
        let f2 = f.clone();
        let handle = thread::spawn(move || f2.result());
        thread::sleep(Duration::from_millis(50));
        f.resolve(Ok(PyValue::Str("done".into())));
        assert_eq!(handle.join().unwrap().unwrap(), PyValue::Str("done".into()));
    }

    #[test]
    fn error_propagates() {
        let f = AppFuture::new(3);
        f.resolve(Err(TaskError::Exception("ValueError: bad input".into())));
        match f.result() {
            Err(TaskError::Exception(m)) => assert!(m.contains("ValueError")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "future resolved twice")]
    fn double_resolve_panics() {
        let f = AppFuture::new(4);
        f.resolve(Ok(PyValue::None));
        f.resolve(Ok(PyValue::None));
    }

    #[test]
    fn many_waiters_all_wake() {
        let f = AppFuture::new(5);
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let f = f.clone();
                thread::spawn(move || f.result().unwrap())
            })
            .collect();
        thread::sleep(Duration::from_millis(30));
        f.resolve(Ok(PyValue::Int(9)));
        for h in handles {
            assert_eq!(h.join().unwrap(), PyValue::Int(9));
        }
    }
}
