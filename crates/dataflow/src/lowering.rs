//! Lowering Parsl apps to Work Queue tasks — the paper's new
//! Parsl-WorkQueue executor module (§III-A).
//!
//! For each app: run static dependency analysis over its source, pin the
//! imported packages against the user's environment, resolve the transitive
//! closure, build + pack a *minimal* environment, and attach the packed
//! archive as a cacheable input file to every invocation of that app.
//! Invocations then become [`TaskSpec`]s whose dependency edges come from
//! the dataflow DAG.

use crate::app::App;
use lfm_monitor::sim::SimTaskProfile;
use lfm_pyenv::environment::Environment;
use lfm_pyenv::error::Result as PyResult;
use lfm_pyenv::index::PackageIndex;
use lfm_pyenv::pack::pack_cached;
use lfm_pyenv::requirements::RequirementSet;
use lfm_pyenv::resolve::resolve_cached;
use lfm_workqueue::files::FileRef;
use lfm_workqueue::task::{TaskId, TaskSpec};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// What environment preparation produced for one app (Table II's row
/// ingredients: dependency count, sizes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnvPlan {
    pub app: String,
    /// Direct requirements discovered by static analysis.
    pub direct_requirements: usize,
    /// Distributions in the resolved closure.
    pub resolved_dists: usize,
    /// Packed archive bytes.
    pub archive_bytes: u64,
    /// Installed bytes after unpack.
    pub installed_bytes: u64,
    /// Files after unpack.
    pub installed_files: u64,
    /// Analyzer warnings (dynamic imports, star imports).
    pub warnings: usize,
}

/// Builds a Work Queue workload from app invocations.
pub struct WqWorkflowBuilder {
    index: PackageIndex,
    user_env: Environment,
    env_files: BTreeMap<String, FileRef>,
    plans: Vec<EnvPlan>,
    tasks: Vec<TaskSpec>,
    next_id: u64,
}

impl WqWorkflowBuilder {
    /// `user_env` is the environment the analysis pins versions against —
    /// typically [`lfm_pyenv::environment::user_environment`].
    pub fn new(index: PackageIndex, user_env: Environment) -> Self {
        WqWorkflowBuilder {
            index,
            user_env,
            env_files: BTreeMap::new(),
            plans: Vec::new(),
            tasks: Vec::new(),
            next_id: 0,
        }
    }

    /// Analyze + resolve + pack the environment for `app`, caching per app
    /// name. Returns the cacheable input file representing the packed env.
    pub fn prepare_environment(&mut self, app: &App) -> PyResult<FileRef> {
        if let Some(f) = self.env_files.get(&app.name) {
            return Ok(f.clone());
        }
        let analysis = app.analyze()?;
        let direct = RequirementSet::from_analysis(&analysis, &self.index)?;
        // Pin against the user's environment where installed; fall back to
        // the index's newest for anything absent locally.
        let mut pinned = RequirementSet::new();
        for r in direct.iter() {
            match self.user_env.installed_version(&r.dist) {
                Some(v) => pinned.add(lfm_pyenv::requirements::Requirement::exact(
                    r.dist.clone(),
                    v,
                )),
                None => pinned.add(r.clone()),
            }
        }
        // Resolve and pack through the process-wide caches: every sweep
        // point rebuilds the same per-app environments, so only the first
        // builder pays the solver and the packer.
        let resolution = resolve_cached(&self.index, &pinned)?;
        let env = Environment::from_resolution(
            format!("{}-env", app.name),
            format!("/envs/{}", app.name),
            &self.index,
            &resolution,
        )?;
        let packed = pack_cached(&env);
        let file = FileRef::environment(
            format!("{}-env.tar.gz", app.name),
            packed.archive_bytes(),
            packed.installed_bytes(),
            packed.file_count(),
            packed.relocation_ops("/scratch"),
        );
        self.plans.push(EnvPlan {
            app: app.name.clone(),
            direct_requirements: direct.len(),
            resolved_dists: resolution.len(),
            archive_bytes: packed.archive_bytes(),
            installed_bytes: packed.installed_bytes(),
            installed_files: packed.file_count(),
            warnings: analysis.warnings.len(),
        });
        self.env_files.insert(app.name.clone(), file.clone());
        Ok(file)
    }

    /// Add one invocation of `app` with the given true behaviour profile.
    pub fn add_invocation(
        &mut self,
        app: &App,
        profile: SimTaskProfile,
        mut extra_inputs: Vec<FileRef>,
        output_bytes: u64,
        deps: Vec<TaskId>,
    ) -> PyResult<TaskId> {
        let env_file = self.prepare_environment(app)?;
        let id = TaskId(self.next_id);
        self.next_id += 1;
        let mut inputs = vec![env_file];
        inputs.append(&mut extra_inputs);
        self.tasks
            .push(TaskSpec::new(id, app.name.clone(), inputs, output_bytes, profile).after(deps));
        Ok(id)
    }

    /// Environment plans computed so far.
    pub fn plans(&self) -> &[EnvPlan] {
        &self.plans
    }

    /// Finish, returning the task list for [`lfm_workqueue::master::run_workload`].
    pub fn build(self) -> Vec<TaskSpec> {
        self.tasks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfm_pyenv::environment::user_environment;
    use lfm_pyenv::source::hep_process_source;

    fn builder() -> WqWorkflowBuilder {
        let index = PackageIndex::builtin();
        let env = user_environment(&index).unwrap();
        WqWorkflowBuilder::new(index, env)
    }

    fn hep_app() -> App {
        App::python("process_chunk", hep_process_source(), |_| {
            Ok(lfm_pyenv::pickle::PyValue::None)
        })
    }

    #[test]
    fn environment_prepared_once_per_app() {
        let mut b = builder();
        let app = hep_app();
        let f1 = b.prepare_environment(&app).unwrap();
        let f2 = b.prepare_environment(&app).unwrap();
        assert_eq!(f1, f2);
        assert_eq!(b.plans().len(), 1);
        let plan = &b.plans()[0];
        assert!(plan.resolved_dists > plan.direct_requirements);
        assert!(plan.archive_bytes > 0);
        assert!(plan.installed_bytes > plan.archive_bytes);
    }

    #[test]
    fn minimal_env_is_smaller_than_user_env() {
        let mut b = builder();
        let app = hep_app();
        b.prepare_environment(&app).unwrap();
        let plan = &b.plans()[0];
        let index = PackageIndex::builtin();
        let full = user_environment(&index).unwrap();
        assert!(
            plan.installed_bytes < full.total_bytes() / 2,
            "minimal env {} should be far below the kitchen-sink env {}",
            plan.installed_bytes,
            full.total_bytes()
        );
    }

    #[test]
    fn invocations_share_env_and_chain_deps() {
        let mut b = builder();
        let app = hep_app();
        let t0 = b
            .add_invocation(
                &app,
                SimTaskProfile::new(60.0, 1.0, 110, 1024),
                vec![],
                0,
                vec![],
            )
            .unwrap();
        let t1 = b
            .add_invocation(
                &app,
                SimTaskProfile::new(60.0, 1.0, 110, 1024),
                vec![],
                0,
                vec![t0],
            )
            .unwrap();
        let tasks = b.build();
        assert_eq!(tasks.len(), 2);
        assert_eq!(tasks[0].inputs[0], tasks[1].inputs[0]); // same env file
        assert_eq!(tasks[1].deps, vec![t0]);
        assert_ne!(t0, t1);
    }

    #[test]
    fn pinned_versions_come_from_user_env() {
        let index = PackageIndex::builtin();
        let user = user_environment(&index).unwrap();
        let expected_numpy = user.installed_version("numpy").unwrap();
        let mut b = WqWorkflowBuilder::new(index, user);
        let app = App::python(
            "np_task",
            "def np_task(x):\n    import numpy\n    return x\n",
            |_| Ok(lfm_pyenv::pickle::PyValue::None),
        );
        b.prepare_environment(&app).unwrap();
        // Rebuild the resolution the builder performed to check the pin.
        let plan = &b.plans()[0];
        assert!(plan.resolved_dists >= 2);
        // numpy in the user env is the newest; the plan must have used it.
        assert_eq!(expected_numpy, "1.18.5".parse().unwrap());
    }

    #[test]
    fn unknown_import_is_an_error() {
        let mut b = builder();
        let app = App::python(
            "mystery",
            "def mystery():\n    import package_that_does_not_exist\n    return 0\n",
            |_| Ok(lfm_pyenv::pickle::PyValue::None),
        );
        assert!(b.prepare_environment(&app).is_err());
    }
}
