//! The DataFlowKernel: dynamic dependency tracking + a thread-pool executor.
//!
//! Mirrors Parsl's execution model (§III-A): apps are submitted with
//! arguments that may be futures from earlier submissions; the kernel builds
//! the dependency DAG dynamically by tracking those futures, dispatches
//! tasks whose dependencies have resolved, and resolves each task's own
//! future with the result (or error) when it finishes.

use crate::app::App;
use crate::future::{AppFuture, TaskError};
use crossbeam::channel::{unbounded, Receiver, Sender};
use lfm_pyenv::pickle::PyValue;
use lfm_simcluster::metrics::Summary;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// An argument to an app invocation: a concrete value or a future from an
/// earlier invocation.
#[derive(Debug, Clone)]
pub enum Arg {
    Value(PyValue),
    Future(AppFuture),
}

impl From<PyValue> for Arg {
    fn from(v: PyValue) -> Self {
        Arg::Value(v)
    }
}

impl From<&AppFuture> for Arg {
    fn from(f: &AppFuture) -> Self {
        Arg::Future(f.clone())
    }
}

/// Kernel-wide progress counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DagStats {
    pub submitted: u64,
    pub completed: u64,
    pub failed: u64,
}

struct WaitingTask {
    app: App,
    args: Vec<Arg>,
    remaining: usize,
    future: AppFuture,
}

struct WorkItem {
    app: App,
    args: Vec<PyValue>,
    future: AppFuture,
    task_id: u64,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum DoneState {
    Succeeded,
    Failed,
}

#[derive(Default)]
struct KernelState {
    next_id: u64,
    waiting: HashMap<u64, WaitingTask>,
    dependents: HashMap<u64, Vec<u64>>,
    done: HashMap<u64, DoneState>,
    stats: DagStats,
    app_wall: BTreeMap<String, Summary>,
}

struct Inner {
    state: Mutex<KernelState>,
    tx: Sender<WorkItem>,
}

/// The dataflow kernel. Dropping it shuts the pool down (pending tasks
/// resolve with [`TaskError::ExecutorShutdown`]).
pub struct DataFlowKernel {
    inner: Arc<Inner>,
    apps: Mutex<HashMap<String, App>>,
    workers: Vec<JoinHandle<()>>,
}

impl DataFlowKernel {
    /// Start a kernel with `workers` executor threads.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker thread");
        let (tx, rx) = unbounded::<WorkItem>();
        let inner = Arc::new(Inner {
            state: Mutex::new(KernelState::default()),
            tx,
        });
        let handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                let rx: Receiver<WorkItem> = rx.clone();
                std::thread::Builder::new()
                    .name(format!("lfm-dfk-{i}"))
                    .spawn(move || worker_loop(inner, rx))
                    .expect("spawn worker thread")
            })
            .collect();
        DataFlowKernel {
            inner,
            apps: Mutex::new(HashMap::new()),
            workers: handles,
        }
    }

    /// Register an app (the `@python_app` decoration step).
    pub fn register(&self, app: App) {
        self.apps.lock().insert(app.name.clone(), app);
    }

    /// Look up a registered app.
    pub fn app(&self, name: &str) -> Option<App> {
        self.apps.lock().get(name).cloned()
    }

    /// Submit an invocation of a registered app. Panics on unknown app
    /// names — that is a programming error, like calling an undefined
    /// function.
    pub fn submit(&self, app_name: &str, args: Vec<Arg>) -> AppFuture {
        let app = self
            .app(app_name)
            .unwrap_or_else(|| panic!("app {app_name:?} is not registered"));
        self.submit_app(app, args)
    }

    /// Submit with an explicit [`App`] value.
    pub fn submit_app(&self, app: App, args: Vec<Arg>) -> AppFuture {
        let mut state = self.inner.state.lock();
        let tid = state.next_id;
        state.next_id += 1;
        state.stats.submitted += 1;
        let future = AppFuture::new(tid);

        // Register dependencies atomically with resolution (both paths hold
        // the state lock), so a dep finishing mid-submit cannot be missed.
        let mut remaining = 0usize;
        let mut failed_dep: Option<u64> = None;
        for a in &args {
            if let Arg::Future(f) = a {
                if f.task_id == u64::MAX {
                    continue; // constant `ready` future
                }
                match state.done.get(&f.task_id) {
                    Some(DoneState::Succeeded) => {}
                    Some(DoneState::Failed) => failed_dep = Some(f.task_id),
                    None => {
                        remaining += 1;
                        state.dependents.entry(f.task_id).or_default().push(tid);
                    }
                }
            }
        }

        if let Some(dep) = failed_dep {
            state.stats.failed += 1;
            state.done.insert(tid, DoneState::Failed);
            drop(state);
            future.resolve(Err(TaskError::DependencyFailed(format!(
                "task {dep} failed"
            ))));
            return future;
        }

        let task = WaitingTask {
            app,
            args,
            remaining,
            future: future.clone(),
        };
        if remaining == 0 {
            dispatch(&self.inner, &mut state, tid, task);
        } else {
            state.waiting.insert(tid, task);
        }
        future
    }

    /// Current progress counters.
    pub fn stats(&self) -> DagStats {
        self.inner.state.lock().stats
    }

    /// Wall-time summaries per app name.
    pub fn app_wall_times(&self) -> BTreeMap<String, Summary> {
        self.inner.state.lock().app_wall.clone()
    }

    /// Block until every submitted task has finished.
    pub fn wait_all(&self) {
        loop {
            {
                let s = self.inner.state.lock();
                if s.stats.completed + s.stats.failed >= s.stats.submitted {
                    return;
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
    }
}

impl Drop for DataFlowKernel {
    fn drop(&mut self) {
        // Fail anything still waiting on dependencies — its deps will never
        // dispatch now. (Tasks already queued on the channel still run and
        // resolve normally before the pool drains.)
        let leftovers: Vec<AppFuture> = {
            let mut state = self.inner.state.lock();
            state.waiting.drain().map(|(_, t)| t.future).collect()
        };
        for f in leftovers {
            if !f.is_done() {
                f.resolve(Err(TaskError::ExecutorShutdown));
            }
        }
        // One shutdown sentinel per worker: each worker exits after
        // consuming exactly one, so queued work ahead of the sentinels
        // still completes.
        for _ in 0..self.workers.len() {
            let _ = self.inner.tx.send(WorkItem {
                app: App::native("__shutdown__", |_| Ok(PyValue::None)),
                args: vec![],
                future: AppFuture::new(u64::MAX - 1),
                task_id: u64::MAX - 1,
            });
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Resolve future-args to concrete values (all deps succeeded by contract).
fn resolve_args(args: Vec<Arg>) -> Vec<PyValue> {
    args.into_iter()
        .map(|a| match a {
            Arg::Value(v) => v,
            Arg::Future(f) => f
                .try_result()
                .expect("dependency resolved before dispatch")
                .expect("failed deps never reach dispatch"),
        })
        .collect()
}

fn dispatch(inner: &Arc<Inner>, state: &mut KernelState, tid: u64, task: WaitingTask) {
    let _ = state; // lock witness: dispatch must be called under the state lock
    let item = WorkItem {
        app: task.app,
        args: resolve_args(task.args),
        future: task.future,
        task_id: tid,
    };
    inner
        .tx
        .send(item)
        .expect("worker pool alive while kernel exists");
}

fn worker_loop(inner: Arc<Inner>, rx: Receiver<WorkItem>) {
    while let Ok(item) = rx.recv() {
        if item.task_id == u64::MAX - 1 {
            return; // shutdown sentinel
        }
        let started = Instant::now();
        let result = item.app.call(&item.args).map_err(TaskError::Exception);
        let wall = started.elapsed().as_secs_f64();
        complete(&inner, item, result, wall);
    }
}

fn complete(inner: &Arc<Inner>, item: WorkItem, result: Result<PyValue, TaskError>, wall: f64) {
    let mut state = inner.state.lock();
    let succeeded = result.is_ok();
    state.done.insert(
        item.task_id,
        if succeeded {
            DoneState::Succeeded
        } else {
            DoneState::Failed
        },
    );
    if succeeded {
        state.stats.completed += 1;
    } else {
        state.stats.failed += 1;
    }
    state
        .app_wall
        .entry(item.app.name.clone())
        .or_default()
        .record(wall);
    item.future.resolve(result);

    // Wake dependents. Failures cascade.
    let mut ready: Vec<(u64, WaitingTask)> = Vec::new();
    if let Some(deps) = state.dependents.remove(&item.task_id) {
        for dep_tid in deps {
            if !succeeded {
                if let Some(t) = state.waiting.remove(&dep_tid) {
                    state.stats.failed += 1;
                    state.done.insert(dep_tid, DoneState::Failed);
                    t.future.resolve(Err(TaskError::DependencyFailed(format!(
                        "task {} failed",
                        item.task_id
                    ))));
                    // Its own dependents cascade when they check `done`;
                    // but tasks already waiting on it need explicit failure:
                    let mut stack = vec![dep_tid];
                    while let Some(failed) = stack.pop() {
                        if let Some(grand) = state.dependents.remove(&failed) {
                            for g in grand {
                                if let Some(gt) = state.waiting.remove(&g) {
                                    state.stats.failed += 1;
                                    state.done.insert(g, DoneState::Failed);
                                    gt.future.resolve(Err(TaskError::DependencyFailed(format!(
                                        "task {failed} failed"
                                    ))));
                                    stack.push(g);
                                }
                            }
                        }
                    }
                }
                continue;
            }
            if let Some(t) = state.waiting.get_mut(&dep_tid) {
                t.remaining -= 1;
                if t.remaining == 0 {
                    let t = state.waiting.remove(&dep_tid).expect("present");
                    ready.push((dep_tid, t));
                }
            }
        }
    }
    for (tid, t) in ready {
        dispatch(inner, &mut state, tid, t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn add_app() -> App {
        App::native("add", |args| {
            let a = args[0].as_int().ok_or("arg0 not int")?;
            let b = args[1].as_int().ok_or("arg1 not int")?;
            Ok(PyValue::Int(a + b))
        })
    }

    #[test]
    fn single_task_runs() {
        let dfk = DataFlowKernel::new(2);
        dfk.register(add_app());
        let f = dfk.submit("add", vec![PyValue::Int(1).into(), PyValue::Int(2).into()]);
        assert_eq!(f.result().unwrap(), PyValue::Int(3));
        let s = dfk.stats();
        assert_eq!((s.submitted, s.completed, s.failed), (1, 1, 0));
    }

    #[test]
    fn chained_futures_form_dag() {
        let dfk = DataFlowKernel::new(4);
        dfk.register(add_app());
        let a = dfk.submit("add", vec![PyValue::Int(1).into(), PyValue::Int(2).into()]);
        let b = dfk.submit("add", vec![Arg::from(&a), PyValue::Int(10).into()]);
        let c = dfk.submit("add", vec![Arg::from(&a), Arg::from(&b)]);
        assert_eq!(c.result().unwrap(), PyValue::Int(16)); // 3 + 13
    }

    #[test]
    fn wide_fanout_completes() {
        let dfk = DataFlowKernel::new(8);
        dfk.register(add_app());
        let futures: Vec<_> = (0..200)
            .map(|i| dfk.submit("add", vec![PyValue::Int(i).into(), PyValue::Int(i).into()]))
            .collect();
        for (i, f) in futures.iter().enumerate() {
            assert_eq!(f.result().unwrap(), PyValue::Int(2 * i as i64));
        }
        dfk.wait_all();
        assert_eq!(dfk.stats().completed, 200);
    }

    #[test]
    fn reduction_tree() {
        // Sum 0..16 via a binary tree of `add` tasks.
        let dfk = DataFlowKernel::new(4);
        dfk.register(add_app());
        let mut layer: Vec<AppFuture> =
            (0..16).map(|i| AppFuture::ready(PyValue::Int(i))).collect();
        while layer.len() > 1 {
            layer = layer
                .chunks(2)
                .map(|pair| dfk.submit("add", vec![Arg::from(&pair[0]), Arg::from(&pair[1])]))
                .collect();
        }
        assert_eq!(layer[0].result().unwrap(), PyValue::Int(120));
    }

    #[test]
    fn exception_fails_task_and_dependents() {
        let dfk = DataFlowKernel::new(2);
        dfk.register(add_app());
        dfk.register(App::native("boom", |_| Err("division by zero".into())));
        let bad = dfk.submit("boom", vec![]);
        let child = dfk.submit("add", vec![Arg::from(&bad), PyValue::Int(1).into()]);
        let grandchild = dfk.submit("add", vec![Arg::from(&child), PyValue::Int(1).into()]);
        assert!(matches!(bad.result(), Err(TaskError::Exception(_))));
        assert!(matches!(
            child.result(),
            Err(TaskError::DependencyFailed(_))
        ));
        assert!(matches!(
            grandchild.result(),
            Err(TaskError::DependencyFailed(_))
        ));
        let s = dfk.stats();
        assert_eq!(s.failed, 3);
    }

    #[test]
    fn submit_after_dep_failure_fails_fast() {
        let dfk = DataFlowKernel::new(2);
        dfk.register(App::native("boom", |_| Err("nope".into())));
        dfk.register(add_app());
        let bad = dfk.submit("boom", vec![]);
        let _ = bad.result(); // ensure it is marked failed
        let child = dfk.submit("add", vec![Arg::from(&bad), PyValue::Int(1).into()]);
        assert!(matches!(
            child.result(),
            Err(TaskError::DependencyFailed(_))
        ));
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn unknown_app_panics() {
        let dfk = DataFlowKernel::new(1);
        let _ = dfk.submit("nope", vec![]);
    }

    #[test]
    fn wall_times_recorded_per_app() {
        let dfk = DataFlowKernel::new(2);
        dfk.register(App::native("sleepy", |_| {
            std::thread::sleep(Duration::from_millis(30));
            Ok(PyValue::None)
        }));
        let f = dfk.submit("sleepy", vec![]);
        f.result().unwrap();
        let walls = dfk.app_wall_times();
        let s = &walls["sleepy"];
        assert_eq!(s.count(), 1);
        assert!(s.mean() >= 0.02);
    }

    #[test]
    fn parallelism_actually_happens() {
        let dfk = DataFlowKernel::new(4);
        dfk.register(App::native("sleepy", |_| {
            std::thread::sleep(Duration::from_millis(100));
            Ok(PyValue::None)
        }));
        let start = Instant::now();
        let fs: Vec<_> = (0..4).map(|_| dfk.submit("sleepy", vec![])).collect();
        for f in &fs {
            f.result().unwrap();
        }
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_millis(350),
            "4×100 ms on 4 threads took {elapsed:?}"
        );
    }
}
