//! Indexed incremental scheduling state for the Work Queue master.
//!
//! The reference matcher re-runs a full greedy pass over the entire pending
//! queue on every event, and every placement attempt scans every worker and
//! re-probes every input file for cache affinity — O(events × pending ×
//! workers × inputs). This module replaces that with event-driven state:
//!
//! * **Order keys** — the reference examination order (stable policy sort
//!   over a deque fed by `push_back`/`push_front`) is a total order
//!   `(policy_rank, seq)`: ranks are `0` (Fifo), `!peak_mem` (LargestFirst)
//!   or `peak_mem` (SmallestFirst), and seqs grow at the back / shrink at
//!   the front. Ready tasks live in a `BTreeMap` keyed by it, so a dispatch
//!   pass is a k-way merge instead of a drain-sort-refill.
//! * **Park groups** — a task that fails examination is parked under its
//!   `(category, is_retry)` group together with *why* it failed (slow-start
//!   cap, or no worker fits its allocation). All members of a group resolve
//!   to the same decision at any instant, so one head examination decides
//!   the whole group; groups are re-examined ("woken") only when an event
//!   could change the verdict — see the wake methods.
//! * **Capacity index** — workers ordered by free cores, so the
//!   most-free-cores preference is a reverse scan with early exit instead
//!   of a full-pool sweep.
//! * **File index** — inverted cache map (file name → workers holding it),
//!   so the cached-inputs preference intersects candidate sets instead of
//!   probing every worker's cache for every input.
//!
//! Exactness: see `DESIGN.md` §Scheduler for the argument that every skipped
//! examination would have failed in the reference matcher, and that failed
//! reference examinations have no observable side effects — which together
//! make the indexed scheduler placement-for-placement identical.

use crate::master::SchedulePolicy;
use crate::task::TaskSpec;
use crate::worker::Worker;
use lfm_simcluster::node::Resources;
use lfm_simcluster::time::SimTime;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet};

/// Which dispatch implementation a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedImpl {
    /// The original rescan-everything greedy matcher, kept as the test
    /// oracle for seed-equivalence suites (and as the benchmark baseline).
    Reference,
    /// The indexed, event-driven scheduler (behavior-identical, default).
    #[default]
    Indexed,
}

/// A queued task attempt.
#[derive(Debug, Clone)]
pub(crate) struct Pending {
    pub task_idx: usize,
    pub attempt: u32,
    /// When this attempt became ready (for queue-wait spans).
    pub since: SimTime,
}

/// Total examination order: `(policy_rank, seq)`. Smaller examines first.
pub(crate) type OrderKey = (u64, i64);

/// Park-group identity: `(category id, attempt > 0)`. Every member of a
/// group receives the same allocation decision at any instant, because the
/// allocator decides per category and treats all retries alike.
pub(crate) type GroupKey = (u32, bool);

/// The policy component of an [`OrderKey`]. Bitwise NOT turns "largest
/// first" into an ascending sort key.
pub(crate) fn policy_rank(policy: SchedulePolicy, peak_memory_mb: u64) -> u64 {
    match policy {
        SchedulePolicy::Fifo => 0,
        SchedulePolicy::LargestFirst => !peak_memory_mb,
        SchedulePolicy::SmallestFirst => peak_memory_mb,
    }
}

/// Why a group failed its last examination. The stored reason is a
/// *certificate* that re-examining the group is pointless until a wake
/// condition specific to the reason occurs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ParkReason {
    /// Sized first attempts hit the slow-start concurrency cap. Invalidated
    /// by any completion/eviction of the category (running count fell, or
    /// the cap itself moved with the new sample).
    SlowStart,
    /// No worker could fit this resolved allocation. Invalidated by a
    /// worker arrival, by freed capacity that fits the stored vector, or by
    /// the category's label changing (the vector itself is stale then).
    NoFit(Resources),
}

#[derive(Debug)]
struct ParkGroup {
    reason: ParkReason,
    members: BTreeMap<OrderKey, Pending>,
}

/// Where the next-in-order candidate lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Src {
    Ready,
    Group(GroupKey),
}

/// The indexed scheduler state. Owned by the master when
/// [`SchedImpl::Indexed`] is active.
#[derive(Debug)]
pub(crate) struct IndexedSched {
    policy: SchedulePolicy,
    /// Tasks awaiting their first examination since (re-)enqueue.
    ready: BTreeMap<OrderKey, Pending>,
    /// Tasks whose last examination failed, grouped by (category, retry).
    groups: BTreeMap<GroupKey, ParkGroup>,
    /// Groups with a pending wake: their heads compete with `ready` in the
    /// next dispatch pass. Waking is lazy — members never move.
    runnable: BTreeSet<GroupKey>,
    /// Total members across all groups (so `len` is O(1)).
    parked: usize,
    /// `push_front` seqs: start at -1 and decrease.
    front_seq: i64,
    /// `push_back` seqs: start at 0 and increase.
    back_seq: i64,
    /// (free cores, Reverse(worker id)) for every live worker. Reverse
    /// iteration yields most-free-first with lowest-id tie-break — the
    /// reference `pick_worker` preference.
    cap_index: BTreeSet<(u32, Reverse<u32>)>,
    /// file name → workers with it cached (mirrors `Worker::insert_cached`).
    file_index: BTreeMap<String, BTreeSet<u32>>,
}

impl IndexedSched {
    pub fn new(policy: SchedulePolicy) -> Self {
        IndexedSched {
            policy,
            ready: BTreeMap::new(),
            groups: BTreeMap::new(),
            runnable: BTreeSet::new(),
            parked: 0,
            front_seq: -1,
            back_seq: 0,
            cap_index: BTreeSet::new(),
            file_index: BTreeMap::new(),
        }
    }

    /// Ready + parked tasks (the reference queue length).
    pub fn len(&self) -> usize {
        self.ready.len() + self.parked
    }

    /// Every pending task — ready and parked alike — in global examination
    /// order (merged by [`OrderKey`]). This is the durability snapshot's
    /// canonical pending enumeration: the reference scheduler produces the
    /// identical sequence by stable-sorting its deque by
    /// [`policy_rank`], because within a rank, deque order always equals
    /// seq order.
    pub fn snapshot_pending(&self) -> Vec<Pending> {
        let mut all: Vec<(OrderKey, Pending)> = self
            .ready
            .iter()
            .chain(self.groups.values().flat_map(|g| g.members.iter()))
            .map(|(&k, p)| (k, p.clone()))
            .collect();
        all.sort_by_key(|&(k, _)| k);
        all.into_iter().map(|(_, p)| p).collect()
    }

    fn rank(&self, task: &TaskSpec) -> u64 {
        policy_rank(self.policy, task.profile.peak_memory_mb)
    }

    /// Enqueue at the back of the examination order (new arrivals).
    pub fn push_back(&mut self, task: &TaskSpec, item: Pending) {
        let key = (self.rank(task), self.back_seq);
        self.back_seq += 1;
        self.ready.insert(key, item);
    }

    /// Enqueue at the front of the examination order (retries, evictions).
    pub fn push_front(&mut self, task: &TaskSpec, item: Pending) {
        let key = (self.rank(task), self.front_seq);
        self.front_seq -= 1;
        self.ready.insert(key, item);
    }

    // ---- dispatch-pass primitives ----

    /// The source holding the smallest order key among `ready` and all
    /// runnable group heads, or None when nothing is examinable.
    pub fn peek_min(&self) -> Option<Src> {
        let mut best: Option<(OrderKey, Src)> = self.ready.keys().next().map(|&k| (k, Src::Ready));
        for &gk in &self.runnable {
            let head = *self.groups[&gk]
                .members
                .keys()
                .next()
                .expect("runnable group is non-empty");
            if best.is_none_or(|(bk, _)| head < bk) {
                best = Some((head, Src::Group(gk)));
            }
        }
        best.map(|(_, src)| src)
    }

    pub fn pop_ready(&mut self) -> (OrderKey, Pending) {
        self.ready.pop_first().expect("peek_min said ready")
    }

    pub fn pop_group_head(&mut self, gk: GroupKey) -> (OrderKey, Pending) {
        let g = self.groups.get_mut(&gk).expect("runnable group exists");
        let (key, item) = g.members.pop_first().expect("runnable group non-empty");
        self.parked -= 1;
        (key, item)
    }

    /// Remove a group emptied by successful placements.
    pub fn drop_group_if_empty(&mut self, gk: GroupKey) {
        if self.groups.get(&gk).is_some_and(|g| g.members.is_empty()) {
            self.groups.remove(&gk);
            self.runnable.remove(&gk);
        }
    }

    /// Is this group parked and *not* scheduled for re-examination? Fresh
    /// arrivals for such groups are parked directly: no wake event has
    /// occurred since the group's last failed examination, so the same
    /// failure certificate covers them.
    pub fn is_asleep(&self, gk: GroupKey) -> bool {
        self.groups.contains_key(&gk) && !self.runnable.contains(&gk)
    }

    /// Park `item` under `gk`. `reason: Some` records a fresh failure
    /// verdict (overwriting any stale one) and puts the group to sleep;
    /// `None` joins an existing group without touching its certificate.
    pub fn park(&mut self, gk: GroupKey, reason: Option<ParkReason>, key: OrderKey, item: Pending) {
        match reason {
            Some(r) => {
                let g = self.groups.entry(gk).or_insert_with(|| ParkGroup {
                    reason: r.clone(),
                    members: BTreeMap::new(),
                });
                g.reason = r;
                self.runnable.remove(&gk);
                g.members.insert(key, item);
            }
            None => {
                let g = self.groups.get_mut(&gk).expect("joining an existing group");
                g.members.insert(key, item);
            }
        }
        self.parked += 1;
    }

    // ---- wake protocol ----

    /// A task of `cat` finished (or was evicted): its running count fell and
    /// — on finishes — its sample set grew, so a slow-start verdict for the
    /// category's first attempts is stale. `label_changed` additionally
    /// invalidates a NoFit verdict: the parked allocation vector itself is
    /// no longer what the group would be offered.
    pub fn wake_category(&mut self, cat: u32, label_changed: bool) {
        let gk = (cat, false);
        if let Some(g) = self.groups.get(&gk) {
            if label_changed || g.reason == ParkReason::SlowStart {
                self.runnable.insert(gk);
            }
        }
    }

    /// Capacity was freed on a worker now offering `avail`: wake every
    /// NoFit group whose stored allocation fits it. Groups whose vector
    /// still doesn't fit keep their certificate — no other worker's
    /// capacity grew since they parked.
    pub fn wake_fitting(&mut self, avail: &Resources) {
        for (gk, g) in &self.groups {
            if let ParkReason::NoFit(r) = &g.reason {
                if r.fits_in(avail) {
                    self.runnable.insert(*gk);
                }
            }
        }
    }

    /// A fresh worker arrived: every resolved allocation fits an empty
    /// worker (resolution clamps to the node spec), so every NoFit
    /// certificate is void.
    pub fn wake_all_nofit(&mut self) {
        for (gk, g) in &self.groups {
            if matches!(g.reason, ParkReason::NoFit(_)) {
                self.runnable.insert(*gk);
            }
        }
    }

    // ---- worker capacity / file-cache indexes ----

    pub fn worker_added(&mut self, id: u32, free_cores: u32) {
        self.cap_index.insert((free_cores, Reverse(id)));
    }

    pub fn worker_removed<'a>(
        &mut self,
        id: u32,
        free_cores: u32,
        cached_files: impl Iterator<Item = &'a str>,
    ) {
        self.cap_index.remove(&(free_cores, Reverse(id)));
        for f in cached_files {
            if let Some(set) = self.file_index.get_mut(f) {
                set.remove(&id);
                if set.is_empty() {
                    self.file_index.remove(f);
                }
            }
        }
    }

    /// Take a worker out of the capacity index without tearing down its
    /// file index (quarantine: the worker is alive, its cache intact, but
    /// it must not receive placements).
    pub fn worker_offline(&mut self, id: u32, free_cores: u32) {
        self.cap_index.remove(&(free_cores, Reverse(id)));
    }

    /// Put a quarantined worker back into the capacity index on release.
    pub fn worker_online(&mut self, id: u32, free_cores: u32) {
        self.cap_index.insert((free_cores, Reverse(id)));
    }

    pub fn update_free(&mut self, id: u32, old_free: u32, new_free: u32) {
        if old_free != new_free {
            self.cap_index.remove(&(old_free, Reverse(id)));
            self.cap_index.insert((new_free, Reverse(id)));
        }
    }

    /// `file` newly entered `id`'s cache.
    pub fn file_cached(&mut self, file: &str, id: u32) {
        self.file_index
            .entry(file.to_string())
            .or_default()
            .insert(id);
    }

    /// Give up to `max` first-attempt pending items from the *back* of the
    /// global examination order — the coldest work under every policy — to
    /// a federation work-stealing balancer. Retries (attempt > 0) are never
    /// taken: their accounting is anchored to the home shard. Returns the
    /// stolen items warm-first (ascending order key), matching the
    /// reference scheduler's policy-view enumeration.
    pub fn steal_last(&mut self, max: usize) -> Vec<Pending> {
        let mut out: Vec<Pending> = Vec::new();
        while out.len() < max {
            // The largest order key among stealable (attempt == 0) items in
            // `ready` and in every park group. Groups are searched whether
            // runnable or asleep — parked work is exactly what a hot shard
            // cannot start soon.
            let mut best: Option<(OrderKey, Option<GroupKey>)> = None;
            if let Some((&k, _)) = self.ready.iter().rev().find(|(_, p)| p.attempt == 0) {
                best = Some((k, None));
            }
            for (&gk, g) in &self.groups {
                if let Some((&k, _)) = g.members.iter().rev().find(|(_, p)| p.attempt == 0) {
                    if best.is_none_or(|(bk, _)| k > bk) {
                        best = Some((k, Some(gk)));
                    }
                }
            }
            let Some((key, src)) = best else { break };
            let item = match src {
                None => self.ready.remove(&key).expect("found in ready"),
                Some(gk) => {
                    let g = self.groups.get_mut(&gk).expect("found in group");
                    let item = g.members.remove(&key).expect("found member");
                    self.parked -= 1;
                    if g.members.is_empty() {
                        self.groups.remove(&gk);
                        self.runnable.remove(&gk);
                    }
                    item
                }
            };
            out.push(item);
        }
        out.reverse();
        out
    }

    /// Choose a worker for `task` under `alloc`: prefer one with all the
    /// task's cacheable inputs already local, then the one with most free
    /// cores, lowest id breaking ties — exactly the reference preference,
    /// computed from the indexes instead of a full scan.
    pub fn pick_worker(
        &self,
        workers: &BTreeMap<u32, Worker>,
        task: &TaskSpec,
        alloc: &Resources,
    ) -> Option<u32> {
        // Cached-preference path: intersect the holders of every cacheable
        // input (iterate the smallest set, probe the rest), then take the
        // most-free fitting worker among them.
        let mut holder_sets: Vec<&BTreeSet<u32>> = Vec::new();
        let mut cacheable = false;
        for f in task.inputs.iter().filter(|f| f.cacheable) {
            cacheable = true;
            match self.file_index.get(&f.name) {
                Some(set) => holder_sets.push(set),
                // Nobody holds this file: the intersection is empty.
                None => {
                    holder_sets.clear();
                    break;
                }
            }
        }
        if cacheable && !holder_sets.is_empty() {
            holder_sets.sort_by_key(|s| s.len());
            let (smallest, rest) = holder_sets.split_first().expect("non-empty");
            let mut best: Option<(u32, u32)> = None; // (free, id)
            for &id in smallest.iter() {
                if !rest.iter().all(|s| s.contains(&id)) {
                    continue;
                }
                let w = &workers[&id];
                if w.quarantined || !w.node.can_fit(alloc) {
                    continue;
                }
                let free = w.node.available().cores;
                // Ascending-id iteration: replace only on strictly more
                // free cores, keeping the lowest id among ties.
                if best.is_none_or(|(bf, _)| free > bf) {
                    best = Some((free, id));
                }
            }
            if let Some((_, id)) = best {
                return Some(id);
            }
        }
        // No cacheable inputs (every worker counts as "cached") or no cached
        // worker fits: most free cores wins. The index iterates free-cores
        // descending with ascending-id tie-break; the first full fit wins,
        // and once free cores drop below the request nothing later can fit.
        for &(free, Reverse(id)) in self.cap_index.iter().rev() {
            if free < alloc.cores {
                break;
            }
            if workers[&id].node.can_fit(alloc) {
                return Some(id);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::files::FileRef;
    use crate::task::TaskId;
    use lfm_monitor::sim::SimTaskProfile;
    use lfm_simcluster::node::NodeSpec;

    fn task(id: u64, mem: u64, inputs: Vec<FileRef>) -> TaskSpec {
        TaskSpec::new(
            TaskId(id),
            "cat",
            inputs,
            0,
            SimTaskProfile::new(10.0, 1.0, mem, 100),
        )
    }

    fn pending(idx: usize) -> Pending {
        Pending {
            task_idx: idx,
            attempt: 0,
            since: SimTime::ZERO,
        }
    }

    #[test]
    fn order_keys_reproduce_policy_order() {
        // LargestFirst: bigger memory → smaller rank → examined first, with
        // insertion order breaking ties.
        let mut ix = IndexedSched::new(SchedulePolicy::LargestFirst);
        ix.push_back(&task(0, 100, vec![]), pending(0));
        ix.push_back(&task(1, 500, vec![]), pending(1));
        ix.push_back(&task(2, 500, vec![]), pending(2));
        let mut order = Vec::new();
        while ix.peek_min() == Some(Src::Ready) {
            order.push(ix.pop_ready().1.task_idx);
        }
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn push_front_examines_before_everything() {
        let mut ix = IndexedSched::new(SchedulePolicy::Fifo);
        ix.push_back(&task(0, 1, vec![]), pending(0));
        ix.push_front(&task(1, 1, vec![]), pending(1));
        ix.push_front(&task(2, 1, vec![]), pending(2));
        // Later front pushes land in front of earlier ones (deque order).
        let mut order = Vec::new();
        while ix.peek_min().is_some() {
            order.push(ix.pop_ready().1.task_idx);
        }
        assert_eq!(order, vec![2, 1, 0]);
    }

    #[test]
    fn parked_groups_hidden_until_woken() {
        let mut ix = IndexedSched::new(SchedulePolicy::Fifo);
        ix.push_back(&task(0, 1, vec![]), pending(0));
        let (key, item) = ix.pop_ready();
        ix.park((0, false), Some(ParkReason::SlowStart), key, item);
        assert_eq!(ix.len(), 1);
        assert!(ix.is_asleep((0, false)));
        assert_eq!(ix.peek_min(), None);
        ix.wake_category(0, false);
        assert_eq!(ix.peek_min(), Some(Src::Group((0, false))));
        let (_, item) = ix.pop_group_head((0, false));
        assert_eq!(item.task_idx, 0);
        assert_eq!(ix.len(), 0);
    }

    #[test]
    fn nofit_wakes_only_on_fitting_capacity() {
        let mut ix = IndexedSched::new(SchedulePolicy::Fifo);
        ix.push_back(&task(0, 1, vec![]), pending(0));
        let (key, item) = ix.pop_ready();
        let want = Resources::new(4, 1000, 1000);
        ix.park((0, false), Some(ParkReason::NoFit(want)), key, item);
        ix.wake_category(0, false); // not a SlowStart park, no label change
        assert!(ix.is_asleep((0, false)));
        ix.wake_fitting(&Resources::new(2, 8000, 8000)); // too few cores
        assert!(ix.is_asleep((0, false)));
        ix.wake_fitting(&Resources::new(4, 1000, 1000));
        assert!(!ix.is_asleep((0, false)));
    }

    #[test]
    fn label_change_wakes_nofit_group() {
        let mut ix = IndexedSched::new(SchedulePolicy::Fifo);
        ix.push_back(&task(0, 1, vec![]), pending(0));
        let (key, item) = ix.pop_ready();
        ix.park(
            (0, false),
            Some(ParkReason::NoFit(Resources::new(8, 1, 1))),
            key,
            item,
        );
        ix.wake_category(0, true);
        assert!(!ix.is_asleep((0, false)));
    }

    #[test]
    fn pick_worker_prefers_cached_then_free_cores() {
        let spec = NodeSpec::new(8, 8192, 16384);
        let mut workers = BTreeMap::new();
        for id in 0..3u32 {
            workers.insert(id, Worker::new(id, spec));
        }
        let mut ix = IndexedSched::new(SchedulePolicy::Fifo);
        for id in 0..3u32 {
            ix.worker_added(id, 8);
        }
        let env = FileRef::environment("env", 100, 600, 10, 1);
        // Worker 2 holds the env; worker 0 has more free cores.
        assert!(workers.get_mut(&2).unwrap().insert_cached(&env));
        ix.file_cached("env", 2);
        assert!(workers
            .get_mut(&2)
            .unwrap()
            .node
            .allocate(Resources::new(4, 1, 1)));
        ix.update_free(2, 8, 4);
        let t = task(0, 1, vec![env.clone()]);
        let alloc = Resources::new(1, 100, 100);
        // Cached worker wins despite fewer free cores.
        assert_eq!(ix.pick_worker(&workers, &t, &alloc), Some(2));
        // Without cacheable inputs, most free cores + lowest id wins.
        let t2 = task(1, 1, vec![]);
        assert_eq!(ix.pick_worker(&workers, &t2, &alloc), Some(0));
        // Cached worker full: fall back to the most-free fitting worker.
        assert!(workers
            .get_mut(&2)
            .unwrap()
            .node
            .allocate(Resources::new(4, 1, 1)));
        ix.update_free(2, 4, 0);
        assert_eq!(ix.pick_worker(&workers, &t, &alloc), Some(0));
    }

    #[test]
    fn steal_last_takes_coldest_first_attempts_only() {
        let mut ix = IndexedSched::new(SchedulePolicy::SmallestFirst);
        // Examination order by memory: 1 (100) < 0 (300) < 2 (900).
        ix.push_back(&task(0, 300, vec![]), pending(0));
        ix.push_back(&task(1, 100, vec![]), pending(1));
        ix.push_back(&task(2, 900, vec![]), pending(2));
        // A retry at the very back of the order must not be stealable.
        let retry = Pending {
            task_idx: 3,
            attempt: 2,
            since: SimTime::ZERO,
        };
        ix.push_back(&task(3, 5000, vec![]), retry);
        // Park one candidate: parked work is stealable too.
        let (key, item) = ix.pop_ready(); // task 1, warmest
        ix.park((0, false), Some(ParkReason::SlowStart), key, item);
        let stolen = ix.steal_last(2);
        let idxs: Vec<usize> = stolen.iter().map(|p| p.task_idx).collect();
        // Coldest two first attempts (0 then 2), warm-first order.
        assert_eq!(idxs, vec![0, 2]);
        // The retry and the parked task remain.
        assert_eq!(ix.len(), 2);
        let rest: Vec<usize> = ix.snapshot_pending().iter().map(|p| p.task_idx).collect();
        assert_eq!(rest, vec![1, 3]);
    }

    #[test]
    fn worker_removal_tears_down_indexes() {
        let spec = NodeSpec::new(8, 8192, 16384);
        let mut workers = BTreeMap::new();
        workers.insert(1u32, Worker::new(1, spec));
        let mut ix = IndexedSched::new(SchedulePolicy::Fifo);
        ix.worker_added(1, 8);
        ix.worker_added(2, 8);
        let env = FileRef::environment("env", 100, 600, 10, 1);
        workers.get_mut(&1).unwrap().insert_cached(&env);
        ix.file_cached("env", 2);
        ix.worker_removed(2, 8, std::iter::once("env"));
        let t = task(0, 1, vec![env]);
        // Worker 2 gone from both indexes: the env holder set is empty, and
        // capacity falls back to worker 1.
        assert_eq!(
            ix.pick_worker(&workers, &t, &Resources::new(1, 1, 1)),
            Some(1)
        );
    }
}
