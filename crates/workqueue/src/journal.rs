//! Write-ahead journal and compacting snapshots for the durable master.
//!
//! The master is a single point of failure: worker churn, lost messages,
//! and staging faults are all survivable (PR 4), but losing the master
//! loses the run — including the converged allocator labels the paper's
//! automatic allocation spent a whole exploration phase learning. This
//! module makes the master's *logical* state durable:
//!
//! * **Records** — every state-changing transition appends one `Record`
//!   to the journal: task (re-)enqueues, placements, attempt outcomes,
//!   allocator observations, quarantine entries/releases, degradation, and
//!   plain counter bumps. Records are written at placement-identical points,
//!   so the Reference and Indexed schedulers produce byte-identical
//!   journals — the equivalence suites pin recovery for free.
//! * **Snapshots** — a `MasterImage` is a complete serialized image of
//!   the master-logical state (pending queue in examination order, live
//!   placements with lease deadlines, allocator sample stores, dependency
//!   countdowns, quarantine ledger, report counters). Installing one
//!   compacts the journal: recovery replays only the record tail written
//!   since.
//! * **Recovery** — `image = snapshot ⊕ replay(tail)`, then the master
//!   rebuilds either scheduler implementation from the image. World state
//!   (workers, caches, the shared filesystem, the network, in-flight
//!   completions) survives a master crash by definition — only the
//!   coordinator's memory is lost.
//!
//! Everything is encoded with a small hand-rolled little-endian binary
//! format (the vendored serde is a stub): `u8` tags, fixed-width LE
//! integers, `f64` as raw bits (exact round-trip), and length-prefixed
//! strings. See DESIGN.md §5e for the format and the recovery invariants.

use crate::files::{FileKind, FileRef};
use crate::task::{TaskId, TaskResult, TaskSpec};
use lfm_monitor::report::{MonitorOutcome, ResourceKind, ResourceReport};
use lfm_monitor::sim::SimTaskProfile;
use lfm_simcluster::node::Resources;
use lfm_simcluster::time::SimTime;
use std::collections::{BTreeMap, VecDeque};

/// Durability knobs for the master. Defaults to journaling off — a
/// fault-free run writes no journal and behaves bit-identically to the
/// pre-durability master.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DurabilityConfig {
    /// Append a write-ahead record per state-changing event. Without a
    /// journal a master crash is a full restart: the run starts over and
    /// every pre-crash completion is lost (the bench baseline).
    pub journal: bool,
    /// Install a compacting snapshot every this many journal records.
    /// `None` never snapshots: recovery replays the whole journal.
    pub snapshot_every: Option<u64>,
    /// Fixed downtime per master crash (process restart, reconnects).
    pub restart_secs: f64,
    /// Additional downtime per replayed journal record — what snapshot
    /// compaction buys down.
    pub replay_secs_per_event: f64,
    /// Test hook: at the first quiescent point (no live placements) at or
    /// after this many processed events, snapshot → wipe → restore the
    /// master through the full encode/decode path and keep running. Used by
    /// the recovery-equivalence suites to pin that a restored master is
    /// bitwise-indistinguishable from an uninterrupted one.
    pub probe_restore_at: Option<u64>,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            journal: false,
            snapshot_every: None,
            restart_secs: 5.0,
            replay_secs_per_event: 1e-3,
            probe_restore_at: None,
        }
    }
}

impl DurabilityConfig {
    /// No durability at all: a crash is a full restart (the default).
    pub fn none() -> Self {
        DurabilityConfig::default()
    }

    /// Write-ahead journal without snapshots: recovery replays every record
    /// since run start.
    pub fn journal_only() -> Self {
        DurabilityConfig {
            journal: true,
            ..DurabilityConfig::default()
        }
    }

    /// Journal plus a compacting snapshot every `every` records.
    pub fn journal_with_snapshots(every: u64) -> Self {
        assert!(every > 0, "snapshot interval must be positive");
        DurabilityConfig {
            journal: true,
            snapshot_every: Some(every),
            ..DurabilityConfig::default()
        }
    }
}

/// Report counters that journal as plain deltas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CounterKey {
    WorkersProvisioned,
    WorkersLost,
    TasksLost,
    LeaseReclaims,
    StageInFailures,
    SpuriousKills,
    ResultMsgsLost,
    LostCoreSecs,
}

impl CounterKey {
    fn tag(self) -> u8 {
        match self {
            CounterKey::WorkersProvisioned => 0,
            CounterKey::WorkersLost => 1,
            CounterKey::TasksLost => 2,
            CounterKey::LeaseReclaims => 3,
            CounterKey::StageInFailures => 4,
            CounterKey::SpuriousKills => 5,
            CounterKey::ResultMsgsLost => 6,
            CounterKey::LostCoreSecs => 7,
        }
    }

    fn from_tag(t: u8) -> Result<Self, JournalError> {
        Ok(match t {
            0 => CounterKey::WorkersProvisioned,
            1 => CounterKey::WorkersLost,
            2 => CounterKey::TasksLost,
            3 => CounterKey::LeaseReclaims,
            4 => CounterKey::StageInFailures,
            5 => CounterKey::SpuriousKills,
            6 => CounterKey::ResultMsgsLost,
            7 => CounterKey::LostCoreSecs,
            _ => return Err(JournalError::BadTag("counter", t)),
        })
    }
}

/// One write-ahead record. Each variant mirrors exactly one state-changing
/// transition in the master; replay applies the same mutation to a
/// [`MasterImage`].
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Record {
    /// Journal header: sanity-checks that a journal is replayed against the
    /// run that wrote it.
    RunStart {
        seed: u64,
        task_count: u64,
        worker_count: u32,
    },
    /// A task attempt entered the pending queue (front or back). Replaying
    /// an enqueue also retires any armed backoff timer for the same
    /// attempt: the timer fired.
    Enqueue {
        task_idx: u64,
        attempt: u32,
        front: bool,
        since: SimTime,
    },
    /// A backed-off infra requeue was armed to fire at `at`.
    BackoffArm {
        task_idx: u64,
        attempt: u32,
        at: SimTime,
    },
    /// An attempt was placed on a worker; `lease_at` is the absolute lease
    /// deadline (None when leases are unarmed).
    Placed {
        placement: u64,
        worker: u32,
        task_idx: u64,
        attempt: u32,
        alloc: Resources,
        started_at: SimTime,
        lease_at: Option<SimTime>,
    },
    /// A live placement turned zombie (its result message was lost).
    Zombie { placement: u64 },
    /// A placement left the live set (completion, lease reclaim, eviction).
    Freed { placement: u64 },
    /// An attempt produced a result row.
    Result(Box<TaskResult>),
    /// A task finished for good: success releases dependents, failure
    /// leaves them to the `Cancelled` records that follow.
    Finished { task_idx: u64, success: bool },
    /// A task was abandoned (retry or infra budget exhausted).
    Abandoned { task_idx: u64 },
    /// A downstream task was transitively cancelled.
    Cancelled { task_idx: u64 },
    /// The allocator observed an attempt's measured usage — the raw inputs
    /// of `Allocator::observe_outcome`, so replay reproduces the sample
    /// stores (and therefore the learned labels) exactly.
    Observe {
        cat: u32,
        peak_cores: f64,
        peak_rss_mb: u64,
        peak_disk_mb: u64,
        completed: bool,
        violated: Option<ResourceKind>,
    },
    /// A task consumed a resource-limit retry.
    Retried { task_idx: u64 },
    /// A task consumed an infrastructure retry; `count` is its new total.
    InfraRetried { task_idx: u64, count: u32 },
    /// A category's backoff streak moved.
    Streak { cat: u32, value: u32 },
    /// A worker's infra-failure attribution count moved.
    WorkerFault { worker: u32, count: u32 },
    /// A worker entered quarantine until `release_at`.
    Quarantined { worker: u32, release_at: SimTime },
    /// A worker left quarantine (timed release).
    QuarantineLifted { worker: u32 },
    /// The packed-env failure counter moved.
    EnvFailure { count: u32 },
    /// Packed-env distribution degraded to the shared FS for good.
    Degraded,
    /// A plain report-counter delta.
    Counter { key: CounterKey, amount: f64 },
    /// A queued first attempt migrated to another shard (federation work
    /// stealing): replay removes it from the pending queue so recovery
    /// cannot resurrect it here.
    Stolen { task_idx: u64, attempt: u32 },
    /// A dependency of `task_idx` completed on another shard: replay
    /// decrements its remaining-dependency count (the matching `Enqueue`
    /// follows when the count reaches zero).
    RemoteDep { task_idx: u64 },
    /// A streamed task was admitted mid-run (`Event::Submit`). The full spec
    /// travels in the record so replay can re-grow the per-task state vectors
    /// (and intern a brand-new category at index `cat`) exactly as the live
    /// master did; the `Enqueue` for the fresh attempt follows immediately.
    Submitted {
        task_idx: u64,
        cat: u32,
        spec: Box<TaskSpec>,
    },
}

/// Why a journal or snapshot failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// Ran out of bytes mid-record.
    Truncated,
    /// An unknown tag byte for the named field.
    BadTag(&'static str, u8),
    /// A length-prefixed string was not UTF-8.
    BadString,
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Truncated => write!(f, "journal truncated mid-record"),
            JournalError::BadTag(what, t) => write!(f, "bad {what} tag byte {t:#x}"),
            JournalError::BadString => write!(f, "journal string is not UTF-8"),
        }
    }
}

impl std::error::Error for JournalError {}

// ---- encoding primitives ----

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i32(out: &mut Vec<u8>, v: i32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}

fn put_time(out: &mut Vec<u8>, t: SimTime) {
    put_f64(out, t.as_secs());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn put_resources(out: &mut Vec<u8>, r: &Resources) {
    put_u32(out, r.cores);
    put_u64(out, r.memory_mb);
    put_u64(out, r.disk_mb);
}

/// A little-endian byte reader over an encoded journal/snapshot.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], JournalError> {
        let end = self.pos.checked_add(n).ok_or(JournalError::Truncated)?;
        if end > self.buf.len() {
            return Err(JournalError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, JournalError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, JournalError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, JournalError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i32(&mut self) -> Result<i32, JournalError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, JournalError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn bool(&mut self) -> Result<bool, JournalError> {
        Ok(self.u8()? != 0)
    }

    fn time(&mut self) -> Result<SimTime, JournalError> {
        let secs = self.f64()?;
        if !(secs.is_finite() && secs >= 0.0) {
            return Err(JournalError::BadTag("sim-time", 0));
        }
        Ok(SimTime::from_secs(secs))
    }

    fn string(&mut self) -> Result<String, JournalError> {
        let len = self.u64()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| JournalError::BadString)
    }

    fn resources(&mut self) -> Result<Resources, JournalError> {
        let cores = self.u32()?;
        let memory_mb = self.u64()?;
        let disk_mb = self.u64()?;
        Ok(Resources::new(cores, memory_mb, disk_mb))
    }
}

fn put_resource_kind(out: &mut Vec<u8>, k: Option<ResourceKind>) {
    put_u8(
        out,
        match k {
            None => 0,
            Some(ResourceKind::Cores) => 1,
            Some(ResourceKind::Memory) => 2,
            Some(ResourceKind::Disk) => 3,
            Some(ResourceKind::WallTime) => 4,
        },
    );
}

fn read_resource_kind(r: &mut Reader<'_>) -> Result<Option<ResourceKind>, JournalError> {
    Ok(match r.u8()? {
        0 => None,
        1 => Some(ResourceKind::Cores),
        2 => Some(ResourceKind::Memory),
        3 => Some(ResourceKind::Disk),
        4 => Some(ResourceKind::WallTime),
        t => return Err(JournalError::BadTag("resource-kind", t)),
    })
}

fn put_report(out: &mut Vec<u8>, r: &ResourceReport) {
    put_f64(out, r.wall_secs);
    put_f64(out, r.cpu_secs);
    put_f64(out, r.peak_cores);
    put_u64(out, r.peak_rss_mb);
    put_u32(out, r.peak_processes);
    put_u64(out, r.peak_disk_mb);
    put_u64(out, r.read_bytes);
    put_u64(out, r.write_bytes);
    put_u64(out, r.polls);
    put_f64(out, r.monitor_overhead_secs);
}

fn read_report(r: &mut Reader<'_>) -> Result<ResourceReport, JournalError> {
    Ok(ResourceReport {
        wall_secs: r.f64()?,
        cpu_secs: r.f64()?,
        peak_cores: r.f64()?,
        peak_rss_mb: r.u64()?,
        peak_processes: r.u32()?,
        peak_disk_mb: r.u64()?,
        read_bytes: r.u64()?,
        write_bytes: r.u64()?,
        polls: r.u64()?,
        monitor_overhead_secs: r.f64()?,
    })
}

fn put_outcome(out: &mut Vec<u8>, o: &MonitorOutcome) {
    match o {
        MonitorOutcome::Completed(rep) => {
            put_u8(out, 0);
            put_report(out, rep);
        }
        MonitorOutcome::LimitExceeded { kind, report } => {
            put_u8(out, 1);
            put_resource_kind(out, Some(*kind));
            put_report(out, report);
        }
        MonitorOutcome::SpuriousKill { report } => {
            put_u8(out, 2);
            put_report(out, report);
        }
        MonitorOutcome::Failed { exit_code, report } => {
            put_u8(out, 3);
            put_i32(out, *exit_code);
            put_report(out, report);
        }
    }
}

fn read_outcome(r: &mut Reader<'_>) -> Result<MonitorOutcome, JournalError> {
    Ok(match r.u8()? {
        0 => MonitorOutcome::Completed(read_report(r)?),
        1 => {
            let kind =
                read_resource_kind(r)?.ok_or(JournalError::BadTag("limit-exceeded-kind", 0))?;
            MonitorOutcome::LimitExceeded {
                kind,
                report: read_report(r)?,
            }
        }
        2 => MonitorOutcome::SpuriousKill {
            report: read_report(r)?,
        },
        3 => MonitorOutcome::Failed {
            exit_code: r.i32()?,
            report: read_report(r)?,
        },
        t => return Err(JournalError::BadTag("monitor-outcome", t)),
    })
}

fn put_result(out: &mut Vec<u8>, tr: &TaskResult) {
    put_u64(out, tr.task.0);
    put_str(out, &tr.category);
    put_u32(out, tr.worker);
    put_resources(out, &tr.allocated);
    put_time(out, tr.submitted_at);
    put_time(out, tr.started_at);
    put_time(out, tr.finished_at);
    put_f64(out, tr.stage_in_secs);
    put_f64(out, tr.exec_secs);
    put_outcome(out, &tr.outcome);
    put_u32(out, tr.attempt);
}

fn read_result(r: &mut Reader<'_>) -> Result<TaskResult, JournalError> {
    Ok(TaskResult {
        task: TaskId(r.u64()?),
        category: r.string()?,
        worker: r.u32()?,
        allocated: r.resources()?,
        submitted_at: r.time()?,
        started_at: r.time()?,
        finished_at: r.time()?,
        stage_in_secs: r.f64()?,
        exec_secs: r.f64()?,
        outcome: read_outcome(r)?,
        attempt: r.u32()?,
    })
}

fn put_file_ref(out: &mut Vec<u8>, f: &FileRef) {
    put_str(out, &f.name);
    put_u64(out, f.size_bytes);
    put_bool(out, f.cacheable);
    match &f.kind {
        FileKind::Data => put_u8(out, 0),
        FileKind::EnvironmentPack {
            unpacked_files,
            relocation_ops,
            unpacked_bytes,
        } => {
            put_u8(out, 1);
            put_u64(out, *unpacked_files);
            put_u64(out, *relocation_ops);
            put_u64(out, *unpacked_bytes);
        }
    }
}

fn read_file_ref(r: &mut Reader<'_>) -> Result<FileRef, JournalError> {
    let name = r.string()?;
    let size_bytes = r.u64()?;
    let cacheable = r.bool()?;
    let kind = match r.u8()? {
        0 => FileKind::Data,
        1 => FileKind::EnvironmentPack {
            unpacked_files: r.u64()?,
            relocation_ops: r.u64()?,
            unpacked_bytes: r.u64()?,
        },
        t => return Err(JournalError::BadTag("file-kind", t)),
    };
    Ok(FileRef {
        name,
        size_bytes,
        cacheable,
        kind,
    })
}

fn put_spec(out: &mut Vec<u8>, spec: &TaskSpec) {
    put_u64(out, spec.id.0);
    put_str(out, &spec.category);
    put_u64(out, spec.inputs.len() as u64);
    for f in &spec.inputs {
        put_file_ref(out, f);
    }
    put_u64(out, spec.output_bytes);
    put_f64(out, spec.profile.duration_secs);
    put_f64(out, spec.profile.cores_used);
    put_u64(out, spec.profile.base_memory_mb);
    put_u64(out, spec.profile.peak_memory_mb);
    put_f64(out, spec.profile.mem_ramp_fraction);
    put_u64(out, spec.profile.peak_disk_mb);
    put_u64(out, spec.deps.len() as u64);
    for d in &spec.deps {
        put_u64(out, d.0);
    }
}

fn read_spec(r: &mut Reader<'_>) -> Result<TaskSpec, JournalError> {
    let id = TaskId(r.u64()?);
    let category = r.string()?;
    let mut inputs = Vec::new();
    for _ in 0..r.u64()? {
        inputs.push(read_file_ref(r)?);
    }
    let output_bytes = r.u64()?;
    let profile = SimTaskProfile {
        duration_secs: r.f64()?,
        cores_used: r.f64()?,
        base_memory_mb: r.u64()?,
        peak_memory_mb: r.u64()?,
        mem_ramp_fraction: r.f64()?,
        peak_disk_mb: r.u64()?,
    };
    let mut deps = Vec::new();
    for _ in 0..r.u64()? {
        deps.push(TaskId(r.u64()?));
    }
    Ok(TaskSpec {
        id,
        category,
        inputs,
        output_bytes,
        profile,
        deps,
    })
}

impl Record {
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Record::RunStart {
                seed,
                task_count,
                worker_count,
            } => {
                put_u8(out, 0);
                put_u64(out, *seed);
                put_u64(out, *task_count);
                put_u32(out, *worker_count);
            }
            Record::Enqueue {
                task_idx,
                attempt,
                front,
                since,
            } => {
                put_u8(out, 1);
                put_u64(out, *task_idx);
                put_u32(out, *attempt);
                put_bool(out, *front);
                put_time(out, *since);
            }
            Record::BackoffArm {
                task_idx,
                attempt,
                at,
            } => {
                put_u8(out, 2);
                put_u64(out, *task_idx);
                put_u32(out, *attempt);
                put_time(out, *at);
            }
            Record::Placed {
                placement,
                worker,
                task_idx,
                attempt,
                alloc,
                started_at,
                lease_at,
            } => {
                put_u8(out, 3);
                put_u64(out, *placement);
                put_u32(out, *worker);
                put_u64(out, *task_idx);
                put_u32(out, *attempt);
                put_resources(out, alloc);
                put_time(out, *started_at);
                match lease_at {
                    None => put_u8(out, 0),
                    Some(t) => {
                        put_u8(out, 1);
                        put_time(out, *t);
                    }
                }
            }
            Record::Zombie { placement } => {
                put_u8(out, 4);
                put_u64(out, *placement);
            }
            Record::Freed { placement } => {
                put_u8(out, 5);
                put_u64(out, *placement);
            }
            Record::Result(tr) => {
                put_u8(out, 6);
                put_result(out, tr);
            }
            Record::Finished { task_idx, success } => {
                put_u8(out, 7);
                put_u64(out, *task_idx);
                put_bool(out, *success);
            }
            Record::Abandoned { task_idx } => {
                put_u8(out, 8);
                put_u64(out, *task_idx);
            }
            Record::Cancelled { task_idx } => {
                put_u8(out, 9);
                put_u64(out, *task_idx);
            }
            Record::Observe {
                cat,
                peak_cores,
                peak_rss_mb,
                peak_disk_mb,
                completed,
                violated,
            } => {
                put_u8(out, 10);
                put_u32(out, *cat);
                put_f64(out, *peak_cores);
                put_u64(out, *peak_rss_mb);
                put_u64(out, *peak_disk_mb);
                put_bool(out, *completed);
                put_resource_kind(out, *violated);
            }
            Record::Retried { task_idx } => {
                put_u8(out, 11);
                put_u64(out, *task_idx);
            }
            Record::InfraRetried { task_idx, count } => {
                put_u8(out, 12);
                put_u64(out, *task_idx);
                put_u32(out, *count);
            }
            Record::Streak { cat, value } => {
                put_u8(out, 13);
                put_u32(out, *cat);
                put_u32(out, *value);
            }
            Record::WorkerFault { worker, count } => {
                put_u8(out, 14);
                put_u32(out, *worker);
                put_u32(out, *count);
            }
            Record::Quarantined { worker, release_at } => {
                put_u8(out, 15);
                put_u32(out, *worker);
                put_time(out, *release_at);
            }
            Record::QuarantineLifted { worker } => {
                put_u8(out, 16);
                put_u32(out, *worker);
            }
            Record::EnvFailure { count } => {
                put_u8(out, 17);
                put_u32(out, *count);
            }
            Record::Degraded => put_u8(out, 18),
            Record::Counter { key, amount } => {
                put_u8(out, 19);
                put_u8(out, key.tag());
                put_f64(out, *amount);
            }
            Record::Stolen { task_idx, attempt } => {
                put_u8(out, 20);
                put_u64(out, *task_idx);
                put_u32(out, *attempt);
            }
            Record::RemoteDep { task_idx } => {
                put_u8(out, 21);
                put_u64(out, *task_idx);
            }
            Record::Submitted {
                task_idx,
                cat,
                spec,
            } => {
                put_u8(out, 22);
                put_u64(out, *task_idx);
                put_u32(out, *cat);
                put_spec(out, spec);
            }
        }
    }

    pub fn decode(r: &mut Reader<'_>) -> Result<Record, JournalError> {
        Ok(match r.u8()? {
            0 => Record::RunStart {
                seed: r.u64()?,
                task_count: r.u64()?,
                worker_count: r.u32()?,
            },
            1 => Record::Enqueue {
                task_idx: r.u64()?,
                attempt: r.u32()?,
                front: r.bool()?,
                since: r.time()?,
            },
            2 => Record::BackoffArm {
                task_idx: r.u64()?,
                attempt: r.u32()?,
                at: r.time()?,
            },
            3 => {
                let placement = r.u64()?;
                let worker = r.u32()?;
                let task_idx = r.u64()?;
                let attempt = r.u32()?;
                let alloc = r.resources()?;
                let started_at = r.time()?;
                let lease_at = match r.u8()? {
                    0 => None,
                    1 => Some(r.time()?),
                    t => return Err(JournalError::BadTag("lease-at", t)),
                };
                Record::Placed {
                    placement,
                    worker,
                    task_idx,
                    attempt,
                    alloc,
                    started_at,
                    lease_at,
                }
            }
            4 => Record::Zombie {
                placement: r.u64()?,
            },
            5 => Record::Freed {
                placement: r.u64()?,
            },
            6 => Record::Result(Box::new(read_result(r)?)),
            7 => Record::Finished {
                task_idx: r.u64()?,
                success: r.bool()?,
            },
            8 => Record::Abandoned { task_idx: r.u64()? },
            9 => Record::Cancelled { task_idx: r.u64()? },
            10 => Record::Observe {
                cat: r.u32()?,
                peak_cores: r.f64()?,
                peak_rss_mb: r.u64()?,
                peak_disk_mb: r.u64()?,
                completed: r.bool()?,
                violated: read_resource_kind(r)?,
            },
            11 => Record::Retried { task_idx: r.u64()? },
            12 => Record::InfraRetried {
                task_idx: r.u64()?,
                count: r.u32()?,
            },
            13 => Record::Streak {
                cat: r.u32()?,
                value: r.u32()?,
            },
            14 => Record::WorkerFault {
                worker: r.u32()?,
                count: r.u32()?,
            },
            15 => Record::Quarantined {
                worker: r.u32()?,
                release_at: r.time()?,
            },
            16 => Record::QuarantineLifted { worker: r.u32()? },
            17 => Record::EnvFailure { count: r.u32()? },
            18 => Record::Degraded,
            19 => Record::Counter {
                key: CounterKey::from_tag(r.u8()?)?,
                amount: r.f64()?,
            },
            20 => Record::Stolen {
                task_idx: r.u64()?,
                attempt: r.u32()?,
            },
            21 => Record::RemoteDep { task_idx: r.u64()? },
            22 => Record::Submitted {
                task_idx: r.u64()?,
                cat: r.u32()?,
                spec: Box::new(read_spec(r)?),
            },
            t => return Err(JournalError::BadTag("record", t)),
        })
    }
}

// ---- the serialized master image (snapshot payload / replay target) ----

/// A live placement as the journal sees it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct PlacementSnap {
    pub worker: u32,
    pub task_idx: u64,
    pub attempt: u32,
    pub alloc: Resources,
    pub started_at: SimTime,
    pub zombie: bool,
    /// Absolute lease deadline; recovery re-arms the lease at
    /// `max(lease_at, now)`.
    pub lease_at: Option<SimTime>,
}

/// One category's allocator state: the raw sample stores (already including
/// the censored-axis inflation applied at observation time) plus the
/// completed count. Restoring replays the values through `record()`, which
/// reproduces labels exactly — the Auto label is a pure function of the
/// sample multiset.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct CategorySnap {
    pub cores: Vec<f64>,
    pub memory_mb: Vec<f64>,
    pub disk_mb: Vec<f64>,
    pub completed: u64,
}

/// The complete serializable image of the master's logical state. A
/// snapshot encodes one; journal replay folds records into one; recovery
/// rebuilds either scheduler implementation from one.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct MasterImage {
    /// Pending queue in examination order: `(task_idx, attempt, since)`.
    /// Snapshots enumerate the policy-sorted order (identical for both
    /// scheduler implementations); replay maintains deque order. Either
    /// preserves the within-rank relative order that determines dispatch.
    pub pending: VecDeque<(u64, u32, SimTime)>,
    /// Armed backoff timers: `(task_idx, attempt, fire_at)`.
    pub backoffs: Vec<(u64, u32, SimTime)>,
    pub placements: BTreeMap<u64, PlacementSnap>,
    pub next_placement: u64,
    /// Allocator sample stores, dense by interned category id.
    pub alloc_stats: Vec<CategorySnap>,
    /// `u64::MAX` = cancelled.
    pub dep_remaining: Vec<u64>,
    pub completed: u64,
    pub abandoned: u64,
    pub results: Vec<TaskResult>,
    pub retried: Vec<u64>,
    pub infra_retried: Vec<u64>,
    pub infra_fail_count: Vec<u32>,
    pub cat_streak: Vec<u32>,
    /// Per-worker infra-failure attribution.
    pub worker_faults: BTreeMap<u32, u32>,
    /// Quarantined workers and their release deadlines, in quarantine-entry
    /// order — recovery re-arms release timers in that order so equal-time
    /// releases keep their original FIFO tie-break.
    pub quarantined_until: Vec<(u32, SimTime)>,
    pub quarantines: u32,
    pub degraded: bool,
    pub env_failures: u32,
    pub workers_provisioned: u32,
    pub workers_lost: u32,
    pub tasks_lost: u64,
    pub lease_reclaims: u64,
    pub stage_in_failures: u64,
    pub spurious_kills: u64,
    pub result_msgs_lost: u64,
    pub lost_core_secs: f64,
}

impl MasterImage {
    /// The image of a freshly constructed master (nothing enqueued yet —
    /// the root enqueues are the first journal records).
    pub fn fresh(dep_remaining: &[usize], task_count: usize, cat_count: usize) -> Self {
        MasterImage {
            dep_remaining: dep_remaining
                .iter()
                .map(|&d| if d == usize::MAX { u64::MAX } else { d as u64 })
                .collect(),
            infra_fail_count: vec![0; task_count],
            cat_streak: vec![0; cat_count],
            alloc_stats: vec![CategorySnap::default(); cat_count],
            ..MasterImage::default()
        }
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u64(&mut out, self.pending.len() as u64);
        for &(t, a, since) in &self.pending {
            put_u64(&mut out, t);
            put_u32(&mut out, a);
            put_time(&mut out, since);
        }
        put_u64(&mut out, self.backoffs.len() as u64);
        for &(t, a, at) in &self.backoffs {
            put_u64(&mut out, t);
            put_u32(&mut out, a);
            put_time(&mut out, at);
        }
        put_u64(&mut out, self.placements.len() as u64);
        for (&id, p) in &self.placements {
            put_u64(&mut out, id);
            put_u32(&mut out, p.worker);
            put_u64(&mut out, p.task_idx);
            put_u32(&mut out, p.attempt);
            put_resources(&mut out, &p.alloc);
            put_time(&mut out, p.started_at);
            put_bool(&mut out, p.zombie);
            match p.lease_at {
                None => put_u8(&mut out, 0),
                Some(t) => {
                    put_u8(&mut out, 1);
                    put_time(&mut out, t);
                }
            }
        }
        put_u64(&mut out, self.next_placement);
        put_u64(&mut out, self.alloc_stats.len() as u64);
        for s in &self.alloc_stats {
            for axis in [&s.cores, &s.memory_mb, &s.disk_mb] {
                put_u64(&mut out, axis.len() as u64);
                for &v in axis {
                    put_f64(&mut out, v);
                }
            }
            put_u64(&mut out, s.completed);
        }
        put_u64(&mut out, self.dep_remaining.len() as u64);
        for &d in &self.dep_remaining {
            put_u64(&mut out, d);
        }
        put_u64(&mut out, self.completed);
        put_u64(&mut out, self.abandoned);
        put_u64(&mut out, self.results.len() as u64);
        for tr in &self.results {
            put_result(&mut out, tr);
        }
        for set in [&self.retried, &self.infra_retried] {
            put_u64(&mut out, set.len() as u64);
            for &t in set {
                put_u64(&mut out, t);
            }
        }
        put_u64(&mut out, self.infra_fail_count.len() as u64);
        for &c in &self.infra_fail_count {
            put_u32(&mut out, c);
        }
        put_u64(&mut out, self.cat_streak.len() as u64);
        for &c in &self.cat_streak {
            put_u32(&mut out, c);
        }
        put_u64(&mut out, self.worker_faults.len() as u64);
        for (&w, &c) in &self.worker_faults {
            put_u32(&mut out, w);
            put_u32(&mut out, c);
        }
        put_u64(&mut out, self.quarantined_until.len() as u64);
        for &(w, t) in &self.quarantined_until {
            put_u32(&mut out, w);
            put_time(&mut out, t);
        }
        put_u32(&mut out, self.quarantines);
        put_bool(&mut out, self.degraded);
        put_u32(&mut out, self.env_failures);
        put_u32(&mut out, self.workers_provisioned);
        put_u32(&mut out, self.workers_lost);
        put_u64(&mut out, self.tasks_lost);
        put_u64(&mut out, self.lease_reclaims);
        put_u64(&mut out, self.stage_in_failures);
        put_u64(&mut out, self.spurious_kills);
        put_u64(&mut out, self.result_msgs_lost);
        put_f64(&mut out, self.lost_core_secs);
        out
    }

    pub fn decode(buf: &[u8]) -> Result<Self, JournalError> {
        let mut r = Reader::new(buf);
        let mut img = MasterImage::default();
        for _ in 0..r.u64()? {
            let t = r.u64()?;
            let a = r.u32()?;
            let since = r.time()?;
            img.pending.push_back((t, a, since));
        }
        for _ in 0..r.u64()? {
            let t = r.u64()?;
            let a = r.u32()?;
            let at = r.time()?;
            img.backoffs.push((t, a, at));
        }
        for _ in 0..r.u64()? {
            let id = r.u64()?;
            let worker = r.u32()?;
            let task_idx = r.u64()?;
            let attempt = r.u32()?;
            let alloc = r.resources()?;
            let started_at = r.time()?;
            let zombie = r.bool()?;
            let lease_at = match r.u8()? {
                0 => None,
                1 => Some(r.time()?),
                t => return Err(JournalError::BadTag("lease-at", t)),
            };
            img.placements.insert(
                id,
                PlacementSnap {
                    worker,
                    task_idx,
                    attempt,
                    alloc,
                    started_at,
                    zombie,
                    lease_at,
                },
            );
        }
        img.next_placement = r.u64()?;
        for _ in 0..r.u64()? {
            let mut s = CategorySnap::default();
            for axis in [&mut s.cores, &mut s.memory_mb, &mut s.disk_mb] {
                for _ in 0..r.u64()? {
                    axis.push(r.f64()?);
                }
            }
            s.completed = r.u64()?;
            img.alloc_stats.push(s);
        }
        for _ in 0..r.u64()? {
            img.dep_remaining.push(r.u64()?);
        }
        img.completed = r.u64()?;
        img.abandoned = r.u64()?;
        for _ in 0..r.u64()? {
            img.results.push(read_result(&mut r)?);
        }
        for _ in 0..r.u64()? {
            img.retried.push(r.u64()?);
        }
        for _ in 0..r.u64()? {
            img.infra_retried.push(r.u64()?);
        }
        for _ in 0..r.u64()? {
            img.infra_fail_count.push(r.u32()?);
        }
        for _ in 0..r.u64()? {
            img.cat_streak.push(r.u32()?);
        }
        for _ in 0..r.u64()? {
            let w = r.u32()?;
            let c = r.u32()?;
            img.worker_faults.insert(w, c);
        }
        for _ in 0..r.u64()? {
            let w = r.u32()?;
            let t = r.time()?;
            img.quarantined_until.push((w, t));
        }
        img.quarantines = r.u32()?;
        img.degraded = r.bool()?;
        img.env_failures = r.u32()?;
        img.workers_provisioned = r.u32()?;
        img.workers_lost = r.u32()?;
        img.tasks_lost = r.u64()?;
        img.lease_reclaims = r.u64()?;
        img.stage_in_failures = r.u64()?;
        img.spurious_kills = r.u64()?;
        img.result_msgs_lost = r.u64()?;
        img.lost_core_secs = r.f64()?;
        Ok(img)
    }
}

// ---- the journal store ----

/// The master's in-memory model of its on-disk write-ahead journal: the
/// latest compacting snapshot (if any) plus every record appended since.
/// `bytes_written` integrates everything ever flushed — records *and*
/// snapshots — which is the `journal_bytes` the report and the recovery
/// bench account.
#[derive(Debug, Default)]
pub(crate) struct Journal {
    snapshot: Option<Vec<u8>>,
    tail: Vec<Record>,
    bytes_written: u64,
    records_since_snapshot: u64,
    scratch: Vec<u8>,
}

impl Journal {
    pub fn new() -> Self {
        Journal::default()
    }

    /// Append one record.
    pub fn append(&mut self, rec: Record) {
        self.scratch.clear();
        rec.encode(&mut self.scratch);
        if cfg!(debug_assertions) {
            // Every record written must read back exactly — catching an
            // encoding drift at append time, not at the next recovery.
            let mut r = Reader::new(&self.scratch);
            let back = Record::decode(&mut r).expect("appended record decodes");
            assert!(r.is_empty(), "record encoding has trailing bytes");
            assert_eq!(back, rec, "record encoding must round-trip");
        }
        self.bytes_written += self.scratch.len() as u64;
        self.records_since_snapshot += 1;
        self.tail.push(rec);
    }

    /// Records appended since the last snapshot (what a recovery replays).
    pub fn tail_len(&self) -> u64 {
        self.tail.len() as u64
    }

    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Should the master install a compacting snapshot now?
    pub fn wants_snapshot(&self, every: Option<u64>) -> bool {
        match every {
            Some(k) => self.records_since_snapshot >= k,
            None => false,
        }
    }

    /// Install a compacting snapshot: the encoded image replaces the whole
    /// record tail.
    pub fn install_snapshot(&mut self, image: &MasterImage) {
        let bytes = image.encode();
        self.bytes_written += bytes.len() as u64;
        self.snapshot = Some(bytes);
        self.tail.clear();
        self.records_since_snapshot = 0;
    }

    /// The snapshot to start recovery from, decoded — or `None` when
    /// recovery must replay from the fresh image.
    pub fn base_image(&self) -> Result<Option<MasterImage>, JournalError> {
        match &self.snapshot {
            Some(bytes) => Ok(Some(MasterImage::decode(bytes)?)),
            None => Ok(None),
        }
    }

    pub fn tail(&self) -> &[Record] {
        &self.tail
    }
}

/// Opaque entry points for the journal micro-benchmarks. The journal's
/// types are crate-private (they are an implementation detail of the
/// durable master), so the bench crate drives representative encode/decode
/// and snapshot round-trip work through these functions instead.
pub mod bench_api {
    use super::*;

    fn sample_record(i: u64) -> Record {
        // A rotating mix weighted toward the hot-path records a real run
        // writes most: enqueues, placements, results, finishes.
        match i % 6 {
            0 => Record::Enqueue {
                task_idx: i,
                attempt: (i % 3) as u32,
                front: i.is_multiple_of(2),
                since: SimTime::from_secs(i as f64 * 0.25),
            },
            1 => Record::Placed {
                placement: i,
                worker: (i % 64) as u32,
                task_idx: i,
                attempt: 0,
                alloc: Resources::new(1, 110 + i % 512, 1024),
                started_at: SimTime::from_secs(i as f64 * 0.5),
                lease_at: i
                    .is_multiple_of(2)
                    .then(|| SimTime::from_secs(i as f64 * 0.5 + 300.0)),
            },
            2 => Record::Result(Box::new(TaskResult {
                task: TaskId(i),
                category: "hep".to_string(),
                worker: (i % 64) as u32,
                allocated: Resources::new(1, 110, 1024),
                submitted_at: SimTime::ZERO,
                started_at: SimTime::from_secs(5.0),
                finished_at: SimTime::from_secs(60.0),
                stage_in_secs: 4.0,
                exec_secs: 51.0,
                outcome: MonitorOutcome::Completed(ResourceReport {
                    wall_secs: 51.0,
                    cpu_secs: 50.0,
                    peak_cores: 1.01,
                    peak_rss_mb: 108,
                    peak_processes: 2,
                    peak_disk_mb: 850,
                    read_bytes: 1 << 28,
                    write_bytes: 1 << 22,
                    polls: 51,
                    monitor_overhead_secs: 0.005,
                }),
                attempt: 0,
            })),
            3 => Record::Finished {
                task_idx: i,
                success: true,
            },
            4 => Record::Freed { placement: i },
            _ => Record::Observe {
                cat: (i % 4) as u32,
                peak_cores: 1.01,
                peak_rss_mb: 108 + i % 64,
                peak_disk_mb: 850,
                completed: true,
                violated: None,
            },
        }
    }

    /// Encode `n` representative records, returning the byte stream.
    pub fn encode_records(n: u64) -> Vec<u8> {
        let mut out = Vec::new();
        for i in 0..n {
            sample_record(i).encode(&mut out);
        }
        out
    }

    /// Decode a stream produced by [`encode_records`], returning the record
    /// count. Panics on malformed input.
    pub fn decode_records(buf: &[u8]) -> usize {
        let mut r = Reader::new(buf);
        let mut n = 0;
        while !r.is_empty() {
            Record::decode(&mut r).expect("bench stream decodes");
            n += 1;
        }
        n
    }

    /// Decode an arbitrary byte stream as journal records, returning how
    /// many decoded cleanly before the stream ended or the first error.
    /// Unlike [`decode_records`] this never panics — it is the entry point
    /// the decoder-robustness proptests drive with corrupt/truncated input.
    pub fn try_decode_records(buf: &[u8]) -> Result<usize, crate::journal::JournalError> {
        let mut r = Reader::new(buf);
        let mut n = 0;
        while !r.is_empty() {
            Record::decode(&mut r)?;
            n += 1;
        }
        Ok(n)
    }

    /// Encode a populated `MasterImage` snapshot for a `tasks`-task run.
    pub fn encode_image(tasks: usize) -> Vec<u8> {
        let deps: Vec<usize> = (0..tasks).map(|i| i % 3).collect();
        let mut img = MasterImage::fresh(&deps, tasks, 4);
        for i in 0..tasks as u64 {
            match i % 3 {
                0 => img.pending.push_back((i, 0, SimTime::from_secs(i as f64))),
                1 => {
                    img.placements.insert(
                        i,
                        PlacementSnap {
                            worker: (i % 64) as u32,
                            task_idx: i,
                            attempt: 0,
                            alloc: Resources::new(1, 110, 1024),
                            started_at: SimTime::from_secs(i as f64),
                            zombie: false,
                            lease_at: Some(SimTime::from_secs(i as f64 + 300.0)),
                        },
                    );
                }
                _ => img.completed += 1,
            }
        }
        for s in &mut img.alloc_stats {
            for v in 0..64 {
                s.cores.push(1.0 + v as f64 * 0.01);
                s.memory_mb.push(100.0 + v as f64);
                s.disk_mb.push(800.0 + v as f64);
            }
            s.completed = 64;
        }
        img.encode()
    }

    /// Decode + re-encode a snapshot, returning whether it round-trips
    /// bitwise (always true; the comparison keeps the work honest).
    pub fn image_roundtrips(bytes: &[u8]) -> bool {
        let img = MasterImage::decode(bytes).expect("bench image decodes");
        img.encode() == bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_result() -> TaskResult {
        TaskResult {
            task: TaskId(7),
            category: "hep".to_string(),
            worker: 3,
            allocated: Resources::new(2, 512, 1024),
            submitted_at: SimTime::ZERO,
            started_at: SimTime::from_secs(10.5),
            finished_at: SimTime::from_secs(99.25),
            stage_in_secs: 4.5,
            exec_secs: 80.0,
            outcome: MonitorOutcome::LimitExceeded {
                kind: ResourceKind::Memory,
                report: ResourceReport {
                    wall_secs: 80.0,
                    cpu_secs: 79.5,
                    peak_cores: 1.01,
                    peak_rss_mb: 620,
                    peak_processes: 3,
                    peak_disk_mb: 900,
                    read_bytes: 1 << 30,
                    write_bytes: 1 << 20,
                    polls: 80,
                    monitor_overhead_secs: 0.008,
                },
            },
            attempt: 1,
        }
    }

    fn all_records() -> Vec<Record> {
        vec![
            Record::RunStart {
                seed: 0xdead_beef,
                task_count: 100,
                worker_count: 8,
            },
            Record::Enqueue {
                task_idx: 3,
                attempt: 1,
                front: true,
                since: SimTime::from_secs(2.5),
            },
            Record::BackoffArm {
                task_idx: 4,
                attempt: 0,
                at: SimTime::from_secs(60.0),
            },
            Record::Placed {
                placement: 42,
                worker: 2,
                task_idx: 3,
                attempt: 1,
                alloc: Resources::new(1, 110, 1024),
                started_at: SimTime::from_secs(5.0),
                lease_at: Some(SimTime::from_secs(305.0)),
            },
            Record::Placed {
                placement: 43,
                worker: 2,
                task_idx: 5,
                attempt: 0,
                alloc: Resources::new(8, 8192, 16384),
                started_at: SimTime::from_secs(5.0),
                lease_at: None,
            },
            Record::Zombie { placement: 42 },
            Record::Freed { placement: 42 },
            Record::Result(Box::new(sample_result())),
            Record::Finished {
                task_idx: 3,
                success: true,
            },
            Record::Abandoned { task_idx: 9 },
            Record::Cancelled { task_idx: 10 },
            Record::Observe {
                cat: 1,
                peak_cores: 1.5,
                peak_rss_mb: 110,
                peak_disk_mb: 900,
                completed: true,
                violated: Some(ResourceKind::Disk),
            },
            Record::Retried { task_idx: 3 },
            Record::InfraRetried {
                task_idx: 4,
                count: 2,
            },
            Record::Streak { cat: 0, value: 3 },
            Record::WorkerFault {
                worker: 2,
                count: 4,
            },
            Record::Quarantined {
                worker: 2,
                release_at: SimTime::from_secs(400.0),
            },
            Record::QuarantineLifted { worker: 2 },
            Record::EnvFailure { count: 5 },
            Record::Degraded,
            Record::Counter {
                key: CounterKey::LostCoreSecs,
                amount: 123.75,
            },
            Record::Stolen {
                task_idx: 11,
                attempt: 0,
            },
            Record::RemoteDep { task_idx: 12 },
            Record::Submitted {
                task_idx: 100,
                cat: 2,
                spec: Box::new(
                    TaskSpec::new(
                        TaskId(100),
                        "stream",
                        vec![
                            FileRef::data("in.pkl", 4096),
                            FileRef::environment("env.tar.gz", 1 << 20, 4 << 20, 500, 80),
                        ],
                        1 << 16,
                        SimTaskProfile {
                            duration_secs: 12.5,
                            cores_used: 1.25,
                            base_memory_mb: 64,
                            peak_memory_mb: 256,
                            mem_ramp_fraction: 0.4,
                            peak_disk_mb: 512,
                        },
                    )
                    .after(vec![TaskId(3)]),
                ),
            },
        ]
    }

    #[test]
    fn every_record_roundtrips() {
        for rec in all_records() {
            let mut buf = Vec::new();
            rec.encode(&mut buf);
            let mut r = Reader::new(&buf);
            let back = Record::decode(&mut r).expect("decodes");
            assert!(r.is_empty(), "trailing bytes after {rec:?}");
            assert_eq!(back, rec);
        }
    }

    #[test]
    fn record_stream_roundtrips() {
        let recs = all_records();
        let mut buf = Vec::new();
        for rec in &recs {
            rec.encode(&mut buf);
        }
        let mut r = Reader::new(&buf);
        let mut back = Vec::new();
        while !r.is_empty() {
            back.push(Record::decode(&mut r).expect("decodes"));
        }
        assert_eq!(back, recs);
    }

    #[test]
    fn truncated_record_reports_error() {
        let mut buf = Vec::new();
        Record::Result(Box::new(sample_result())).encode(&mut buf);
        for cut in [1, buf.len() / 2, buf.len() - 1] {
            let mut r = Reader::new(&buf[..cut]);
            assert!(Record::decode(&mut r).is_err(), "cut at {cut}");
        }
        let mut r = Reader::new(&[0xff]);
        assert_eq!(
            Record::decode(&mut r),
            Err(JournalError::BadTag("record", 0xff))
        );
    }

    #[test]
    fn image_roundtrips_bitwise() {
        let mut img = MasterImage::fresh(&[0, 2, usize::MAX], 3, 2);
        img.pending.push_back((0, 0, SimTime::ZERO));
        img.pending.push_front((2, 1, SimTime::from_secs(3.0)));
        img.backoffs.push((1, 0, SimTime::from_secs(90.0)));
        img.placements.insert(
            5,
            PlacementSnap {
                worker: 1,
                task_idx: 2,
                attempt: 0,
                alloc: Resources::new(1, 110, 1024),
                started_at: SimTime::from_secs(4.0),
                zombie: true,
                lease_at: Some(SimTime::from_secs(304.0)),
            },
        );
        img.next_placement = 6;
        img.alloc_stats[0].cores.push(1.25);
        img.alloc_stats[0].memory_mb.push(110.0);
        img.alloc_stats[0].disk_mb.push(900.0);
        img.alloc_stats[0].completed = 1;
        img.completed = 1;
        img.abandoned = 1;
        img.results.push(sample_result());
        img.retried.push(2);
        img.infra_retried.push(1);
        img.infra_fail_count[1] = 3;
        img.cat_streak[1] = 2;
        img.worker_faults.insert(1, 4);
        img.quarantined_until.push((3, SimTime::from_secs(500.0)));
        img.quarantines = 1;
        img.degraded = true;
        img.env_failures = 6;
        img.workers_provisioned = 9;
        img.workers_lost = 2;
        img.tasks_lost = 3;
        img.lease_reclaims = 1;
        img.stage_in_failures = 2;
        img.spurious_kills = 1;
        img.result_msgs_lost = 1;
        img.lost_core_secs = 55.5;
        let bytes = img.encode();
        let back = MasterImage::decode(&bytes).expect("decodes");
        assert_eq!(back, img);
        // Same image → same bytes (snapshots are deterministic, so the
        // scheduler-equivalence suites pin journal byte-identity too).
        assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn journal_compaction_drops_tail_and_counts_bytes() {
        let mut j = Journal::new();
        assert!(!j.wants_snapshot(Some(2)));
        j.append(Record::Degraded);
        j.append(Record::Freed { placement: 1 });
        assert!(j.wants_snapshot(Some(2)));
        assert!(!j.wants_snapshot(None));
        assert_eq!(j.tail_len(), 2);
        let bytes_before = j.bytes_written();
        assert!(bytes_before > 0);
        let img = MasterImage::fresh(&[0, 0], 2, 1);
        j.install_snapshot(&img);
        assert_eq!(j.tail_len(), 0);
        assert!(!j.wants_snapshot(Some(2)));
        assert!(j.bytes_written() > bytes_before, "snapshot bytes count");
        let base = j.base_image().expect("decodes").expect("present");
        assert_eq!(base, img);
        // A fresh journal has no base image.
        assert!(Journal::new().base_image().unwrap().is_none());
    }

    #[test]
    fn fresh_image_mirrors_dep_state() {
        let img = MasterImage::fresh(&[0, 1, usize::MAX], 3, 2);
        assert_eq!(img.dep_remaining, vec![0, 1, u64::MAX]);
        assert_eq!(img.infra_fail_count, vec![0, 0, 0]);
        assert_eq!(img.cat_streak, vec![0, 0]);
        assert_eq!(img.alloc_stats.len(), 2);
        assert_eq!(img.completed, 0);
    }

    #[test]
    fn durability_presets() {
        let none = DurabilityConfig::none();
        assert!(!none.journal);
        let j = DurabilityConfig::journal_only();
        assert!(j.journal && j.snapshot_every.is_none());
        let s = DurabilityConfig::journal_with_snapshots(256);
        assert_eq!(s.snapshot_every, Some(256));
        assert!(s.restart_secs > 0.0);
    }
}
