//! Automatic resource labeling (§VI-B2, after Tovar et al. \[21\]).
//!
//! Four strategies, matching the paper's evaluation matrix:
//!
//! * **Oracle** — perfect knowledge: request exactly the task's true peak
//!   (supplied per category by the experiment).
//! * **Guess** — a fixed user-provided estimate for every task.
//! * **Unmanaged** — a whole worker per task, no limits.
//! * **Auto** — no prior knowledge: run the first task(s) of each category
//!   under a whole-worker allocation with monitoring, then choose a
//!   first-allocation label that maximizes expected throughput from the
//!   empirical peak-usage distribution; tasks that exhaust the label retry
//!   once at the full worker size.
//!
//! The Auto label for each resource axis is the candidate value `a`
//! minimizing the expected resource·time cost per completed task:
//!
//! ```text
//! E[cost](a) = P(u ≤ a)·a + (1 − P(u ≤ a))·(a + A_retry)
//! ```
//!
//! i.e. successes occupy `a`, failures occupy `a` then retry at the
//! *retry allocation* `A_retry` — a whole worker, whose per-axis capacity
//! the scheduler supplies. Minimizing this trades retry waste against
//! packing density exactly as \[21\] describes.

use lfm_monitor::report::{ResourceKind, ResourceReport};
use lfm_simcluster::metrics::Samples;
use lfm_simcluster::node::Resources;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Which allocation strategy a run uses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Strategy {
    /// Request the per-category resources supplied here (perfect knowledge).
    Oracle(BTreeMap<String, Resources>),
    /// Request this fixed vector for every task.
    Guess(Resources),
    /// A whole worker per task.
    Unmanaged,
    /// Monitor, label, retry — the paper's contribution.
    Auto(AutoConfig),
}

impl Strategy {
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Oracle(_) => "Oracle",
            Strategy::Guess(_) => "Guess",
            Strategy::Unmanaged => "Unmanaged",
            Strategy::Auto(_) => "Auto",
        }
    }
}

/// Tuning for the Auto strategy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AutoConfig {
    /// Completed samples required per category before labeling starts.
    pub min_samples: usize,
    /// Safety multiplier applied to the chosen memory/disk label (small
    /// headroom avoids over-fitting to the samples seen so far).
    pub headroom: f64,
    /// Slow-start: while a category has fewer than this many completed
    /// samples, at most `max(4, 2·samples)` of its sized first attempts run
    /// concurrently. Prevents an immature label from killing a whole wave
    /// at once when the usage distribution has a tail.
    pub slow_start_until: usize,
}

impl Default for AutoConfig {
    fn default() -> Self {
        // Label only after a handful of whole-worker measurement runs, and
        // keep real headroom above the observed max: premature labeling
        // from one sample turns the whole first batch into retries.
        AutoConfig {
            min_samples: 2,
            headroom: 1.25,
            slow_start_until: 16,
        }
    }
}

/// What the allocator tells the master to do for one attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllocationDecision {
    /// Request this vector, enforce it as a limit.
    Sized(Resources),
    /// Take a whole worker, unlimited (measurement run or retry).
    WholeWorker,
}

/// What one observation changed, from the scheduler's point of view. The
/// master's indexed dispatcher parks tasks it cannot place and re-examines
/// them only when an event could change the outcome; this is the allocator's
/// side of that protocol (see `sched.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ObservationEffects {
    /// The category's first-attempt decision changed (an Auto label was
    /// learned or revised) — parked tasks of the category must be re-sized.
    pub label_changed: bool,
    /// The slow-start concurrency cap changed (grew or lifted).
    pub cap_changed: bool,
}

/// Per-category observed peak samples.
#[derive(Debug, Default, Clone)]
struct CategoryStats {
    cores: Samples,
    memory_mb: Samples,
    disk_mb: Samples,
    completed: usize,
    /// Memoized Auto label for a given worker capacity, invalidated on every
    /// new observation. The scheduler consults the label once per dispatch
    /// examination and twice per completion (the change-notification hook);
    /// without the memo each consultation re-sorts the whole sample set.
    label_memo: Option<(Resources, Option<Resources>)>,
}

/// The allocator: owns strategy state and learns from reports.
/// One category's exported sample stores, in canonical (sorted) order:
/// `(cores, memory_mb, disk_mb, completed)`.
pub(crate) type CategorySnapshot = (Vec<f64>, Vec<f64>, Vec<f64>, usize);

#[derive(Debug)]
pub struct Allocator {
    strategy: Strategy,
    stats: BTreeMap<String, CategoryStats>,
    /// Count of label-exceeded retries, for the <1%-retries claim.
    pub retries: u64,
    /// Total first-attempt dispatches.
    pub first_attempts: u64,
}

impl Allocator {
    pub fn new(strategy: Strategy) -> Self {
        Allocator {
            strategy,
            stats: BTreeMap::new(),
            retries: 0,
            first_attempts: 0,
        }
    }

    pub fn strategy(&self) -> &Strategy {
        &self.strategy
    }

    /// Decide the allocation for an attempt of `category`, on workers of
    /// per-node `capacity` (the retry cost the label optimization weighs).
    ///
    /// `attempt` 0 is the first try; higher attempts (after a resource kill)
    /// always get a whole worker, per the paper's retry policy.
    pub fn decide(
        &mut self,
        category: &str,
        attempt: u32,
        capacity: &Resources,
    ) -> AllocationDecision {
        if attempt == 0 {
            self.first_attempts += 1;
        } else {
            self.retries += 1;
            return AllocationDecision::WholeWorker;
        }
        self.peek_decision(category, capacity)
    }

    /// The first-attempt decision [`decide`](Self::decide) would return,
    /// without bumping the attempt counters. The master's indexed scheduler
    /// snapshots this before and after an observation to detect label
    /// changes (`&mut` because Auto labeling sorts its sample store).
    pub fn peek_decision(&mut self, category: &str, capacity: &Resources) -> AllocationDecision {
        match &self.strategy {
            Strategy::Unmanaged => AllocationDecision::WholeWorker,
            Strategy::Guess(r) => AllocationDecision::Sized(*r),
            Strategy::Oracle(map) => map
                .get(category)
                .map(|r| AllocationDecision::Sized(*r))
                .unwrap_or(AllocationDecision::WholeWorker),
            Strategy::Auto(cfg) => {
                let cfg = *cfg;
                match self.auto_label(category, &cfg, capacity) {
                    Some(r) => AllocationDecision::Sized(r),
                    None => AllocationDecision::WholeWorker,
                }
            }
        }
    }

    /// Feed back a finished attempt's measured usage.
    ///
    /// `violated` names the axis a killed attempt exceeded, if any. A kill
    /// observation is *censored*: the task was still growing when the
    /// monitor stopped it, so its peak on that axis is only a lower bound.
    /// Recording it verbatim makes the label creep up one kill at a time;
    /// instead the censored axis is inflated (doubled), the exponential
    /// growth step of the retry policy in \[21\], so labels converge in
    /// O(log) kills rather than O(n).
    pub fn observe(&mut self, category: &str, report: &ResourceReport, completed: bool) {
        self.observe_outcome(category, report, completed, None)
    }

    /// [`observe`](Self::observe) with the violated axis of a killed attempt.
    pub fn observe_outcome(
        &mut self,
        category: &str,
        report: &ResourceReport,
        completed: bool,
        violated: Option<ResourceKind>,
    ) {
        let s = self.stats.entry(category.to_string()).or_default();
        s.label_memo = None;
        match violated {
            None => {
                s.cores.record(report.peak_cores.max(0.01));
                s.memory_mb.record(report.peak_rss_mb.max(1) as f64);
                s.disk_mb.record(report.peak_disk_mb.max(1) as f64);
            }
            // A killed run observed only partial usage: the non-violated
            // axes are truncated lower bounds that would drag the labels
            // down, so only the violated (censored, inflated) axis counts.
            Some(ResourceKind::Cores) => s.cores.record(report.peak_cores.max(0.01) * 2.0),
            Some(ResourceKind::Memory) => {
                s.memory_mb.record(report.peak_rss_mb.max(1) as f64 * 2.0)
            }
            Some(ResourceKind::Disk) => s.disk_mb.record(report.peak_disk_mb.max(1) as f64 * 2.0),
            Some(ResourceKind::WallTime) => {}
        }
        if completed {
            s.completed += 1;
        }
    }

    /// [`observe_outcome`](Self::observe_outcome), reporting whether the
    /// observation changed the category's first-attempt decision or its
    /// slow-start cap. This is the notification hook the indexed scheduler
    /// uses to wake parked tasks of `category` exactly when an allocation
    /// they would be offered has actually changed.
    pub fn observe_outcome_notify(
        &mut self,
        category: &str,
        report: &ResourceReport,
        completed: bool,
        violated: Option<ResourceKind>,
        capacity: &Resources,
    ) -> ObservationEffects {
        let label_before = self.peek_decision(category, capacity);
        let cap_before = self.concurrency_cap(category);
        self.observe_outcome(category, report, completed, violated);
        ObservationEffects {
            label_changed: self.peek_decision(category, capacity) != label_before,
            cap_changed: self.concurrency_cap(category) != cap_before,
        }
    }

    /// Snapshot one category's sample stores for the durability journal.
    /// Values are exported in
    /// canonical (sorted) order — the label is a pure function of the
    /// sample *multiset*, and the store's physical order depends on when
    /// lazy label sorts happened, which differs between scheduler
    /// implementations. Canonical order keeps snapshot bytes identical
    /// wherever the multiset is.
    pub(crate) fn snapshot_category(&self, category: &str) -> Option<CategorySnapshot> {
        let s = self.stats.get(category)?;
        let canonical = |samples: &Samples| {
            let mut v: Vec<f64> = samples.iter().collect();
            v.sort_by(|a, b| a.total_cmp(b));
            v
        };
        Some((
            canonical(&s.cores),
            canonical(&s.memory_mb),
            canonical(&s.disk_mb),
            s.completed,
        ))
    }

    /// Rebuild one category's stats from a snapshot — the inverse of
    /// [`snapshot_category`](Self::snapshot_category). Only valid on a
    /// category this allocator has never observed (recovery starts from a
    /// fresh allocator).
    pub(crate) fn restore_category(
        &mut self,
        category: &str,
        cores: &[f64],
        memory_mb: &[f64],
        disk_mb: &[f64],
        completed: usize,
    ) {
        let s = self.stats.entry(category.to_string()).or_default();
        assert!(
            s.cores.is_empty() && s.memory_mb.is_empty() && s.disk_mb.is_empty(),
            "restore_category over live stats for {category}"
        );
        for &v in cores {
            s.cores.record(v);
        }
        for &v in memory_mb {
            s.memory_mb.record(v);
        }
        for &v in disk_mb {
            s.disk_mb.record(v);
        }
        s.completed = completed;
    }

    /// Completed-sample count for a category (None until first observation).
    pub fn samples_for(&self, category: &str) -> usize {
        self.stats.get(category).map(|s| s.completed).unwrap_or(0)
    }

    /// Slow-start concurrency cap for sized first attempts of `category`,
    /// or `None` once the category has matured (or for non-Auto strategies).
    pub fn concurrency_cap(&self, category: &str) -> Option<u32> {
        let Strategy::Auto(cfg) = &self.strategy else {
            return None;
        };
        let samples = self.samples_for(category);
        if samples >= cfg.slow_start_until {
            None
        } else {
            Some((2 * samples).max(4) as u32)
        }
    }

    fn auto_label(
        &mut self,
        category: &str,
        cfg: &AutoConfig,
        capacity: &Resources,
    ) -> Option<Resources> {
        let s = self.stats.get_mut(category)?;
        if s.completed < cfg.min_samples {
            return None;
        }
        if let Some((memo_cap, label)) = &s.label_memo {
            if memo_cap == capacity {
                return *label;
            }
        }
        let label = (|| {
            let mem = choose_label(&mut s.memory_mb, capacity.memory_mb as f64)? * cfg.headroom;
            let disk = choose_label(&mut s.disk_mb, capacity.disk_mb as f64)? * cfg.headroom;
            let cores = s.cores.max()?.ceil().max(1.0);
            Some(Resources::new(
                cores as u32,
                mem.ceil() as u64,
                disk.ceil() as u64,
            ))
        })();
        s.label_memo = Some((*capacity, label));
        label
    }
}

/// Choose the throughput-maximizing first allocation from observed peaks.
///
/// Candidates are the distinct observed values. Returns the candidate
/// minimizing `P(u≤a)·a + (1−P(u≤a))·(a + retry_cost)`, where `retry_cost`
/// is the per-axis size of the whole-worker retry allocation.
fn choose_label(samples: &mut Samples, retry_cost: f64) -> Option<f64> {
    let a_max = samples.max()?;
    let candidates = samples.distinct_sorted();
    let mut best = a_max;
    let mut best_cost = f64::INFINITY;
    for a in candidates {
        let p = samples.cdf(a);
        let cost = p * a + (1.0 - p) * (a + retry_cost);
        if cost < best_cost {
            best_cost = cost;
            best = a;
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Worker capacity used by the tests (8 cores / 8 GB / 16 GB).
    const CAP: Resources = Resources::new(8, 8192, 16384);

    fn report(cores: f64, mem: u64, disk: u64) -> ResourceReport {
        ResourceReport {
            peak_cores: cores,
            peak_rss_mb: mem,
            peak_disk_mb: disk,
            cpu_secs: cores * 10.0,
            wall_secs: 10.0,
            ..Default::default()
        }
    }

    #[test]
    fn unmanaged_always_whole_worker() {
        let mut a = Allocator::new(Strategy::Unmanaged);
        assert_eq!(a.decide("x", 0, &CAP), AllocationDecision::WholeWorker);
        a.observe("x", &report(1.0, 100, 100), true);
        assert_eq!(a.decide("x", 0, &CAP), AllocationDecision::WholeWorker);
    }

    #[test]
    fn guess_returns_fixed_vector() {
        let guess = Resources::new(1, 1536, 2048);
        let mut a = Allocator::new(Strategy::Guess(guess));
        assert_eq!(a.decide("x", 0, &CAP), AllocationDecision::Sized(guess));
    }

    #[test]
    fn oracle_uses_category_map() {
        let mut map = BTreeMap::new();
        map.insert("hep".to_string(), Resources::new(1, 110, 1024));
        let mut a = Allocator::new(Strategy::Oracle(map));
        assert_eq!(
            a.decide("hep", 0, &CAP),
            AllocationDecision::Sized(Resources::new(1, 110, 1024))
        );
        // Unknown category degrades to whole worker rather than guessing.
        assert_eq!(
            a.decide("unknown", 0, &CAP),
            AllocationDecision::WholeWorker
        );
    }

    #[test]
    fn auto_first_run_is_whole_worker_then_labeled() {
        let cfg = AutoConfig {
            min_samples: 1,
            headroom: 1.05,
            slow_start_until: 0,
        };
        let mut a = Allocator::new(Strategy::Auto(cfg));
        assert_eq!(a.decide("hep", 0, &CAP), AllocationDecision::WholeWorker);
        a.observe("hep", &report(1.0, 84, 880), true);
        match a.decide("hep", 0, &CAP) {
            AllocationDecision::Sized(r) => {
                assert_eq!(r.cores, 1);
                // 84 MB × 1.05 headroom, ceiled.
                assert!(
                    r.memory_mb >= 84 && r.memory_mb <= 95,
                    "mem {}",
                    r.memory_mb
                );
                assert!(r.disk_mb >= 880 && r.disk_mb <= 930, "disk {}", r.disk_mb);
            }
            other => panic!("expected sized allocation, got {other:?}"),
        }
    }

    #[test]
    fn default_config_waits_for_samples_and_adds_headroom() {
        let mut a = Allocator::new(Strategy::Auto(AutoConfig::default()));
        a.observe("hep", &report(1.0, 84, 880), true);
        assert_eq!(a.decide("hep", 0, &CAP), AllocationDecision::WholeWorker);
        a.observe("hep", &report(1.0, 84, 880), true);
        match a.decide("hep", 0, &CAP) {
            AllocationDecision::Sized(r) => {
                assert!(r.memory_mb >= 105, "headroom applied: {}", r.memory_mb)
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn auto_retry_gets_whole_worker_and_counts() {
        let mut a = Allocator::new(Strategy::Auto(AutoConfig {
            min_samples: 1,
            headroom: 1.05,
            slow_start_until: 0,
        }));
        a.observe("hep", &report(1.0, 84, 880), true);
        assert_eq!(a.decide("hep", 1, &CAP), AllocationDecision::WholeWorker);
        assert_eq!(a.retries, 1);
    }

    #[test]
    fn auto_label_balances_retry_cost() {
        // 9 tasks peak at 100 MB, 1 at 1000 MB: labeling at 100 costs
        // 0.9·100 + 0.1·1100 = 200; labeling at 1000 costs 1000. The small
        // label wins.
        let mut a = Allocator::new(Strategy::Auto(AutoConfig {
            min_samples: 10,
            headroom: 1.0,
            slow_start_until: 0,
        }));
        for _ in 0..9 {
            a.observe("g", &report(1.0, 100, 10), true);
        }
        a.observe("g", &report(1.0, 1000, 10), true);
        match a.decide("g", 0, &CAP) {
            AllocationDecision::Sized(r) => assert_eq!(r.memory_mb, 100),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn auto_label_avoids_overfitting_when_tail_is_common() {
        // Half the tasks need the big size: retrying half of everything is
        // worse than just allocating big. 0.5·100+0.5·1100 = 600 > 1000? No:
        // 600 < 1000 — so with equal split the small label still wins until
        // the tail dominates. With 90% at 1000: 0.1·100+0.9·1100 = 1000 vs
        // 1000 at the big label — tie broken toward the small-cost candidate;
        // make the tail strictly dominant.
        let mut a = Allocator::new(Strategy::Auto(AutoConfig {
            min_samples: 10,
            headroom: 1.0,
            slow_start_until: 0,
        }));
        a.observe("g", &report(1.0, 100, 10), true);
        for _ in 0..19 {
            a.observe("g", &report(1.0, 1000, 10), true);
        }
        // E[cost](100) = 0.05·100 + 0.95·1100 = 1050 > E[cost](1000) = 1000.
        match a.decide("g", 0, &CAP) {
            AllocationDecision::Sized(r) => assert_eq!(r.memory_mb, 1000),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn min_samples_gate() {
        let mut a = Allocator::new(Strategy::Auto(AutoConfig {
            min_samples: 3,
            headroom: 1.0,
            slow_start_until: 0,
        }));
        a.observe("x", &report(1.0, 50, 50), true);
        a.observe("x", &report(1.0, 60, 50), true);
        assert_eq!(a.decide("x", 0, &CAP), AllocationDecision::WholeWorker);
        a.observe("x", &report(1.0, 55, 50), true);
        assert!(matches!(
            a.decide("x", 0, &CAP),
            AllocationDecision::Sized(_)
        ));
    }

    #[test]
    fn categories_are_independent() {
        let mut a = Allocator::new(Strategy::Auto(AutoConfig {
            min_samples: 1,
            headroom: 1.05,
            slow_start_until: 0,
        }));
        a.observe("small", &report(1.0, 50, 50), true);
        assert!(matches!(
            a.decide("small", 0, &CAP),
            AllocationDecision::Sized(_)
        ));
        assert_eq!(a.decide("big", 0, &CAP), AllocationDecision::WholeWorker);
    }

    #[test]
    fn choose_label_single_sample() {
        let mut s = Samples::new();
        s.record(42.0);
        assert_eq!(choose_label(&mut s, 8192.0), Some(42.0));
    }
}
