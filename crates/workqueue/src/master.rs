//! The Work Queue master: a discrete-event scheduler.
//!
//! Drives a full run: provisions workers through the batch system, matches
//! pending tasks to workers under the active allocation [`Strategy`], stages
//! input files (environment packs, shared data, per-task data) with cache
//! awareness, executes each task under the simulated LFM, retries tasks
//! killed for resource exhaustion at full-worker size, and produces a
//! [`RunReport`] with the makespan/utilization numbers Figures 6–9 plot.

use crate::allocate::{AllocationDecision, Allocator, ObservationEffects, Strategy};
use crate::faults::{backoff_delay, FaultPlan, FaultState, InfraFault, ResilienceConfig};
use crate::files::FileKind;
use crate::journal::{
    CategorySnap, CounterKey, DurabilityConfig, Journal, MasterImage, PlacementSnap, Record,
};
use crate::sched::{policy_rank, IndexedSched, ParkReason, Pending, SchedImpl, Src};
use crate::task::{TaskId, TaskResult, TaskSpec};
use crate::worker::Worker;
use lfm_monitor::limits::ResourceLimits;
use lfm_monitor::report::{MonitorOutcome, ResourceKind};
use lfm_monitor::sim::{SimMonitor, SimTaskProfile};
use lfm_simcluster::batch::{BatchParams, BatchSystem};
use lfm_simcluster::event::EventQueue;
use lfm_simcluster::metrics::Histogram;
use lfm_simcluster::network::{Network, NetworkParams};
use lfm_simcluster::node::{NodeSpec, Resources};
use lfm_simcluster::rng::SimRng;
use lfm_simcluster::sharedfs::{SharedFs, SharedFsParams};
use lfm_simcluster::storage::LocalDisk;
use lfm_simcluster::time::SimTime;
use lfm_telemetry::{Name, Recorder};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::OnceLock;

/// Pre-interned telemetry names for the master's emission sites.
///
/// Interning happens once per process (first use); every emission after
/// that carries a `u32` id instead of hashing a string, which is what
/// keeps full instrumentation within the <5% overhead budget at
/// federation/serving scale (see `lfm_telemetry::intern`).
struct TelKeys {
    // categories
    cat_master: Name,
    cat_worker: Name,
    cat_lfm: Name,
    cat_faults: Name,
    // counters / gauges / observations
    event_worker_up: Name,
    event_worker_down: Name,
    event_task_done: Name,
    event_submit: Name,
    fed_stolen_in: Name,
    journal_snapshot: Name,
    journal_replayed_events: Name,
    master_crash: Name,
    master_recovered: Name,
    master_retry: Name,
    master_abandoned: Name,
    master_task_done: Name,
    master_pending_tasks: Name,
    worker_cache_hit: Name,
    worker_cache_miss: Name,
    worker_transfer_bytes: Name,
    turnaround_s: Name,
    // span / instant names
    queue_wait: Name,
    dispatch: Name,
    task_lost: Name,
    result_lost: Name,
    lease_reclaim: Name,
    quarantine: Name,
    quarantine_release: Name,
    infra_requeue: Name,
    degrade_to_shared_fs: Name,
    spurious_kill: Name,
    retry: Name,
    limit_kill: Name,
    stage_in: Name,
    exec: Name,
    stage_out: Name,
    task: Name,
    // attr keys
    a_category: Name,
    a_cores: Name,
    a_memory_mb: Name,
    a_zombie: Name,
    a_backoff_s: Name,
    a_status: Name,
    a_polls: Name,
    a_peak_rss_mb: Name,
    a_peak_disk_mb: Name,
    a_cpu_s: Name,
    a_monitor_overhead_s: Name,
    a_limit: Name,
}

fn tk() -> &'static TelKeys {
    static KEYS: OnceLock<TelKeys> = OnceLock::new();
    KEYS.get_or_init(|| TelKeys {
        cat_master: Name::intern("master"),
        cat_worker: Name::intern("worker"),
        cat_lfm: Name::intern("lfm"),
        cat_faults: Name::intern("faults"),
        event_worker_up: Name::intern("event.worker_up"),
        event_worker_down: Name::intern("event.worker_down"),
        event_task_done: Name::intern("event.task_done"),
        event_submit: Name::intern("event.submit"),
        fed_stolen_in: Name::intern("fed.stolen_in"),
        journal_snapshot: Name::intern("journal.snapshot"),
        journal_replayed_events: Name::intern("journal.replayed_events"),
        master_crash: Name::intern("master.crash"),
        master_recovered: Name::intern("master.recovered"),
        master_retry: Name::intern("master.retry"),
        master_abandoned: Name::intern("master.abandoned"),
        master_task_done: Name::intern("master.task_done"),
        master_pending_tasks: Name::intern("master.pending_tasks"),
        worker_cache_hit: Name::intern("worker.cache_hit"),
        worker_cache_miss: Name::intern("worker.cache_miss"),
        worker_transfer_bytes: Name::intern("worker.transfer_bytes"),
        turnaround_s: Name::intern("turnaround_s"),
        queue_wait: Name::intern("queue_wait"),
        dispatch: Name::intern("dispatch"),
        task_lost: Name::intern("task_lost"),
        result_lost: Name::intern("result_lost"),
        lease_reclaim: Name::intern("lease_reclaim"),
        quarantine: Name::intern("quarantine"),
        quarantine_release: Name::intern("quarantine_release"),
        infra_requeue: Name::intern("infra_requeue"),
        degrade_to_shared_fs: Name::intern("degrade_to_shared_fs"),
        spurious_kill: Name::intern("spurious_kill"),
        retry: Name::intern("retry"),
        limit_kill: Name::intern("limit_kill"),
        stage_in: Name::intern("stage_in"),
        exec: Name::intern("exec"),
        stage_out: Name::intern("stage_out"),
        task: Name::intern("task"),
        a_category: Name::intern("category"),
        a_cores: Name::intern("cores"),
        a_memory_mb: Name::intern("memory_mb"),
        a_zombie: Name::intern("zombie"),
        a_backoff_s: Name::intern("backoff_s"),
        a_status: Name::intern("status"),
        a_polls: Name::intern("polls"),
        a_peak_rss_mb: Name::intern("peak_rss_mb"),
        a_peak_disk_mb: Name::intern("peak_disk_mb"),
        a_cpu_s: Name::intern("cpu_s"),
        a_monitor_overhead_s: Name::intern("monitor_overhead_s"),
        a_limit: Name::intern("limit"),
    })
}

/// How environments reach workers (§V-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DistMode {
    /// Every task imports straight from the shared filesystem — the
    /// conventional deployment the paper argues against.
    SharedFsDirect,
    /// The packed environment is transferred once per worker, unpacked to
    /// node-local storage, and cached (the LFM approach).
    PackedTransfer,
}

/// Order in which ready tasks are considered for placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulePolicy {
    /// Submission order.
    Fifo,
    /// Largest memory request first (classic bin-packing heuristic: big
    /// items placed while space is plentiful).
    LargestFirst,
    /// Smallest first (maximizes early task throughput, risks stranding
    /// big tasks).
    SmallestFirst,
}

/// How the worker pool is provisioned (§III "cluster provisioning").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Provisioning {
    /// Submit the whole pool up front.
    Static,
    /// Start with `initial` pilots; whenever ready tasks outnumber free
    /// slots, submit another `batch` pilots up to `max_workers` total.
    Elastic {
        initial: u32,
        max_workers: u32,
        batch: u32,
    },
}

/// How files, environments, and bytes reach workers: distribution mode,
/// batch system, shared filesystem, network fabric, and worker-local I/O
/// interference, grouped under one `Default`-able knob.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StagingConfig {
    pub dist_mode: DistMode,
    pub batch: BatchParams,
    pub fs: SharedFsParams,
    pub net: NetworkParams,
    /// Fractional slowdown per co-resident task (I/O interference on a
    /// worker; HEP's IO-heavy tasks use a non-zero value).
    pub io_interference: f64,
}

impl Default for StagingConfig {
    /// Packed distribution on a responsive campus cluster.
    fn default() -> Self {
        StagingConfig {
            dist_mode: DistMode::PackedTransfer,
            batch: BatchParams::instant(),
            fs: SharedFsParams::campus_nfs(),
            net: NetworkParams::campus_10g(),
            io_interference: 0.0,
        }
    }
}

/// Master configuration. Grouped into three sub-configs — [`StagingConfig`]
/// (how bytes move), [`FaultPlan`] (what breaks), [`ResilienceConfig`] (how
/// the master recovers) — plus the allocation strategy, scheduler, and
/// seed. The flat `with_*` setters forward into the groups, so existing
/// call sites keep compiling.
#[derive(Debug, Clone)]
pub struct MasterConfig {
    pub strategy: Strategy,
    pub monitor: SimMonitor,
    /// Distribution mode, batch system, shared FS, network, I/O model.
    pub staging: StagingConfig,
    /// Injected fault sources (empty = reliable cluster).
    pub faults: FaultPlan,
    /// Leases, backoff, quarantine, degradation, and retry ceilings.
    pub resilience: ResilienceConfig,
    /// Write-ahead journal, snapshot cadence, and crash/recovery costs.
    pub durability: DurabilityConfig,
    pub provisioning: Provisioning,
    pub policy: SchedulePolicy,
    /// Dispatch implementation: the indexed scheduler (default) or the
    /// reference rescan matcher it is placement-for-placement equal to.
    pub sched: SchedImpl,
    /// Shard count for the foreman federation (`federation.rs`). `1` (the
    /// default) runs the classic single master; `> 1` makes
    /// [`run_workload`] route through
    /// [`run_federated`](crate::federation::run_federated) with this many
    /// sub-masters. Initialized from the process-global default installed
    /// by [`set_default_shards`](crate::federation::set_default_shards).
    pub shards: u32,
    pub seed: u64,
    /// Tracing/metrics sink. Defaults to the process-wide recorder (the
    /// no-op recorder unless a runner installed one via `--trace-out`).
    /// Recording is strictly observational: the simulation's behaviour and
    /// its `RunReport` are identical whether this is live or
    /// [`Recorder::disabled`].
    pub telemetry: Recorder,
}

impl MasterConfig {
    /// A reasonable default: packed distribution on a responsive, reliable
    /// cluster with the default resilience knobs.
    pub fn new(strategy: Strategy) -> Self {
        MasterConfig {
            strategy,
            monitor: SimMonitor::default(),
            staging: StagingConfig::default(),
            faults: FaultPlan::reliable(),
            resilience: ResilienceConfig::default(),
            durability: DurabilityConfig::none(),
            provisioning: Provisioning::Static,
            policy: SchedulePolicy::Fifo,
            sched: SchedImpl::Indexed,
            shards: crate::federation::default_shards(),
            seed: 0x1f2e3d4c,
            telemetry: lfm_telemetry::global(),
        }
    }

    pub fn with_policy(mut self, policy: SchedulePolicy) -> Self {
        self.policy = policy;
        self
    }

    pub fn with_sched(mut self, sched: SchedImpl) -> Self {
        self.sched = sched;
        self
    }

    /// Run this workload across `shards` federated sub-masters (1 = the
    /// classic single master).
    pub fn with_shards(mut self, shards: u32) -> Self {
        self.shards = shards.max(1);
        self
    }

    pub fn with_provisioning(mut self, p: Provisioning) -> Self {
        self.provisioning = p;
        self
    }

    /// Replace the whole staging group.
    pub fn with_staging(mut self, staging: StagingConfig) -> Self {
        self.staging = staging;
        self
    }

    /// Install a fault plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Replace the resilience knobs.
    pub fn with_resilience(mut self, resilience: ResilienceConfig) -> Self {
        self.resilience = resilience;
        self
    }

    /// Configure the durability layer (journal, snapshots, restart costs).
    pub fn with_durability(mut self, durability: DurabilityConfig) -> Self {
        self.durability = durability;
        self
    }

    pub fn with_dist_mode(mut self, mode: DistMode) -> Self {
        self.staging.dist_mode = mode;
        self
    }

    pub fn with_batch(mut self, batch: BatchParams) -> Self {
        self.staging.batch = batch;
        self
    }

    pub fn with_fs(mut self, fs: SharedFsParams) -> Self {
        self.staging.fs = fs;
        self
    }

    pub fn with_io_interference(mut self, f: f64) -> Self {
        self.staging.io_interference = f;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn with_monitor(mut self, monitor: SimMonitor) -> Self {
        self.monitor = monitor;
        self
    }

    pub fn with_telemetry(mut self, telemetry: Recorder) -> Self {
        self.telemetry = telemetry;
        self
    }
}

/// The outcome of a whole run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    pub strategy: String,
    pub dist_mode: DistMode,
    /// Workflow completion time, seconds.
    pub makespan_secs: f64,
    pub task_count: usize,
    /// Tasks that exhausted an allocation at least once.
    pub retried_tasks: u64,
    /// Tasks abandoned after `max_attempts`.
    pub abandoned_tasks: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    /// Integral of granted allocations (core-seconds).
    pub allocated_core_secs: f64,
    /// CPU-seconds actually consumed.
    pub used_core_secs: f64,
    /// CPU-seconds consumed *beyond* the granted allocations
    /// (`max(0, used - allocated)`). Non-zero means tasks overcommitted
    /// their grants — an accounting surface the old clamped
    /// `core_efficiency` silently hid.
    pub overcommit_core_secs: f64,
    /// Shared-FS metadata operations issued over the run.
    pub fs_md_ops: u64,
    /// Bytes moved over the master's network.
    pub net_bytes: u64,
    /// Pilots submitted over the run (≥ worker_count under elastic
    /// provisioning or failures).
    pub workers_provisioned: u32,
    /// Workers lost to eviction.
    pub workers_lost: u32,
    /// In-flight task placements lost with their workers (rescheduled).
    pub tasks_lost: u64,
    /// Tasks that consumed at least one infrastructure retry (staging
    /// failure, lost result, lease reclaim, or spurious kill).
    pub infra_retried_tasks: u64,
    /// Placements reclaimed by lease expiry (zombies whose result message
    /// was lost, and stragglers running past their lease).
    pub lease_reclaims: u64,
    /// Stage-in attempts that failed (lost transfers, injected staging
    /// failures, disk-full unpacks).
    pub stage_in_failures: u64,
    /// Executions falsely killed by an injected monitor fault.
    pub spurious_kills: u64,
    /// Completed executions whose result message was lost in transit.
    pub result_messages_lost: u64,
    /// Quarantine entries over the run (a worker re-quarantined counts
    /// again).
    pub quarantines: u32,
    /// Core-seconds held by attempts that produced no result: evictions,
    /// lease reclaims, staging failures, and lost results. The complement
    /// of `allocated_core_secs`, which integrates only attempts that
    /// reported back.
    pub lost_core_secs: f64,
    /// Did packed-environment distribution degrade to the shared
    /// filesystem mid-run?
    pub degraded_to_shared_fs: bool,
    /// Master crashes injected over the run.
    pub master_crashes: u32,
    /// Crashes recovered from the journal (the rest were full restarts).
    pub recoveries: u32,
    /// Total bytes flushed to the write-ahead journal (records plus
    /// compacting snapshots). Zero when journaling is off.
    pub journal_bytes: u64,
    /// Journal records replayed across all recoveries — what snapshot
    /// compaction buys down.
    pub replayed_events: u64,
    /// Every attempt's record.
    pub results: Vec<TaskResult>,
}

impl RunReport {
    /// Fraction of tasks retried *for resource-limit kills* (the paper's
    /// "<1% of tasks were retried"). Infrastructure retries — staging
    /// failures, lost results, lease reclaims, spurious kills — are
    /// deliberately excluded: the task did nothing wrong, so they count in
    /// [`RunReport::infra_retry_fraction`] instead. The two sets are
    /// tracked independently and one task can appear in both.
    pub fn retry_fraction(&self) -> f64 {
        if self.task_count == 0 {
            0.0
        } else {
            self.retried_tasks as f64 / self.task_count as f64
        }
    }

    /// Fraction of tasks that consumed at least one infrastructure retry.
    /// See [`RunReport::retry_fraction`] for the resource-kill counterpart
    /// and the boundary between the two.
    pub fn infra_retry_fraction(&self) -> f64 {
        if self.task_count == 0 {
            0.0
        } else {
            self.infra_retried_tasks as f64 / self.task_count as f64
        }
    }

    /// Allocated-core efficiency. The single definition every report and
    /// bench uses: `used / (allocated + lost)`, where *allocated*
    /// integrates grants of attempts that reported back and *lost*
    /// ([`RunReport::lost_core_secs`]) integrates grants held by attempts
    /// that produced no result (evictions, lease reclaims, staging
    /// failures, lost results) — wasted cores are efficiency losses, not
    /// invisible. Fault-free runs have `lost = 0` and reduce to the
    /// classic `used / allocated`. Deliberately *not* clamped to 1.0 — a
    /// ratio above one means tasks consumed more CPU than their grants
    /// (see [`RunReport::overcommit_core_secs`]), and hiding that behind a
    /// clamp masked the accounting bug surface.
    pub fn core_efficiency(&self) -> f64 {
        let denom = self.allocated_core_secs + self.lost_core_secs;
        if denom <= 0.0 {
            0.0
        } else {
            self.used_core_secs / denom
        }
    }

    /// Serialize the run's headline numbers as a JSON object (the master's
    /// end-of-run log line).
    pub fn summary_json(&self) -> String {
        let mut o = lfm_monitor::summary::JsonObject::new();
        o.field_str("strategy", &self.strategy)
            .field_str(
                "dist_mode",
                match self.dist_mode {
                    DistMode::PackedTransfer => "packed_transfer",
                    DistMode::SharedFsDirect => "shared_fs_direct",
                },
            )
            .field_f64("makespan_s", self.makespan_secs)
            .field_u64("tasks", self.task_count as u64)
            .field_u64("retried_tasks", self.retried_tasks)
            .field_u64("abandoned_tasks", self.abandoned_tasks)
            .field_f64("retry_fraction", self.retry_fraction())
            .field_f64("core_efficiency", self.core_efficiency())
            .field_f64("overcommit_core_secs", self.overcommit_core_secs)
            .field_f64("mean_turnaround_s", self.mean_turnaround_secs())
            .field_f64("p95_turnaround_s", self.turnaround_percentile(95.0))
            .field_f64("p99_turnaround_s", self.turnaround_percentile(99.0))
            .field_u64("cache_hits", self.cache_hits)
            .field_u64("cache_misses", self.cache_misses)
            .field_u64("fs_md_ops", self.fs_md_ops)
            .field_u64("net_bytes", self.net_bytes)
            .field_u64("workers_provisioned", self.workers_provisioned as u64)
            .field_u64("workers_lost", self.workers_lost as u64)
            .field_u64("tasks_lost", self.tasks_lost)
            .field_u64("infra_retried_tasks", self.infra_retried_tasks)
            .field_f64("infra_retry_fraction", self.infra_retry_fraction())
            .field_u64("lease_reclaims", self.lease_reclaims)
            .field_u64("stage_in_failures", self.stage_in_failures)
            .field_u64("spurious_kills", self.spurious_kills)
            .field_u64("result_messages_lost", self.result_messages_lost)
            .field_u64("quarantines", self.quarantines as u64)
            .field_f64("lost_core_secs", self.lost_core_secs)
            .field_u64("degraded_to_shared_fs", self.degraded_to_shared_fs as u64)
            .field_u64("master_crashes", self.master_crashes as u64)
            .field_u64("recoveries", self.recoveries as u64)
            .field_u64("journal_bytes", self.journal_bytes)
            .field_u64("replayed_events", self.replayed_events);
        o.finish()
    }

    /// Sample the run at `dt` resolution: (time, running tasks, allocated
    /// cores). Useful for utilization plots and packing inspection.
    pub fn utilization_timeline(&self, dt: f64) -> Vec<(f64, u32, u32)> {
        assert!(dt > 0.0, "dt must be positive");
        let mut out = Vec::new();
        let mut t = 0.0;
        while t <= self.makespan_secs {
            let mut running = 0u32;
            let mut cores = 0u32;
            for r in &self.results {
                if r.started_at.as_secs() <= t && t < r.finished_at.as_secs() {
                    running += 1;
                    cores += r.allocated.cores;
                }
            }
            out.push((t, running, cores));
            t += dt;
        }
        out
    }

    /// Mean task turnaround (submit → final completion), successful final
    /// attempts only.
    pub fn mean_turnaround_secs(&self) -> f64 {
        let finals: Vec<f64> = self
            .results
            .iter()
            .filter(|r| r.outcome.is_success())
            .map(|r| r.finished_at - r.submitted_at)
            .collect();
        if finals.is_empty() {
            0.0
        } else {
            finals.iter().sum::<f64>() / finals.len() as f64
        }
    }

    /// Distribution of task turnaround (submit → completion) over
    /// successful final attempts — the paper reports tails, not just means.
    pub fn turnaround_histogram(&self) -> Histogram {
        let mut h = Histogram::new();
        for r in self.results.iter().filter(|r| r.outcome.is_success()) {
            h.record(r.finished_at - r.submitted_at);
        }
        h
    }

    /// Turnaround percentile `p` in [0, 100]; 0.0 when nothing succeeded.
    pub fn turnaround_percentile(&self, p: f64) -> f64 {
        let mut h = self.turnaround_histogram();
        h.percentile(p)
    }
}

/// Simulation events.
pub(crate) enum Event {
    WorkerUp {
        id: u32,
    },
    WorkerDown {
        id: u32,
    },
    TaskDone(Box<DoneInfo>),
    /// A placement's lease ran out: reclaim it if still live.
    LeaseExpired {
        placement: u64,
    },
    /// A backed-off infrastructure requeue lands in the pending queue.
    Requeue {
        task_idx: usize,
        attempt: u32,
    },
    /// A quarantined worker rejoins the pool.
    QuarantineRelease {
        id: u32,
    },
    /// A dependency of `task_idx` reached a terminal state on another
    /// shard: `success` decrements the remaining-dependency count,
    /// failure cancels `task_idx` and its downstream (federation handoff).
    RemoteRelease {
        task_idx: usize,
        success: bool,
    },
    /// A ready task migrated from a hot shard lands in this shard's
    /// pending queue (federation work stealing).
    StolenArrive {
        task_idx: usize,
        attempt: u32,
    },
    /// The master comes back up after a crash: process the world events
    /// that arrived while it was down, then resume dispatching.
    Recovered,
    /// A batch of new dependency-free tasks arrives at a *running* master
    /// (streaming submission — see `streaming.rs`). The batch is appended
    /// to the task vector and enqueued like any other ready work.
    Submit(Vec<TaskSpec>),
}

impl Event {
    /// Events the *world* produces (pilots starting/dying, completions in
    /// flight, cross-shard handoffs and stolen-task arrivals). These
    /// survive a master crash in the calendar; everything else is a
    /// master-owned timer that dies with the master's memory and is
    /// re-armed from the recovered image.
    fn is_world(&self) -> bool {
        matches!(
            self,
            Event::WorkerUp { .. }
                | Event::WorkerDown { .. }
                | Event::TaskDone(_)
                | Event::RemoteRelease { .. }
                | Event::StolenArrive { .. }
                | Event::Submit(_)
        )
    }
}

/// A cross-shard effect produced by one shard's event handling, drained by
/// the federation driver after every step and delivered to the owning
/// shard's event queue (see `federation.rs`).
#[derive(Debug)]
pub(crate) enum OutMsg {
    /// A remote dependency of `task_idx` completed successfully at `at`;
    /// `bytes` is the producer's output size riding the handoff path.
    Release {
        task_idx: usize,
        at: SimTime,
        bytes: u64,
    },
    /// A remote dependency of `task_idx` permanently failed at `at`.
    Cancel { task_idx: usize, at: SimTime },
}

/// Federation role state: which shard this master is, the static ownership
/// map over the full task vector, and the outbox of cross-shard effects
/// produced since the federation driver last drained it.
pub(crate) struct FedState {
    pub shard: u32,
    pub owner: std::sync::Arc<Vec<u32>>,
    pub outbox: Vec<OutMsg>,
    /// Stolen-task arrivals injected but not yet handled — the stealing
    /// balancer must not treat a shard as hungry while work is in flight
    /// toward it.
    pub inbound_pending: u32,
}

pub(crate) struct DoneInfo {
    worker: u32,
    /// Unique placement id; stale events for lost placements are dropped.
    placement: u64,
    task_idx: usize,
    attempt: u32,
    allocated: Resources,
    started_at: SimTime,
    stage_in_secs: f64,
    exec_secs: f64,
    outcome: MonitorOutcome,
    /// The attempt failed for infrastructure reasons before/around the
    /// execution; `outcome` is a placeholder when this is a stage-in
    /// fault.
    infra: Option<InfraFault>,
    /// An environment pack was transferred (cache-missed) during this
    /// stage-in — feeds the packed-env degradation counter on failure.
    env_transfer: bool,
}

/// A live placement, for loss recovery and lease reclamation.
#[derive(Debug, Clone, Copy)]
struct PlacementInfo {
    worker: u32,
    task_idx: usize,
    attempt: u32,
    allocated: Resources,
    started_at: SimTime,
    /// The task ran but its result message was lost: worker resources are
    /// already freed, and the placement stays live (so a duplicate
    /// completion can never slip in) until its lease reclaims it.
    zombie: bool,
    /// Absolute lease deadline (seconds), when leases are armed — journaled
    /// so recovery can re-arm the reclamation timer.
    lease_at: Option<f64>,
}

/// The active dispatch implementation's queue state (see `sched.rs`).
enum SchedState {
    /// The original greedy matcher's plain deque.
    Reference(VecDeque<Pending>),
    /// The indexed scheduler.
    Indexed(IndexedSched),
}

#[cfg(test)]
thread_local! {
    /// Placements examined by `evict_worker`, for the linearity regression
    /// test (eviction must scan only the evicted worker's own placements).
    static EVICT_SCANNED: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Run a workload to completion under `config`, on `worker_count` workers of
/// `spec`. Panics on deadlock (tasks pending with no worker able to ever fit
/// them would indicate a workload/config bug). When `config.shards > 1` the
/// run routes through the foreman federation and returns the merged report.
pub fn run_workload(
    config: &MasterConfig,
    tasks: Vec<TaskSpec>,
    worker_count: u32,
    spec: NodeSpec,
) -> RunReport {
    assert!(!tasks.is_empty(), "empty workload");
    if config.shards > 1 {
        let fed = crate::federation::FederationConfig::new(config.shards);
        return crate::federation::run_federated(config, &fed, tasks, worker_count, spec).merged;
    }
    Master::new(config.clone(), tasks, worker_count, spec).run()
}

pub(crate) struct Master {
    config: MasterConfig,
    tasks: Vec<TaskSpec>,
    workers: BTreeMap<u32, Worker>,
    sched: SchedState,
    queue: EventQueue<Event>,
    allocator: Allocator,
    fs: SharedFs,
    net: Network,
    disk_model: LocalDisk,
    spec: NodeSpec,
    worker_count: u32,
    in_flight: usize,
    /// Interned category table: `cat_of[task_idx]` indexes `cat_names` and
    /// `running_by_cat`, so the dispatch hot path never clones or hashes a
    /// category string.
    cat_of: Vec<u32>,
    cat_names: Vec<String>,
    running_by_cat: Vec<u32>,
    /// Sum of free cores across live workers, maintained on worker
    /// up/place/finish/evict so elastic scaling never re-sums the pool.
    free_cores: u64,
    batch: BatchSystem,
    /// Compiled fault-injection state (streams + keyed draws).
    faults: FaultState,
    /// The network disturbance draw stream.
    net_rng: SimRng,
    next_placement: u64,
    /// placement id → its live info, for loss recovery and leases.
    live_placements: BTreeMap<u64, PlacementInfo>,
    /// worker → its live placement ids, so eviction is linear in the
    /// evicted worker's own placements.
    placements_by_worker: BTreeMap<u32, BTreeSet<u64>>,
    workers_provisioned: u32,
    workers_lost: u32,
    tasks_lost: u64,
    /// Per-task infrastructure-failure counts, against the infra budget.
    infra_fail_count: Vec<u32>,
    /// Consecutive infra failures per category — the backoff streak,
    /// reset on any success in the category.
    cat_streak: Vec<u32>,
    /// Packed-env distribution degraded to the shared FS for the rest of
    /// the run.
    degraded: bool,
    /// Packed-env staging failures so far (degradation trigger).
    env_failures: u32,
    lease_reclaims: u64,
    stage_in_failures: u64,
    spurious_kills: u64,
    result_msgs_lost: u64,
    quarantines: u32,
    lost_core_secs: f64,
    infra_retried: std::collections::BTreeSet<usize>,
    results: Vec<TaskResult>,
    retried: std::collections::BTreeSet<usize>,
    abandoned: u64,
    completed: usize,
    /// Unsatisfied-dependency counts per task; tasks enter `pending` only at
    /// zero. Dependents listed per task id for O(1) release on completion.
    dep_remaining: Vec<usize>,
    dependents: BTreeMap<TaskId, Vec<usize>>,
    /// The write-ahead journal (`None` when durability is off).
    journal: Option<Journal>,
    /// Suppresses journaling while recovery re-enqueues restored state —
    /// reconstruction is not new history.
    restoring: bool,
    /// Armed backoff timers `((task_idx, attempt), fire_at)` in arm order,
    /// mirrored into snapshots so recovery can re-arm them. Arm order (not
    /// task order) so equal-time timers keep their FIFO tie-break.
    backoffs: Vec<((usize, u32), f64)>,
    /// Quarantined workers and their absolute release times, in entry order.
    quarantine_until: Vec<(u32, f64)>,
    /// Events handled so far — the crash clock `FaultKind::MasterCrash`
    /// points index into. Identical for both scheduler implementations.
    processed_events: u64,
    /// Next unconsumed index into `faults.crash_points()`.
    next_crash: usize,
    /// The master is down: world events buffer in `deferred` until the
    /// `Recovered` event drains them.
    down: bool,
    deferred: Vec<Event>,
    master_crashes: u32,
    recoveries: u32,
    replayed_events: u64,
    /// Task/category counts at construction. Streamed admissions grow
    /// `tasks`/`cat_names` past these, so recovery's fresh-image fallback
    /// must start from the *constructed* sizes and let `Record::Submitted`
    /// replay re-grow the per-task vectors in admission order.
    initial_task_count: usize,
    initial_cat_count: usize,
    /// The `probe_restore_at` test hook already fired.
    probe_done: bool,
    /// Federation role (`None` for the classic standalone master). See
    /// `FedState` and `federation.rs`.
    fed: Option<FedState>,
}

impl Master {
    /// Construct a master. An empty task vector is allowed only for
    /// streaming mode (`streaming.rs`), where tasks arrive via
    /// [`Event::Submit`]; batch entry points assert non-emptiness.
    pub(crate) fn new(
        config: MasterConfig,
        tasks: Vec<TaskSpec>,
        worker_count: u32,
        spec: NodeSpec,
    ) -> Self {
        assert!(worker_count > 0, "need at least one worker");
        let allocator = Allocator::new(config.strategy.clone());
        let fs = SharedFs::new(config.staging.fs);
        let faults = FaultState::new(&config.faults, config.seed);
        let net_rng = SimRng::seeded(faults.net_seed);
        let mut net = Network::new(config.staging.net);
        if let Some(d) = faults.disturbance {
            net.set_disturbance(d);
        }
        // Build the dependency graph. Dependencies on ids not in this batch
        // are a workload bug.
        let ids: BTreeMap<TaskId, usize> =
            tasks.iter().enumerate().map(|(i, t)| (t.id, i)).collect();
        assert_eq!(ids.len(), tasks.len(), "duplicate task ids in workload");
        let mut dep_remaining = vec![0usize; tasks.len()];
        let mut dependents: BTreeMap<TaskId, Vec<usize>> = BTreeMap::new();
        for (i, t) in tasks.iter().enumerate() {
            for d in &t.deps {
                assert!(ids.contains_key(d), "task {} depends on unknown {d}", t.id);
                dep_remaining[i] += 1;
                dependents.entry(*d).or_default().push(i);
            }
        }
        let mut seed_rng = SimRng::seeded(config.seed);
        let batch = BatchSystem::new(config.staging.batch, seed_rng.fork(1));
        // Event volume is predictable from the workload: each task produces
        // a handful of lifecycle events and each worker a provision/poll
        // stream; pre-size the calendar to skip heap regrowth.
        let event_capacity = tasks.len() * 4 + worker_count as usize * 2;
        // Intern categories once so the hot path works with small ids.
        let mut cat_ids: BTreeMap<&str, u32> = BTreeMap::new();
        let mut cat_names: Vec<String> = Vec::new();
        let cat_of: Vec<u32> = tasks
            .iter()
            .map(|t| {
                *cat_ids.entry(&t.category).or_insert_with(|| {
                    cat_names.push(t.category.clone());
                    (cat_names.len() - 1) as u32
                })
            })
            .collect();
        let running_by_cat = vec![0u32; cat_names.len()];
        let cat_streak = vec![0u32; cat_names.len()];
        let sched = match config.sched {
            SchedImpl::Reference => SchedState::Reference(VecDeque::new()),
            SchedImpl::Indexed => SchedState::Indexed(IndexedSched::new(config.policy)),
        };
        let initial_task_count = tasks.len();
        let initial_cat_count = cat_names.len();
        Master {
            dep_remaining,
            dependents,
            cat_of,
            cat_names,
            running_by_cat,
            free_cores: 0,
            batch,
            faults,
            net_rng,
            next_placement: 0,
            live_placements: BTreeMap::new(),
            placements_by_worker: BTreeMap::new(),
            workers_provisioned: 0,
            workers_lost: 0,
            tasks_lost: 0,
            infra_fail_count: vec![0; tasks.len()],
            cat_streak,
            degraded: false,
            env_failures: 0,
            lease_reclaims: 0,
            stage_in_failures: 0,
            spurious_kills: 0,
            result_msgs_lost: 0,
            quarantines: 0,
            lost_core_secs: 0.0,
            infra_retried: std::collections::BTreeSet::new(),
            tasks,
            workers: BTreeMap::new(),
            sched,
            queue: EventQueue::with_capacity(event_capacity),
            allocator,
            fs,
            net,
            disk_model: LocalDisk::nvme(u64::MAX),
            spec,
            worker_count,
            in_flight: 0,
            results: Vec::new(),
            retried: std::collections::BTreeSet::new(),
            abandoned: 0,
            completed: 0,
            journal: config.durability.journal.then(Journal::new),
            restoring: false,
            backoffs: Vec::new(),
            quarantine_until: Vec::new(),
            processed_events: 0,
            next_crash: 0,
            down: false,
            deferred: Vec::new(),
            master_crashes: 0,
            recoveries: 0,
            replayed_events: 0,
            initial_task_count,
            initial_cat_count,
            probe_done: false,
            fed: None,
            config,
        }
    }

    /// Construct a federated sub-master: shard `shard` of the ownership map
    /// `owner` (one entry per task in `tasks`, value = owning shard).
    pub(crate) fn new_shard(
        config: MasterConfig,
        tasks: Vec<TaskSpec>,
        worker_count: u32,
        spec: NodeSpec,
        shard: u32,
        owner: std::sync::Arc<Vec<u32>>,
    ) -> Self {
        debug_assert_eq!(owner.len(), tasks.len());
        let mut m = Master::new(config, tasks, worker_count, spec);
        m.fed = Some(FedState {
            shard,
            owner,
            outbox: Vec::new(),
            inbound_pending: 0,
        });
        m
    }

    /// Is `task_idx` owned by this master? Always true for the standalone
    /// master; federated sub-masters own the tasks the partition assigned
    /// them (stolen tasks run here but stay owned by their home shard).
    fn owned(&self, task_idx: usize) -> bool {
        self.fed
            .as_ref()
            .is_none_or(|f| f.owner[task_idx] == f.shard)
    }

    /// Start the run: journal the header, provision the initial pool, and
    /// enqueue the owned zero-dependency roots.
    pub(crate) fn start(&mut self) {
        // Provision the initial pool.
        let initial = match self.config.provisioning {
            Provisioning::Static => self.worker_count,
            Provisioning::Elastic { initial, .. } => initial.min(self.worker_count).max(1),
        };
        self.jrec(Record::RunStart {
            seed: self.config.seed,
            task_count: self.tasks.len() as u64,
            worker_count: self.worker_count,
        });
        self.submit_pilots(SimTime::ZERO, initial);
        for idx in 0..self.tasks.len() {
            if self.dep_remaining[idx] == 0 && self.owned(idx) {
                self.enqueue_back(Pending {
                    task_idx: idx,
                    attempt: 0,
                    since: SimTime::ZERO,
                });
            }
        }
    }

    /// Process exactly one calendar event (the standalone run loop body).
    /// Panics on deadlock if the calendar is empty with work unfinished —
    /// the federation driver checks `next_time()` first and supplies its
    /// own cross-shard deadlock diagnosis.
    pub(crate) fn step(&mut self) {
        let Some((now, event)) = self.queue.pop() else {
            panic!(
                "deadlock: {} of {} tasks unfinished with no events pending",
                self.tasks.len() - self.completed,
                self.tasks.len()
            );
        };
        if self.down {
            match event {
                Event::Recovered => self.come_back_up(now),
                // The physical cluster keeps moving while the master is
                // down: buffer its events for the recovery drain.
                ev if ev.is_world() => self.deferred.push(ev),
                // Any other timer belonged to the dead process.
                _ => {}
            }
            return;
        }
        self.handle_event(now, event);
        self.after_event();
    }

    fn run(mut self) -> RunReport {
        self.start();
        while self.completed < self.tasks.len() {
            self.step();
        }
        self.finish()
    }

    /// Assemble the final report (the standalone run's epilogue).
    pub(crate) fn finish(self) -> RunReport {
        let makespan = self.queue.now().as_secs();
        let allocated: f64 = self.results.iter().map(|r| r.allocated_core_secs()).sum();
        let used: f64 = self.results.iter().map(|r| r.used_core_secs()).sum();
        let (hits, misses) = self.workers.values().fold((0, 0), |acc, w| {
            (acc.0 + w.cache_hits, acc.1 + w.cache_misses)
        });
        RunReport {
            strategy: self.config.strategy.name().to_string(),
            dist_mode: self.config.staging.dist_mode,
            makespan_secs: makespan,
            task_count: self.tasks.len(),
            retried_tasks: self.retried.len() as u64,
            abandoned_tasks: self.abandoned,
            cache_hits: hits,
            cache_misses: misses,
            allocated_core_secs: allocated,
            used_core_secs: used,
            overcommit_core_secs: (used - allocated).max(0.0),
            fs_md_ops: self.fs.md_ops_served,
            net_bytes: self.net.bytes_moved,
            workers_provisioned: self.workers_provisioned,
            workers_lost: self.workers_lost,
            tasks_lost: self.tasks_lost,
            infra_retried_tasks: self.infra_retried.len() as u64,
            lease_reclaims: self.lease_reclaims,
            stage_in_failures: self.stage_in_failures,
            spurious_kills: self.spurious_kills,
            result_messages_lost: self.result_msgs_lost,
            quarantines: self.quarantines,
            lost_core_secs: self.lost_core_secs,
            degraded_to_shared_fs: self.degraded,
            master_crashes: self.master_crashes,
            recoveries: self.recoveries,
            journal_bytes: self.journal.as_ref().map_or(0, |j| j.bytes_written()),
            replayed_events: self.replayed_events,
            results: self.results,
        }
    }

    /// Process one simulation event while the master is up. Every arm ends
    /// with a dispatch so freed or added capacity is reused immediately.
    fn handle_event(&mut self, now: SimTime, event: Event) {
        match event {
            Event::WorkerUp { id } => {
                self.config
                    .telemetry
                    .counter_at_key(tk().event_worker_up, 1, now);
                let mut worker = Worker::new(id, self.spec);
                // Per-worker fault properties are keyed by worker id,
                // not drawn from a shared stream, so they are identical
                // across scheduler implementations.
                worker.slowdown = self.faults.worker_slowdown(id);
                self.workers.insert(id, worker);
                self.free_cores += self.spec.resources.cores as u64;
                if let SchedState::Indexed(ix) = &mut self.sched {
                    ix.worker_added(id, self.spec.resources.cores);
                    // An empty worker fits any resolved allocation:
                    // every NoFit certificate is void.
                    ix.wake_all_nofit();
                }
                // Sample an eviction time for unreliable pools.
                if let Some(lifetime) = self.faults.worker_lifetime(id) {
                    self.queue.schedule_in(lifetime, Event::WorkerDown { id });
                }
                self.dispatch(now);
            }
            Event::WorkerDown { id } => {
                self.config
                    .telemetry
                    .counter_at_key(tk().event_worker_down, 1, now);
                self.evict_worker(now, id);
                self.dispatch(now);
            }
            Event::TaskDone(info) => {
                self.config
                    .telemetry
                    .counter_at_key(tk().event_task_done, 1, now);
                // A placement lost with its worker (or reclaimed by its
                // lease) was already rescheduled; drop the stale
                // completion.
                if !self.live_placements.contains_key(&info.placement) {
                    return;
                }
                if info.infra == Some(InfraFault::ResultLost) {
                    // The task ran, but its completion message vanished:
                    // free the worker and leave a zombie placement for
                    // the lease to reclaim.
                    self.result_lost(now, &info);
                } else {
                    self.live_placements.remove(&info.placement);
                    if let Some(set) = self.placements_by_worker.get_mut(&info.worker) {
                        set.remove(&info.placement);
                    }
                    self.jrec(Record::Freed {
                        placement: info.placement,
                    });
                    self.finish_task(now, *info);
                }
                self.dispatch(now);
            }
            Event::LeaseExpired { placement } => {
                self.reclaim_lease(now, placement);
                self.dispatch(now);
            }
            Event::Requeue { task_idx, attempt } => {
                // The armed backoff fires: retire its ledger entry, then
                // enqueue (which journals the matching front-enqueue).
                self.backoffs
                    .retain(|&((t, a), _)| !(t == task_idx && a == attempt));
                self.enqueue_front(Pending {
                    task_idx,
                    attempt,
                    since: now,
                });
                self.dispatch(now);
            }
            Event::QuarantineRelease { id } => {
                self.release_quarantine(now, id);
                self.dispatch(now);
            }
            Event::RemoteRelease { task_idx, success } => {
                self.handle_remote_release(now, task_idx, success);
                self.dispatch(now);
            }
            Event::StolenArrive { task_idx, attempt } => {
                if let Some(f) = self.fed.as_mut() {
                    f.inbound_pending = f.inbound_pending.saturating_sub(1);
                }
                self.config
                    .telemetry
                    .counter_at_key(tk().fed_stolen_in, 1, now);
                self.enqueue_back(Pending {
                    task_idx,
                    attempt,
                    since: now,
                });
                self.dispatch(now);
            }
            Event::Recovered => unreachable!("Recovered is only delivered while down"),
            Event::Submit(specs) => {
                self.config
                    .telemetry
                    .counter_at_key(tk().event_submit, specs.len() as u64, now);
                for spec in specs {
                    self.admit_streamed(now, spec);
                }
                self.dispatch(now);
            }
        }
    }

    /// Append one streamed task to a running master and enqueue it. The
    /// per-task parallel vectors (dependency counts, infra budgets) grow
    /// with it, and a first-seen category is interned on the fly — the
    /// allocator then learns its label from scratch exactly as it would
    /// have for an up-front batch.
    fn admit_streamed(&mut self, now: SimTime, spec: TaskSpec) {
        assert!(
            spec.deps.is_empty(),
            "streamed task {} has dependencies; streaming submission is for \
             independent invocations",
            spec.id
        );
        let task_idx = self.tasks.len();
        let cat = match self.cat_names.iter().position(|c| c == &spec.category) {
            Some(i) => i as u32,
            None => {
                self.cat_names.push(spec.category.clone());
                self.running_by_cat.push(0);
                self.cat_streak.push(0);
                (self.cat_names.len() - 1) as u32
            }
        };
        self.cat_of.push(cat);
        self.dep_remaining.push(0);
        self.infra_fail_count.push(0);
        self.jrec(Record::Submitted {
            task_idx: task_idx as u64,
            cat,
            spec: Box::new(spec.clone()),
        });
        self.tasks.push(spec);
        self.enqueue_back(Pending {
            task_idx,
            attempt: 0,
            since: now,
        });
    }

    /// A dependency of `task_idx` reached a terminal state on another shard.
    /// Mirrors the local `release_dependents` / `cancel_dependents` paths,
    /// deduplicating against already-cancelled dependents.
    fn handle_remote_release(&mut self, now: SimTime, task_idx: usize, success: bool) {
        if self.dep_remaining[task_idx] == usize::MAX {
            // Already cancelled by another failed upstream.
            return;
        }
        if success {
            self.jrec(Record::RemoteDep {
                task_idx: task_idx as u64,
            });
            self.dep_remaining[task_idx] -= 1;
            if self.dep_remaining[task_idx] == 0 {
                self.enqueue_back(Pending {
                    task_idx,
                    attempt: 0,
                    since: now,
                });
            }
        } else {
            self.dep_remaining[task_idx] = usize::MAX;
            self.abandoned += 1;
            self.completed += 1;
            self.jrec(Record::Cancelled {
                task_idx: task_idx as u64,
            });
            self.cancel_dependents(task_idx);
        }
    }

    /// Bookkeeping after every event processed while up: the crash-point
    /// check, the restore-equivalence probe, snapshot compaction, elastic
    /// scaling, and the queue-depth gauge.
    fn after_event(&mut self) {
        self.processed_events += 1;
        if let Some(&point) = self.faults.crash_points().get(self.next_crash) {
            if self.processed_events >= point {
                self.crash(self.queue.now());
                return;
            }
        }
        if let Some(at) = self.config.durability.probe_restore_at {
            if !self.probe_done && self.processed_events >= at && self.is_quiescent() {
                self.probe_restore(self.queue.now());
                self.probe_done = true;
            }
        }
        if let Some(j) = self.journal.as_ref() {
            if j.wants_snapshot(self.config.durability.snapshot_every) {
                let img = self.snapshot_image();
                self.journal
                    .as_mut()
                    .expect("journal present")
                    .install_snapshot(&img);
                self.config
                    .telemetry
                    .counter_at_key(tk().journal_snapshot, 1, self.queue.now());
            }
        }
        self.maybe_scale(self.queue.now());
        self.config.telemetry.gauge_key(
            tk().master_pending_tasks,
            self.pending_len() as f64,
            self.queue.now(),
        );
    }

    /// No armed master-side timers (leases, backoffs, quarantine releases):
    /// restoring here re-arms nothing, so the event queue is untouched and a
    /// probe restore must be bit-exact. In-flight placements are fine — they
    /// live in the image, not the queue — as long as their leases are
    /// unarmed (always true on a fault-free cluster).
    fn is_quiescent(&self) -> bool {
        self.backoffs.is_empty()
            && self.quarantine_until.is_empty()
            && self.live_placements.values().all(|p| p.lease_at.is_none())
    }

    // ---- durability: journaling, crash, and recovery ----

    /// Append a write-ahead record — unless recovery is reconstructing
    /// state (reconstruction is not new history) or durability is off.
    fn jrec(&mut self, rec: Record) {
        if self.restoring {
            return;
        }
        if let Some(j) = self.journal.as_mut() {
            j.append(rec);
        }
    }

    /// Journal a plain report-counter delta.
    fn jcount(&mut self, key: CounterKey, amount: f64) {
        self.jrec(Record::Counter { key, amount });
    }

    /// The master process dies. Its logical state is wiped; the physical
    /// cluster (workers, caches, running executions, in-flight transfers)
    /// keeps moving. With a journal the master recovers `snapshot ⊕ tail`;
    /// without one it restarts the run from scratch (the bench baseline).
    /// Either way the master stays down for the restart latency plus the
    /// per-record replay cost, buffering world events until `Recovered`.
    fn crash(&mut self, now: SimTime) {
        self.master_crashes += 1;
        self.next_crash += 1;
        self.config
            .telemetry
            .counter_at_key(tk().master_crash, 1, now);
        // Master-side timers (leases, backoffs, quarantine releases) died
        // with the process; only the physical world's events survive.
        self.queue.retain(Event::is_world);
        let tail = self.journal.as_ref().map(|j| j.tail_len());
        let downtime = self.config.durability.restart_secs
            + self.config.durability.replay_secs_per_event * tail.unwrap_or(0) as f64;
        let resume_at = now + downtime;
        // Recovery re-arms master timers whose deadlines passed while down
        // by clamping them to the recovery instant. Ties break FIFO, so
        // `Recovered` must be inserted first: otherwise a clamped timer
        // pops while the master is still down and is discarded as a
        // dead-process timer, leaving its ledger entry armed forever.
        self.queue.schedule_at(resume_at, Event::Recovered);
        match tail {
            Some(replayed) => {
                let img = self.recover_image();
                self.replayed_events += replayed;
                self.config
                    .telemetry
                    .counter_at_key(tk().journal_replayed_events, replayed, now);
                self.restore_from_image(&img, resume_at);
                self.recoveries += 1;
            }
            None => self.full_restart(resume_at),
        }
        self.down = true;
        self.deferred.clear();
    }

    /// The master process is back up: drain the world events that arrived
    /// while it was down (in their original order), then resume dispatching.
    fn come_back_up(&mut self, now: SimTime) {
        self.down = false;
        self.config
            .telemetry
            .counter_at_key(tk().master_recovered, 1, now);
        let deferred = std::mem::take(&mut self.deferred);
        for ev in deferred {
            self.handle_event(now, ev);
            self.processed_events += 1;
        }
        self.dispatch(now);
        self.maybe_scale(now);
        self.config
            .telemetry
            .gauge_key(tk().master_pending_tasks, self.pending_len() as f64, now);
    }

    /// Fold the journal (base snapshot plus record tail) into the image the
    /// crashed master must resume from.
    fn recover_image(&mut self) -> MasterImage {
        let journal = self.journal.take().expect("journaled recovery");
        let mut img = journal
            .base_image()
            .expect("snapshot decodes")
            .unwrap_or_else(|| {
                // Start from the *constructed* task/category sizes: tasks
                // streamed in after run start re-grow the image as their
                // `Submitted` records replay.
                let fresh_deps: Vec<usize> = self.tasks[..self.initial_task_count]
                    .iter()
                    .map(|t| t.deps.len())
                    .collect();
                MasterImage::fresh(&fresh_deps, self.initial_task_count, self.initial_cat_count)
            });
        let full_deps = Self::dependency_graph(&self.tasks);
        for rec in journal.tail() {
            self.apply_record(&mut img, rec, &full_deps);
        }
        self.journal = Some(journal);
        img
    }

    /// Replay one record into an image — the exact mutation the live master
    /// performed when it appended the record.
    fn apply_record(
        &self,
        img: &mut MasterImage,
        rec: &Record,
        full_deps: &BTreeMap<TaskId, Vec<usize>>,
    ) {
        match rec {
            Record::RunStart {
                seed,
                task_count,
                worker_count,
            } => {
                debug_assert_eq!(*seed, self.config.seed, "journal from another run");
                // `self.tasks` may have grown past the header count via
                // streamed admissions; the header pins the constructed size.
                debug_assert_eq!(*task_count, self.initial_task_count as u64);
                debug_assert_eq!(*worker_count, self.worker_count);
            }
            Record::Enqueue {
                task_idx,
                attempt,
                front,
                since,
            } => {
                // An enqueue of an attempt retires any armed backoff for it:
                // the timer fired (or the attempt re-entered another way).
                img.backoffs
                    .retain(|&(t, a, _)| !(t == *task_idx && a == *attempt));
                if *front {
                    img.pending.push_front((*task_idx, *attempt, *since));
                } else {
                    img.pending.push_back((*task_idx, *attempt, *since));
                }
            }
            Record::BackoffArm {
                task_idx,
                attempt,
                at,
            } => img.backoffs.push((*task_idx, *attempt, *at)),
            Record::Placed {
                placement,
                worker,
                task_idx,
                attempt,
                alloc,
                started_at,
                lease_at,
            } => {
                // An attempt is pending at most once, so the match is unique.
                if let Some(pos) = img
                    .pending
                    .iter()
                    .position(|&(t, a, _)| t == *task_idx && a == *attempt)
                {
                    img.pending.remove(pos);
                }
                img.placements.insert(
                    *placement,
                    PlacementSnap {
                        worker: *worker,
                        task_idx: *task_idx,
                        attempt: *attempt,
                        alloc: *alloc,
                        started_at: *started_at,
                        zombie: false,
                        lease_at: *lease_at,
                    },
                );
                img.next_placement = placement + 1;
            }
            Record::Zombie { placement } => {
                if let Some(p) = img.placements.get_mut(placement) {
                    p.zombie = true;
                }
            }
            Record::Freed { placement } => {
                img.placements.remove(placement);
            }
            Record::Result(tr) => img.results.push((**tr).clone()),
            Record::Finished { task_idx, success } => {
                img.completed += 1;
                if *success {
                    let id = self.tasks[*task_idx as usize].id;
                    for &dep_idx in full_deps.get(&id).map(Vec::as_slice).unwrap_or(&[]) {
                        // Only locally-owned dependents were decremented by
                        // the live path — remote ones were released via the
                        // federation outbox and the owner's own journal.
                        if !self.owned(dep_idx) {
                            continue;
                        }
                        // Mirrors the live decrement, including the
                        // cancelled-marker wrap (u64::MAX → u64::MAX - 1).
                        img.dep_remaining[dep_idx] = img.dep_remaining[dep_idx].wrapping_sub(1);
                    }
                }
            }
            Record::Stolen { task_idx, attempt } => {
                // The live path removed the attempt from the pending queue
                // and shipped it to the thief shard.
                if let Some(pos) = img
                    .pending
                    .iter()
                    .position(|&(t, a, _)| t == *task_idx && a == *attempt)
                {
                    img.pending.remove(pos);
                }
            }
            Record::RemoteDep { task_idx } => {
                img.dep_remaining[*task_idx as usize] =
                    img.dep_remaining[*task_idx as usize].wrapping_sub(1);
            }
            Record::Abandoned { .. } => {
                img.abandoned += 1;
                img.completed += 1;
            }
            Record::Cancelled { task_idx } => {
                img.dep_remaining[*task_idx as usize] = u64::MAX;
                img.abandoned += 1;
                img.completed += 1;
            }
            Record::Observe {
                cat,
                peak_cores,
                peak_rss_mb,
                peak_disk_mb,
                completed,
                violated,
            } => {
                // Exactly `Allocator::observe_outcome`, against the sample
                // vectors instead of the live stores.
                let s = &mut img.alloc_stats[*cat as usize];
                match violated {
                    None => {
                        s.cores.push(peak_cores.max(0.01));
                        s.memory_mb.push((*peak_rss_mb).max(1) as f64);
                        s.disk_mb.push((*peak_disk_mb).max(1) as f64);
                    }
                    Some(ResourceKind::Cores) => s.cores.push(peak_cores.max(0.01) * 2.0),
                    Some(ResourceKind::Memory) => {
                        s.memory_mb.push((*peak_rss_mb).max(1) as f64 * 2.0)
                    }
                    Some(ResourceKind::Disk) => s.disk_mb.push((*peak_disk_mb).max(1) as f64 * 2.0),
                    Some(ResourceKind::WallTime) => {}
                }
                if *completed {
                    s.completed += 1;
                }
            }
            Record::Retried { task_idx } => {
                if let Err(pos) = img.retried.binary_search(task_idx) {
                    img.retried.insert(pos, *task_idx);
                }
            }
            Record::InfraRetried { task_idx, count } => {
                if let Err(pos) = img.infra_retried.binary_search(task_idx) {
                    img.infra_retried.insert(pos, *task_idx);
                }
                img.infra_fail_count[*task_idx as usize] = *count;
            }
            Record::Streak { cat, value } => img.cat_streak[*cat as usize] = *value,
            Record::WorkerFault { worker, count } => {
                img.worker_faults.insert(*worker, *count);
            }
            Record::Quarantined { worker, release_at } => {
                img.quarantined_until.push((*worker, *release_at));
                img.quarantines += 1;
            }
            Record::QuarantineLifted { worker } => {
                img.quarantined_until.retain(|&(w, _)| w != *worker);
                img.worker_faults.remove(worker);
            }
            Record::EnvFailure { count } => img.env_failures = *count,
            Record::Degraded => img.degraded = true,
            Record::Submitted { task_idx, cat, .. } => {
                // Mirrors `admit_streamed`: the per-task vectors grow by one
                // slot (dependency-free) and a first-seen category extends
                // the per-category vectors. The spec itself survives in
                // `self.tasks` — the record's copy keeps the on-disk journal
                // self-contained; replay only needs the index growth.
                debug_assert_eq!(
                    *task_idx,
                    img.dep_remaining.len() as u64,
                    "streamed admissions replay in admission order"
                );
                img.dep_remaining.push(0);
                img.infra_fail_count.push(0);
                while img.cat_streak.len() <= *cat as usize {
                    img.cat_streak.push(0);
                }
                while img.alloc_stats.len() <= *cat as usize {
                    img.alloc_stats.push(CategorySnap::default());
                }
            }
            Record::Counter { key, amount } => match key {
                CounterKey::WorkersProvisioned => img.workers_provisioned += *amount as u32,
                CounterKey::WorkersLost => img.workers_lost += *amount as u32,
                CounterKey::TasksLost => img.tasks_lost += *amount as u64,
                CounterKey::LeaseReclaims => img.lease_reclaims += *amount as u64,
                CounterKey::StageInFailures => img.stage_in_failures += *amount as u64,
                CounterKey::SpuriousKills => img.spurious_kills += *amount as u64,
                CounterKey::ResultMsgsLost => img.result_msgs_lost += *amount as u64,
                CounterKey::LostCoreSecs => img.lost_core_secs += *amount,
            },
        }
    }

    /// Serialize the master's complete logical state. The pending queue is
    /// enumerated canonically (policy-sorted, stable) so both scheduler
    /// implementations emit byte-identical snapshots; allocator sample
    /// stores export canonically for the same reason.
    fn snapshot_image(&self) -> MasterImage {
        let pending: Vec<Pending> = match &self.sched {
            SchedState::Reference(q) => {
                let mut v: Vec<Pending> = q.iter().cloned().collect();
                v.sort_by_key(|p| {
                    policy_rank(
                        self.config.policy,
                        self.tasks[p.task_idx].profile.peak_memory_mb,
                    )
                });
                v
            }
            SchedState::Indexed(ix) => ix.snapshot_pending(),
        };
        MasterImage {
            pending: pending
                .into_iter()
                .map(|p| (p.task_idx as u64, p.attempt, p.since))
                .collect(),
            backoffs: self
                .backoffs
                .iter()
                .map(|&((t, a), at)| (t as u64, a, SimTime::from_secs(at)))
                .collect(),
            placements: self
                .live_placements
                .iter()
                .map(|(&id, p)| {
                    (
                        id,
                        PlacementSnap {
                            worker: p.worker,
                            task_idx: p.task_idx as u64,
                            attempt: p.attempt,
                            alloc: p.allocated,
                            started_at: p.started_at,
                            zombie: p.zombie,
                            lease_at: p.lease_at.map(SimTime::from_secs),
                        },
                    )
                })
                .collect(),
            next_placement: self.next_placement,
            alloc_stats: self
                .cat_names
                .iter()
                .map(|cat| {
                    self.allocator
                        .snapshot_category(cat)
                        .map(|(cores, memory_mb, disk_mb, completed)| CategorySnap {
                            cores,
                            memory_mb,
                            disk_mb,
                            completed: completed as u64,
                        })
                        .unwrap_or_default()
                })
                .collect(),
            dep_remaining: self
                .dep_remaining
                .iter()
                .map(|&d| if d == usize::MAX { u64::MAX } else { d as u64 })
                .collect(),
            completed: self.completed as u64,
            abandoned: self.abandoned,
            results: self.results.clone(),
            retried: self.retried.iter().map(|&t| t as u64).collect(),
            infra_retried: self.infra_retried.iter().map(|&t| t as u64).collect(),
            infra_fail_count: self.infra_fail_count.clone(),
            cat_streak: self.cat_streak.clone(),
            worker_faults: self
                .workers
                .values()
                .filter(|w| w.infra_failures > 0)
                .map(|w| (w.id(), w.infra_failures))
                .collect(),
            quarantined_until: self
                .quarantine_until
                .iter()
                .map(|&(w, t)| (w, SimTime::from_secs(t)))
                .collect(),
            quarantines: self.quarantines,
            degraded: self.degraded,
            env_failures: self.env_failures,
            workers_provisioned: self.workers_provisioned,
            workers_lost: self.workers_lost,
            tasks_lost: self.tasks_lost,
            lease_reclaims: self.lease_reclaims,
            stage_in_failures: self.stage_in_failures,
            spurious_kills: self.spurious_kills,
            result_msgs_lost: self.result_msgs_lost,
            lost_core_secs: self.lost_core_secs,
        }
    }

    /// Overwrite the master's logical state from an image, rebuild the
    /// active scheduler implementation, and re-arm master-side timers
    /// clamped to the recovery instant. World state (workers, caches,
    /// running executions) is untouched — it survived the crash.
    fn restore_from_image(&mut self, img: &MasterImage, resume_at: SimTime) {
        self.restoring = true;
        self.dep_remaining = img
            .dep_remaining
            .iter()
            .map(|&d| {
                if d == u64::MAX {
                    usize::MAX
                } else {
                    d as usize
                }
            })
            .collect();
        // The rebuilt graph is unpruned, but pruning is an optimization:
        // every re-walk of an already-cancelled branch is stopped by the
        // `usize::MAX` markers restored above.
        self.dependents = Self::dependency_graph(&self.tasks);
        self.completed = img.completed as usize;
        self.abandoned = img.abandoned;
        self.results = img.results.clone();
        self.retried = img.retried.iter().map(|&t| t as usize).collect();
        self.infra_retried = img.infra_retried.iter().map(|&t| t as usize).collect();
        self.infra_fail_count = img.infra_fail_count.clone();
        self.cat_streak = img.cat_streak.clone();
        self.quarantines = img.quarantines;
        self.degraded = img.degraded;
        self.env_failures = img.env_failures;
        self.workers_provisioned = img.workers_provisioned;
        self.workers_lost = img.workers_lost;
        self.tasks_lost = img.tasks_lost;
        self.lease_reclaims = img.lease_reclaims;
        self.stage_in_failures = img.stage_in_failures;
        self.spurious_kills = img.spurious_kills;
        self.result_msgs_lost = img.result_msgs_lost;
        self.lost_core_secs = img.lost_core_secs;
        self.next_placement = img.next_placement;

        // The allocator's labels are a pure function of the sample multiset,
        // so replaying the exported samples reproduces every decision.
        self.allocator = Allocator::new(self.config.strategy.clone());
        for (cat, s) in self.cat_names.iter().zip(&img.alloc_stats) {
            if s.cores.is_empty()
                && s.memory_mb.is_empty()
                && s.disk_mb.is_empty()
                && s.completed == 0
            {
                continue;
            }
            self.allocator.restore_category(
                cat,
                &s.cores,
                &s.memory_mb,
                &s.disk_mb,
                s.completed as usize,
            );
        }

        self.live_placements.clear();
        self.placements_by_worker.clear();
        for c in &mut self.running_by_cat {
            *c = 0;
        }
        self.in_flight = 0;
        for (&id, p) in &img.placements {
            self.live_placements.insert(
                id,
                PlacementInfo {
                    worker: p.worker,
                    task_idx: p.task_idx as usize,
                    attempt: p.attempt,
                    allocated: p.alloc,
                    started_at: p.started_at,
                    zombie: p.zombie,
                    lease_at: p.lease_at.map(|t| t.as_secs()),
                },
            );
            if !p.zombie {
                // Zombies already freed their resources; they stay live only
                // to block duplicate completions until the lease reclaims.
                self.placements_by_worker
                    .entry(p.worker)
                    .or_default()
                    .insert(id);
                self.in_flight += 1;
                self.running_by_cat[self.cat_of[p.task_idx as usize] as usize] += 1;
            }
        }

        for w in self.workers.values_mut() {
            w.quarantined = false;
            w.infra_failures = 0;
        }
        for (&wid, &count) in &img.worker_faults {
            if let Some(w) = self.workers.get_mut(&wid) {
                w.infra_failures = count;
            }
        }
        for &(wid, _) in &img.quarantined_until {
            if let Some(w) = self.workers.get_mut(&wid) {
                w.quarantined = true;
            }
        }
        self.free_cores = self
            .workers
            .values()
            .filter(|w| !w.quarantined)
            .map(|w| w.node.available().cores as u64)
            .sum();

        self.backoffs = img
            .backoffs
            .iter()
            .map(|&(t, a, at)| ((t as usize, a), at.as_secs()))
            .collect();
        self.quarantine_until = img
            .quarantined_until
            .iter()
            .map(|&(w, t)| (w, t.as_secs()))
            .collect();

        let pending: Vec<Pending> = img
            .pending
            .iter()
            .map(|&(t, a, since)| Pending {
                task_idx: t as usize,
                attempt: a,
                since,
            })
            .collect();
        self.rebuild_sched(pending);

        // Re-arm master-side timers, clamping deadlines that passed while
        // the master was down to the recovery instant. Each class re-arms
        // in its original arm order, so equal-time timers keep their FIFO
        // tie-break.
        let clamp = |t: f64| SimTime::from_secs(t.max(resume_at.as_secs()));
        let leases: Vec<(u64, f64)> = self
            .live_placements
            .iter()
            .filter_map(|(&id, p)| p.lease_at.map(|t| (id, t)))
            .collect();
        for (placement, t) in leases {
            self.queue
                .schedule_at(clamp(t), Event::LeaseExpired { placement });
        }
        for ((task_idx, attempt), at) in self.backoffs.clone() {
            self.queue
                .schedule_at(clamp(at), Event::Requeue { task_idx, attempt });
        }
        for (id, t) in self.quarantine_until.clone() {
            self.queue
                .schedule_at(clamp(t), Event::QuarantineRelease { id });
        }
        self.restoring = false;
    }

    /// Crash recovery without a journal: the restarted master knows nothing.
    /// Orphaned placements are torn down (their completions will be dropped
    /// as stale), every learned label and result row is lost, and the whole
    /// workload re-enqueues from its roots — only worker caches survive to
    /// soften the re-run. This deliberately breaks run conservation; it is
    /// the baseline the recovery bench measures the journal against.
    fn full_restart(&mut self, resume_at: SimTime) {
        let placements: Vec<PlacementInfo> = self.live_placements.values().copied().collect();
        for p in &placements {
            if p.zombie {
                continue;
            }
            if let Some(w) = self.workers.get_mut(&p.worker) {
                w.node.free(p.allocated);
                w.running -= 1;
            }
        }
        // Forget in-flight staging marks for torn-down placements so the
        // re-run re-stages cleanly.
        for p in &placements {
            if p.zombie {
                continue;
            }
            for i in 0..self.tasks[p.task_idx].inputs.len() {
                let name = self.tasks[p.task_idx].inputs[i].name.clone();
                let cacheable = self.tasks[p.task_idx].inputs[i].cacheable;
                if cacheable {
                    if let Some(w) = self.workers.get_mut(&p.worker) {
                        w.abort_staging(&name);
                    }
                }
            }
        }
        self.live_placements.clear();
        self.placements_by_worker.clear();
        self.in_flight = 0;
        for c in &mut self.running_by_cat {
            *c = 0;
        }
        self.backoffs.clear();
        self.quarantine_until.clear();
        for w in self.workers.values_mut() {
            w.quarantined = false;
            w.infra_failures = 0;
        }
        self.free_cores = self
            .workers
            .values()
            .map(|w| w.node.available().cores as u64)
            .sum();
        self.allocator = Allocator::new(self.config.strategy.clone());
        self.dep_remaining = self.tasks.iter().map(|t| t.deps.len()).collect();
        self.dependents = Self::dependency_graph(&self.tasks);
        self.infra_fail_count = vec![0; self.tasks.len()];
        for s in &mut self.cat_streak {
            *s = 0;
        }
        self.degraded = false;
        self.env_failures = 0;
        self.results.clear();
        self.retried.clear();
        self.infra_retried.clear();
        self.completed = 0;
        self.abandoned = 0;
        self.rebuild_sched(Vec::new());
        for idx in 0..self.tasks.len() {
            if self.dep_remaining[idx] == 0 && self.owned(idx) {
                self.enqueue_back(Pending {
                    task_idx: idx,
                    attempt: 0,
                    since: resume_at,
                });
            }
        }
    }

    /// Point the active scheduler implementation at a restored pending
    /// sequence (already in examination order) and the surviving worker
    /// pool.
    fn rebuild_sched(&mut self, pending: Vec<Pending>) {
        match self.config.sched {
            SchedImpl::Reference => {
                self.sched = SchedState::Reference(pending.into_iter().collect());
            }
            SchedImpl::Indexed => {
                let mut ix = IndexedSched::new(self.config.policy);
                for w in self.workers.values() {
                    if !w.quarantined {
                        ix.worker_added(w.id(), w.node.available().cores);
                    }
                    // The file index keeps quarantined workers' caches (they
                    // rejoin with caches intact), matching live maintenance.
                    for f in w.cached_files() {
                        ix.file_cached(f, w.id());
                    }
                }
                self.sched = SchedState::Indexed(ix);
                if let SchedState::Indexed(ix) = &mut self.sched {
                    for item in pending {
                        ix.push_back(&self.tasks[item.task_idx], item);
                    }
                }
            }
        }
    }

    /// The full dependents graph, as built at construction (recovery cannot
    /// use the live map — cancellation prunes it as it walks).
    fn dependency_graph(tasks: &[TaskSpec]) -> BTreeMap<TaskId, Vec<usize>> {
        let mut dependents: BTreeMap<TaskId, Vec<usize>> = BTreeMap::new();
        for (i, t) in tasks.iter().enumerate() {
            for d in &t.deps {
                dependents.entry(*d).or_default().push(i);
            }
        }
        dependents
    }

    /// Test hook (`DurabilityConfig::probe_restore_at`): serialize the
    /// full master image through the encode/decode path, wipe, and restore
    /// in place. A restored master must be bitwise-indistinguishable from
    /// an uninterrupted one — the recovery-equivalence suites compare the
    /// final `RunReport`s.
    fn probe_restore(&mut self, now: SimTime) {
        let img = self.snapshot_image();
        let bytes = img.encode();
        let decoded = MasterImage::decode(&bytes).expect("image round-trips");
        debug_assert_eq!(img, decoded, "image encode/decode must round-trip");
        // Mirror a real crash's timer purge. At a quiescent point there are
        // no master-side timers, so this keeps the code path honest at zero
        // observable cost.
        self.queue.retain(Event::is_world);
        self.restore_from_image(&decoded, now);
    }

    fn submit_pilots(&mut self, now: SimTime, count: u32) {
        for pilot in self.batch.submit(now, self.spec, count) {
            self.workers_provisioned += 1;
            self.jcount(CounterKey::WorkersProvisioned, 1.0);
            self.queue
                .schedule_at(pilot.starts_at, Event::WorkerUp { id: pilot.id });
        }
    }

    /// Elastic scale-up: if ready tasks outnumber free slots and we are
    /// under the cap, submit another batch of pilots.
    fn maybe_scale(&mut self, now: SimTime) {
        let Provisioning::Elastic {
            max_workers, batch, ..
        } = self.config.provisioning
        else {
            return;
        };
        let pending = self.pending_len();
        if pending == 0 || self.workers_provisioned >= max_workers {
            return;
        }
        // `free_cores` is maintained incrementally on worker up, place,
        // finish, and evict — identical to re-summing the pool, without the
        // per-event O(workers) scan.
        if (pending as u64) > self.free_cores {
            let want = batch.min(max_workers - self.workers_provisioned);
            if want > 0 {
                self.submit_pilots(now, want);
            }
        }
    }

    /// A pilot was evicted: requeue its in-flight tasks (not counted as
    /// resource retries — the task did nothing wrong) and optionally submit
    /// a replacement.
    fn evict_worker(&mut self, now: SimTime, id: u32) {
        let Some(worker) = self.workers.remove(&id) else {
            return;
        };
        self.workers_lost += 1;
        self.jcount(CounterKey::WorkersLost, 1.0);
        // A quarantined worker's free cores were already withdrawn from the
        // pool (and from the capacity index) when it was quarantined.
        if !worker.quarantined {
            self.free_cores -= worker.node.available().cores as u64;
        }
        if let SchedState::Indexed(ix) = &mut self.sched {
            // For quarantined workers the capacity entry is already gone;
            // removal is a no-op there but still tears down the file index.
            ix.worker_removed(id, worker.node.available().cores, worker.cached_files());
        }
        // Only the evicted worker's own placements are touched — the index
        // replaces the old filter-scan over every live placement.
        let lost = self.placements_by_worker.remove(&id).unwrap_or_default();
        for placement in lost {
            #[cfg(test)]
            EVICT_SCANNED.with(|c| c.set(c.get() + 1));
            let p = self
                .live_placements
                .remove(&placement)
                .expect("indexed placement is live");
            debug_assert_eq!(p.worker, id);
            self.jrec(Record::Freed { placement });
            self.tasks_lost += 1;
            self.jcount(CounterKey::TasksLost, 1.0);
            self.in_flight -= 1;
            let lost_secs = p.allocated.cores as f64 * (now - p.started_at);
            self.lost_core_secs += lost_secs;
            self.jcount(CounterKey::LostCoreSecs, lost_secs);
            let cat = self.cat_of[p.task_idx];
            self.running_by_cat[cat as usize] -= 1;
            if let SchedState::Indexed(ix) = &mut self.sched {
                // The category's running count fell: a slow-start verdict
                // for its parked first attempts is stale.
                ix.wake_category(cat, false);
            }
            self.config
                .telemetry
                .instant_key(tk().task_lost, tk().cat_master)
                .at(now)
                .track(id as u64)
                .task(self.tasks[p.task_idx].id.0)
                .attempt(p.attempt)
                .emit();
            self.enqueue_front(Pending {
                task_idx: p.task_idx,
                attempt: p.attempt,
                since: now,
            });
        }
        drop(worker);
        if self.faults.replace_evicted() {
            self.submit_pilots(now, 1);
        }
    }

    // ---- queue plumbing shared by both dispatch implementations ----

    fn pending_len(&self) -> usize {
        match &self.sched {
            SchedState::Reference(q) => q.len(),
            SchedState::Indexed(ix) => ix.len(),
        }
    }

    fn enqueue_back(&mut self, item: Pending) {
        self.jrec(Record::Enqueue {
            task_idx: item.task_idx as u64,
            attempt: item.attempt,
            front: false,
            since: item.since,
        });
        match &mut self.sched {
            SchedState::Reference(q) => q.push_back(item),
            SchedState::Indexed(ix) => ix.push_back(&self.tasks[item.task_idx], item),
        }
    }

    fn enqueue_front(&mut self, item: Pending) {
        self.jrec(Record::Enqueue {
            task_idx: item.task_idx as u64,
            attempt: item.attempt,
            front: true,
            since: item.since,
        });
        match &mut self.sched {
            SchedState::Reference(q) => q.push_front(item),
            SchedState::Indexed(ix) => ix.push_front(&self.tasks[item.task_idx], item),
        }
    }

    fn ref_queue(&mut self) -> &mut VecDeque<Pending> {
        match &mut self.sched {
            SchedState::Reference(q) => q,
            SchedState::Indexed(_) => unreachable!("reference path on indexed state"),
        }
    }

    fn ix(&self) -> &IndexedSched {
        match &self.sched {
            SchedState::Indexed(ix) => ix,
            SchedState::Reference(_) => unreachable!("indexed path on reference state"),
        }
    }

    fn ix_mut(&mut self) -> &mut IndexedSched {
        match &mut self.sched {
            SchedState::Indexed(ix) => ix,
            SchedState::Reference(_) => unreachable!("indexed path on reference state"),
        }
    }

    fn dispatch(&mut self, now: SimTime) {
        match self.config.sched {
            SchedImpl::Reference => self.dispatch_reference(now),
            SchedImpl::Indexed => self.dispatch_indexed(now),
        }
    }

    /// Examine one queued attempt: decide its allocation, apply the
    /// slow-start gate, and pick a worker. `Err` carries why placement is
    /// impossible right now.
    ///
    /// The allocation decision is recomputed at every examination: under
    /// Auto, tasks waiting while the first (whole-worker, monitored) runs of
    /// their category complete pick up the learned label the moment it
    /// exists.
    fn examine(
        &mut self,
        item: &Pending,
    ) -> Result<(u32, AllocationDecision, Resources), ParkReason> {
        let cat = self.cat_of[item.task_idx] as usize;
        let capacity = self.spec.resources;
        let decision = self
            .allocator
            .decide(&self.cat_names[cat], item.attempt, &capacity);
        // Slow-start: immature Auto labels dispatch gradually so one bad
        // label cannot kill an entire wave at once.
        if matches!(decision, AllocationDecision::Sized(_)) && item.attempt == 0 {
            if let Some(cap) = self.allocator.concurrency_cap(&self.cat_names[cat]) {
                if self.running_by_cat[cat] >= cap {
                    return Err(ParkReason::SlowStart);
                }
            }
        }
        let alloc = self.resolve_allocation(decision);
        let picked = match &self.sched {
            SchedState::Reference(_) => self.pick_worker(item.task_idx, &alloc),
            SchedState::Indexed(ix) => {
                ix.pick_worker(&self.workers, &self.tasks[item.task_idx], &alloc)
            }
        };
        match picked {
            Some(wid) => Ok((wid, decision, alloc)),
            None => Err(ParkReason::NoFit(alloc)),
        }
    }

    /// The reference matcher: one greedy pass over the whole pending queue
    /// (drain-sort-refill under the size policies, then examine every item).
    /// Kept as the oracle the indexed scheduler is proven equal against, and
    /// as the benchmark baseline.
    fn dispatch_reference(&mut self, now: SimTime) {
        match self.config.policy {
            SchedulePolicy::Fifo => {}
            SchedulePolicy::LargestFirst => {
                let mut v: Vec<Pending> = self.ref_queue().drain(..).collect();
                v.sort_by_key(|p| std::cmp::Reverse(self.tasks[p.task_idx].profile.peak_memory_mb));
                self.ref_queue().extend(v);
            }
            SchedulePolicy::SmallestFirst => {
                let mut v: Vec<Pending> = self.ref_queue().drain(..).collect();
                v.sort_by_key(|p| self.tasks[p.task_idx].profile.peak_memory_mb);
                self.ref_queue().extend(v);
            }
        }
        let rounds = self.ref_queue().len();
        for _ in 0..rounds {
            let Some(item) = self.ref_queue().pop_front() else {
                break;
            };
            match self.examine(&item) {
                Ok((wid, decision, alloc)) => self.place(now, wid, &item, decision, alloc),
                Err(_) => self.ref_queue().push_back(item),
            }
        }
    }

    /// The indexed pass: a k-way merge over the ready queue and the woken
    /// park groups' heads, in exactly the reference examination order. One
    /// failed head examination settles its whole group for the pass (within
    /// a pass capacity only shrinks and per-category running counts only
    /// grow, so every later member would fail identically); fresh arrivals
    /// whose group is asleep or already settled are parked directly under
    /// the group's standing failure certificate.
    fn dispatch_indexed(&mut self, now: SimTime) {
        // Groups that failed examination *this pass*, with the reason.
        let mut settled: BTreeMap<(u32, bool), ParkReason> = BTreeMap::new();
        while let Some(src) = self.ix().peek_min() {
            match src {
                Src::Ready => {
                    let (key, item) = self.ix_mut().pop_ready();
                    let gk = (self.cat_of[item.task_idx], item.attempt > 0);
                    if let Some(reason) = settled.get(&gk) {
                        let reason = reason.clone();
                        self.ix_mut().park(gk, Some(reason), key, item);
                        continue;
                    }
                    if self.ix().is_asleep(gk) {
                        self.ix_mut().park(gk, None, key, item);
                        continue;
                    }
                    match self.examine(&item) {
                        Ok((wid, decision, alloc)) => {
                            self.place(now, wid, &item, decision, alloc);
                            self.ix_mut().drop_group_if_empty(gk);
                        }
                        Err(reason) => {
                            settled.insert(gk, reason.clone());
                            self.ix_mut().park(gk, Some(reason), key, item);
                        }
                    }
                }
                Src::Group(gk) => {
                    let (key, item) = self.ix_mut().pop_group_head(gk);
                    match self.examine(&item) {
                        Ok((wid, decision, alloc)) => {
                            self.place(now, wid, &item, decision, alloc);
                            self.ix_mut().drop_group_if_empty(gk);
                        }
                        Err(reason) => {
                            settled.insert(gk, reason.clone());
                            self.ix_mut().park(gk, Some(reason), key, item);
                        }
                    }
                }
            }
        }
    }

    /// Convert a decision into a concrete vector on this pool's node spec.
    fn resolve_allocation(&self, decision: AllocationDecision) -> Resources {
        match decision {
            AllocationDecision::WholeWorker => self.spec.resources,
            AllocationDecision::Sized(r) => {
                // A label larger than the node clamps to a whole worker.
                if r.fits_in(&self.spec.resources) {
                    r
                } else {
                    self.spec.resources
                }
            }
        }
    }

    /// Choose a worker: prefer one with the task's cacheable inputs already
    /// local (Work Queue "prefers to schedule tasks where needed data is
    /// cached"), then the one with most free cores.
    fn pick_worker(&self, task_idx: usize, alloc: &Resources) -> Option<u32> {
        let task = &self.tasks[task_idx];
        let mut best: Option<(bool, u32, u32)> = None; // (cached, free_cores, id)
        for w in self.workers.values() {
            if w.quarantined || !w.node.can_fit(alloc) {
                continue;
            }
            let cached = task
                .inputs
                .iter()
                .filter(|f| f.cacheable)
                .all(|f| w.has_cached(&f.name));
            let free = w.node.available().cores;
            let key = (cached, free, w.id());
            match best {
                Some((bc, bf, _)) if (bc, bf) >= (cached, free) => {}
                _ => best = Some(key),
            }
        }
        best.map(|(_, _, id)| id)
    }

    fn place(
        &mut self,
        now: SimTime,
        wid: u32,
        item: &Pending,
        decision: AllocationDecision,
        alloc: Resources,
    ) {
        let (task_idx, attempt) = (item.task_idx, item.attempt);
        let concurrent = self.in_flight.max(1);
        let tid = self.tasks[task_idx].id.0;
        // ---- schedule/dispatch telemetry ----
        if now > item.since {
            self.config
                .telemetry
                .span_key(tk().queue_wait, tk().cat_master)
                .at(item.since, now)
                .track(wid as u64)
                .task(tid)
                .attempt(attempt)
                .emit();
        }
        self.config
            .telemetry
            .instant_key(tk().dispatch, tk().cat_master)
            .at(now)
            .track(wid as u64)
            .task(tid)
            .attempt(attempt)
            .attr_key(tk().a_category, self.tasks[task_idx].category.as_str())
            .attr_key(tk().a_cores, alloc.cores as u64)
            .attr_key(tk().a_memory_mb, alloc.memory_mb)
            .emit();
        // Take the worker out of the map so staging can borrow the network
        // and filesystem models mutably alongside it.
        let mut worker = self.workers.remove(&wid).expect("picked worker exists");
        let co_resident = worker.running;
        let old_free = worker.node.available().cores;
        assert!(worker.node.allocate(alloc), "pick_worker guaranteed fit");
        if let SchedState::Indexed(ix) = &mut self.sched {
            ix.update_free(wid, old_free, worker.node.available().cores);
        }
        self.free_cores -= alloc.cores as u64;
        worker.running += 1;
        self.in_flight += 1;
        self.running_by_cat[self.cat_of[task_idx] as usize] += 1;
        let placement = self.next_placement;
        self.next_placement += 1;
        self.live_placements.insert(
            placement,
            PlacementInfo {
                worker: wid,
                task_idx,
                attempt,
                allocated: alloc,
                started_at: now,
                zombie: false,
                lease_at: None,
            },
        );
        self.placements_by_worker
            .entry(wid)
            .or_default()
            .insert(placement);

        // ---- stage-in ----
        // Cacheable files (environments, shared data) transfer once per
        // worker; tasks arriving while the transfer is in flight wait for it.
        // Per-task data files always transfer. All fault-stream draws below
        // happen at placement-identical points, so both scheduler
        // implementations consume identical fault sequences.
        let direct_env = self.effective_dist_mode() == DistMode::SharedFsDirect;
        let mut cacheable_wait = 0.0f64;
        let mut data_bytes = 0u64;
        let mut direct_import = 0.0f64;
        let mut infra: Option<InfraFault> = None;
        let mut transferred = false;
        let mut env_transfer = false;
        for f in &self.tasks[task_idx].inputs {
            let is_env = matches!(f.kind, FileKind::EnvironmentPack { .. });
            if is_env && direct_env {
                // Conventional deployment: every task imports the whole
                // environment straight from the shared filesystem.
                if let FileKind::EnvironmentPack {
                    unpacked_files,
                    unpacked_bytes,
                    ..
                } = &f.kind
                {
                    direct_import +=
                        self.fs
                            .import_cost(*unpacked_files, *unpacked_bytes, concurrent);
                    worker.cache_misses += 1;
                    self.config
                        .telemetry
                        .counter_at_key(tk().worker_cache_miss, 1, now);
                }
                continue;
            }
            if f.cacheable {
                if worker.has_cached(&f.name) {
                    worker.cache_hits += 1;
                    self.config
                        .telemetry
                        .counter_at_key(tk().worker_cache_hit, 1, now);
                } else if let Some(ready) = worker.staging_ready(&f.name) {
                    // Share the in-flight transfer.
                    worker.cache_hits += 1;
                    self.config
                        .telemetry
                        .counter_at_key(tk().worker_cache_hit, 1, now);
                    cacheable_wait = cacheable_wait.max((ready - now).max(0.0));
                } else {
                    worker.cache_misses += 1;
                    self.config
                        .telemetry
                        .counter_at_key(tk().worker_cache_miss, 1, now);
                    self.config.telemetry.counter_at_key(
                        tk().worker_transfer_bytes,
                        f.size_bytes,
                        now,
                    );
                    transferred = true;
                    if is_env {
                        env_transfer = true;
                    }
                    let tr = self
                        .net
                        .transfer(f.size_bytes, concurrent, &mut self.net_rng);
                    if tr.lost {
                        // The bytes never landed: the time is spent, the
                        // attempt fails, nothing is marked staging.
                        infra.get_or_insert(InfraFault::StageInFailed);
                        cacheable_wait = cacheable_wait.max(tr.secs);
                        continue;
                    }
                    let mut cost = tr.secs;
                    if let FileKind::EnvironmentPack {
                        unpacked_files,
                        relocation_ops,
                        unpacked_bytes,
                    } = &f.kind
                    {
                        if self.faults.unpack_disk_full() {
                            infra.get_or_insert(InfraFault::DiskFull);
                            cacheable_wait = cacheable_wait.max(cost);
                            continue;
                        }
                        cost += self.disk_model.unpack_cost(
                            *unpacked_bytes,
                            *unpacked_files,
                            *relocation_ops,
                        );
                    }
                    worker.mark_staging(&f.name, now + cost);
                    cacheable_wait = cacheable_wait.max(cost);
                }
            } else {
                data_bytes += f.size_bytes;
            }
        }
        let mut stage_in = cacheable_wait + direct_import;
        if data_bytes > 0 {
            self.config
                .telemetry
                .counter_at_key(tk().worker_transfer_bytes, data_bytes, now);
            transferred = true;
            let tr = self.net.transfer(data_bytes, concurrent, &mut self.net_rng);
            stage_in += tr.secs;
            if tr.lost {
                infra.get_or_insert(InfraFault::StageInFailed);
            }
        }
        // The injected staging-failure stream draws once per attempt that
        // actually moved data.
        if infra.is_none() && transferred && self.faults.stage_in_fails() {
            infra = Some(InfraFault::StageInFailed);
        }
        let straggler = worker.slowdown;
        self.workers.insert(wid, worker);

        if let Some(fault) = infra {
            // Stage-in failed: the attempt ends when the wasted transfer
            // time elapses, without ever executing. The `outcome` is a
            // placeholder — infra completions never reach the allocator or
            // the results log.
            self.queue.schedule_in(
                stage_in,
                Event::TaskDone(Box::new(DoneInfo {
                    worker: wid,
                    placement,
                    task_idx,
                    attempt,
                    allocated: alloc,
                    started_at: now,
                    stage_in_secs: stage_in,
                    exec_secs: 0.0,
                    outcome: MonitorOutcome::Failed {
                        exit_code: -86,
                        report: Default::default(),
                    },
                    infra: Some(fault),
                    env_transfer,
                })),
            );
            // No execution, no lease: the stage-in failure event itself
            // bounds the attempt.
            self.jrec(Record::Placed {
                placement,
                worker: wid,
                task_idx: task_idx as u64,
                attempt,
                alloc,
                started_at: now,
                lease_at: None,
            });
            return;
        }

        // ---- execution under the simulated LFM ----
        let limits = match decision {
            AllocationDecision::WholeWorker => ResourceLimits::unlimited(),
            AllocationDecision::Sized(r) => ResourceLimits::unlimited()
                .with_cores(r.cores as f64)
                .with_memory_mb(r.memory_mb)
                .with_disk_mb(r.disk_mb),
        };
        let io_slow = 1.0 + self.config.staging.io_interference * co_resident as f64;
        let slowdown = io_slow * straggler;
        let profile = SimTaskProfile {
            duration_secs: self.tasks[task_idx].profile.duration_secs * slowdown,
            ..self.tasks[task_idx].profile
        };
        let mut sim = self.config.monitor.run(&profile, &limits);
        if sim.outcome.is_success() {
            if let Some(frac) = self.faults.spurious_kill() {
                sim = self
                    .config
                    .monitor
                    .killed_at(&profile, frac * sim.occupied_secs);
            }
        }

        // ---- stage-out ----
        let output_bytes = self.tasks[task_idx].output_bytes;
        let mut infra_out: Option<InfraFault> = None;
        let stage_out = if output_bytes > 0 && sim.outcome.is_success() {
            let tr = self
                .net
                .transfer(output_bytes, concurrent, &mut self.net_rng);
            if tr.lost {
                infra_out = Some(InfraFault::ResultLost);
            }
            tr.secs
        } else {
            0.0
        };

        let total = stage_in + sim.occupied_secs + stage_out;
        self.queue.schedule_in(
            total,
            Event::TaskDone(Box::new(DoneInfo {
                worker: wid,
                placement,
                task_idx,
                attempt,
                allocated: alloc,
                started_at: now,
                stage_in_secs: stage_in,
                exec_secs: sim.occupied_secs,
                outcome: sim.outcome,
                infra: infra_out,
                env_transfer,
            })),
        );

        // ---- lease ----
        // Only armed under an active fault plan, so fault-free runs
        // schedule no extra events. The lease is a multiple of the
        // attempt's *nominal* time (actual stage-in + unslowed execution +
        // nominal output transfer): stragglers running far past nominal
        // and zombies whose completion never arrives both get reclaimed.
        let lease_at = if self.faults.active() {
            let nominal = stage_in
                + self.tasks[task_idx].profile.duration_secs * io_slow
                + output_bytes as f64 / self.net.params.per_link_bw;
            let r = &self.config.resilience;
            let lease = (r.lease_factor * nominal).max(r.min_lease_secs);
            let deadline = now + lease;
            self.queue
                .schedule_at(deadline, Event::LeaseExpired { placement });
            self.live_placements
                .get_mut(&placement)
                .expect("just inserted")
                .lease_at = Some(deadline.as_secs());
            Some(deadline)
        } else {
            None
        };
        self.jrec(Record::Placed {
            placement,
            worker: wid,
            task_idx: task_idx as u64,
            attempt,
            alloc,
            started_at: now,
            lease_at,
        });
    }

    /// What distribution mode is in force right now — the configured one,
    /// unless repeated packed-env staging failures degraded the run to the
    /// shared filesystem.
    fn effective_dist_mode(&self) -> DistMode {
        if self.degraded {
            DistMode::SharedFsDirect
        } else {
            self.config.staging.dist_mode
        }
    }

    /// Release a finished/reclaimed placement's resources and wake parked
    /// work. Mirrors the allocation bookkeeping in `place()`; quarantined
    /// workers keep their capacity withdrawn from the pool and the index.
    fn free_placement(&mut self, wid: u32, task_idx: usize, allocated: Resources) {
        let cat = self.cat_of[task_idx];
        let worker = self.workers.get_mut(&wid).expect("worker exists");
        let old_free = worker.node.available().cores;
        worker.node.free(allocated);
        let avail = worker.node.available();
        let quarantined = worker.quarantined;
        worker.running -= 1;
        if !quarantined {
            self.free_cores += allocated.cores as u64;
        }
        self.in_flight -= 1;
        self.running_by_cat[cat as usize] -= 1;
        if let SchedState::Indexed(ix) = &mut self.sched {
            if !quarantined {
                ix.update_free(wid, old_free, avail.cores);
            }
            // The category's running count fell: a slow-start verdict for
            // its parked first attempts is stale.
            ix.wake_category(cat, false);
            if !quarantined {
                // Freed capacity can unblock any group whose allocation now
                // fits this worker.
                ix.wake_fitting(&avail);
            }
        }
    }

    /// Cacheable inputs staged during a completed execution are now local.
    /// In (effective) direct mode environments are never materialized
    /// locally, but ordinary shared data still caches.
    fn cache_staged_inputs(&mut self, wid: u32, task_idx: usize) {
        let packed = self.effective_dist_mode() == DistMode::PackedTransfer;
        let worker = self.workers.get_mut(&wid).expect("worker exists");
        for f in &self.tasks[task_idx].inputs {
            let is_env = matches!(f.kind, FileKind::EnvironmentPack { .. });
            if (!is_env || packed) && worker.insert_cached(f) {
                if let SchedState::Indexed(ix) = &mut self.sched {
                    ix.file_cached(&f.name, wid);
                }
            }
        }
    }

    /// The task ran to completion on its worker, but the result message was
    /// lost. Free the worker (the work is done there, and its staged inputs
    /// are cached), but keep the placement live as a zombie: its lease will
    /// reclaim and requeue it, and no duplicate completion can slip in.
    fn result_lost(&mut self, now: SimTime, info: &DoneInfo) {
        if let Some(set) = self.placements_by_worker.get_mut(&info.worker) {
            set.remove(&info.placement);
        }
        if let Some(p) = self.live_placements.get_mut(&info.placement) {
            p.zombie = true;
        }
        self.jrec(Record::Zombie {
            placement: info.placement,
        });
        self.free_placement(info.worker, info.task_idx, info.allocated);
        self.cache_staged_inputs(info.worker, info.task_idx);
        self.result_msgs_lost += 1;
        self.jcount(CounterKey::ResultMsgsLost, 1.0);
        let lost_secs = info.allocated.cores as f64 * (now - info.started_at);
        self.lost_core_secs += lost_secs;
        self.jcount(CounterKey::LostCoreSecs, lost_secs);
        self.config
            .telemetry
            .instant_key(tk().result_lost, tk().cat_faults)
            .at(now)
            .track(info.worker as u64)
            .task(self.tasks[info.task_idx].id.0)
            .attempt(info.attempt)
            .emit();
        self.note_worker_fault(now, info.worker);
    }

    /// A placement's lease expired. If it is still live, the attempt is
    /// written off: a zombie (result lost — resources already freed) or a
    /// straggler still running (whose eventual completion will be dropped
    /// as stale). Either way the task is requeued with backoff.
    fn reclaim_lease(&mut self, now: SimTime, placement: u64) {
        let Some(p) = self.live_placements.get(&placement).copied() else {
            return; // completed (or was lost with its worker) long ago
        };
        self.live_placements.remove(&placement);
        self.jrec(Record::Freed { placement });
        self.lease_reclaims += 1;
        self.jcount(CounterKey::LeaseReclaims, 1.0);
        if !p.zombie {
            if let Some(set) = self.placements_by_worker.get_mut(&p.worker) {
                set.remove(&placement);
            }
            self.free_placement(p.worker, p.task_idx, p.allocated);
            let lost_secs = p.allocated.cores as f64 * (now - p.started_at);
            self.lost_core_secs += lost_secs;
            self.jcount(CounterKey::LostCoreSecs, lost_secs);
        }
        self.config
            .telemetry
            .instant_key(tk().lease_reclaim, tk().cat_faults)
            .at(now)
            .track(p.worker as u64)
            .task(self.tasks[p.task_idx].id.0)
            .attempt(p.attempt)
            .attr_key(tk().a_zombie, if p.zombie { 1u64 } else { 0u64 })
            .emit();
        self.note_worker_fault(now, p.worker);
        self.requeue_with_backoff(now, p.task_idx, p.attempt);
    }

    /// Attribute an infrastructure failure to a worker; past the threshold
    /// the worker is quarantined — withdrawn from scheduling (its running
    /// tasks drain normally) until its release event.
    fn note_worker_fault(&mut self, now: SimTime, wid: u32) {
        let Some(threshold) = self.config.resilience.quarantine_threshold else {
            return;
        };
        let Some(worker) = self.workers.get_mut(&wid) else {
            return; // already evicted
        };
        worker.infra_failures += 1;
        let count = worker.infra_failures;
        let quarantine = count >= threshold && !worker.quarantined;
        if quarantine {
            worker.quarantined = true;
        }
        self.jrec(Record::WorkerFault { worker: wid, count });
        if quarantine {
            let worker = self.workers.get_mut(&wid).expect("worker exists");
            let avail = worker.node.available();
            self.quarantines += 1;
            self.free_cores -= avail.cores as u64;
            if let SchedState::Indexed(ix) = &mut self.sched {
                ix.worker_offline(wid, avail.cores);
            }
            self.config
                .telemetry
                .instant_key(tk().quarantine, tk().cat_faults)
                .at(now)
                .track(wid as u64)
                .emit();
            let release_at = now + self.config.resilience.quarantine_secs;
            self.quarantine_until.push((wid, release_at.as_secs()));
            self.jrec(Record::Quarantined {
                worker: wid,
                release_at,
            });
            self.queue
                .schedule_at(release_at, Event::QuarantineRelease { id: wid });
        }
    }

    /// A quarantined worker sits out its penalty and rejoins the pool with
    /// a clean flakiness score (and its file cache intact).
    fn release_quarantine(&mut self, now: SimTime, id: u32) {
        let Some(worker) = self.workers.get_mut(&id) else {
            return; // evicted while quarantined
        };
        if !worker.quarantined {
            return;
        }
        worker.quarantined = false;
        worker.infra_failures = 0;
        let avail = worker.node.available();
        self.quarantine_until.retain(|&(w, _)| w != id);
        self.jrec(Record::QuarantineLifted { worker: id });
        self.free_cores += avail.cores as u64;
        if let SchedState::Indexed(ix) = &mut self.sched {
            ix.worker_online(id, avail.cores);
            ix.wake_fitting(&avail);
        }
        self.config
            .telemetry
            .instant_key(tk().quarantine_release, tk().cat_faults)
            .at(now)
            .track(id as u64)
            .emit();
    }

    /// Requeue a task after an infrastructure failure: same attempt number
    /// (the task did nothing wrong), bounded by the infra retry budget,
    /// delayed by the category's exponential-backoff streak.
    fn requeue_with_backoff(&mut self, now: SimTime, task_idx: usize, attempt: u32) {
        self.infra_retried.insert(task_idx);
        self.infra_fail_count[task_idx] += 1;
        self.jrec(Record::InfraRetried {
            task_idx: task_idx as u64,
            count: self.infra_fail_count[task_idx],
        });
        if self.infra_fail_count[task_idx] > self.config.resilience.infra_retry_budget {
            self.abandoned += 1;
            self.completed += 1;
            self.jrec(Record::Abandoned {
                task_idx: task_idx as u64,
            });
            self.config
                .telemetry
                .counter_at_key(tk().master_abandoned, 1, now);
            self.cancel_dependents(task_idx);
            return;
        }
        let cat = self.cat_of[task_idx] as usize;
        // Saturate rather than wrap: a pathological streak past u32::MAX
        // attempts must pin at the backoff ceiling, not reset to zero.
        self.cat_streak[cat] = self.cat_streak[cat].saturating_add(1);
        self.jrec(Record::Streak {
            cat: cat as u32,
            value: self.cat_streak[cat],
        });
        let delay = backoff_delay(self.cat_streak[cat], &self.config.resilience);
        self.config
            .telemetry
            .instant_key(tk().infra_requeue, tk().cat_faults)
            .at(now)
            .task(self.tasks[task_idx].id.0)
            .attempt(attempt)
            .attr_key(tk().a_backoff_s, delay)
            .emit();
        if delay <= 0.0 {
            self.enqueue_front(Pending {
                task_idx,
                attempt,
                since: now,
            });
        } else {
            let at = now + delay;
            self.backoffs.push(((task_idx, attempt), at.as_secs()));
            self.jrec(Record::BackoffArm {
                task_idx: task_idx as u64,
                attempt,
                at,
            });
            self.queue
                .schedule_at(at, Event::Requeue { task_idx, attempt });
        }
    }

    /// A stage-in attempt failed (lost transfer, injected failure, or
    /// disk-full unpack): nothing landed, nothing executed. Forget the
    /// in-flight staging marks, account the wasted core-time, advance the
    /// degradation counter, and requeue.
    fn infra_finish(&mut self, now: SimTime, info: DoneInfo) {
        let fault = info.infra.expect("infra completion");
        let worker = self.workers.get_mut(&info.worker).expect("worker exists");
        for f in &self.tasks[info.task_idx].inputs {
            if f.cacheable {
                worker.abort_staging(&f.name);
            }
        }
        self.stage_in_failures += 1;
        self.jcount(CounterKey::StageInFailures, 1.0);
        let lost_secs = info.allocated.cores as f64 * info.stage_in_secs;
        self.lost_core_secs += lost_secs;
        self.jcount(CounterKey::LostCoreSecs, lost_secs);
        if info.env_transfer
            && self.config.staging.dist_mode == DistMode::PackedTransfer
            && !self.degraded
        {
            self.env_failures += 1;
            self.jrec(Record::EnvFailure {
                count: self.env_failures,
            });
            if let Some(th) = self.config.resilience.degrade_env_failures {
                if self.env_failures >= th {
                    self.degraded = true;
                    self.jrec(Record::Degraded);
                    self.config
                        .telemetry
                        .instant_key(tk().degrade_to_shared_fs, tk().cat_faults)
                        .at(now)
                        .emit();
                }
            }
        }
        self.config
            .telemetry
            .instant_key(Name::intern(fault.label()), tk().cat_faults)
            .at(now)
            .track(info.worker as u64)
            .task(self.tasks[info.task_idx].id.0)
            .attempt(info.attempt)
            .emit();
        self.note_worker_fault(now, info.worker);
        self.requeue_with_backoff(now, info.task_idx, info.attempt);
    }

    fn finish_task(&mut self, now: SimTime, info: DoneInfo) {
        let cat = self.cat_of[info.task_idx];
        self.free_placement(info.worker, info.task_idx, info.allocated);
        if info.infra.is_some() {
            self.infra_finish(now, info);
            return;
        }
        self.cache_staged_inputs(info.worker, info.task_idx);
        let worker = self.workers.get_mut(&info.worker).expect("worker exists");
        let completed = info.outcome.is_success();
        if completed {
            worker.tasks_completed += 1;
        }
        let spurious = info.outcome.is_spurious_kill();
        let violated = match &info.outcome {
            MonitorOutcome::LimitExceeded { kind, .. } => Some(*kind),
            _ => None,
        };
        // Spurious kills are infrastructure noise: the allocator never
        // sees them, so injected monitor faults cannot corrupt learned
        // labels.
        let effects = if spurious {
            ObservationEffects::default()
        } else {
            let report = info.outcome.report();
            self.jrec(Record::Observe {
                cat,
                peak_cores: report.peak_cores,
                peak_rss_mb: report.peak_rss_mb,
                peak_disk_mb: report.peak_disk_mb,
                completed,
                violated,
            });
            self.allocator.observe_outcome_notify(
                &self.cat_names[cat as usize],
                info.outcome.report(),
                completed,
                violated,
                &self.spec.resources,
            )
        };
        if effects.label_changed {
            if let SchedState::Indexed(ix) = &mut self.sched {
                // On a label change the category's NoFit parks hold a stale
                // allocation vector: wake them for re-examination.
                ix.wake_category(cat, true);
            }
        }
        let task = &self.tasks[info.task_idx];
        let task_id = task.id;

        // Per-attempt trace spans. Nothing below touches sim state: the
        // recorder is strictly observational, so a disabled recorder yields
        // a bit-identical RunReport.
        {
            let tel = &self.config.telemetry;
            let tid = task.id.0;
            let track = info.worker as u64;
            let stage_in_end = info.started_at + info.stage_in_secs;
            let exec_end = stage_in_end + info.exec_secs;
            if info.stage_in_secs > 0.0 {
                tel.span_key(tk().stage_in, tk().cat_worker)
                    .at(info.started_at, stage_in_end)
                    .track(track)
                    .task(tid)
                    .attempt(info.attempt)
                    .emit();
            }
            let report = info.outcome.report();
            let status = match &info.outcome {
                MonitorOutcome::Completed(_) => "completed",
                MonitorOutcome::LimitExceeded { .. } => "limit_exceeded",
                MonitorOutcome::SpuriousKill { .. } => "spurious_kill",
                MonitorOutcome::Failed { .. } => "failed",
            };
            tel.span_key(tk().exec, tk().cat_lfm)
                .at(stage_in_end, exec_end)
                .track(track)
                .task(tid)
                .attempt(info.attempt)
                .attr_key(tk().a_category, task.category.as_str())
                .attr_key(tk().a_status, status)
                .attr_key(tk().a_polls, report.polls)
                .attr_key(tk().a_peak_rss_mb, report.peak_rss_mb)
                .attr_key(tk().a_peak_disk_mb, report.peak_disk_mb)
                .attr_key(tk().a_cpu_s, report.cpu_secs)
                .attr_key(tk().a_monitor_overhead_s, report.monitor_overhead_secs)
                .emit();
            if let Some(kind) = violated {
                tel.instant_key(tk().limit_kill, tk().cat_lfm)
                    .at(exec_end)
                    .track(track)
                    .task(tid)
                    .attempt(info.attempt)
                    .attr_key(tk().a_limit, kind.to_string())
                    .emit();
            }
            if now > exec_end {
                tel.span_key(tk().stage_out, tk().cat_worker)
                    .at(exec_end, now)
                    .track(track)
                    .task(tid)
                    .attempt(info.attempt)
                    .emit();
            }
            tel.span_key(tk().task, tk().cat_master)
                .at(info.started_at, now)
                .track(track)
                .task(tid)
                .attempt(info.attempt)
                .attr_key(tk().a_status, status)
                .emit();
        }

        let result = TaskResult {
            task: task.id,
            category: task.category.clone(),
            worker: info.worker,
            allocated: info.allocated,
            submitted_at: SimTime::ZERO,
            started_at: info.started_at,
            finished_at: now,
            stage_in_secs: info.stage_in_secs,
            exec_secs: info.exec_secs,
            outcome: info.outcome.clone(),
            attempt: info.attempt,
        };
        self.jrec(Record::Result(Box::new(result.clone())));
        self.results.push(result);

        if spurious {
            // An injected monitor fault killed a healthy execution: retry
            // the *same* attempt against the infra budget, never the
            // resource-retry ceiling.
            self.spurious_kills += 1;
            self.jcount(CounterKey::SpuriousKills, 1.0);
            self.config
                .telemetry
                .instant_key(tk().spurious_kill, tk().cat_faults)
                .at(now)
                .track(info.worker as u64)
                .task(task_id.0)
                .attempt(info.attempt)
                .emit();
            self.note_worker_fault(now, info.worker);
            self.requeue_with_backoff(now, info.task_idx, info.attempt);
        } else if info.outcome.is_limit_exceeded() {
            self.retried.insert(info.task_idx);
            self.jrec(Record::Retried {
                task_idx: info.task_idx as u64,
            });
            if info.attempt + 1 < self.config.resilience.max_attempts {
                self.config
                    .telemetry
                    .counter_at_key(tk().master_retry, 1, now);
                self.config
                    .telemetry
                    .instant_key(tk().retry, tk().cat_master)
                    .at(now)
                    .track(info.worker as u64)
                    .task(task_id.0)
                    .attempt(info.attempt + 1)
                    .emit();
                // Retry at the front, at full size (the allocator returns
                // WholeWorker for attempt > 0).
                self.enqueue_front(Pending {
                    task_idx: info.task_idx,
                    attempt: info.attempt + 1,
                    since: now,
                });
            } else {
                self.abandoned += 1;
                self.completed += 1;
                self.jrec(Record::Abandoned {
                    task_idx: info.task_idx as u64,
                });
                self.config
                    .telemetry
                    .counter_at_key(tk().master_abandoned, 1, now);
                self.cancel_dependents(info.task_idx);
            }
        } else {
            self.completed += 1;
            self.jrec(Record::Finished {
                task_idx: info.task_idx as u64,
                success: info.outcome.is_success(),
            });
            self.config
                .telemetry
                .counter_at_key(tk().master_task_done, 1, now);
            if info.outcome.is_success() {
                // A success ends the category's infra-failure streak.
                self.cat_streak[cat as usize] = 0;
                self.jrec(Record::Streak { cat, value: 0 });
                // All tasks submit at t=0, so turnaround is just `now`.
                self.config
                    .telemetry
                    .observe_key(tk().turnaround_s, now.as_secs());
                self.release_dependents(now, info.task_idx);
            } else {
                // The function itself failed: its dependents can never run.
                self.cancel_dependents(info.task_idx);
            }
        }
    }

    /// A task succeeded: locally-owned dependents with no remaining
    /// dependencies become ready; remotely-owned dependents get a `Release`
    /// handoff message carrying the producer's output size (the owner
    /// decrements its own count when the message lands).
    fn release_dependents(&mut self, now: SimTime, task_idx: usize) {
        let id = self.tasks[task_idx].id;
        let bytes = self.tasks[task_idx].output_bytes;
        let mut ready: Vec<usize> = Vec::new();
        let mut remote: Vec<usize> = Vec::new();
        for &dep_idx in self.dependents.get(&id).map(Vec::as_slice).unwrap_or(&[]) {
            if !self.owned(dep_idx) {
                remote.push(dep_idx);
                continue;
            }
            self.dep_remaining[dep_idx] -= 1;
            if self.dep_remaining[dep_idx] == 0 {
                ready.push(dep_idx);
            }
        }
        for dep_idx in ready {
            self.enqueue_back(Pending {
                task_idx: dep_idx,
                attempt: 0,
                since: now,
            });
        }
        if let Some(f) = self.fed.as_mut() {
            for dep_idx in remote {
                f.outbox.push(OutMsg::Release {
                    task_idx: dep_idx,
                    at: now,
                    bytes,
                });
            }
        }
    }

    /// A task permanently failed: transitively cancel everything downstream
    /// so the run still terminates, counting the casualties as abandoned.
    /// Remotely-owned dependents get a `Cancel` handoff message instead —
    /// the owning shard accounts for them and continues the cascade there.
    fn cancel_dependents(&mut self, task_idx: usize) {
        let now = self.queue.now();
        let mut stack = vec![self.tasks[task_idx].id];
        while let Some(id) = stack.pop() {
            let Some(deps) = self.dependents.remove(&id) else {
                continue;
            };
            for dep_idx in deps {
                if !self.owned(dep_idx) {
                    if let Some(f) = self.fed.as_mut() {
                        f.outbox.push(OutMsg::Cancel {
                            task_idx: dep_idx,
                            at: now,
                        });
                    }
                    continue;
                }
                if self.dep_remaining[dep_idx] == usize::MAX {
                    continue; // already cancelled
                }
                self.dep_remaining[dep_idx] = usize::MAX;
                self.abandoned += 1;
                self.completed += 1;
                self.jrec(Record::Cancelled {
                    task_idx: dep_idx as u64,
                });
                stack.push(self.tasks[dep_idx].id);
            }
        }
    }

    // ---- federation driver surface (see `federation.rs`) ----

    /// The timestamp of the next calendar event, if any.
    pub(crate) fn next_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Current simulation time on this shard's clock.
    pub(crate) fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Tasks that reached a terminal state on this shard (successes plus
    /// abandoned), the federation's termination currency.
    pub(crate) fn completed_count(&self) -> usize {
        self.completed
    }

    /// The master process is currently crashed (buffering world events).
    pub(crate) fn is_down(&self) -> bool {
        self.down
    }

    /// Ready tasks queued on this shard (the stealing balancer's heat
    /// measure).
    pub(crate) fn queued_len(&self) -> usize {
        self.pending_len()
    }

    /// Stolen-task arrivals injected but not yet handled.
    pub(crate) fn inbound_pending(&self) -> u32 {
        self.fed.as_ref().map_or(0, |f| f.inbound_pending)
    }

    /// Record an in-flight stolen-task arrival (the balancer injected a
    /// `StolenArrive` toward this shard).
    pub(crate) fn note_inbound(&mut self) {
        if let Some(f) = self.fed.as_mut() {
            f.inbound_pending += 1;
        }
    }

    /// Drain the cross-shard effects produced since the last drain.
    pub(crate) fn drain_outbox(&mut self) -> Vec<OutMsg> {
        self.fed
            .as_mut()
            .map(|f| std::mem::take(&mut f.outbox))
            .unwrap_or_default()
    }

    /// Schedule `event` on this shard's calendar at absolute time `at`.
    pub(crate) fn inject_at(&mut self, at: SimTime, event: Event) {
        self.queue.schedule_at(at, event);
    }

    /// Events handled so far (federation telemetry).
    pub(crate) fn events_processed(&self) -> u64 {
        self.processed_events
    }

    // ---- streaming driver surface (see `streaming.rs`) ----

    /// Every attempt record produced so far, in completion order. Streaming
    /// drivers read incrementally from a cursor; the slice only ever grows.
    pub(crate) fn results_so_far(&self) -> &[TaskResult] {
        &self.results
    }

    /// Attempts currently placed on workers.
    pub(crate) fn in_flight_count(&self) -> usize {
        self.in_flight
    }

    /// Master crashes fired so far (`FaultKind::MasterCrash`).
    pub(crate) fn crash_count(&self) -> u32 {
        self.master_crashes
    }

    /// Journaled recoveries completed so far (≤ `crash_count`; the gap is
    /// full restarts).
    pub(crate) fn recovery_count(&self) -> u32 {
        self.recoveries
    }

    /// Journal bytes flushed so far (records plus snapshots); 0 without a
    /// journal.
    pub(crate) fn journal_bytes(&self) -> u64 {
        self.journal.as_ref().map_or(0, |j| j.bytes_written())
    }

    /// Give up to `max` queued first-attempt tasks from the back of the
    /// pending queue (the coldest work under every policy ordering) to a
    /// work-stealing balancer. Retries and backoff re-entries stay put —
    /// their accounting is anchored to this shard. Each migration journals
    /// a `Stolen` record so crash recovery does not resurrect the task
    /// here.
    pub(crate) fn steal_back(&mut self, max: usize) -> Vec<(usize, u32)> {
        if max == 0 || self.down {
            return Vec::new();
        }
        let stolen: Vec<Pending> = match &mut self.sched {
            SchedState::Indexed(ix) => ix.steal_last(max),
            SchedState::Reference(q) => {
                Self::steal_back_reference(q, &self.tasks, self.config.policy, max)
            }
        };
        stolen
            .into_iter()
            .map(|p| {
                self.jrec(Record::Stolen {
                    task_idx: p.task_idx as u64,
                    attempt: p.attempt,
                });
                (p.task_idx, p.attempt)
            })
            .collect()
    }

    /// Reference-scheduler stealing: mirror the canonical policy-sorted
    /// enumeration (`snapshot_pending`) and take the last `max`
    /// first-attempt items of that view.
    fn steal_back_reference(
        q: &mut VecDeque<Pending>,
        tasks: &[TaskSpec],
        policy: SchedulePolicy,
        max: usize,
    ) -> Vec<Pending> {
        // Stable-sort the queue positions by policy rank, exactly like the
        // snapshot enumeration, then walk that view from the back.
        let mut order: Vec<usize> = (0..q.len()).collect();
        order.sort_by_key(|&i| policy_rank(policy, tasks[q[i].task_idx].profile.peak_memory_mb));
        // Picked in descending policy-view order; keep that order for the
        // output so both scheduler implementations hand over the same
        // sequence.
        let picked: Vec<usize> = order
            .into_iter()
            .rev()
            .filter(|&i| q[i].attempt == 0)
            .take(max)
            .collect();
        let mut out: Vec<Pending> = picked.iter().map(|&i| q[i].clone()).collect();
        // Remove back-to-front so earlier indices stay valid.
        let mut doomed = picked;
        doomed.sort_unstable();
        for i in doomed.into_iter().rev() {
            q.remove(i);
        }
        // Coldest (policy-last) task last: the thief enqueues in warm-first
        // order.
        out.reverse();
        out
    }
}

/// Convenience: task ids for a generated batch.
pub fn task_ids(n: u64) -> Vec<TaskId> {
    (0..n).map(TaskId).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocate::AutoConfig;
    use crate::files::FileRef;

    /// A uniform batch of HEP-like tasks (§VI-C1's numbers).
    fn hep_tasks(n: u64) -> Vec<TaskSpec> {
        let env = FileRef::environment("hep-env", 240 << 20, 600 << 20, 5000, 800);
        let common = FileRef::shared_data("calib", 1 << 20);
        (0..n)
            .map(|i| {
                TaskSpec::new(
                    TaskId(i),
                    "hep",
                    vec![
                        env.clone(),
                        common.clone(),
                        FileRef::data(format!("in-{i}"), 512 << 10),
                    ],
                    50 << 20,
                    SimTaskProfile::new(55.0, 1.0, 110, 1024),
                )
            })
            .collect()
    }

    fn oracle() -> Strategy {
        let mut map = BTreeMap::new();
        map.insert("hep".to_string(), Resources::new(1, 110, 1024));
        Strategy::Oracle(map)
    }

    fn node() -> NodeSpec {
        NodeSpec::new(8, 8192, 16384)
    }

    #[test]
    fn all_tasks_complete() {
        let report = run_workload(&MasterConfig::new(oracle()), hep_tasks(40), 4, node());
        assert_eq!(report.task_count, 40);
        let successes = report
            .results
            .iter()
            .filter(|r| r.outcome.is_success())
            .count();
        assert_eq!(successes, 40);
        assert_eq!(report.abandoned_tasks, 0);
        assert!(report.makespan_secs > 0.0);
    }

    #[test]
    fn oracle_packs_tasks_per_worker() {
        // 8-core workers, 1-core tasks: Oracle packs 8 per worker, so 40
        // tasks on 4 workers ≈ 2 waves of execution (~110 s + staging), far
        // below the 40-wave unmanaged serial bound.
        let oracle_rep = run_workload(&MasterConfig::new(oracle()), hep_tasks(40), 4, node());
        let unmanaged_rep = run_workload(
            &MasterConfig::new(Strategy::Unmanaged),
            hep_tasks(40),
            4,
            node(),
        );
        assert!(
            unmanaged_rep.makespan_secs > 3.0 * oracle_rep.makespan_secs,
            "unmanaged {} vs oracle {}",
            unmanaged_rep.makespan_secs,
            oracle_rep.makespan_secs
        );
    }

    #[test]
    fn auto_converges_close_to_oracle() {
        let auto_rep = run_workload(
            &MasterConfig::new(Strategy::Auto(AutoConfig::default())),
            hep_tasks(160),
            4,
            node(),
        );
        let oracle_rep = run_workload(&MasterConfig::new(oracle()), hep_tasks(160), 4, node());
        assert!(
            auto_rep.makespan_secs < 1.5 * oracle_rep.makespan_secs,
            "auto {} vs oracle {}",
            auto_rep.makespan_secs,
            oracle_rep.makespan_secs
        );
        // Uniform workload: almost nothing should be retried.
        assert!(
            auto_rep.retry_fraction() <= 0.05,
            "retries {}",
            auto_rep.retry_fraction()
        );
    }

    #[test]
    fn tight_guess_triggers_retries_but_completes() {
        // Guess below the true 110 MB peak → every task gets killed once,
        // then succeeds at full size.
        let guess = Strategy::Guess(Resources::new(1, 64, 2048));
        let report = run_workload(&MasterConfig::new(guess), hep_tasks(10), 2, node());
        assert_eq!(report.retried_tasks, 10);
        assert_eq!(report.abandoned_tasks, 0);
        let successes = report
            .results
            .iter()
            .filter(|r| r.outcome.is_success())
            .count();
        assert_eq!(successes, 10);
        // Each task has a failed attempt and a successful one.
        assert_eq!(report.results.len(), 20);
    }

    #[test]
    fn env_cached_after_first_task_per_worker() {
        let report = run_workload(&MasterConfig::new(oracle()), hep_tasks(30), 3, node());
        // The env + calib are cacheable: each transfers exactly once per
        // worker (3 workers × 2 files = 6 misses); every other access —
        // whether the file is already local or still in flight — is a hit.
        assert_eq!(
            report.cache_misses, 6,
            "cacheable files must stage once per worker"
        );
        assert_eq!(report.cache_hits, 30 * 2 - 6);
        // The environment archive (240 MB) moved only 3 times.
        let env_bytes = 3 * (240u64 << 20);
        assert!(
            report.net_bytes < env_bytes + (60 << 20) * 30 + (1 << 20) * 30,
            "net bytes {} implies duplicate env transfers",
            report.net_bytes
        );
    }

    #[test]
    fn shared_fs_direct_is_slower_than_packed() {
        let packed = run_workload(
            &MasterConfig::new(oracle()).with_dist_mode(DistMode::PackedTransfer),
            hep_tasks(40),
            4,
            node(),
        );
        let direct = run_workload(
            &MasterConfig::new(oracle()).with_dist_mode(DistMode::SharedFsDirect),
            hep_tasks(40),
            4,
            node(),
        );
        assert!(
            direct.makespan_secs > packed.makespan_secs,
            "direct {} should exceed packed {}",
            direct.makespan_secs,
            packed.makespan_secs
        );
        assert!(direct.fs_md_ops > packed.fs_md_ops * 10);
    }

    #[test]
    fn more_workers_reduce_makespan() {
        let cfg = MasterConfig::new(oracle());
        let w2 = run_workload(&cfg, hep_tasks(64), 2, node());
        let w8 = run_workload(&cfg, hep_tasks(64), 8, node());
        assert!(
            w8.makespan_secs < w2.makespan_secs / 2.0,
            "2w: {} 8w: {}",
            w2.makespan_secs,
            w8.makespan_secs
        );
    }

    #[test]
    fn core_efficiency_ordering() {
        // Oracle allocates exactly what's used; Unmanaged wastes 7 of 8
        // cores per task.
        let o = run_workload(&MasterConfig::new(oracle()), hep_tasks(24), 2, node());
        let u = run_workload(
            &MasterConfig::new(Strategy::Unmanaged),
            hep_tasks(24),
            2,
            node(),
        );
        assert!(
            o.core_efficiency() > 2.0 * u.core_efficiency(),
            "oracle {} vs unmanaged {}",
            o.core_efficiency(),
            u.core_efficiency()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = MasterConfig::new(oracle()).with_seed(99);
        let a = run_workload(&cfg, hep_tasks(20), 3, node());
        let b = run_workload(&cfg, hep_tasks(20), 3, node());
        assert_eq!(a.makespan_secs, b.makespan_secs);
        assert_eq!(a.results.len(), b.results.len());
    }

    #[test]
    fn io_interference_slows_packed_workers() {
        let quiet = run_workload(
            &MasterConfig::new(oracle()).with_io_interference(0.0),
            hep_tasks(32),
            2,
            node(),
        );
        let noisy = run_workload(
            &MasterConfig::new(oracle()).with_io_interference(0.15),
            hep_tasks(32),
            2,
            node(),
        );
        assert!(noisy.makespan_secs > quiet.makespan_secs);
    }

    #[test]
    #[should_panic(expected = "empty workload")]
    fn empty_workload_panics() {
        let _ = run_workload(&MasterConfig::new(oracle()), Vec::new(), 1, node());
    }

    #[test]
    fn dependencies_execute_in_order() {
        // A 3-stage chain per "genome": align → call → annotate.
        let mk = |id: u64, cat: &str, deps: Vec<TaskId>| {
            TaskSpec::new(
                TaskId(id),
                cat,
                vec![],
                0,
                SimTaskProfile::new(20.0, 1.0, 100, 100),
            )
            .after(deps)
        };
        let tasks = vec![
            mk(0, "align", vec![]),
            mk(1, "call", vec![TaskId(0)]),
            mk(2, "annotate", vec![TaskId(1)]),
            mk(3, "align", vec![]),
            mk(4, "call", vec![TaskId(3)]),
            mk(5, "annotate", vec![TaskId(4)]),
        ];
        let report = run_workload(&MasterConfig::new(Strategy::Unmanaged), tasks, 2, node());
        assert_eq!(report.abandoned_tasks, 0);
        let finish = |id: u64| {
            report
                .results
                .iter()
                .find(|r| r.task == TaskId(id))
                .unwrap()
                .finished_at
        };
        let start = |id: u64| {
            report
                .results
                .iter()
                .find(|r| r.task == TaskId(id))
                .unwrap()
                .started_at
        };
        for chain in [[0u64, 1, 2], [3, 4, 5]] {
            assert!(start(chain[1]) >= finish(chain[0]));
            assert!(start(chain[2]) >= finish(chain[1]));
        }
        // Two chains on two whole-node workers run concurrently: makespan is
        // about one chain's length, not both.
        assert!(report.makespan_secs < 2.0 * 3.0 * 20.0 + 30.0);
    }

    #[test]
    fn elastic_provisioning_scales_up() {
        // 64 tasks, elastic pool growing 1 -> 6 in batches of 1: the run
        // must finish and submit more pilots than the initial one.
        let cfg = MasterConfig::new(oracle()).with_provisioning(Provisioning::Elastic {
            initial: 1,
            max_workers: 6,
            batch: 1,
        });
        let report = run_workload(&cfg, hep_tasks(64), 6, node());
        assert_eq!(report.abandoned_tasks, 0);
        assert!(
            report.workers_provisioned > 1,
            "pool never grew: {}",
            report.workers_provisioned
        );
        assert!(report.workers_provisioned <= 6);
        let ok = report
            .results
            .iter()
            .filter(|r| r.outcome.is_success())
            .count();
        assert_eq!(ok, 64);
    }

    #[test]
    fn elastic_never_exceeds_cap() {
        let cfg = MasterConfig::new(oracle()).with_provisioning(Provisioning::Elastic {
            initial: 2,
            max_workers: 3,
            batch: 4, // batch larger than remaining headroom
        });
        let report = run_workload(&cfg, hep_tasks(40), 3, node());
        assert!(
            report.workers_provisioned <= 3,
            "{}",
            report.workers_provisioned
        );
        assert_eq!(report.abandoned_tasks, 0);
    }

    #[test]
    fn evicted_workers_lose_tasks_but_workflow_completes() {
        // Mean pilot lifetime shorter than the workload: evictions are
        // guaranteed; replacements keep the run alive and every task still
        // completes exactly once.
        let cfg = MasterConfig::new(oracle())
            .with_faults(FaultPlan::evicting(120.0))
            .with_seed(5);
        let report = run_workload(&cfg, hep_tasks(48), 4, node());
        assert!(report.workers_lost > 0, "expected evictions");
        assert!(report.tasks_lost > 0, "expected in-flight losses");
        assert_eq!(report.abandoned_tasks, 0);
        let ok: Vec<_> = report
            .results
            .iter()
            .filter(|r| r.outcome.is_success())
            .collect();
        assert_eq!(ok.len(), 48, "every task completes despite churn");
        // Lost placements are not resource retries.
        assert_eq!(report.retried_tasks, 0);
        // Each task succeeds exactly once.
        let mut ids: Vec<_> = ok.iter().map(|r| r.task).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 48);
    }

    #[test]
    fn failures_cost_makespan() {
        let reliable = run_workload(
            &MasterConfig::new(oracle()).with_seed(5),
            hep_tasks(48),
            4,
            node(),
        );
        let flaky = run_workload(
            &MasterConfig::new(oracle())
                .with_faults(FaultPlan::evicting(100.0))
                .with_seed(5),
            hep_tasks(48),
            4,
            node(),
        );
        assert!(flaky.makespan_secs > reliable.makespan_secs);
        // Lost placements surface in the efficiency denominator now.
        assert!(flaky.lost_core_secs > 0.0);
        assert!(flaky.core_efficiency() < reliable.core_efficiency());
    }

    #[test]
    fn summary_json_is_complete() {
        let report = run_workload(&MasterConfig::new(oracle()), hep_tasks(8), 2, node());
        let j = report.summary_json();
        for key in [
            "strategy",
            "dist_mode",
            "makespan_s",
            "tasks",
            "retry_fraction",
            "core_efficiency",
            "cache_hits",
            "workers_provisioned",
        ] {
            assert!(j.contains(&format!("\"{key}\"")), "missing {key}: {j}");
        }
        assert!(j.contains("\"strategy\":\"Oracle\""));
        assert!(j.contains("\"tasks\":8"));
    }

    #[test]
    fn utilization_timeline_tracks_packing() {
        let report = run_workload(&MasterConfig::new(oracle()), hep_tasks(16), 2, node());
        let timeline = report.utilization_timeline(5.0);
        assert!(!timeline.is_empty());
        // Peak concurrency with Oracle packing: up to 8 per 8-core worker.
        let peak_running = timeline.iter().map(|&(_, r, _)| r).max().unwrap();
        assert!(peak_running > 2, "no packing visible: peak {peak_running}");
        // Never more allocated cores than the pool has.
        assert!(timeline.iter().all(|&(_, _, c)| c <= 16));
        // First and last samples bracket the run.
        assert_eq!(timeline[0].0, 0.0);
        assert!(timeline.last().unwrap().0 <= report.makespan_secs);
    }

    #[test]
    fn schedule_policies_all_complete_and_differ() {
        // Mixed big/small memory tasks on memory-tight workers.
        let tasks: Vec<TaskSpec> = (0..30)
            .map(|i| {
                let mem = if i % 3 == 0 { 6000 } else { 1000 };
                TaskSpec::new(
                    TaskId(i),
                    if i % 3 == 0 { "big" } else { "small" },
                    vec![],
                    0,
                    SimTaskProfile::new(30.0, 1.0, mem, 100),
                )
            })
            .collect();
        let mut map = BTreeMap::new();
        map.insert("big".to_string(), Resources::new(1, 6000, 100));
        map.insert("small".to_string(), Resources::new(1, 1000, 100));
        let oracle = Strategy::Oracle(map);
        let mut spans = Vec::new();
        for policy in [
            SchedulePolicy::Fifo,
            SchedulePolicy::LargestFirst,
            SchedulePolicy::SmallestFirst,
        ] {
            let cfg = MasterConfig::new(oracle.clone()).with_policy(policy);
            let rep = run_workload(&cfg, tasks.clone(), 2, node());
            assert_eq!(rep.abandoned_tasks, 0, "{policy:?}");
            let ok = rep
                .results
                .iter()
                .filter(|r| r.outcome.is_success())
                .count();
            assert_eq!(ok, 30, "{policy:?}");
            spans.push(rep.makespan_secs);
        }
        // Policies must actually change the schedule.
        assert!(
            spans.iter().any(|&s| (s - spans[0]).abs() > 1e-9),
            "all policies produced identical makespans: {spans:?}"
        );
    }

    #[test]
    fn indexed_matches_reference_exactly() {
        // Same seed → same placement sequence → identical report, results
        // order included. The broader matrix lives in the integration suite;
        // this is the in-crate smoke check.
        let cfg = MasterConfig::new(Strategy::Auto(AutoConfig::default()))
            .with_faults(FaultPlan::evicting(130.0))
            .with_seed(3);
        let reference = run_workload(
            &cfg.clone().with_sched(SchedImpl::Reference),
            hep_tasks(48),
            4,
            node(),
        );
        let indexed = run_workload(
            &cfg.clone().with_sched(SchedImpl::Indexed),
            hep_tasks(48),
            4,
            node(),
        );
        assert_eq!(reference, indexed);
    }

    #[test]
    fn eviction_scan_is_linear_in_lost_placements() {
        // Eviction must only touch the evicted worker's own placements (via
        // the per-worker index), not scan every live placement in the
        // cluster. The thread-local counter increments once per placement
        // examined during evictions; linearity means it equals tasks_lost.
        EVICT_SCANNED.with(|c| c.set(0));
        let cfg = MasterConfig::new(oracle())
            .with_faults(FaultPlan::evicting(120.0))
            .with_seed(5);
        let report = run_workload(&cfg, hep_tasks(48), 4, node());
        assert!(report.tasks_lost > 0, "expected in-flight losses");
        let scanned = EVICT_SCANNED.with(|c| c.get());
        assert_eq!(
            scanned, report.tasks_lost,
            "evict_worker examined placements on other workers"
        );
    }

    /// Distinct successful task ids; asserts no task completed twice.
    fn distinct_successes(report: &RunReport) -> usize {
        let mut ids: Vec<_> = report
            .results
            .iter()
            .filter(|r| r.outcome.is_success())
            .map(|r| r.task)
            .collect();
        let n = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), n, "a task completed more than once");
        ids.len()
    }

    #[test]
    fn lost_results_are_reclaimed_by_leases() {
        use crate::faults::FaultSpec;
        let cfg = MasterConfig::new(oracle())
            .with_faults(FaultPlan::reliable().with(FaultSpec::message_loss(0.15)))
            .with_seed(11);
        let report = run_workload(&cfg, hep_tasks(30), 3, node());
        assert!(
            report.result_messages_lost > 0 || report.stage_in_failures > 0,
            "loss at p=0.15 must hit something"
        );
        assert_eq!(report.abandoned_tasks, 0);
        assert_eq!(distinct_successes(&report), 30);
        if report.result_messages_lost > 0 {
            // Every zombie placement must have been reclaimed by its lease.
            assert!(report.lease_reclaims > 0, "zombies never reclaimed");
            assert!(report.lost_core_secs > 0.0);
        }
        // Infra recovery is not a resource retry.
        assert_eq!(report.retried_tasks, 0);
        assert!(report.infra_retried_tasks > 0);
    }

    #[test]
    fn spurious_kills_retry_on_the_infra_path() {
        use crate::faults::FaultSpec;
        let cfg = MasterConfig::new(oracle())
            .with_faults(FaultPlan::reliable().with(FaultSpec::spurious_kill(0.3)))
            .with_seed(2);
        let report = run_workload(&cfg, hep_tasks(40), 4, node());
        assert!(report.spurious_kills > 0, "p=0.3 over 40 tasks must fire");
        // Spurious kills are infrastructure noise: no resource retries, no
        // abandoned tasks, and every task still succeeds exactly once.
        assert_eq!(report.retried_tasks, 0);
        assert_eq!(report.abandoned_tasks, 0);
        assert_eq!(distinct_successes(&report), 40);
        // The killed attempts are in the log, distinguishable from real
        // limit kills.
        let spurious_logged = report
            .results
            .iter()
            .filter(|r| r.outcome.is_spurious_kill())
            .count() as u64;
        assert_eq!(spurious_logged, report.spurious_kills);
        assert!(!report.results.iter().any(|r| r.outcome.is_limit_exceeded()));
    }

    #[test]
    fn repeated_env_failures_degrade_to_shared_fs() {
        use crate::faults::FaultSpec;
        let cfg = MasterConfig::new(oracle())
            .with_faults(FaultPlan::reliable().with(FaultSpec::unpack_disk_full(1.0)))
            .with_seed(7);
        let report = run_workload(&cfg, hep_tasks(20), 2, node());
        // Packed-env staging can never succeed; the master must fall back
        // to shared-FS imports and still finish everything.
        assert!(report.degraded_to_shared_fs, "never degraded");
        assert_eq!(report.abandoned_tasks, 0);
        assert_eq!(distinct_successes(&report), 20);
        assert!(
            report.stage_in_failures >= 6,
            "{}",
            report.stage_in_failures
        );
        // The configured mode is still reported; degradation is its own
        // flag.
        assert_eq!(report.dist_mode, DistMode::PackedTransfer);
    }

    #[test]
    fn flaky_staging_triggers_quarantine_and_backoff() {
        use crate::faults::FaultSpec;
        let cfg = MasterConfig::new(oracle())
            .with_faults(FaultPlan::reliable().with(FaultSpec::stage_in_failure(0.4)))
            .with_seed(3);
        let report = run_workload(&cfg, hep_tasks(40), 4, node());
        assert!(report.stage_in_failures > 0);
        assert!(report.quarantines > 0, "threshold 3 at p=0.4 must trip");
        assert_eq!(report.abandoned_tasks, 0);
        assert_eq!(distinct_successes(&report), 40);
        assert!(report.lost_core_secs > 0.0);
    }

    #[test]
    fn straggler_placements_are_reclaimed_and_rerun() {
        use crate::faults::FaultSpec;
        // Half the workers run 6-10x slow; the lease (4x nominal) reclaims
        // their placements and the retries land on healthy workers.
        let cfg = MasterConfig::new(oracle())
            .with_faults(FaultPlan::reliable().with(FaultSpec::straggler(0.5, 6.0, 10.0)))
            .with_seed(4);
        let report = run_workload(&cfg, hep_tasks(24), 4, node());
        assert!(report.lease_reclaims > 0, "stragglers never reclaimed");
        assert_eq!(report.abandoned_tasks, 0);
        assert_eq!(distinct_successes(&report), 24);
    }

    #[test]
    fn grouped_config_setters() {
        assert!(!FaultPlan::reliable().is_active());
        let plan = FaultPlan::evicting(250.0);
        assert!(plan.is_active());
        assert_eq!(plan.specs().len(), 1);
        // Grouped setters write through to the nested configs.
        let cfg = MasterConfig::new(oracle())
            .with_dist_mode(DistMode::SharedFsDirect)
            .with_io_interference(0.2)
            .with_resilience(ResilienceConfig::naive_retry())
            .with_staging(StagingConfig {
                io_interference: 0.1,
                ..StagingConfig::default()
            });
        // with_staging replaced the whole group, including the earlier
        // io_interference and dist_mode writes.
        assert_eq!(cfg.staging.dist_mode, DistMode::PackedTransfer);
        assert_eq!(cfg.staging.io_interference, 0.1);
        assert!(cfg.resilience.quarantine_threshold.is_none());
    }

    #[test]
    fn quarantine_release_rejoins_pool_exactly_once() {
        // Regression: a timed release must restore the worker's capacity to
        // the pool and the capacity index exactly once — a duplicate release
        // event (e.g. re-armed after a recovery) must be a no-op.
        let cfg = MasterConfig::new(oracle()).with_resilience(ResilienceConfig {
            quarantine_threshold: Some(1),
            ..ResilienceConfig::default()
        });
        let mut m = Master::new(cfg, hep_tasks(1), 1, node());
        m.handle_event(SimTime::ZERO, Event::WorkerUp { id: 0 });
        let full = m.free_cores;
        assert_eq!(full, 8);
        m.note_worker_fault(SimTime::from_secs(1.0), 0);
        assert!(m.workers[&0].quarantined, "threshold 1 must quarantine");
        assert_eq!(m.free_cores, 0, "capacity withdrawn from the pool");
        assert_eq!(m.quarantine_until.len(), 1);
        m.release_quarantine(SimTime::from_secs(2.0), 0);
        assert!(!m.workers[&0].quarantined);
        assert_eq!(m.workers[&0].infra_failures, 0, "flakiness score reset");
        assert_eq!(m.free_cores, full, "capacity restored");
        assert!(m.quarantine_until.is_empty());
        // The duplicate release: nothing may be added twice.
        m.release_quarantine(SimTime::from_secs(3.0), 0);
        assert_eq!(m.free_cores, full, "double release re-added capacity");
        // Placements resume on the released worker.
        m.enqueue_back(Pending {
            task_idx: 0,
            attempt: 0,
            since: SimTime::from_secs(3.0),
        });
        m.dispatch(SimTime::from_secs(3.0));
        assert_eq!(m.live_placements.len(), 1, "released worker unused");
        assert_eq!(m.live_placements.values().next().unwrap().worker, 0);
    }

    #[test]
    fn allocator_labels_survive_snapshot_restore() {
        // AC3: the learned first-allocation labels are the paper's core
        // asset — a snapshot→restore cycle must reproduce the sample stores
        // (and therefore the labels) exactly, not re-pay exploration.
        let mut m = Master::new(
            MasterConfig::new(Strategy::Auto(AutoConfig::default())),
            hep_tasks(4),
            1,
            node(),
        );
        for mem in [100u64, 104, 108, 112, 120] {
            let rep = lfm_monitor::report::ResourceReport {
                peak_cores: 1.0,
                peak_rss_mb: mem,
                peak_disk_mb: 900,
                cpu_secs: 50.0,
                wall_secs: 55.0,
                ..Default::default()
            };
            m.allocator.observe("hep", &rep, true);
        }
        let cap = node().resources;
        let label = m.allocator.peek_decision("hep", &cap);
        assert!(
            matches!(label, AllocationDecision::Sized(_)),
            "5 samples must label"
        );
        let stats = m.allocator.snapshot_category("hep").expect("stats");
        let img = m.snapshot_image();
        m.restore_from_image(&img, SimTime::ZERO);
        assert_eq!(
            m.allocator.snapshot_category("hep").expect("stats"),
            stats,
            "sample stores diverged across restore"
        );
        assert_eq!(
            m.allocator.peek_decision("hep", &cap),
            label,
            "label diverged across restore"
        );
    }

    #[test]
    fn probe_restore_is_bitwise_invisible() {
        // AC1: snapshot → encode → decode → restore at a quiescent point
        // must leave the run bitwise-identical to one that never restored,
        // for both scheduler implementations, with and without faults.
        for sched in [SchedImpl::Reference, SchedImpl::Indexed] {
            for plan in [FaultPlan::reliable(), FaultPlan::evicting(150.0)] {
                let plain_cfg = MasterConfig::new(Strategy::Auto(AutoConfig::default()))
                    .with_faults(plan.clone())
                    .with_sched(sched)
                    .with_seed(13)
                    .with_durability(DurabilityConfig::journal_only());
                let probed_cfg = plain_cfg.clone().with_durability(DurabilityConfig {
                    probe_restore_at: Some(40),
                    ..DurabilityConfig::journal_only()
                });
                let plain = run_workload(&plain_cfg, hep_tasks(48), 4, node());
                let probed = run_workload(&probed_cfg, hep_tasks(48), 4, node());
                assert_eq!(plain, probed, "{sched:?} under {plan:?}");
            }
        }
    }

    #[test]
    fn journaled_recovery_conserves_tasks_and_matches_across_scheds() {
        use crate::faults::FaultSpec;
        let cfg = MasterConfig::new(Strategy::Auto(AutoConfig::default()))
            .with_faults(FaultPlan::reliable().with(FaultSpec::master_crash(12.0, 3)))
            .with_durability(DurabilityConfig::journal_with_snapshots(64))
            .with_seed(21);
        let reference = run_workload(
            &cfg.clone().with_sched(SchedImpl::Reference),
            hep_tasks(48),
            4,
            node(),
        );
        let indexed = run_workload(
            &cfg.clone().with_sched(SchedImpl::Indexed),
            hep_tasks(48),
            4,
            node(),
        );
        // Journals are written at placement-identical points, so recovery
        // lands both implementations in the same state.
        assert_eq!(reference, indexed);
        assert!(reference.master_crashes > 0, "crash points never fired");
        assert_eq!(reference.recoveries, reference.master_crashes);
        assert!(reference.journal_bytes > 0);
        // Conservation: every task succeeds exactly once.
        assert_eq!(reference.abandoned_tasks, 0);
        assert_eq!(distinct_successes(&reference), 48);
    }

    #[test]
    fn crash_without_journal_is_a_full_restart() {
        use crate::faults::FaultSpec;
        let crash_plan = FaultPlan::reliable().with(FaultSpec::master_crash(12.0, 1));
        let base = MasterConfig::new(oracle()).with_seed(9);
        let no_crash = run_workload(&base, hep_tasks(40), 4, node());
        let restarted = run_workload(
            &base.clone().with_faults(crash_plan.clone()),
            hep_tasks(40),
            4,
            node(),
        );
        assert!(restarted.master_crashes > 0, "crash point never fired");
        assert_eq!(restarted.recoveries, 0, "no journal, no recovery");
        assert_eq!(restarted.journal_bytes, 0);
        // The restarted run still finishes everything exactly once (the
        // pre-crash results were wiped with the rest of the master state),
        // but re-pays the lost work.
        assert_eq!(distinct_successes(&restarted), 40);
        assert!(
            restarted.makespan_secs > no_crash.makespan_secs,
            "restart {} must cost more than uninterrupted {}",
            restarted.makespan_secs,
            no_crash.makespan_secs
        );
        // A journaled master recovers in place: strictly less rework.
        let journaled = run_workload(
            &base
                .clone()
                .with_faults(crash_plan)
                .with_durability(DurabilityConfig::journal_with_snapshots(64)),
            hep_tasks(40),
            4,
            node(),
        );
        assert_eq!(journaled.recoveries, 1);
        assert!(
            journaled.makespan_secs < restarted.makespan_secs,
            "journaled {} must beat full restart {}",
            journaled.makespan_secs,
            restarted.makespan_secs
        );
    }

    #[test]
    fn duplicate_ids_rejected() {
        let t = TaskSpec::new(
            TaskId(7),
            "x",
            vec![],
            0,
            SimTaskProfile::new(1.0, 1.0, 1, 1),
        );
        let result = std::panic::catch_unwind(|| {
            run_workload(
                &MasterConfig::new(Strategy::Unmanaged),
                vec![t.clone(), t],
                1,
                node(),
            )
        });
        assert!(result.is_err());
    }
}
