//! Tasks: the unit the master schedules.

use crate::files::FileRef;
use lfm_monitor::report::MonitorOutcome;
use lfm_monitor::sim::SimTaskProfile;
use lfm_simcluster::node::Resources;
use lfm_simcluster::time::SimTime;
use serde::{Deserialize, Serialize};

/// Task identifier, unique within a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskId(pub u64);

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A schedulable task: category, file set, and its *true* behaviour profile
/// (what the simulated monitor observes when the task runs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskSpec {
    pub id: TaskId,
    /// Category for resource labeling: tasks of the same category share an
    /// allocation model ("function name" in the paper).
    pub category: String,
    pub inputs: Vec<FileRef>,
    /// Output size transferred back to the master.
    pub output_bytes: u64,
    /// The true resource behaviour.
    pub profile: SimTaskProfile,
    /// Tasks that must complete before this one becomes ready (the dataflow
    /// DAG, lowered from futures by the Parsl layer).
    pub deps: Vec<TaskId>,
}

impl TaskSpec {
    /// A dependency-free task.
    pub fn new(
        id: TaskId,
        category: impl Into<String>,
        inputs: Vec<FileRef>,
        output_bytes: u64,
        profile: SimTaskProfile,
    ) -> Self {
        TaskSpec {
            id,
            category: category.into(),
            inputs,
            output_bytes,
            profile,
            deps: Vec::new(),
        }
    }

    /// Add dependencies.
    pub fn after(mut self, deps: Vec<TaskId>) -> Self {
        self.deps = deps;
        self
    }
}

impl TaskSpec {
    /// Peak resources the task truly uses (what an Oracle would request).
    pub fn true_peak(&self) -> Resources {
        Resources::new(
            self.profile.cores_used.ceil() as u32,
            self.profile.peak_memory_mb,
            self.profile.peak_disk_mb,
        )
    }
}

/// One attempt's outcome, as recorded by the master.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskResult {
    pub task: TaskId,
    pub category: String,
    pub worker: u32,
    /// Resources the attempt was granted.
    pub allocated: Resources,
    pub submitted_at: SimTime,
    pub started_at: SimTime,
    pub finished_at: SimTime,
    /// Stage-in seconds (env + data transfer, unpack).
    pub stage_in_secs: f64,
    /// Execution seconds (until completion or kill).
    pub exec_secs: f64,
    pub outcome: MonitorOutcome,
    /// Which attempt this was (0 = first).
    pub attempt: u32,
}

impl TaskResult {
    /// Core-seconds this attempt held allocated.
    pub fn allocated_core_secs(&self) -> f64 {
        self.allocated.cores as f64 * (self.finished_at - self.started_at)
    }

    /// Core-seconds actually used (CPU time).
    pub fn used_core_secs(&self) -> f64 {
        self.outcome.report().cpu_secs
    }

    /// Memory·seconds held vs used, for waste accounting.
    pub fn allocated_mb_secs(&self) -> f64 {
        self.allocated.memory_mb as f64 * (self.finished_at - self.started_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfm_monitor::report::ResourceReport;

    #[test]
    fn true_peak_rounds_cores_up() {
        let t = TaskSpec::new(
            TaskId(1),
            "hep",
            vec![],
            0,
            SimTaskProfile::new(60.0, 1.4, 110, 1024),
        );
        assert_eq!(t.true_peak(), Resources::new(2, 110, 1024));
    }

    #[test]
    fn waste_accounting() {
        let r = TaskResult {
            task: TaskId(1),
            category: "hep".into(),
            worker: 0,
            allocated: Resources::new(4, 1000, 1000),
            submitted_at: SimTime::ZERO,
            started_at: SimTime::from_secs(10.0),
            finished_at: SimTime::from_secs(70.0),
            stage_in_secs: 5.0,
            exec_secs: 55.0,
            outcome: MonitorOutcome::Completed(ResourceReport {
                cpu_secs: 55.0,
                ..Default::default()
            }),
            attempt: 0,
        };
        assert_eq!(r.allocated_core_secs(), 240.0);
        assert_eq!(r.used_core_secs(), 55.0);
        assert_eq!(r.allocated_mb_secs(), 60_000.0);
    }
}
