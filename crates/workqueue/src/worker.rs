//! Workers: a node plus a file cache.

use crate::files::{FileKind, FileRef};
use lfm_simcluster::node::{Node, NodeSpec};
use lfm_simcluster::time::SimTime;
use std::collections::{BTreeMap, BTreeSet};

/// A connected worker.
#[derive(Debug, Clone)]
pub struct Worker {
    pub node: Node,
    cache: BTreeSet<String>,
    cache_bytes: u64,
    /// Files currently being transferred to this worker → time they land.
    /// Concurrent tasks needing the same file wait on the in-flight transfer
    /// instead of starting another (Work Queue transfers each cached file
    /// once per worker).
    staging: BTreeMap<String, SimTime>,
    /// Tasks currently executing here.
    pub running: u32,
    /// Injected execution slowdown factor (1.0 = healthy; a fault plan's
    /// straggler spec can set it above 1).
    pub slowdown: f64,
    /// Quarantined workers are excluded from scheduling until released;
    /// their in-flight tasks drain normally.
    pub quarantined: bool,
    /// Infrastructure failures attributed to this worker (staging failures,
    /// lost results, lease reclaims, spurious kills) — the flakiness score
    /// the quarantine threshold compares against. Reset on release.
    pub infra_failures: u32,
    /// Lifetime counters.
    pub tasks_completed: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
}

impl Worker {
    pub fn new(id: u32, spec: NodeSpec) -> Self {
        Worker {
            node: Node::new(id, spec),
            cache: BTreeSet::new(),
            cache_bytes: 0,
            staging: BTreeMap::new(),
            running: 0,
            slowdown: 1.0,
            quarantined: false,
            infra_failures: 0,
            tasks_completed: 0,
            cache_hits: 0,
            cache_misses: 0,
        }
    }

    pub fn id(&self) -> u32 {
        self.node.id
    }

    /// Is this file already on local storage?
    pub fn has_cached(&self, name: &str) -> bool {
        self.cache.contains(name)
    }

    /// Record a cacheable file as present locally. Returns true when the
    /// file newly entered the cache (callers maintaining a file → workers
    /// inverted index mirror exactly these insertions).
    pub fn insert_cached(&mut self, file: &FileRef) -> bool {
        let newly_cached = file.cacheable && self.cache.insert(file.name.clone());
        if newly_cached {
            self.cache_bytes += file.disk_footprint();
        }
        self.staging.remove(&file.name);
        newly_cached
    }

    /// Names of every cached file (for index teardown when the worker is
    /// evicted).
    pub fn cached_files(&self) -> impl Iterator<Item = &str> {
        self.cache.iter().map(String::as_str)
    }

    /// If `name` is already being transferred here, when does it land?
    pub fn staging_ready(&self, name: &str) -> Option<SimTime> {
        self.staging.get(name).copied()
    }

    /// Record an in-flight transfer of `name`, landing at `ready`.
    pub fn mark_staging(&mut self, name: &str, ready: SimTime) {
        self.staging.insert(name.to_string(), ready);
    }

    /// A staging attempt failed: forget the in-flight transfer of `name`
    /// (the bytes never landed) unless the file is already cached.
    pub fn abort_staging(&mut self, name: &str) {
        if !self.cache.contains(name) {
            self.staging.remove(name);
        }
    }

    /// Bytes of cached content.
    pub fn cache_bytes(&self) -> u64 {
        self.cache_bytes
    }

    /// Split `files` into (cached, to_stage), updating hit counters.
    pub fn classify_inputs<'f>(
        &mut self,
        files: &'f [FileRef],
    ) -> (Vec<&'f FileRef>, Vec<&'f FileRef>) {
        let mut cached = Vec::new();
        let mut to_stage = Vec::new();
        for f in files {
            if f.cacheable && self.has_cached(&f.name) {
                self.cache_hits += 1;
                cached.push(f);
            } else {
                self.cache_misses += 1;
                to_stage.push(f);
            }
        }
        (cached, to_stage)
    }

    /// How much of the env-pack work does this task need, given the cache?
    /// Returns (transfer_bytes, unpack_files, relocation_ops, unpack_bytes)
    /// summed over env inputs that are not yet cached.
    pub fn env_stage_work(&self, to_stage: &[&FileRef]) -> (u64, u64, u64, u64) {
        let mut out = (0u64, 0u64, 0u64, 0u64);
        for f in to_stage {
            if let FileKind::EnvironmentPack {
                unpacked_files,
                relocation_ops,
                unpacked_bytes,
            } = &f.kind
            {
                out.0 += f.size_bytes;
                out.1 += unpacked_files;
                out.2 += relocation_ops;
                out.3 += unpacked_bytes;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfm_simcluster::node::Resources;

    fn worker() -> Worker {
        Worker::new(0, NodeSpec::new(8, 8192, 16384))
    }

    #[test]
    fn cache_insert_and_hit() {
        let mut w = worker();
        let env = FileRef::environment("hep-env", 240 << 20, 600 << 20, 5000, 800);
        let data = FileRef::data("chunk-1", 500_000);
        assert!(!w.has_cached("hep-env"));
        assert!(w.insert_cached(&env));
        assert!(!w.insert_cached(&data)); // not cacheable — ignored
        assert!(w.has_cached("hep-env"));
        assert!(!w.has_cached("chunk-1"));
        assert_eq!(w.cache_bytes(), env.disk_footprint());
        // Re-inserting doesn't double count (and is not "newly cached").
        assert!(!w.insert_cached(&env));
        assert_eq!(w.cache_bytes(), env.disk_footprint());
        assert_eq!(w.cached_files().collect::<Vec<_>>(), vec!["hep-env"]);
    }

    #[test]
    fn classify_inputs_counts_hits() {
        let mut w = worker();
        let env = FileRef::environment("env", 100, 600, 10, 1);
        let common = FileRef::shared_data("calib", 1_000_000);
        let unique = FileRef::data("in-42", 500_000);
        w.insert_cached(&env);
        let files = vec![env.clone(), common.clone(), unique.clone()];
        let (cached, to_stage) = w.classify_inputs(&files);
        assert_eq!(cached.len(), 1);
        assert_eq!(to_stage.len(), 2);
        assert_eq!(w.cache_hits, 1);
        assert_eq!(w.cache_misses, 2);
    }

    #[test]
    fn env_stage_work_sums_uncached_envs() {
        let w = worker();
        let env = FileRef::environment("env", 100, 600, 10, 3);
        let data = FileRef::data("d", 50);
        let binding = [&env, &data];
        let (bytes, files, reloc, unpacked) = w.env_stage_work(&binding);
        assert_eq!((bytes, files, reloc, unpacked), (100, 10, 3, 600));
    }

    #[test]
    fn abort_staging_forgets_in_flight_transfers() {
        use lfm_simcluster::time::SimTime;
        let mut w = worker();
        let env = FileRef::environment("env", 100, 600, 10, 1);
        w.mark_staging("env", SimTime::ZERO + 5.0);
        assert!(w.staging_ready("env").is_some());
        w.abort_staging("env");
        assert!(w.staging_ready("env").is_none());
        // Cached files are immune to aborts.
        w.insert_cached(&env);
        w.mark_staging("env", SimTime::ZERO + 5.0);
        w.abort_staging("env");
        assert!(w.staging_ready("env").is_some());
    }

    #[test]
    fn resource_accounting_delegates_to_node() {
        let mut w = worker();
        assert!(w.node.allocate(Resources::new(8, 8192, 16384)));
        assert!(!w.node.allocate(Resources::new(1, 1, 1)));
    }
}
