//! Streaming submission into a *running* master.
//!
//! Every batch entry point in this crate ([`run_workload`],
//! [`run_federated`](crate::federation::run_federated)) takes the whole
//! task DAG up front and runs it to completion — the Work Queue deployment
//! model. A FaaS serving tier (see the `lfm-serving` crate) needs the
//! opposite shape: a long-running master that accepts a continuous stream
//! of independent invocations while earlier ones execute.
//!
//! [`StreamingMaster`] wraps the standalone master for that use. Task
//! batches are injected as `Event::Submit` calendar events, so arrivals
//! ride the same discrete-event loop as completions and worker churn, and
//! a streamed run remains a pure function of its inputs: identical
//! submissions at identical times under one seed reproduce the run
//! byte-for-byte. A driver advances the clock with [`run_until`]
//! (bounded by a horizon so the master can idle between arrivals without
//! deadlock panics) and reads completions incrementally with
//! [`take_new_results`].
//!
//! Equivalence discipline: submitting an entire workload at time zero
//! before the first clock advance produces a [`RunReport`] identical to
//! [`run_workload`]'s — the `Submit` event lands ahead of the pilot
//! start-ups in the FIFO calendar, so the pending queue is seeded in the
//! same order the batch path seeds it (pinned by a test below).
//!
//! Scope: streamed tasks must be dependency-free (asserted at admission),
//! and streaming runs a single master — federation sharding is refused
//! with a typed [`ConfigError`] at construction instead of silently
//! downgrading. The durability layer *is* supported: every streamed
//! admission journals a `Record::Submitted` carrying the full spec, so a
//! crashed master recovers `snapshot ⊕ tail` exactly as the batch path
//! does — per-task state vectors re-grow in admission order, unprocessed
//! `Submit` events survive in the calendar as world events, and leases
//! reclaim orphaned placements. Without a journal a master crash is a
//! full restart: the result log is wiped, the wrapper's cursor re-clamps,
//! and every admitted invocation re-runs (the serving tier's recovery
//! baseline).
//!
//! [`run_until`]: StreamingMaster::run_until
//! [`take_new_results`]: StreamingMaster::take_new_results
//! [`run_workload`]: crate::master::run_workload

use crate::master::{Event, Master, MasterConfig, RunReport};
use crate::task::{TaskResult, TaskSpec};
use lfm_simcluster::node::NodeSpec;
use lfm_simcluster::time::SimTime;

/// Why a [`MasterConfig`] cannot drive a streaming master. Unsupported
/// configurations fail loudly at construction instead of quietly
/// downgrading.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// Streaming runs a single master: the foreman federation partitions a
    /// *fixed* task vector across shards at start-up, which streamed
    /// admissions would invalidate.
    ShardedStreaming {
        /// The shard count the config asked for.
        shards: u32,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ShardedStreaming { shards } => write!(
                f,
                "streaming masters run a single shard, not {shards}: the \
                 federation partitions a fixed task vector at start-up"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// A long-running master accepting streamed task batches.
pub struct StreamingMaster {
    master: Master,
    started: bool,
    results_cursor: usize,
    submitted: usize,
}

impl StreamingMaster {
    /// Start a master with an (initially) empty workload on `worker_count`
    /// workers of `spec`. Pilots are provisioned on the first clock
    /// advance; submissions may be scheduled before that. Returns a
    /// [`ConfigError`] for configurations streaming cannot honor.
    pub fn new(
        config: &MasterConfig,
        worker_count: u32,
        spec: NodeSpec,
    ) -> Result<Self, ConfigError> {
        if config.shards > 1 {
            return Err(ConfigError::ShardedStreaming {
                shards: config.shards,
            });
        }
        Ok(StreamingMaster {
            master: Master::new(config.clone(), Vec::new(), worker_count, spec),
            started: false,
            results_cursor: 0,
            submitted: 0,
        })
    }

    /// Schedule a batch of dependency-free tasks to arrive at absolute
    /// time `at` (not before the master's current clock). The batch lands
    /// as one `Event::Submit` — one calendar event per submission group,
    /// however many invocations it carries.
    pub fn submit(&mut self, at: SimTime, specs: Vec<TaskSpec>) {
        assert!(!specs.is_empty(), "empty submission batch");
        assert!(
            at >= self.master.now(),
            "submission at {:?} is in the master's past (now {:?})",
            at,
            self.master.now()
        );
        self.submitted += specs.len();
        self.master.inject_at(at, Event::Submit(specs));
    }

    fn ensure_started(&mut self) {
        if !self.started {
            self.master.start();
            self.started = true;
        }
    }

    /// Process every calendar event with timestamp ≤ `horizon`, then stop.
    /// Safe to call with nothing scheduled: the master simply idles.
    pub fn run_until(&mut self, horizon: SimTime) {
        self.ensure_started();
        while let Some(t) = self.master.next_time() {
            if t > horizon {
                break;
            }
            self.master.step();
        }
    }

    /// Run until every submitted task reached a terminal state. The count
    /// of submissions is tracked in the wrapper — the master's own task
    /// vector only grows when a `Submit` event is *processed*, so it
    /// cannot be used as the drain target.
    pub fn drain(&mut self) {
        self.ensure_started();
        while self.master.completed_count() < self.submitted {
            self.master.step();
        }
    }

    /// The master's current clock.
    pub fn now(&self) -> SimTime {
        self.master.now()
    }

    /// Timestamp of the next scheduled event, if any.
    pub fn next_time(&self) -> Option<SimTime> {
        self.master.next_time()
    }

    /// Total invocations submitted so far.
    pub fn submitted(&self) -> usize {
        self.submitted
    }

    /// Tasks that reached a terminal state so far.
    pub fn completed(&self) -> usize {
        self.master.completed_count()
    }

    /// Ready tasks waiting in the master's pending queue.
    pub fn queued(&self) -> usize {
        self.master.queued_len()
    }

    /// Attempts currently placed on workers.
    pub fn in_flight(&self) -> usize {
        self.master.in_flight_count()
    }

    /// Master crashes fired so far (injected `FaultSpec::master_crash`).
    pub fn crashes(&self) -> u32 {
        self.master.crash_count()
    }

    /// Journaled recoveries completed so far. Equal to [`crashes`] when
    /// the config carries a journal; 0 when crashes fall back to a full
    /// restart.
    ///
    /// [`crashes`]: StreamingMaster::crashes
    pub fn recoveries(&self) -> u32 {
        self.master.recovery_count()
    }

    /// Journal bytes flushed so far (records plus snapshots); 0 without a
    /// journal.
    pub fn journal_bytes(&self) -> u64 {
        self.master.journal_bytes()
    }

    /// Attempt records appended since the last call (completion order).
    pub fn take_new_results(&mut self) -> Vec<TaskResult> {
        let all = self.master.results_so_far();
        // A journal-less master crash wipes the result log (full restart);
        // clamp the cursor so the re-run's rows stream out again.
        self.results_cursor = self.results_cursor.min(all.len());
        let new = all[self.results_cursor..].to_vec();
        self.results_cursor = all.len();
        new
    }

    /// Close the stream and assemble the final [`RunReport`]. Panics if
    /// submitted work remains unfinished — call [`StreamingMaster::drain`]
    /// first.
    pub fn finish(mut self) -> RunReport {
        self.ensure_started();
        assert!(
            self.master.completed_count() >= self.submitted,
            "finish() with unfinished streamed tasks; drain() first"
        );
        self.master.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocate::{AutoConfig, Strategy};
    use crate::faults::{FaultPlan, FaultSpec};
    use crate::files::FileRef;
    use crate::journal::DurabilityConfig;
    use crate::master::run_workload;
    use crate::sched::SchedImpl;
    use crate::task::TaskId;
    use lfm_monitor::sim::SimTaskProfile;
    use std::collections::BTreeMap;

    fn node() -> NodeSpec {
        NodeSpec::new(8, 8192, 16384)
    }

    fn invocations(n: u64, start_id: u64) -> Vec<TaskSpec> {
        let env = FileRef::environment("stream-env", 150 << 20, 400 << 20, 3000, 500);
        (0..n)
            .map(|i| {
                let id = start_id + i;
                TaskSpec::new(
                    TaskId(id),
                    if id.is_multiple_of(2) {
                        "classify"
                    } else {
                        "embed"
                    },
                    vec![env.clone(), FileRef::data(format!("in-{id}"), 128 << 10)],
                    4 << 10,
                    SimTaskProfile::new(4.0 + (id % 3) as f64, 1.0, 1024, 256),
                )
            })
            .collect()
    }

    fn oracle() -> Strategy {
        let mut map = BTreeMap::new();
        map.insert(
            "classify".to_string(),
            lfm_simcluster::node::Resources::new(1, 1024, 256),
        );
        map.insert(
            "embed".to_string(),
            lfm_simcluster::node::Resources::new(1, 1024, 256),
        );
        Strategy::Oracle(map)
    }

    fn streaming(cfg: &MasterConfig, workers: u32) -> StreamingMaster {
        StreamingMaster::new(cfg, workers, node()).expect("config supported")
    }

    #[test]
    fn submit_all_at_zero_matches_batch_run() {
        for sched in [SchedImpl::Indexed, SchedImpl::Reference] {
            let cfg = MasterConfig::new(oracle()).with_sched(sched).with_seed(11);
            let tasks = invocations(40, 0);
            let batch = run_workload(&cfg, tasks.clone(), 4, node());
            let mut sm = streaming(&cfg, 4);
            sm.submit(SimTime::ZERO, tasks);
            sm.drain();
            let streamed = sm.finish();
            assert_eq!(streamed, batch, "{sched:?} streaming != batch");
        }
    }

    #[test]
    fn auto_strategy_submit_all_matches_batch_run() {
        let cfg = MasterConfig::new(Strategy::Auto(AutoConfig::default())).with_seed(23);
        let tasks = invocations(30, 0);
        let batch = run_workload(&cfg, tasks.clone(), 4, node());
        let mut sm = streaming(&cfg, 4);
        sm.submit(SimTime::ZERO, tasks);
        sm.drain();
        assert_eq!(sm.finish(), batch);
    }

    #[test]
    fn staggered_submissions_all_complete() {
        let cfg = MasterConfig::new(Strategy::Auto(AutoConfig::default())).with_seed(7);
        let mut sm = streaming(&cfg, 4);
        let mut id = 0;
        for wave in 0..10u64 {
            let at = SimTime::from_secs(wave as f64 * 3.0);
            sm.submit(at, invocations(6, id));
            id += 6;
            sm.run_until(at);
        }
        sm.drain();
        assert_eq!(sm.completed(), 60);
        assert_eq!(sm.submitted(), 60);
        let report = sm.finish();
        assert_eq!(report.task_count, 60);
        assert_eq!(report.abandoned_tasks, 0);
        let ok = report
            .results
            .iter()
            .filter(|r| r.outcome.is_success())
            .count();
        assert_eq!(ok, 60);
    }

    #[test]
    fn incremental_results_cursor_sees_everything_once() {
        let cfg = MasterConfig::new(oracle()).with_seed(3);
        let mut sm = streaming(&cfg, 2);
        sm.submit(SimTime::ZERO, invocations(10, 0));
        sm.submit(SimTime::from_secs(5.0), invocations(10, 10));
        let mut seen = 0;
        let mut t = 1.0;
        while sm.completed() < 20 {
            sm.run_until(SimTime::from_secs(t));
            seen += sm.take_new_results().len();
            t += 1.0;
            assert!(t < 1e4, "runaway clock");
        }
        seen += sm.take_new_results().len();
        assert_eq!(seen, 20, "every attempt surfaced exactly once");
        assert!(sm.take_new_results().is_empty());
    }

    #[test]
    fn streamed_runs_are_deterministic() {
        let run = || {
            let cfg = MasterConfig::new(Strategy::Auto(AutoConfig::default())).with_seed(99);
            let mut sm = streaming(&cfg, 3);
            for wave in 0..5u64 {
                sm.submit(
                    SimTime::from_secs(wave as f64 * 2.5),
                    invocations(8, wave * 8),
                );
                sm.run_until(SimTime::from_secs(wave as f64 * 2.5));
            }
            sm.drain();
            sm.finish()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn idle_master_advances_without_panicking() {
        let cfg = MasterConfig::new(oracle()).with_seed(1);
        let mut sm = streaming(&cfg, 2);
        sm.run_until(SimTime::from_secs(100.0));
        assert_eq!(sm.completed(), 0);
        sm.submit(SimTime::from_secs(200.0), invocations(4, 0));
        sm.run_until(SimTime::from_secs(1000.0));
        assert_eq!(sm.completed(), 4);
    }

    #[test]
    #[should_panic(expected = "has dependencies")]
    fn dependent_tasks_are_rejected() {
        let cfg = MasterConfig::new(oracle()).with_seed(1);
        let mut sm = streaming(&cfg, 2);
        let mut tasks = invocations(2, 0);
        tasks[1] = tasks[1].clone().after(vec![TaskId(0)]);
        sm.submit(SimTime::ZERO, tasks);
        sm.drain();
    }

    #[test]
    fn sharded_streaming_is_a_typed_error() {
        let cfg = MasterConfig::new(oracle()).with_shards(4);
        let err = StreamingMaster::new(&cfg, 2, node())
            .err()
            .expect("shards > 1 must be refused");
        assert_eq!(err, ConfigError::ShardedStreaming { shards: 4 });
        assert!(err.to_string().contains("single shard"));
        // One shard is the streaming shape, not an error.
        assert!(StreamingMaster::new(&MasterConfig::new(oracle()), 2, node()).is_ok());
    }

    #[test]
    fn journaled_streaming_matches_unjournaled() {
        // The journal is write-only until a crash: a fault-free streamed
        // run behaves identically with and without it.
        let run = |durability: DurabilityConfig| {
            let cfg = MasterConfig::new(Strategy::Auto(AutoConfig::default()))
                .with_seed(17)
                .with_durability(durability);
            let mut sm = streaming(&cfg, 3);
            for wave in 0..6u64 {
                let at = SimTime::from_secs(wave as f64 * 2.0);
                sm.submit(at, invocations(7, wave * 7));
                sm.run_until(at);
            }
            sm.drain();
            sm.finish()
        };
        let mut journaled = run(DurabilityConfig::journal_with_snapshots(128));
        let plain = run(DurabilityConfig::none());
        assert!(journaled.journal_bytes > 0, "journal actually wrote");
        journaled.journal_bytes = 0;
        assert_eq!(journaled, plain);
    }

    #[test]
    fn probe_restore_mid_stream_is_invisible() {
        // Snapshot → wipe → restore through the full encode/decode path at
        // a quiescent point mid-stream: the restored master (including
        // tasks admitted via `Record::Submitted` replay growth) must be
        // bitwise-indistinguishable from an uninterrupted one.
        let run = |probe_at: Option<u64>| {
            let mut dur = DurabilityConfig::journal_only();
            dur.probe_restore_at = probe_at;
            let cfg = MasterConfig::new(oracle())
                .with_seed(29)
                .with_durability(dur);
            let mut sm = streaming(&cfg, 2);
            for wave in 0..5u64 {
                let at = SimTime::from_secs(wave as f64 * 8.0);
                sm.submit(at, invocations(6, wave * 6));
                sm.run_until(SimTime::from_secs(wave as f64 * 8.0 + 7.5));
            }
            sm.drain();
            sm.finish()
        };
        assert_eq!(run(Some(40)), run(None));
    }

    #[test]
    fn crashed_journaled_stream_recovers_and_conserves() {
        for sched in [SchedImpl::Indexed, SchedImpl::Reference] {
            let cfg = MasterConfig::new(Strategy::Auto(AutoConfig::default()))
                .with_sched(sched)
                .with_seed(41)
                .with_durability(DurabilityConfig::journal_with_snapshots(200))
                .with_faults(FaultPlan::reliable().with(FaultSpec::master_crash(60.0, 3)));
            let mut sm = streaming(&cfg, 4);
            for wave in 0..10u64 {
                let at = SimTime::from_secs(wave as f64 * 3.0);
                sm.submit(at, invocations(6, wave * 6));
                sm.run_until(at);
            }
            sm.drain();
            assert!(sm.crashes() > 0, "{sched:?}: crash points never fired");
            assert_eq!(sm.recoveries(), sm.crashes(), "{sched:?}");
            let report = sm.finish();
            assert_eq!(report.task_count, 60, "{sched:?}");
            assert_eq!(report.abandoned_tasks, 0, "{sched:?}");
            let ok = report
                .results
                .iter()
                .filter(|r| r.outcome.is_success())
                .count();
            assert_eq!(ok, 60, "{sched:?}: every invocation completes once");
        }
    }

    #[test]
    fn crashed_journaled_stream_is_deterministic() {
        let run = || {
            let cfg = MasterConfig::new(Strategy::Auto(AutoConfig::default()))
                .with_seed(53)
                .with_durability(DurabilityConfig::journal_only())
                .with_faults(FaultPlan::reliable().with(FaultSpec::master_crash(80.0, 2)));
            let mut sm = streaming(&cfg, 3);
            for wave in 0..8u64 {
                let at = SimTime::from_secs(wave as f64 * 2.5);
                sm.submit(at, invocations(5, wave * 5));
                sm.run_until(at);
            }
            sm.drain();
            sm.finish()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn crashed_unjournaled_stream_full_restarts_and_still_finishes() {
        let cfg = MasterConfig::new(oracle())
            .with_seed(13)
            .with_faults(FaultPlan::reliable().with(FaultSpec::master_crash(90.0, 1)));
        let mut sm = streaming(&cfg, 3);
        let mut collected = 0usize;
        for wave in 0..8u64 {
            let at = SimTime::from_secs(wave as f64 * 3.0);
            sm.submit(at, invocations(5, wave * 5));
            sm.run_until(at);
            collected += sm.take_new_results().len();
        }
        sm.drain();
        collected += sm.take_new_results().len();
        assert!(sm.crashes() > 0, "crash point never fired");
        assert_eq!(sm.recoveries(), 0, "no journal, no recovery");
        // The full restart wiped the result log and re-ran everything the
        // master had admitted; the cursor re-clamps, so the driver sees at
        // least one terminal row per invocation (pre-crash rows may
        // surface twice — that is the baseline's documented lossiness).
        assert!(collected >= 40, "saw {collected} of 40 invocations");
        let report = sm.finish();
        assert_eq!(report.task_count, 40);
        assert!(report.master_crashes >= 1);
    }
}
