//! Streaming submission into a *running* master.
//!
//! Every batch entry point in this crate ([`run_workload`],
//! [`run_federated`](crate::federation::run_federated)) takes the whole
//! task DAG up front and runs it to completion — the Work Queue deployment
//! model. A FaaS serving tier (see the `lfm-serving` crate) needs the
//! opposite shape: a long-running master that accepts a continuous stream
//! of independent invocations while earlier ones execute.
//!
//! [`StreamingMaster`] wraps the standalone master for that use. Task
//! batches are injected as `Event::Submit` calendar events, so arrivals
//! ride the same discrete-event loop as completions and worker churn, and
//! a streamed run remains a pure function of its inputs: identical
//! submissions at identical times under one seed reproduce the run
//! byte-for-byte. A driver advances the clock with [`run_until`]
//! (bounded by a horizon so the master can idle between arrivals without
//! deadlock panics) and reads completions incrementally with
//! [`take_new_results`].
//!
//! Equivalence discipline: submitting an entire workload at time zero
//! before the first clock advance produces a [`RunReport`] identical to
//! [`run_workload`]'s — the `Submit` event lands ahead of the pilot
//! start-ups in the FIFO calendar, so the pending queue is seeded in the
//! same order the batch path seeds it (pinned by a test below).
//!
//! Scope: streamed tasks must be dependency-free, and streaming excludes
//! the durability layer (`Event::Submit` grows the task vector, which the
//! journal's fixed-size snapshot images do not model) and injected master
//! crashes. Both are asserted at construction.
//!
//! [`run_until`]: StreamingMaster::run_until
//! [`take_new_results`]: StreamingMaster::take_new_results
//! [`run_workload`]: crate::master::run_workload

use crate::faults::FaultKind;
use crate::master::{Event, Master, MasterConfig, RunReport};
use crate::task::{TaskResult, TaskSpec};
use lfm_simcluster::node::NodeSpec;
use lfm_simcluster::time::SimTime;

/// A long-running master accepting streamed task batches.
pub struct StreamingMaster {
    master: Master,
    started: bool,
    results_cursor: usize,
    submitted: usize,
}

impl StreamingMaster {
    /// Start a master with an (initially) empty workload on `worker_count`
    /// workers of `spec`. Pilots are provisioned on the first clock
    /// advance; submissions may be scheduled before that.
    pub fn new(config: &MasterConfig, worker_count: u32, spec: NodeSpec) -> Self {
        assert!(
            !config.durability.journal,
            "streaming masters do not support the durability layer: the \
             journal's snapshot images assume a fixed task vector"
        );
        assert!(
            !config
                .faults
                .specs()
                .iter()
                .any(|s| matches!(s.kind, FaultKind::MasterCrash { .. })),
            "streaming masters do not support injected master crashes \
             (recovery assumes a fixed task vector)"
        );
        let mut cfg = config.clone();
        cfg.shards = 1;
        StreamingMaster {
            master: Master::new(cfg, Vec::new(), worker_count, spec),
            started: false,
            results_cursor: 0,
            submitted: 0,
        }
    }

    /// Schedule a batch of dependency-free tasks to arrive at absolute
    /// time `at` (not before the master's current clock). The batch lands
    /// as one `Event::Submit` — one calendar event per submission group,
    /// however many invocations it carries.
    pub fn submit(&mut self, at: SimTime, specs: Vec<TaskSpec>) {
        assert!(!specs.is_empty(), "empty submission batch");
        assert!(
            at >= self.master.now(),
            "submission at {:?} is in the master's past (now {:?})",
            at,
            self.master.now()
        );
        self.submitted += specs.len();
        self.master.inject_at(at, Event::Submit(specs));
    }

    fn ensure_started(&mut self) {
        if !self.started {
            self.master.start();
            self.started = true;
        }
    }

    /// Process every calendar event with timestamp ≤ `horizon`, then stop.
    /// Safe to call with nothing scheduled: the master simply idles.
    pub fn run_until(&mut self, horizon: SimTime) {
        self.ensure_started();
        while let Some(t) = self.master.next_time() {
            if t > horizon {
                break;
            }
            self.master.step();
        }
    }

    /// Run until every submitted task reached a terminal state. The count
    /// of submissions is tracked in the wrapper — the master's own task
    /// vector only grows when a `Submit` event is *processed*, so it
    /// cannot be used as the drain target.
    pub fn drain(&mut self) {
        self.ensure_started();
        while self.master.completed_count() < self.submitted {
            self.master.step();
        }
    }

    /// The master's current clock.
    pub fn now(&self) -> SimTime {
        self.master.now()
    }

    /// Timestamp of the next scheduled event, if any.
    pub fn next_time(&self) -> Option<SimTime> {
        self.master.next_time()
    }

    /// Total invocations submitted so far.
    pub fn submitted(&self) -> usize {
        self.submitted
    }

    /// Tasks that reached a terminal state so far.
    pub fn completed(&self) -> usize {
        self.master.completed_count()
    }

    /// Ready tasks waiting in the master's pending queue.
    pub fn queued(&self) -> usize {
        self.master.queued_len()
    }

    /// Attempts currently placed on workers.
    pub fn in_flight(&self) -> usize {
        self.master.in_flight_count()
    }

    /// Attempt records appended since the last call (completion order).
    pub fn take_new_results(&mut self) -> Vec<TaskResult> {
        let all = self.master.results_so_far();
        let new = all[self.results_cursor..].to_vec();
        self.results_cursor = all.len();
        new
    }

    /// Close the stream and assemble the final [`RunReport`]. Panics if
    /// submitted work remains unfinished — call [`StreamingMaster::drain`]
    /// first.
    pub fn finish(mut self) -> RunReport {
        self.ensure_started();
        assert_eq!(
            self.master.completed_count(),
            self.submitted,
            "finish() with unfinished streamed tasks; drain() first"
        );
        self.master.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocate::{AutoConfig, Strategy};
    use crate::files::FileRef;
    use crate::master::run_workload;
    use crate::sched::SchedImpl;
    use crate::task::TaskId;
    use lfm_monitor::sim::SimTaskProfile;
    use std::collections::BTreeMap;

    fn node() -> NodeSpec {
        NodeSpec::new(8, 8192, 16384)
    }

    fn invocations(n: u64, start_id: u64) -> Vec<TaskSpec> {
        let env = FileRef::environment("stream-env", 150 << 20, 400 << 20, 3000, 500);
        (0..n)
            .map(|i| {
                let id = start_id + i;
                TaskSpec::new(
                    TaskId(id),
                    if id.is_multiple_of(2) {
                        "classify"
                    } else {
                        "embed"
                    },
                    vec![env.clone(), FileRef::data(format!("in-{id}"), 128 << 10)],
                    4 << 10,
                    SimTaskProfile::new(4.0 + (id % 3) as f64, 1.0, 1024, 256),
                )
            })
            .collect()
    }

    fn oracle() -> Strategy {
        let mut map = BTreeMap::new();
        map.insert(
            "classify".to_string(),
            lfm_simcluster::node::Resources::new(1, 1024, 256),
        );
        map.insert(
            "embed".to_string(),
            lfm_simcluster::node::Resources::new(1, 1024, 256),
        );
        Strategy::Oracle(map)
    }

    #[test]
    fn submit_all_at_zero_matches_batch_run() {
        for sched in [SchedImpl::Indexed, SchedImpl::Reference] {
            let cfg = MasterConfig::new(oracle()).with_sched(sched).with_seed(11);
            let tasks = invocations(40, 0);
            let batch = run_workload(&cfg, tasks.clone(), 4, node());
            let mut sm = StreamingMaster::new(&cfg, 4, node());
            sm.submit(SimTime::ZERO, tasks);
            sm.drain();
            let streamed = sm.finish();
            assert_eq!(streamed, batch, "{sched:?} streaming != batch");
        }
    }

    #[test]
    fn auto_strategy_submit_all_matches_batch_run() {
        let cfg = MasterConfig::new(Strategy::Auto(AutoConfig::default())).with_seed(23);
        let tasks = invocations(30, 0);
        let batch = run_workload(&cfg, tasks.clone(), 4, node());
        let mut sm = StreamingMaster::new(&cfg, 4, node());
        sm.submit(SimTime::ZERO, tasks);
        sm.drain();
        assert_eq!(sm.finish(), batch);
    }

    #[test]
    fn staggered_submissions_all_complete() {
        let cfg = MasterConfig::new(Strategy::Auto(AutoConfig::default())).with_seed(7);
        let mut sm = StreamingMaster::new(&cfg, 4, node());
        let mut id = 0;
        for wave in 0..10u64 {
            let at = SimTime::from_secs(wave as f64 * 3.0);
            sm.submit(at, invocations(6, id));
            id += 6;
            sm.run_until(at);
        }
        sm.drain();
        assert_eq!(sm.completed(), 60);
        assert_eq!(sm.submitted(), 60);
        let report = sm.finish();
        assert_eq!(report.task_count, 60);
        assert_eq!(report.abandoned_tasks, 0);
        let ok = report
            .results
            .iter()
            .filter(|r| r.outcome.is_success())
            .count();
        assert_eq!(ok, 60);
    }

    #[test]
    fn incremental_results_cursor_sees_everything_once() {
        let cfg = MasterConfig::new(oracle()).with_seed(3);
        let mut sm = StreamingMaster::new(&cfg, 2, node());
        sm.submit(SimTime::ZERO, invocations(10, 0));
        sm.submit(SimTime::from_secs(5.0), invocations(10, 10));
        let mut seen = 0;
        let mut t = 1.0;
        while sm.completed() < 20 {
            sm.run_until(SimTime::from_secs(t));
            seen += sm.take_new_results().len();
            t += 1.0;
            assert!(t < 1e4, "runaway clock");
        }
        seen += sm.take_new_results().len();
        assert_eq!(seen, 20, "every attempt surfaced exactly once");
        assert!(sm.take_new_results().is_empty());
    }

    #[test]
    fn streamed_runs_are_deterministic() {
        let run = || {
            let cfg = MasterConfig::new(Strategy::Auto(AutoConfig::default())).with_seed(99);
            let mut sm = StreamingMaster::new(&cfg, 3, node());
            for wave in 0..5u64 {
                sm.submit(
                    SimTime::from_secs(wave as f64 * 2.5),
                    invocations(8, wave * 8),
                );
                sm.run_until(SimTime::from_secs(wave as f64 * 2.5));
            }
            sm.drain();
            sm.finish()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn idle_master_advances_without_panicking() {
        let cfg = MasterConfig::new(oracle()).with_seed(1);
        let mut sm = StreamingMaster::new(&cfg, 2, node());
        sm.run_until(SimTime::from_secs(100.0));
        assert_eq!(sm.completed(), 0);
        sm.submit(SimTime::from_secs(200.0), invocations(4, 0));
        sm.run_until(SimTime::from_secs(1000.0));
        assert_eq!(sm.completed(), 4);
    }

    #[test]
    #[should_panic(expected = "has dependencies")]
    fn dependent_tasks_are_rejected() {
        let cfg = MasterConfig::new(oracle()).with_seed(1);
        let mut sm = StreamingMaster::new(&cfg, 2, node());
        let mut tasks = invocations(2, 0);
        tasks[1] = tasks[1].clone().after(vec![TaskId(0)]);
        sm.submit(SimTime::ZERO, tasks);
        sm.drain();
    }

    #[test]
    #[should_panic(expected = "durability layer")]
    fn journaled_streaming_is_rejected() {
        let cfg = MasterConfig::new(oracle())
            .with_durability(crate::journal::DurabilityConfig::journal_only());
        StreamingMaster::new(&cfg, 2, node());
    }
}
