//! Hierarchical foreman federation: many masters instead of a faster one.
//!
//! The single Work Queue master is an event-loop bottleneck — the indexed
//! scheduler (PR 3) made each event cheap, but every event still funnels
//! through one queue. This module shards the master Work-Queue-foreman
//! style: a root driver partitions the task DAG across `N` sub-masters,
//! each owning its own event loop, journal, fault machinery, scheduler,
//! and worker pool slice. Three mechanisms stitch the shards back into one
//! logical run:
//!
//! * **Partitioning** ([`PartitionPolicy`]) — [`PartitionPolicy::ByComponent`]
//!   (the default) keeps weakly-connected DAG components together (zero
//!   cross-shard dependency edges), balancing components across shards by
//!   total duration. `ByCategory` and `RoundRobin` trade cross-shard edges
//!   for spread.
//! * **Handoff** ([`HandoffConfig`]) — when a producer finishes on one
//!   shard and its dependent is owned by another, a `Release` message rides
//!   a simulated inter-shard link (latency + output bytes over bandwidth)
//!   and lands as a world event on the owner's calendar. Permanent failures
//!   ship `Cancel` the same way; the owner accounts the abandonment and
//!   continues the cascade.
//! * **Work stealing** ([`StealingConfig`]) — after every step, shards with
//!   an empty pending queue steal batches of queued *first attempts* from
//!   the hottest shard (coldest-policy-order tasks first). Migrations are
//!   journaled on the victim (`Stolen`) so a crash cannot resurrect the
//!   task there, and complete on the thief.
//!
//! **Equivalence discipline:** a 1-shard federation runs the exact
//! single-master code path (the ownership filter is vacuous, the outbox
//! stays empty) and produces a bitwise-identical [`RunReport`]. N-shard
//! runs conserve tasks — successes plus abandoned equals submitted, no
//! double completion — under the full fault matrix; per-shard master
//! crashes require journaled durability (a journal-less full restart only
//! re-enqueues *owned* roots and would lose stolen tasks and remote
//! releases, so [`run_federated`] rejects that configuration).
//!
//! The driver itself is deterministic: shards advance strictly in global
//! event-time order (ties to the lowest shard index), so a federated run
//! is a pure function of its inputs, exactly like the single master.

use crate::faults::FaultKind;
use crate::master::{Event, Master, MasterConfig, OutMsg, RunReport};
use crate::task::{TaskId, TaskSpec};
use lfm_simcluster::node::NodeSpec;
use lfm_simcluster::time::SimTime;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Process-global default shard count, read by [`MasterConfig::new`] so
/// sweep binaries can turn `--shards N` into federated runs without
/// threading a parameter through every call site.
static DEFAULT_SHARDS: AtomicU32 = AtomicU32::new(1);

/// Install the default shard count for subsequently constructed
/// [`MasterConfig`]s (clamped to at least 1). Used by `lfm_bench`'s
/// `--shards N` flag.
pub fn set_default_shards(n: u32) {
    DEFAULT_SHARDS.store(n.max(1), Ordering::Relaxed);
}

pub(crate) fn default_shards() -> u32 {
    DEFAULT_SHARDS.load(Ordering::Relaxed)
}

/// How the task space is split across shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionPolicy {
    /// `task_idx % shards`. Maximizes spread and cross-shard dependency
    /// edges — the handoff stress test.
    RoundRobin,
    /// Tasks of one category stay together (first-appearance order modulo
    /// shards), so each shard's allocator learns its categories from the
    /// full sample stream.
    ByCategory,
    /// Weakly-connected DAG components stay together (zero cross-shard
    /// dependency edges); components are balanced across shards by total
    /// profile duration, heaviest first (default).
    #[default]
    ByComponent,
}

/// The simulated inter-shard link that `Release`/`Cancel` handoffs and
/// stolen tasks ride.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HandoffConfig {
    /// One-way message latency, seconds.
    pub latency_secs: f64,
    /// Link bandwidth for dependency outputs (bytes/second).
    pub bandwidth_bytes_per_sec: f64,
}

impl Default for HandoffConfig {
    fn default() -> Self {
        HandoffConfig {
            latency_secs: 0.05,
            bandwidth_bytes_per_sec: 1.25e9,
        }
    }
}

/// Work-stealing balancer knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StealingConfig {
    /// Most tasks migrated per steal (0 disables stealing).
    pub max_batch: usize,
    /// A victim must have at least this many queued tasks to be robbed.
    pub min_victim: usize,
}

impl Default for StealingConfig {
    fn default() -> Self {
        StealingConfig {
            max_batch: 8,
            min_victim: 2,
        }
    }
}

/// Federation shape: shard count plus the partition, handoff, and stealing
/// policies.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FederationConfig {
    pub shards: u32,
    pub partition: PartitionPolicy,
    pub handoff: HandoffConfig,
    pub stealing: StealingConfig,
}

impl FederationConfig {
    pub fn new(shards: u32) -> Self {
        FederationConfig {
            shards: shards.max(1),
            ..FederationConfig::default()
        }
    }

    pub fn with_partition(mut self, p: PartitionPolicy) -> Self {
        self.partition = p;
        self
    }

    pub fn with_stealing(mut self, s: StealingConfig) -> Self {
        self.stealing = s;
        self
    }

    pub fn with_handoff(mut self, h: HandoffConfig) -> Self {
        self.handoff = h;
        self
    }
}

/// Assign every task an owning shard under `policy`. Deterministic in the
/// task order.
pub fn partition(tasks: &[TaskSpec], shards: u32, policy: PartitionPolicy) -> Vec<u32> {
    assert!(shards > 0, "need at least one shard");
    if shards == 1 {
        return vec![0; tasks.len()];
    }
    match policy {
        PartitionPolicy::RoundRobin => (0..tasks.len()).map(|i| i as u32 % shards).collect(),
        PartitionPolicy::ByCategory => {
            let mut cat_shard: BTreeMap<&str, u32> = BTreeMap::new();
            let mut next = 0u32;
            tasks
                .iter()
                .map(|t| {
                    *cat_shard.entry(&t.category).or_insert_with(|| {
                        let s = next % shards;
                        next += 1;
                        s
                    })
                })
                .collect()
        }
        PartitionPolicy::ByComponent => {
            // Union-find over weakly-connected dependency components.
            let ids: BTreeMap<TaskId, usize> =
                tasks.iter().enumerate().map(|(i, t)| (t.id, i)).collect();
            let mut parent: Vec<usize> = (0..tasks.len()).collect();
            fn find(parent: &mut [usize], mut x: usize) -> usize {
                while parent[x] != x {
                    parent[x] = parent[parent[x]];
                    x = parent[x];
                }
                x
            }
            for (i, t) in tasks.iter().enumerate() {
                for d in &t.deps {
                    if let Some(&j) = ids.get(d) {
                        let (a, b) = (find(&mut parent, i), find(&mut parent, j));
                        if a != b {
                            parent[a.max(b)] = a.min(b);
                        }
                    }
                }
            }
            // Component weight = total profile duration; the greedy bin
            // packer hands the heaviest component to the least-loaded shard.
            let mut weight: BTreeMap<usize, f64> = BTreeMap::new();
            let mut first_idx: BTreeMap<usize, usize> = BTreeMap::new();
            for (i, task) in tasks.iter().enumerate() {
                let root = find(&mut parent, i);
                *weight.entry(root).or_insert(0.0) += task.profile.duration_secs;
                first_idx.entry(root).or_insert(i);
            }
            let mut comps: Vec<(usize, f64)> = weight.into_iter().collect();
            comps.sort_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .expect("durations are finite")
                    .then(first_idx[&a.0].cmp(&first_idx[&b.0]))
            });
            let mut load = vec![0.0f64; shards as usize];
            let mut comp_shard: BTreeMap<usize, u32> = BTreeMap::new();
            for (root, w) in comps {
                let s = load.iter().enumerate().fold(
                    0usize,
                    |best, (i, &l)| if l < load[best] { i } else { best },
                );
                load[s] += w;
                comp_shard.insert(root, s as u32);
            }
            (0..tasks.len())
                .map(|i| comp_shard[&find(&mut parent, i)])
                .collect()
        }
    }
}

/// The result of a federated run: the merged report plus per-shard
/// attribution and balancer telemetry.
#[derive(Debug, Clone)]
pub struct FederationReport {
    /// The run as a single logical report. For 1 shard this is the shard's
    /// report verbatim (bitwise-identical to the standalone master); for N
    /// shards counters are summed, makespan is the max, and results are
    /// concatenated shard-major.
    pub merged: RunReport,
    /// Each shard's own report. Note `task_count` on these equals the full
    /// workload size — every shard holds the whole task vector and only
    /// enqueues its owned slice.
    pub shard_reports: Vec<RunReport>,
    pub shards: u32,
    /// Steal batches executed.
    pub steals: u64,
    /// Tasks migrated by the balancer.
    pub stolen_tasks: u64,
    /// `Release` + `Cancel` handoff messages delivered across shards.
    pub cross_shard_releases: u64,
    /// Dependency-output bytes that rode the inter-shard link.
    pub handoff_bytes: u64,
    /// Simulation events processed per shard.
    pub shard_events: Vec<u64>,
    /// Tasks that reached a terminal state per shard (stolen tasks count on
    /// the thief).
    pub shard_completed: Vec<u64>,
    /// Host wall-clock seconds spent stepping each shard's event loop.
    pub shard_wall_secs: Vec<f64>,
}

impl FederationReport {
    /// Aggregate scheduler throughput: Σ over shards of (terminal tasks ÷
    /// host wall seconds stepping that shard). Scales ≈ linearly in shard
    /// count when per-event cost does not degrade — the bench headline.
    pub fn aggregate_tasks_per_sec(&self) -> f64 {
        self.shard_completed
            .iter()
            .zip(&self.shard_wall_secs)
            .map(|(&c, &w)| if w > 0.0 { c as f64 / w } else { 0.0 })
            .sum()
    }

    /// A hand-rolled JSON summary for the federation bench artifact.
    pub fn summary_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&format!("\"shards\": {}", self.shards));
        s.push_str(&format!(", \"tasks\": {}", self.merged.task_count));
        s.push_str(&format!(
            ", \"aggregate_tasks_per_sec\": {:.3}",
            self.aggregate_tasks_per_sec()
        ));
        s.push_str(&format!(
            ", \"makespan_secs\": {:.3}",
            self.merged.makespan_secs
        ));
        s.push_str(&format!(", \"steals\": {}", self.steals));
        s.push_str(&format!(", \"stolen_tasks\": {}", self.stolen_tasks));
        s.push_str(&format!(
            ", \"cross_shard_releases\": {}",
            self.cross_shard_releases
        ));
        s.push_str(&format!(", \"handoff_bytes\": {}", self.handoff_bytes));
        s.push_str(&format!(
            ", \"shard_completed\": [{}]",
            self.shard_completed
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        ));
        s.push_str(&format!(
            ", \"shard_events\": [{}]",
            self.shard_events
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        ));
        s.push_str(&format!(
            ", \"shard_wall_secs\": [{}]",
            self.shard_wall_secs
                .iter()
                .map(|w| format!("{w:.6}"))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        s.push('}');
        s
    }
}

/// Run `tasks` across a federation of sub-masters. `worker_count` workers
/// are split as evenly as possible across shards (the shard count is
/// clamped so every shard gets at least one worker).
pub fn run_federated(
    config: &MasterConfig,
    fed: &FederationConfig,
    tasks: Vec<TaskSpec>,
    worker_count: u32,
    spec: NodeSpec,
) -> FederationReport {
    assert!(worker_count > 0, "need at least one worker");
    assert!(!tasks.is_empty(), "empty workload");
    let shards = fed.shards.clamp(1, worker_count);
    let has_master_crash = config
        .faults
        .specs()
        .iter()
        .any(|s| matches!(s.kind, FaultKind::MasterCrash { .. }));
    assert!(
        shards == 1 || !has_master_crash || config.durability.journal,
        "N-shard federation under master crashes requires journaled durability: \
         a journal-less full restart re-enqueues only owned roots and would lose \
         stolen tasks and remote releases (breaking task conservation)"
    );

    let owner = Arc::new(partition(&tasks, shards, fed.partition));
    let total = tasks.len();
    let n = shards as usize;

    let mut masters: Vec<Master> = (0..shards)
        .map(|s| {
            let mut cfg = config.clone();
            cfg.shards = 1;
            if shards > 1 {
                // Independent per-shard fault/draw streams, derived
                // deterministically from the run seed. A 1-shard federation
                // keeps the seed untouched for bitwise equivalence.
                cfg.seed = crate::faults::mix(config.seed ^ (0x5eed_f0e0 + s as u64));
            }
            let base = worker_count / shards;
            let w = base + u32::from(s < worker_count % shards);
            Master::new_shard(cfg, tasks.clone(), w, spec, s, owner.clone())
        })
        .collect();
    for m in &mut masters {
        m.start();
    }

    let mut wall = vec![0.0f64; n];
    let mut steals = 0u64;
    let mut stolen_tasks = 0u64;
    let mut releases = 0u64;
    let mut handoff_bytes = 0u64;

    loop {
        let done: usize = masters.iter().map(Master::completed_count).sum();
        if done >= total {
            break;
        }
        // Globally minimal next event, ties to the lowest shard index —
        // every pop is monotone in global time, so handoff deliveries can
        // never land in a destination shard's past.
        let mut pick: Option<(usize, SimTime)> = None;
        for (i, m) in masters.iter().enumerate() {
            if let Some(t) = m.next_time() {
                if pick.is_none_or(|(_, bt)| t < bt) {
                    pick = Some((i, t));
                }
            }
        }
        let Some((i, _)) = pick else {
            panic!(
                "federation deadlock: {} of {total} tasks unfinished with no \
                 events pending on any shard",
                total - done
            );
        };
        let t0 = Instant::now();
        masters[i].step();
        wall[i] += t0.elapsed().as_secs_f64();
        let now = masters[i].now();

        // Route this shard's cross-shard effects to their owners.
        for msg in masters[i].drain_outbox() {
            match msg {
                OutMsg::Release {
                    task_idx,
                    at,
                    bytes,
                } => {
                    let dest = owner[task_idx] as usize;
                    let deliver = at
                        + fed.handoff.latency_secs
                        + bytes as f64 / fed.handoff.bandwidth_bytes_per_sec;
                    masters[dest].inject_at(
                        deliver,
                        Event::RemoteRelease {
                            task_idx,
                            success: true,
                        },
                    );
                    releases += 1;
                    handoff_bytes += bytes;
                }
                OutMsg::Cancel { task_idx, at } => {
                    let dest = owner[task_idx] as usize;
                    masters[dest].inject_at(
                        at + fed.handoff.latency_secs,
                        Event::RemoteRelease {
                            task_idx,
                            success: false,
                        },
                    );
                    releases += 1;
                }
            }
        }

        // Work stealing: hungry shards (empty queue, nothing already in
        // flight toward them) rob the hottest victim.
        if shards > 1 && fed.stealing.max_batch > 0 {
            for thief in 0..n {
                if masters[thief].is_down()
                    || masters[thief].queued_len() > 0
                    || masters[thief].inbound_pending() > 0
                {
                    continue;
                }
                let mut victim: Option<(usize, usize)> = None;
                for (v, m) in masters.iter().enumerate() {
                    if v == thief || m.is_down() {
                        continue;
                    }
                    let q = m.queued_len();
                    if q >= fed.stealing.min_victim.max(1) && victim.is_none_or(|(_, bq)| q > bq) {
                        victim = Some((v, q));
                    }
                }
                let Some((v, q)) = victim else { continue };
                let batch = fed.stealing.max_batch.min(q / 2).max(1);
                let moved = masters[v].steal_back(batch);
                if moved.is_empty() {
                    continue;
                }
                steals += 1;
                stolen_tasks += moved.len() as u64;
                let arrive = now + fed.handoff.latency_secs;
                for (task_idx, attempt) in moved {
                    masters[thief].note_inbound();
                    masters[thief].inject_at(arrive, Event::StolenArrive { task_idx, attempt });
                }
            }
        }
    }

    let shard_events: Vec<u64> = masters.iter().map(Master::events_processed).collect();
    let shard_completed: Vec<u64> = masters.iter().map(|m| m.completed_count() as u64).collect();
    let shard_reports: Vec<RunReport> = masters.into_iter().map(Master::finish).collect();

    let merged = if shards == 1 {
        shard_reports[0].clone()
    } else {
        merge_reports(&shard_reports, total)
    };

    FederationReport {
        merged,
        shard_reports,
        shards,
        steals,
        stolen_tasks,
        cross_shard_releases: releases,
        handoff_bytes,
        shard_events,
        shard_completed,
        shard_wall_secs: wall,
    }
}

/// Sum counters, max the makespan, concatenate results shard-major, and
/// recompute the derived overcommit from the summed integrals.
fn merge_reports(reports: &[RunReport], total_tasks: usize) -> RunReport {
    let first = &reports[0];
    let allocated: f64 = reports.iter().map(|r| r.allocated_core_secs).sum();
    let used: f64 = reports.iter().map(|r| r.used_core_secs).sum();
    RunReport {
        strategy: first.strategy.clone(),
        dist_mode: first.dist_mode,
        makespan_secs: reports.iter().map(|r| r.makespan_secs).fold(0.0, f64::max),
        task_count: total_tasks,
        retried_tasks: reports.iter().map(|r| r.retried_tasks).sum(),
        abandoned_tasks: reports.iter().map(|r| r.abandoned_tasks).sum(),
        cache_hits: reports.iter().map(|r| r.cache_hits).sum(),
        cache_misses: reports.iter().map(|r| r.cache_misses).sum(),
        allocated_core_secs: allocated,
        used_core_secs: used,
        overcommit_core_secs: (used - allocated).max(0.0),
        fs_md_ops: reports.iter().map(|r| r.fs_md_ops).sum(),
        net_bytes: reports.iter().map(|r| r.net_bytes).sum(),
        workers_provisioned: reports.iter().map(|r| r.workers_provisioned).sum(),
        workers_lost: reports.iter().map(|r| r.workers_lost).sum(),
        tasks_lost: reports.iter().map(|r| r.tasks_lost).sum(),
        infra_retried_tasks: reports.iter().map(|r| r.infra_retried_tasks).sum(),
        lease_reclaims: reports.iter().map(|r| r.lease_reclaims).sum(),
        stage_in_failures: reports.iter().map(|r| r.stage_in_failures).sum(),
        spurious_kills: reports.iter().map(|r| r.spurious_kills).sum(),
        result_messages_lost: reports.iter().map(|r| r.result_messages_lost).sum(),
        quarantines: reports.iter().map(|r| r.quarantines).sum(),
        lost_core_secs: reports.iter().map(|r| r.lost_core_secs).sum(),
        degraded_to_shared_fs: reports.iter().any(|r| r.degraded_to_shared_fs),
        master_crashes: reports.iter().map(|r| r.master_crashes).sum(),
        recoveries: reports.iter().map(|r| r.recoveries).sum(),
        journal_bytes: reports.iter().map(|r| r.journal_bytes).sum(),
        replayed_events: reports.iter().map(|r| r.replayed_events).sum(),
        results: reports.iter().flat_map(|r| r.results.clone()).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocate::Strategy;
    use crate::files::FileRef;
    use crate::master::run_workload;
    use lfm_monitor::sim::SimTaskProfile;
    use lfm_simcluster::node::{NodeSpec, Resources};

    fn chain_tasks(n: u64, chain_every: u64) -> Vec<TaskSpec> {
        let env = FileRef::environment("fed-env", 200 << 20, 500 << 20, 4000, 700);
        (0..n)
            .map(|i| {
                let mut t = TaskSpec::new(
                    TaskId(i),
                    if i % 3 == 0 { "big" } else { "small" },
                    vec![env.clone(), FileRef::data(format!("fed-in-{i}"), 256 << 10)],
                    20 << 20,
                    SimTaskProfile::new(
                        30.0 + (i % 5) as f64,
                        1.0,
                        if i % 3 == 0 { 2000 } else { 700 },
                        400,
                    ),
                );
                if chain_every > 0 && i % chain_every == chain_every - 1 {
                    t = t.after(vec![TaskId(i - 1)]);
                }
                t
            })
            .collect()
    }

    fn oracle() -> Strategy {
        let mut map = BTreeMap::new();
        map.insert("big".to_string(), Resources::new(1, 2000, 400));
        map.insert("small".to_string(), Resources::new(1, 700, 400));
        Strategy::Oracle(map)
    }

    fn node() -> NodeSpec {
        NodeSpec::new(8, 8192, 16384)
    }

    #[test]
    fn partition_round_robin_and_category_are_deterministic() {
        let tasks = chain_tasks(12, 0);
        let rr = partition(&tasks, 3, PartitionPolicy::RoundRobin);
        assert_eq!(rr, (0..12).map(|i| i % 3).collect::<Vec<u32>>());
        let by_cat = partition(&tasks, 2, PartitionPolicy::ByCategory);
        // "big" first appears at index 0 → shard 0; "small" at 1 → shard 1.
        for (i, t) in tasks.iter().enumerate() {
            let want = if t.category == "big" { 0 } else { 1 };
            assert_eq!(by_cat[i], want);
        }
        assert_eq!(by_cat, partition(&tasks, 2, PartitionPolicy::ByCategory));
    }

    #[test]
    fn by_component_never_splits_a_dependency_edge() {
        let tasks = chain_tasks(40, 4);
        let owner = partition(&tasks, 4, PartitionPolicy::ByComponent);
        let ids: BTreeMap<TaskId, usize> =
            tasks.iter().enumerate().map(|(i, t)| (t.id, i)).collect();
        for (i, t) in tasks.iter().enumerate() {
            for d in &t.deps {
                assert_eq!(owner[i], owner[ids[d]], "dependency edge split");
            }
        }
        // All four shards actually own work.
        for s in 0..4u32 {
            assert!(owner.contains(&s), "shard {s} owns nothing");
        }
    }

    #[test]
    fn one_shard_federation_is_bitwise_identical() {
        let cfg = MasterConfig::new(oracle()).with_seed(13);
        let tasks = chain_tasks(30, 5);
        let single = run_workload(&cfg, tasks.clone(), 4, node());
        let fed = run_federated(&cfg, &FederationConfig::new(1), tasks, 4, node());
        assert_eq!(fed.merged, single);
        assert_eq!(fed.shards, 1);
        assert_eq!(fed.steals, 0);
        assert_eq!(fed.cross_shard_releases, 0);
    }

    #[test]
    fn n_shard_run_conserves_tasks() {
        let cfg = MasterConfig::new(oracle()).with_seed(21);
        let tasks = chain_tasks(60, 5);
        let fed = run_federated(
            &cfg,
            &FederationConfig::new(3).with_partition(PartitionPolicy::RoundRobin),
            tasks,
            6,
            node(),
        );
        let successes = fed
            .merged
            .results
            .iter()
            .filter(|r| r.outcome.is_success())
            .count() as u64;
        assert_eq!(successes + fed.merged.abandoned_tasks, 60);
        assert_eq!(fed.merged.task_count, 60);
        // Round-robin over chained tasks must exercise the handoff path.
        assert!(fed.cross_shard_releases > 0, "no handoff fired");
    }

    #[test]
    fn skewed_partition_triggers_stealing() {
        // Everything owned by shard 0: shard 1 can only get work by
        // stealing it.
        let cfg = MasterConfig::new(oracle()).with_seed(31);
        let tasks = chain_tasks(40, 0);
        let fed = run_federated(
            &cfg,
            &FederationConfig::new(2).with_partition(PartitionPolicy::ByComponent),
            tasks.clone(),
            4,
            node(),
        );
        // Independent tasks: ByComponent balances, so force the skew with
        // a category partition where every task shares one category.
        let skewed: Vec<TaskSpec> = tasks
            .iter()
            .cloned()
            .map(|mut t| {
                t.category = "only".to_string();
                t
            })
            .collect();
        let fed2 = run_federated(
            &cfg,
            &FederationConfig::new(2).with_partition(PartitionPolicy::ByCategory),
            skewed,
            4,
            node(),
        );
        assert!(fed2.stolen_tasks > 0, "balancer never fired");
        let successes = fed2
            .merged
            .results
            .iter()
            .filter(|r| r.outcome.is_success())
            .count() as u64;
        assert_eq!(successes + fed2.merged.abandoned_tasks, 40);
        // Both shards did terminal work.
        assert!(fed2.shard_completed.iter().all(|&c| c > 0));
        drop(fed);
    }

    #[test]
    fn federated_runs_are_deterministic() {
        let cfg = MasterConfig::new(oracle()).with_seed(43);
        let tasks = chain_tasks(48, 4);
        let f = FederationConfig::new(3).with_partition(PartitionPolicy::RoundRobin);
        let a = run_federated(&cfg, &f, tasks.clone(), 6, node());
        let b = run_federated(&cfg, &f, tasks, 6, node());
        assert_eq!(a.merged, b.merged);
        assert_eq!(a.stolen_tasks, b.stolen_tasks);
        assert_eq!(a.cross_shard_releases, b.cross_shard_releases);
        assert_eq!(a.shard_events, b.shard_events);
    }

    #[test]
    fn shards_clamp_to_worker_count() {
        let cfg = MasterConfig::new(oracle()).with_seed(7);
        let fed = run_federated(
            &cfg,
            &FederationConfig::new(16),
            chain_tasks(12, 0),
            3,
            node(),
        );
        assert_eq!(fed.shards, 3);
        let successes = fed
            .merged
            .results
            .iter()
            .filter(|r| r.outcome.is_success())
            .count() as u64;
        assert_eq!(successes + fed.merged.abandoned_tasks, 12);
    }

    #[test]
    #[should_panic(expected = "requires journaled durability")]
    fn n_shard_master_crash_without_journal_is_rejected() {
        use crate::faults::{FaultPlan, FaultSpec};
        let cfg = MasterConfig::new(oracle())
            .with_faults(FaultPlan::reliable().with(FaultSpec::master_crash(20.0, 1)))
            .with_seed(3);
        run_federated(
            &cfg,
            &FederationConfig::new(2),
            chain_tasks(12, 0),
            2,
            node(),
        );
    }

    #[test]
    fn summary_json_is_well_formed_enough() {
        let cfg = MasterConfig::new(oracle()).with_seed(5);
        let fed = run_federated(
            &cfg,
            &FederationConfig::new(2).with_partition(PartitionPolicy::RoundRobin),
            chain_tasks(20, 5),
            4,
            node(),
        );
        let json = fed.summary_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"shards\": 2"));
        assert!(json.contains("aggregate_tasks_per_sec"));
    }
}
