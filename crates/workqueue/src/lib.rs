//! # lfm-workqueue — master/worker task scheduling with LFMs
//!
//! The Work Queue substrate (§III-A, §VI): a master matches tasks to
//! workers by resource vector, stages explicit input/output files with
//! worker-side caching, executes every task inside a (simulated) lightweight
//! function monitor, and learns per-category resource labels with the
//! automatic allocation algorithm of Tovar et al. \[21\].
//!
//! * [`task`] — task specs (category, files, true usage profile) + results.
//! * [`files`] — input/output files; environment packs are cacheable inputs.
//! * [`worker`] — a node plus its file cache.
//! * [`allocate`] — the four strategies: Oracle / Guess / Unmanaged / Auto.
//! * [`faults`] — composable, seedable fault injection ([`faults::FaultPlan`])
//!   and the master's resilience knobs ([`faults::ResilienceConfig`]).
//! * [`sched`] — indexed incremental dispatch state (order keys, park
//!   groups, capacity/file indexes) behind [`sched::SchedImpl`].
//! * [`journal`] — write-ahead journal + compacting snapshots making the
//!   master crash-recoverable ([`journal::DurabilityConfig`]).
//! * [`master`] — the discrete-event scheduler producing [`master::RunReport`]s.
//! * [`federation`] — the hierarchical foreman layer: N sub-masters over a
//!   partitioned DAG with cross-shard handoff and work stealing.
//! * [`streaming`] — streaming submission into a long-running master
//!   ([`streaming::StreamingMaster`]), the substrate for the serving tier.

pub mod allocate;
pub mod faults;
pub mod federation;
pub mod files;
pub mod journal;
pub mod master;
#[cfg(test)]
mod proptests;
pub mod sched;
pub mod streaming;
pub mod task;
pub mod worker;

pub mod prelude {
    pub use crate::allocate::{AllocationDecision, Allocator, AutoConfig, Strategy};
    pub use crate::faults::{FaultKind, FaultPlan, FaultSpec, ResilienceConfig};
    pub use crate::federation::{
        run_federated, set_default_shards, FederationConfig, FederationReport, HandoffConfig,
        PartitionPolicy, StealingConfig,
    };
    pub use crate::files::{FileKind, FileRef};
    pub use crate::journal::DurabilityConfig;
    pub use crate::master::{
        run_workload, DistMode, MasterConfig, Provisioning, RunReport, SchedulePolicy,
        StagingConfig,
    };
    pub use crate::sched::SchedImpl;
    pub use crate::streaming::StreamingMaster;
    pub use crate::task::{TaskId, TaskResult, TaskSpec};
    pub use crate::worker::Worker;
}
