//! Crate-level property tests for scheduling and labeling invariants.

#![cfg(test)]

use crate::allocate::{AllocationDecision, Allocator, AutoConfig, Strategy};
use crate::faults::{FaultPlan, FaultSpec};
use crate::files::FileRef;
use crate::journal::DurabilityConfig;
use crate::master::{run_workload, MasterConfig, SchedulePolicy};
use crate::sched::SchedImpl;
use crate::task::{TaskId, TaskSpec};
use lfm_monitor::report::ResourceReport;
use lfm_monitor::sim::SimTaskProfile;
use lfm_simcluster::node::{NodeSpec, Resources};
use proptest::prelude::*;

const CAP: Resources = Resources::new(16, 32 * 1024, 64 * 1024);

fn report(mem: u64, disk: u64) -> ResourceReport {
    ResourceReport {
        peak_cores: 1.0,
        peak_rss_mb: mem,
        peak_disk_mb: disk,
        cpu_secs: 10.0,
        wall_secs: 10.0,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The Auto label always lands within [min observed, max observed ×
    /// headroom] on the memory axis, for any sample set.
    #[test]
    fn auto_label_within_observed_bounds(
        mems in prop::collection::vec(1u64..8192, 2..40)
    ) {
        let cfg = AutoConfig { min_samples: 1, headroom: 1.25, slow_start_until: 0 };
        let mut a = Allocator::new(Strategy::Auto(cfg));
        for &m in &mems {
            a.observe("cat", &report(m, 100), true);
        }
        match a.decide("cat", 0, &CAP) {
            AllocationDecision::Sized(r) => {
                let lo = *mems.iter().min().unwrap();
                let hi = *mems.iter().max().unwrap();
                prop_assert!(r.memory_mb >= lo, "label {} below min {}", r.memory_mb, lo);
                let ceiling = (hi as f64 * 1.25).ceil() as u64 + 1;
                prop_assert!(
                    r.memory_mb <= ceiling,
                    "label {} above max x headroom {}",
                    r.memory_mb,
                    ceiling
                );
            }
            other => prop_assert!(false, "expected sized allocation, got {other:?}"),
        }
    }

    /// The chosen label minimizes the expected-cost objective — verified by
    /// brute force over all candidates.
    #[test]
    fn auto_label_is_cost_optimal(
        mems in prop::collection::vec(1u64..4096, 2..30)
    ) {
        let cfg = AutoConfig { min_samples: 1, headroom: 1.0, slow_start_until: 0 };
        let mut a = Allocator::new(Strategy::Auto(cfg));
        for &m in &mems {
            a.observe("cat", &report(m, 100), true);
        }
        let AllocationDecision::Sized(r) = a.decide("cat", 0, &CAP) else {
            return Err(TestCaseError::fail("expected sized"));
        };
        let retry_cost = CAP.memory_mb as f64;
        let cost = |a: f64| -> f64 {
            let p = mems.iter().filter(|&&m| (m as f64) <= a).count() as f64
                / mems.len() as f64;
            p * a + (1.0 - p) * (a + retry_cost)
        };
        let chosen = cost(r.memory_mb as f64);
        for &m in &mems {
            prop_assert!(
                chosen <= cost(m as f64) + 1e-6,
                "candidate {} (cost {}) beats chosen {} (cost {})",
                m,
                cost(m as f64),
                r.memory_mb,
                chosen
            );
        }
    }

    /// Retries always get a whole worker, whatever the history.
    #[test]
    fn retries_always_whole_worker(mems in prop::collection::vec(1u64..4096, 0..10)) {
        let mut a = Allocator::new(Strategy::Auto(AutoConfig::default()));
        for &m in &mems {
            a.observe("cat", &report(m, 100), true);
        }
        for attempt in 1..4 {
            prop_assert_eq!(a.decide("cat", attempt, &CAP), AllocationDecision::WholeWorker);
        }
    }

    /// Whatever mix of task shapes arrives, the master completes every task
    /// that fits a node, never oversubscribes (enforced by Node asserts),
    /// and the makespan is at least the longest task.
    #[test]
    fn scheduler_completes_arbitrary_workloads(
        shapes in prop::collection::vec(
            (5.0f64..60.0, 1u32..4, 64u64..4096, 64u64..4096),
            1..30
        ),
        workers in 1u32..6,
    ) {
        let tasks: Vec<TaskSpec> = shapes
            .iter()
            .enumerate()
            .map(|(i, &(dur, cores, mem, disk))| {
                TaskSpec::new(
                    TaskId(i as u64),
                    format!("cat{}", i % 3),
                    vec![FileRef::data(format!("in-{i}"), 1024)],
                    1024,
                    SimTaskProfile::new(dur, cores as f64, mem, disk),
                )
            })
            .collect();
        let longest = shapes.iter().map(|s| s.0).fold(0.0, f64::max);
        let spec = NodeSpec::new(8, 8192, 16384);
        let report = run_workload(
            &MasterConfig::new(Strategy::Auto(AutoConfig::default())),
            tasks,
            workers,
            spec,
        );
        prop_assert_eq!(report.abandoned_tasks, 0);
        let ok = report.results.iter().filter(|r| r.outcome.is_success()).count();
        prop_assert_eq!(ok, shapes.len());
        prop_assert!(report.makespan_secs >= longest);
        // Used CPU never exceeds allocated capacity integral.
        prop_assert!(report.used_core_secs <= report.allocated_core_secs + 1e-6);
    }

    /// The indexed scheduler is placement-for-placement equivalent to the
    /// reference matcher on arbitrary DAG workloads: random task shapes,
    /// random (acyclic, backward-pointing) dependency edges, random shared
    /// cacheable inputs, any policy, with or without worker churn.
    #[test]
    fn indexed_sched_equals_reference_on_random_dags(
        shapes in prop::collection::vec(
            // (duration, cores, mem, disk, dep offset, shared-input id)
            (5.0f64..60.0, 1u32..4, 64u64..6000, 64u64..4096, 0usize..8, 0u8..4),
            1..40
        ),
        workers in 1u32..6,
        policy_idx in 0u8..3,
        evict in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let tasks: Vec<TaskSpec> = shapes
            .iter()
            .enumerate()
            .map(|(i, &(dur, cores, mem, disk, dep_off, shared))| {
                let mut t = TaskSpec::new(
                    TaskId(i as u64),
                    format!("cat{}", i % 3),
                    vec![
                        FileRef::shared_data(format!("shared-{shared}"), 4 << 20),
                        FileRef::data(format!("in-{i}"), 1024),
                    ],
                    1024,
                    SimTaskProfile::new(dur, cores as f64, mem, disk),
                );
                // Edges only point backwards: the DAG is acyclic by
                // construction.
                if dep_off > 0 && dep_off <= i {
                    t = t.after(vec![TaskId((i - dep_off) as u64)]);
                }
                t
            })
            .collect();
        let policy = [
            SchedulePolicy::Fifo,
            SchedulePolicy::LargestFirst,
            SchedulePolicy::SmallestFirst,
        ][policy_idx as usize];
        let failures = if evict {
            FaultPlan::evicting(200.0)
        } else {
            FaultPlan::reliable()
        };
        let cfg = MasterConfig::new(Strategy::Auto(AutoConfig::default()))
            .with_policy(policy)
            .with_faults(failures)
            .with_seed(seed);
        let spec = NodeSpec::new(8, 8192, 16384);
        let reference = run_workload(
            &cfg.clone().with_sched(SchedImpl::Reference),
            tasks.clone(),
            workers,
            spec,
        );
        let indexed = run_workload(
            &cfg.clone().with_sched(SchedImpl::Indexed),
            tasks,
            workers,
            spec,
        );
        prop_assert_eq!(reference, indexed);
    }

    /// Chaos: under arbitrary fault plans (churn + stragglers + network
    /// delay/loss + staging failures + disk-full + spurious kills), on both
    /// scheduler implementations:
    ///   1. the Reference and Indexed schedulers stay bitwise equivalent;
    ///   2. no task is lost and none completes twice — every task either
    ///      succeeds exactly once or is counted abandoned;
    ///   3. the RunReport's totals are conserved and fault counters match
    ///      the per-attempt log.
    #[test]
    fn chaos_plans_conserve_tasks_and_keep_scheds_equivalent(
        shapes in prop::collection::vec(
            (5.0f64..45.0, 1u32..3, 64u64..4096, 64u64..2048),
            1..22
        ),
        workers in 1u32..5,
        // Bit i of `mask` enables fault spec i (the vendored proptest
        // subset has no `prop::option`, so optionality is a bitmask).
        mask in 0u8..128,
        churn_mean in 100.0f64..400.0,
        straggle in (0.05f64..0.5, 1.5f64..4.0),
        delay in (0.05f64..0.3, 0.2f64..5.0),
        probs in (0.02f64..0.25, 0.02f64..0.3, 0.05f64..0.5, 0.05f64..0.3),
        seed in 0u64..1000,
    ) {
        let (loss, stage_fail, disk_full, spurious) = probs;
        let churn = (mask & 1 != 0).then_some(churn_mean);
        let straggle = (mask & 2 != 0).then_some(straggle);
        let delay = (mask & 4 != 0).then_some(delay);
        let loss = (mask & 8 != 0).then_some(loss);
        let stage_fail = (mask & 16 != 0).then_some(stage_fail);
        let disk_full = (mask & 32 != 0).then_some(disk_full);
        let spurious = (mask & 64 != 0).then_some(spurious);
        let env = FileRef::environment("env", 16 << 20, 64 << 20, 500, 50);
        let tasks: Vec<TaskSpec> = shapes
            .iter()
            .enumerate()
            .map(|(i, &(dur, cores, mem, disk))| {
                TaskSpec::new(
                    TaskId(i as u64),
                    format!("cat{}", i % 2),
                    vec![env.clone(), FileRef::data(format!("in-{i}"), 256 << 10)],
                    1024,
                    SimTaskProfile::new(dur, cores as f64, mem, disk),
                )
            })
            .collect();
        let mut plan = FaultPlan::reliable();
        if let Some(mean) = churn {
            plan = plan.with(FaultSpec::worker_churn(mean));
        }
        if let Some((p, f)) = straggle {
            plan = plan.with(FaultSpec::straggler(p, f, f + 1.0));
        }
        if let Some((p, d)) = delay {
            plan = plan.with(FaultSpec::message_delay(p, d));
        }
        if let Some(p) = loss {
            plan = plan.with(FaultSpec::message_loss(p));
        }
        if let Some(p) = stage_fail {
            plan = plan.with(FaultSpec::stage_in_failure(p));
        }
        if let Some(p) = disk_full {
            plan = plan.with(FaultSpec::unpack_disk_full(p));
        }
        if let Some(p) = spurious {
            plan = plan.with(FaultSpec::spurious_kill(p));
        }
        let cfg = MasterConfig::new(Strategy::Auto(AutoConfig::default()))
            .with_faults(plan)
            .with_seed(seed);
        let spec = NodeSpec::new(8, 8192, 16384);
        let reference = run_workload(
            &cfg.clone().with_sched(SchedImpl::Reference),
            tasks.clone(),
            workers,
            spec,
        );
        let indexed = run_workload(
            &cfg.clone().with_sched(SchedImpl::Indexed),
            tasks.clone(),
            workers,
            spec,
        );
        // (1) bitwise-equivalent schedulers, fault counters included.
        prop_assert_eq!(&reference, &indexed);
        let report = reference;
        // (2) conservation: every task succeeds exactly once or is
        // abandoned; nothing is lost, nothing double-completes.
        let mut ok_ids: Vec<TaskId> = report
            .results
            .iter()
            .filter(|r| r.outcome.is_success())
            .map(|r| r.task)
            .collect();
        let successes = ok_ids.len();
        ok_ids.sort();
        ok_ids.dedup();
        prop_assert_eq!(ok_ids.len(), successes, "a task completed twice");
        prop_assert_eq!(
            successes as u64 + report.abandoned_tasks,
            tasks.len() as u64,
            "tasks lost: {} ok + {} abandoned != {}",
            successes,
            report.abandoned_tasks,
            tasks.len()
        );
        // (3) totals conserved: fault counters match the attempt log, and
        // the accounting integrals are sane.
        let spurious_logged = report
            .results
            .iter()
            .filter(|r| r.outcome.is_spurious_kill())
            .count() as u64;
        prop_assert_eq!(spurious_logged, report.spurious_kills);
        prop_assert!(report.lost_core_secs >= 0.0);
        prop_assert!(report.allocated_core_secs >= 0.0);
        prop_assert!(report.core_efficiency().is_finite());
        if !cfg.faults.is_active() {
            prop_assert_eq!(report.lease_reclaims, 0);
            prop_assert_eq!(report.stage_in_failures, 0);
        }
        // Spurious kills and infra failures never corrupt the resource
        // retry ledger: a resource retry needs a real limit kill.
        if report.retried_tasks > 0 {
            prop_assert!(report.results.iter().any(|r| r.outcome.is_limit_exceeded()));
        }
    }

    /// Crash-point recovery: crash the master at random event indices (an
    /// arbitrary draw of exponential crash points), optionally under worker
    /// churn, recover from the journal (with or without compacting
    /// snapshots), and the run must still conserve tasks — every task
    /// succeeds exactly once or is abandoned — with the Reference and
    /// Indexed schedulers bitwise-identical through every crash.
    #[test]
    fn crashed_and_recovered_runs_conserve_tasks(
        shapes in prop::collection::vec(
            (5.0f64..45.0, 1u32..3, 64u64..4096, 64u64..2048),
            1..22
        ),
        workers in 1u32..5,
        crash_mean in 4.0f64..40.0,
        max_crashes in 1u32..4,
        snapshot in any::<bool>(),
        churn in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let env = FileRef::environment("env", 16 << 20, 64 << 20, 500, 50);
        let tasks: Vec<TaskSpec> = shapes
            .iter()
            .enumerate()
            .map(|(i, &(dur, cores, mem, disk))| {
                TaskSpec::new(
                    TaskId(i as u64),
                    format!("cat{}", i % 2),
                    vec![env.clone(), FileRef::data(format!("in-{i}"), 256 << 10)],
                    1024,
                    SimTaskProfile::new(dur, cores as f64, mem, disk),
                )
            })
            .collect();
        let mut plan = FaultPlan::reliable()
            .with(FaultSpec::master_crash(crash_mean, max_crashes));
        if churn {
            plan = plan.with(FaultSpec::worker_churn(250.0));
        }
        let durability = if snapshot {
            DurabilityConfig::journal_with_snapshots(32)
        } else {
            DurabilityConfig::journal_only()
        };
        let cfg = MasterConfig::new(Strategy::Auto(AutoConfig::default()))
            .with_faults(plan)
            .with_durability(durability)
            .with_seed(seed);
        let spec = NodeSpec::new(8, 8192, 16384);
        let reference = run_workload(
            &cfg.clone().with_sched(SchedImpl::Reference),
            tasks.clone(),
            workers,
            spec,
        );
        let indexed = run_workload(
            &cfg.clone().with_sched(SchedImpl::Indexed),
            tasks.clone(),
            workers,
            spec,
        );
        prop_assert_eq!(&reference, &indexed);
        let report = reference;
        // Every crash recovered from the journal (never a full restart).
        prop_assert_eq!(report.recoveries, report.master_crashes);
        // Conservation across crashes: no task lost, none done twice.
        let mut ok_ids: Vec<TaskId> = report
            .results
            .iter()
            .filter(|r| r.outcome.is_success())
            .map(|r| r.task)
            .collect();
        let successes = ok_ids.len();
        ok_ids.sort();
        ok_ids.dedup();
        prop_assert_eq!(ok_ids.len(), successes, "a task completed twice");
        prop_assert_eq!(
            successes as u64 + report.abandoned_tasks,
            tasks.len() as u64,
            "tasks lost across recovery: {} ok + {} abandoned != {}",
            successes,
            report.abandoned_tasks,
            tasks.len()
        );
        prop_assert!(report.journal_bytes > 0);
        if report.master_crashes > 0 && !snapshot {
            // Journal-only recovery replays the whole history.
            prop_assert!(report.replayed_events > 0);
        }
    }

    /// Journal decoding is total: arbitrary bytes either decode or return
    /// a typed error — never a panic (mirror of the telemetry wire
    /// proptests from PR 8). Bounded-allocation too: every length prefix
    /// is validated against the remaining buffer before materializing.
    #[test]
    fn journal_decode_never_panics_on_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..512)
    ) {
        let _ = crate::journal::bench_api::try_decode_records(&bytes);
    }

    /// Truncating a valid record stream at any point yields a clean prefix
    /// count or a typed error, never a panic.
    #[test]
    fn journal_decode_survives_truncation(n in 1u64..40, cut_frac in 0.0f64..1.0) {
        let buf = crate::journal::bench_api::encode_records(n);
        let cut = ((buf.len() as f64) * cut_frac) as usize;
        if let Ok(k) = crate::journal::bench_api::try_decode_records(&buf[..cut]) {
            prop_assert!(k <= n as usize);
        }
    }

    /// Flipping any byte of a valid stream decodes or errors, never panics
    /// — corrupt tags, lengths, and times all surface as `JournalError`.
    #[test]
    fn journal_decode_survives_corruption(
        n in 1u64..30, pos_frac in 0.0f64..1.0, xor in 1u8..=255
    ) {
        let mut buf = crate::journal::bench_api::encode_records(n);
        let pos = (((buf.len() - 1) as f64) * pos_frac) as usize;
        buf[pos] ^= xor;
        let _ = crate::journal::bench_api::try_decode_records(&buf);
    }

    /// Determinism: identical config + workload ⇒ identical report.
    #[test]
    fn runs_are_deterministic(seed in 0u64..1000) {
        let tasks: Vec<TaskSpec> = (0..10)
            .map(|i| {
                TaskSpec::new(
                    TaskId(i),
                    "c",
                    vec![],
                    0,
                    SimTaskProfile::new(10.0 + i as f64, 1.0, 100, 100),
                )
            })
            .collect();
        let cfg = MasterConfig::new(Strategy::Unmanaged).with_seed(seed);
        let a = run_workload(&cfg, tasks.clone(), 2, NodeSpec::new(4, 4096, 8192));
        let b = run_workload(&cfg, tasks, 2, NodeSpec::new(4, 4096, 8192));
        prop_assert_eq!(a.makespan_secs, b.makespan_secs);
        prop_assert_eq!(a.results.len(), b.results.len());
    }
}
