//! Task input/output files.
//!
//! Work Queue tasks name explicit input and output files; the master stages
//! them to workers and caches frequently-used files at the worker so later
//! tasks can reuse them (§III-A). Environment packs are just (large,
//! cacheable) input files.

use serde::{Deserialize, Serialize};

/// What a file is, for staging-cost purposes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FileKind {
    /// Ordinary data bytes.
    Data,
    /// A packed environment: after transfer it must be unpacked
    /// (`unpacked_files` files, `relocation_ops` prefix rewrites) before
    /// first use on a worker.
    EnvironmentPack {
        unpacked_files: u64,
        relocation_ops: u64,
        unpacked_bytes: u64,
    },
}

/// A named file with a size and caching policy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileRef {
    /// Unique name within the workflow (cache key).
    pub name: String,
    /// Transfer size in bytes.
    pub size_bytes: u64,
    /// Cacheable files stay on the worker after the task finishes.
    pub cacheable: bool,
    pub kind: FileKind,
}

impl FileRef {
    /// An ordinary per-task data file.
    pub fn data(name: impl Into<String>, size_bytes: u64) -> Self {
        FileRef {
            name: name.into(),
            size_bytes,
            cacheable: false,
            kind: FileKind::Data,
        }
    }

    /// A shared, cacheable data file (common calibration data etc.).
    pub fn shared_data(name: impl Into<String>, size_bytes: u64) -> Self {
        FileRef {
            name: name.into(),
            size_bytes,
            cacheable: true,
            kind: FileKind::Data,
        }
    }

    /// A packed environment file.
    pub fn environment(
        name: impl Into<String>,
        archive_bytes: u64,
        unpacked_bytes: u64,
        unpacked_files: u64,
        relocation_ops: u64,
    ) -> Self {
        FileRef {
            name: name.into(),
            size_bytes: archive_bytes,
            cacheable: true,
            kind: FileKind::EnvironmentPack {
                unpacked_files,
                relocation_ops,
                unpacked_bytes,
            },
        }
    }

    /// Disk footprint once present on the worker (unpacked envs occupy their
    /// installed size, not the archive size).
    pub fn disk_footprint(&self) -> u64 {
        match &self.kind {
            FileKind::Data => self.size_bytes,
            FileKind::EnvironmentPack { unpacked_bytes, .. } => self.size_bytes + unpacked_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_policy() {
        let d = FileRef::data("input.pkl", 500_000);
        assert!(!d.cacheable);
        let s = FileRef::shared_data("calib.root", 1_000_000);
        assert!(s.cacheable);
        let e = FileRef::environment("env.tar.gz", 240 << 20, 600 << 20, 5000, 800);
        assert!(e.cacheable);
        assert!(matches!(e.kind, FileKind::EnvironmentPack { .. }));
    }

    #[test]
    fn env_disk_footprint_includes_unpacked() {
        let e = FileRef::environment("env", 100, 600, 10, 1);
        assert_eq!(e.disk_footprint(), 700);
        assert_eq!(FileRef::data("d", 42).disk_footprint(), 42);
    }
}
