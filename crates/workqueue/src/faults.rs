//! Deterministic, seedable fault injection and the master's resilience
//! knobs.
//!
//! A [`FaultPlan`] is a composition of independent [`FaultSpec`]s — worker
//! churn, per-worker straggler slowdown, message delay/loss on the network,
//! stage-in failure, env-unpack disk-full, spurious monitor kills. Every
//! spec carries its own seed and draws from its own stream, so adding or
//! removing one fault source never perturbs another's schedule and traces
//! stay byte-reproducible. Faults whose effect is a *worker property*
//! (churn lifetime, straggler factor) are drawn from a stream keyed by the
//! worker id, which makes them independent of event interleaving — the
//! Reference and Indexed schedulers observe identical fault sequences, so
//! the bitwise-equivalence suites keep holding under arbitrary plans.
//!
//! The master-side recovery machinery is configured by
//! [`ResilienceConfig`]: placement leases (lost-result and straggler
//! reclamation), per-category exponential backoff with a bounded infra
//! retry budget, flaky-worker quarantine, and graceful degradation to
//! [`DistMode::SharedFsDirect`](crate::master::DistMode) when packed-env
//! distribution keeps failing.

use lfm_simcluster::network::Disturbance;
use lfm_simcluster::rng::SimRng;
use serde::{Deserialize, Serialize};

/// One independent fault source: what to inject, and the seed of the stream
/// it draws from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    pub kind: FaultKind,
    /// Per-spec stream seed, mixed with the master seed at run start. Two
    /// specs of different kinds never share a stream even with equal seeds
    /// (the kind salts the mix).
    pub seed: u64,
}

/// The fault taxonomy (see DESIGN.md §5d for the invariants each preserves).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Pilot eviction: each worker's lifetime is exponential with this
    /// mean; `replace` submits a replacement pilot per loss.
    WorkerChurn {
        mean_lifetime_secs: f64,
        replace: bool,
    },
    /// With probability `prob` a worker is a straggler: everything it
    /// executes is slowed by a factor uniform in `[min_factor, max_factor]`.
    Straggler {
        prob: f64,
        min_factor: f64,
        max_factor: f64,
    },
    /// Each network transfer is delayed with probability `prob` by an
    /// exponential extra latency of this mean.
    MessageDelay { prob: f64, mean_delay_secs: f64 },
    /// Each network transfer is lost with probability `prob` (stage-in
    /// transfers fail the attempt; a lost result makes a zombie placement
    /// reclaimed by its lease).
    MessageLoss { prob: f64 },
    /// Each staging attempt that moved data fails outright with this
    /// probability (wasting the stage-in time).
    StageInFailure { prob: f64 },
    /// Each environment-pack unpack hits disk-full with this probability.
    /// Repeated env failures trigger the shared-FS degradation fallback.
    UnpackDiskFull { prob: f64 },
    /// The monitor falsely kills an otherwise-successful execution with
    /// this probability, partway through. Reported as
    /// [`MonitorOutcome::SpuriousKill`](lfm_monitor::report::MonitorOutcome)
    /// — distinguishable from a real limit kill, never fed to the
    /// allocator, and not counted as a resource retry.
    SpuriousKill { prob: f64 },
    /// The master process itself crashes. Crash points are precomputed at
    /// run start as cumulative exponential gaps with this mean (in
    /// *processed events*, minimum gap 1), up to `max_crashes` per run —
    /// counting events rather than drawing per-event keeps the schedule
    /// identical across scheduler implementations. What a crash costs
    /// depends on the master's
    /// [`DurabilityConfig`](crate::journal::DurabilityConfig): with a
    /// journal the master recovers its logical state (snapshot ⊕ replay);
    /// without one the run starts over from scratch.
    MasterCrash {
        mean_interval_events: f64,
        max_crashes: u32,
    },
}

impl FaultSpec {
    fn new(kind: FaultKind) -> Self {
        FaultSpec { kind, seed: 0 }
    }

    /// Exponential pilot eviction with auto-replacement.
    pub fn worker_churn(mean_lifetime_secs: f64) -> Self {
        Self::new(FaultKind::WorkerChurn {
            mean_lifetime_secs,
            replace: true,
        })
    }

    /// Per-worker straggler slowdown.
    pub fn straggler(prob: f64, min_factor: f64, max_factor: f64) -> Self {
        assert!(min_factor >= 1.0 && max_factor >= min_factor);
        Self::new(FaultKind::Straggler {
            prob,
            min_factor,
            max_factor,
        })
    }

    /// Random extra latency on network transfers.
    pub fn message_delay(prob: f64, mean_delay_secs: f64) -> Self {
        Self::new(FaultKind::MessageDelay {
            prob,
            mean_delay_secs,
        })
    }

    /// Random transfer loss on the network.
    pub fn message_loss(prob: f64) -> Self {
        Self::new(FaultKind::MessageLoss { prob })
    }

    /// Staging fails outright with probability `prob` per staging attempt.
    pub fn stage_in_failure(prob: f64) -> Self {
        Self::new(FaultKind::StageInFailure { prob })
    }

    /// Env-pack unpack hits disk-full with probability `prob`.
    pub fn unpack_disk_full(prob: f64) -> Self {
        Self::new(FaultKind::UnpackDiskFull { prob })
    }

    /// Spurious monitor kill with probability `prob` per execution.
    pub fn spurious_kill(prob: f64) -> Self {
        Self::new(FaultKind::SpuriousKill { prob })
    }

    /// Master crashes at exponentially spaced event indices (mean gap
    /// `mean_interval_events` processed events), at most `max_crashes`
    /// times per run.
    pub fn master_crash(mean_interval_events: f64, max_crashes: u32) -> Self {
        assert!(
            mean_interval_events >= 1.0,
            "mean crash interval must be at least one event"
        );
        Self::new(FaultKind::MasterCrash {
            mean_interval_events,
            max_crashes,
        })
    }

    /// Override this spec's stream seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// For churn specs: do not submit replacement pilots.
    pub fn without_replacement(mut self) -> Self {
        if let FaultKind::WorkerChurn { replace, .. } = &mut self.kind {
            *replace = false;
        }
        self
    }
}

/// A composition of independent fault sources — the single public failure
/// configuration surface of [`MasterConfig`](crate::master::MasterConfig).
/// When two specs of the same kind are composed, the last one wins.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// No faults at all (the default).
    pub fn reliable() -> Self {
        FaultPlan::default()
    }

    /// The classic one-spec plan: exponential pilot eviction with
    /// auto-replacement.
    pub fn evicting(mean_lifetime_secs: f64) -> Self {
        FaultPlan::default().with(FaultSpec::worker_churn(mean_lifetime_secs))
    }

    /// Compose another fault source into the plan.
    pub fn with(mut self, spec: FaultSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// Does this plan inject anything?
    pub fn is_active(&self) -> bool {
        !self.specs.is_empty()
    }

    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }
}

/// Master-side recovery knobs: leases, backoff, quarantine, degradation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResilienceConfig {
    /// Resource-kill-and-retry ceiling; a task killed for exceeding its
    /// allocation this many times is abandoned.
    pub max_attempts: u32,
    /// Placement lease = `lease_factor` × the attempt's nominal duration
    /// (stage-in + unslowed execution + output transfer). A placement still
    /// live past its lease — a straggler, or a zombie whose result message
    /// was lost — is reclaimed and requeued. Leases are only armed when the
    /// fault plan is active.
    pub lease_factor: f64,
    /// Lower bound on any lease, seconds.
    pub min_lease_secs: f64,
    /// Infrastructure-failure retries per task (staging failures, lost
    /// results, lease reclaims, spurious kills) before abandoning it.
    /// Distinct from `max_attempts`: infra retries rerun the *same* attempt
    /// — the task did nothing wrong.
    pub infra_retry_budget: u32,
    /// First backoff delay for infra requeues, seconds; doubles per
    /// consecutive failure of the category, capped below. Zero disables
    /// backoff (immediate requeue).
    pub backoff_base_secs: f64,
    /// Backoff ceiling, seconds.
    pub backoff_cap_secs: f64,
    /// Infra failures attributed to one worker before it is quarantined
    /// (taken out of scheduling, released after `quarantine_secs`). `None`
    /// disables quarantine.
    pub quarantine_threshold: Option<u32>,
    /// How long a quarantined worker sits out, seconds.
    pub quarantine_secs: f64,
    /// Packed-environment staging failures before the master degrades to
    /// `DistMode::SharedFsDirect` for the rest of the run. `None` disables
    /// the fallback.
    pub degrade_env_failures: Option<u32>,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            max_attempts: 3,
            lease_factor: 4.0,
            min_lease_secs: 30.0,
            infra_retry_budget: 8,
            backoff_base_secs: 2.0,
            backoff_cap_secs: 120.0,
            quarantine_threshold: Some(5),
            quarantine_secs: 180.0,
            degrade_env_failures: Some(6),
        }
    }
}

impl ResilienceConfig {
    /// The strawman the chaos bench compares against: leases and retry
    /// budgets only — no backoff, no quarantine, no degradation.
    pub fn naive_retry() -> Self {
        ResilienceConfig {
            backoff_base_secs: 0.0,
            quarantine_threshold: None,
            degrade_env_failures: None,
            ..ResilienceConfig::default()
        }
    }
}

/// Exponential backoff delay for the `streak`-th consecutive infra failure
/// (1-based): `base × 2^(streak-1)`, capped.
pub fn backoff_delay(streak: u32, cfg: &ResilienceConfig) -> f64 {
    if cfg.backoff_base_secs <= 0.0 {
        return 0.0;
    }
    let exp = streak.saturating_sub(1).min(32);
    (cfg.backoff_base_secs * f64::powi(2.0, exp as i32)).min(cfg.backoff_cap_secs)
}

/// Why an attempt failed for infrastructure (not task) reasons. Infra
/// failures are requeued with backoff against the infra retry budget and
/// are never shown to the allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum InfraFault {
    /// Input staging failed (lost transfer or injected staging failure).
    StageInFailed,
    /// The environment unpack ran out of disk.
    DiskFull,
    /// The task ran, but its result message was lost; the placement turns
    /// zombie until its lease reclaims it.
    ResultLost,
}

impl InfraFault {
    pub fn label(self) -> &'static str {
        match self {
            InfraFault::StageInFailed => "stage_in_failed",
            InfraFault::DiskFull => "disk_full",
            InfraFault::ResultLost => "result_lost",
        }
    }
}

/// splitmix64 — mixes a spec seed, the master seed, and an entity id into
/// an independent stream seed (also used by the federation to derive
/// per-shard seeds).
pub(crate) fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn stream_seed(master_seed: u64, spec_seed: u64, kind_salt: u64) -> u64 {
    mix(master_seed ^ mix(spec_seed.wrapping_add(kind_salt)))
}

/// The master's live fault-injection state, compiled from a [`FaultPlan`].
/// Stream draws happen only at placement-identical points (inside
/// `place()`), and per-worker properties are drawn keyed by worker id, so
/// scheduler implementations consume identical fault sequences.
#[derive(Debug, Clone)]
pub(crate) struct FaultState {
    churn: Option<(f64, bool, u64)>,
    straggler: Option<(f64, f64, f64, u64)>,
    stage_fail: Option<(f64, SimRng)>,
    disk_full: Option<(f64, SimRng)>,
    spurious: Option<(f64, SimRng)>,
    /// Network delay/loss parameters for `Network::set_disturbance`.
    pub disturbance: Option<Disturbance>,
    /// Seed of the network draw stream (master-owned, passed per transfer).
    pub net_seed: u64,
    /// Sorted absolute event indices at which the master crashes. Counting
    /// *processed* events (not wall time) keeps the schedule identical for
    /// the Reference and Indexed schedulers.
    crash_points: Vec<u64>,
    active: bool,
}

impl FaultState {
    pub fn new(plan: &FaultPlan, master_seed: u64) -> Self {
        let mut s = FaultState {
            churn: None,
            straggler: None,
            stage_fail: None,
            disk_full: None,
            spurious: None,
            disturbance: None,
            net_seed: stream_seed(master_seed, 0, 7),
            crash_points: Vec::new(),
            active: plan.is_active(),
        };
        for spec in plan.specs() {
            match spec.kind {
                FaultKind::WorkerChurn {
                    mean_lifetime_secs,
                    replace,
                } => {
                    s.churn = Some((
                        mean_lifetime_secs,
                        replace,
                        stream_seed(master_seed, spec.seed, 1),
                    ));
                }
                FaultKind::Straggler {
                    prob,
                    min_factor,
                    max_factor,
                } => {
                    s.straggler = Some((
                        prob,
                        min_factor,
                        max_factor,
                        stream_seed(master_seed, spec.seed, 2),
                    ));
                }
                FaultKind::MessageDelay {
                    prob,
                    mean_delay_secs,
                } => {
                    let d = s.disturbance.get_or_insert(Disturbance::none());
                    d.delay_prob = prob;
                    d.mean_delay_secs = mean_delay_secs;
                    s.net_seed ^= stream_seed(master_seed, spec.seed, 3);
                }
                FaultKind::MessageLoss { prob } => {
                    let d = s.disturbance.get_or_insert(Disturbance::none());
                    d.loss_prob = prob;
                    s.net_seed ^= stream_seed(master_seed, spec.seed, 4);
                }
                FaultKind::StageInFailure { prob } => {
                    s.stage_fail =
                        Some((prob, SimRng::seeded(stream_seed(master_seed, spec.seed, 5))));
                }
                FaultKind::UnpackDiskFull { prob } => {
                    s.disk_full =
                        Some((prob, SimRng::seeded(stream_seed(master_seed, spec.seed, 6))));
                }
                FaultKind::SpuriousKill { prob } => {
                    s.spurious =
                        Some((prob, SimRng::seeded(stream_seed(master_seed, spec.seed, 8))));
                }
                FaultKind::MasterCrash {
                    mean_interval_events,
                    max_crashes,
                } => {
                    let mut rng = SimRng::seeded(stream_seed(master_seed, spec.seed, 9));
                    let mut at = 0u64;
                    let mut pts = Vec::with_capacity(max_crashes as usize);
                    for _ in 0..max_crashes {
                        let u = rng.uniform(1e-9, 1.0);
                        let gap = (-mean_interval_events * u.ln()).ceil().max(1.0) as u64;
                        at = at.saturating_add(gap);
                        pts.push(at);
                    }
                    s.crash_points = pts;
                }
            }
        }
        s
    }

    /// Sorted absolute processed-event indices at which the master crashes.
    pub fn crash_points(&self) -> &[u64] {
        &self.crash_points
    }

    /// Is any fault source configured? Leases are only armed when true, so
    /// fault-free runs schedule no extra events.
    pub fn active(&self) -> bool {
        self.active
    }

    /// Keyed draw: this worker's eviction time after coming up, if churn is
    /// configured.
    pub fn worker_lifetime(&self, worker: u32) -> Option<f64> {
        let (mean, _, seed) = self.churn?;
        let mut rng = SimRng::seeded(mix(seed ^ mix(worker as u64)));
        let u = rng.uniform(1e-9, 1.0);
        Some(-mean * u.ln())
    }

    /// Submit a replacement pilot when a worker dies?
    pub fn replace_evicted(&self) -> bool {
        self.churn.map(|(_, replace, _)| replace).unwrap_or(false)
    }

    /// Keyed draw: this worker's execution slowdown factor (1.0 = healthy).
    pub fn worker_slowdown(&self, worker: u32) -> f64 {
        let Some((prob, min_f, max_f, seed)) = self.straggler else {
            return 1.0;
        };
        let mut rng = SimRng::seeded(mix(seed ^ mix(worker as u64)));
        if rng.chance(prob) {
            rng.uniform(min_f, max_f)
        } else {
            1.0
        }
    }

    /// Stream draw: does this staging attempt fail outright?
    pub fn stage_in_fails(&mut self) -> bool {
        match &mut self.stage_fail {
            Some((p, rng)) => rng.chance(*p),
            None => false,
        }
    }

    /// Stream draw: does this env-pack unpack hit disk-full?
    pub fn unpack_disk_full(&mut self) -> bool {
        match &mut self.disk_full {
            Some((p, rng)) => rng.chance(*p),
            None => false,
        }
    }

    /// Stream draw: is this execution spuriously killed? Returns the
    /// fraction of the run at which the false kill lands.
    pub fn spurious_kill(&mut self) -> Option<f64> {
        let (p, rng) = self.spurious.as_mut()?;
        if rng.chance(*p) {
            Some(rng.uniform(0.05, 0.95))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_builder_composes_specs() {
        let plan = FaultPlan::reliable()
            .with(FaultSpec::worker_churn(300.0))
            .with(FaultSpec::message_loss(0.1).with_seed(7))
            .with(FaultSpec::spurious_kill(0.05));
        assert!(plan.is_active());
        assert_eq!(plan.specs().len(), 3);
        assert!(!FaultPlan::reliable().is_active());
        assert!(FaultPlan::evicting(100.0).is_active());
    }

    #[test]
    fn keyed_draws_are_deterministic_and_independent_per_worker() {
        let plan = FaultPlan::evicting(200.0).with(FaultSpec::straggler(0.5, 2.0, 4.0));
        let a = FaultState::new(&plan, 42);
        let b = FaultState::new(&plan, 42);
        for w in 0..16u32 {
            assert_eq!(a.worker_lifetime(w), b.worker_lifetime(w));
            assert_eq!(a.worker_slowdown(w), b.worker_slowdown(w));
        }
        // Different workers see different lifetimes (with overwhelming
        // probability over 16 ids).
        let distinct: std::collections::BTreeSet<u64> = (0..16u32)
            .map(|w| a.worker_lifetime(w).unwrap().to_bits())
            .collect();
        assert!(distinct.len() > 1);
        // A different master seed moves every draw.
        let c = FaultState::new(&plan, 43);
        assert_ne!(a.worker_lifetime(0), c.worker_lifetime(0));
    }

    #[test]
    fn spec_streams_are_independent() {
        // Removing the straggler spec must not change the churn draws.
        let with_both = FaultState::new(
            &FaultPlan::evicting(200.0).with(FaultSpec::straggler(0.5, 2.0, 4.0)),
            9,
        );
        let churn_only = FaultState::new(&FaultPlan::evicting(200.0), 9);
        for w in 0..8u32 {
            assert_eq!(with_both.worker_lifetime(w), churn_only.worker_lifetime(w));
        }
    }

    #[test]
    fn straggler_draw_respects_bounds() {
        let plan = FaultPlan::reliable().with(FaultSpec::straggler(1.0, 2.0, 4.0));
        let s = FaultState::new(&plan, 1);
        for w in 0..32u32 {
            let f = s.worker_slowdown(w);
            assert!((2.0..4.0).contains(&f), "factor {f}");
        }
        let healthy = FaultState::new(&FaultPlan::reliable(), 1);
        assert_eq!(healthy.worker_slowdown(3), 1.0);
    }

    #[test]
    fn backoff_schedule_doubles_and_caps() {
        let cfg = ResilienceConfig {
            backoff_base_secs: 2.0,
            backoff_cap_secs: 120.0,
            ..ResilienceConfig::default()
        };
        assert_eq!(backoff_delay(1, &cfg), 2.0);
        assert_eq!(backoff_delay(2, &cfg), 4.0);
        assert_eq!(backoff_delay(3, &cfg), 8.0);
        assert_eq!(backoff_delay(7, &cfg), 120.0); // 128 capped
        assert_eq!(backoff_delay(40, &cfg), 120.0); // huge streaks don't overflow
        let naive = ResilienceConfig::naive_retry();
        assert_eq!(backoff_delay(5, &naive), 0.0);
        assert!(naive.quarantine_threshold.is_none());
    }

    #[test]
    fn backoff_exponent_is_capped_at_the_integer_boundary() {
        // The exponent cap (32) must hold even for pathological streak
        // counters: 2^(u32::MAX-1) would overflow any shift/multiply, but
        // the delay stays finite, monotone, and pinned at the cap.
        let cfg = ResilienceConfig {
            backoff_base_secs: 2.0,
            backoff_cap_secs: f64::MAX,
            ..ResilienceConfig::default()
        };
        let at_cap = backoff_delay(33, &cfg); // exp = 32 exactly
        assert_eq!(at_cap, 2.0 * f64::powi(2.0, 32));
        for streak in [34, 1 << 20, u32::MAX - 1, u32::MAX] {
            let d = backoff_delay(streak, &cfg);
            assert!(d.is_finite());
            assert_eq!(d, at_cap, "streak {streak} escaped the exponent cap");
        }
        // With a realistic cap the boundary value saturates there instead.
        let real = ResilienceConfig::default();
        assert_eq!(backoff_delay(u32::MAX, &real), real.backoff_cap_secs);
    }

    #[test]
    fn crash_points_are_deterministic_sorted_and_bounded() {
        let plan = FaultPlan::reliable().with(FaultSpec::master_crash(50.0, 8).with_seed(3));
        let a = FaultState::new(&plan, 42);
        let b = FaultState::new(&plan, 42);
        assert_eq!(a.crash_points(), b.crash_points());
        assert_eq!(a.crash_points().len(), 8);
        assert!(a.crash_points().windows(2).all(|w| w[0] < w[1]));
        assert!(a.crash_points()[0] >= 1);
        // Different master seed → different schedule.
        let c = FaultState::new(&plan, 43);
        assert_ne!(a.crash_points(), c.crash_points());
        // No crash spec → no crash points, and the plan counts as active
        // when a crash spec is the only one (leases must arm).
        assert!(FaultState::new(&FaultPlan::reliable(), 42)
            .crash_points()
            .is_empty());
        assert!(plan.is_active());
    }

    #[test]
    fn disturbance_composed_from_delay_and_loss_specs() {
        let plan = FaultPlan::reliable()
            .with(FaultSpec::message_delay(0.2, 1.5))
            .with(FaultSpec::message_loss(0.1));
        let s = FaultState::new(&plan, 5);
        let d = s.disturbance.expect("disturbance configured");
        assert_eq!(d.delay_prob, 0.2);
        assert_eq!(d.mean_delay_secs, 1.5);
        assert_eq!(d.loss_prob, 0.1);
        assert!(FaultState::new(&FaultPlan::reliable(), 5)
            .disturbance
            .is_none());
    }
}
