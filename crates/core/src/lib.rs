//! # lfm-core — the Lightweight Function Monitor stack, assembled
//!
//! Facade over the full reproduction of *"Lightweight Function Monitors for
//! Fine-Grained Management in Large Scale Python Applications"* (Shaffer et
//! al., IPDPS 2021):
//!
//! | layer | crate |
//! |---|---|
//! | mini-Python + packages + envs + packing | `lfm-pyenv` |
//! | cluster/filesystem/network simulation | `lfm-simcluster` |
//! | the function monitor itself | `lfm-monitor` |
//! | master/worker scheduling + auto labeling | `lfm-workqueue` |
//! | Parsl-style dataflow + executor lowering | `lfm-dataflow` |
//! | FaaS layer + container cost models | `lfm-funcx` |
//! | multi-tenant serving gateway | `lfm-serving` |
//! | the four evaluation applications | `lfm-workloads` |
//!
//! This crate adds:
//! * [`experiments`] — one module per paper table/figure, each producing
//!   the data its regenerator binary prints;
//! * [`planner`] — environment-distribution planning (direct shared-FS vs.
//!   packed transfer);
//! * [`render`] — text-table rendering for the regenerators.
//!
//! ## Quickstart
//!
//! ```
//! use lfm_core::prelude::*;
//!
//! // Analyze a function, build its minimal environment, and pack it.
//! let analysis = analyze_source(
//!     "def f(x):\n    import numpy\n    return x\n").unwrap();
//! let index = PackageIndex::builtin();
//! let reqs = RequirementSet::from_analysis(&analysis, &index).unwrap();
//! let resolution = resolve(&index, &reqs).unwrap();
//! assert!(resolution.version_of("numpy").is_some());
//! ```

pub mod experiments;
pub mod parallel;
pub mod planner;
pub mod render;

pub use lfm_dataflow as dataflow;
pub use lfm_funcx as funcx;
pub use lfm_monitor as monitor;
pub use lfm_pyenv as pyenv;
pub use lfm_serving as serving;
pub use lfm_simcluster as simcluster;
pub use lfm_telemetry as telemetry;
pub use lfm_workloads as workloads;
pub use lfm_workqueue as workqueue;

/// Everything a downstream user typically needs.
pub mod prelude {
    pub use crate::planner::{plan, PlanEstimate};
    pub use crate::render::{fmt_bytes, fmt_secs, render_table};
    pub use lfm_dataflow::prelude::*;
    pub use lfm_funcx::prelude::*;
    pub use lfm_monitor::prelude::*;
    pub use lfm_pyenv::prelude::*;
    pub use lfm_serving::prelude::*;
    pub use lfm_simcluster::prelude::*;
    pub use lfm_workloads::prelude::*;
    pub use lfm_workqueue::prelude::*;
}
