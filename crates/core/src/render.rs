//! Fixed-width table rendering for experiment binaries.

/// Render rows as an aligned text table with a header.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:<width$}", width = widths[i]));
        }
        line.trim_end().to_string()
    };
    let headers_owned: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&headers_owned, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Format seconds compactly (ms under 1 s, 1 decimal above).
pub fn fmt_secs(s: f64) -> String {
    if s < 1.0 {
        format!("{:.0} ms", s * 1e3)
    } else if s < 120.0 {
        format!("{s:.1} s")
    } else if s < 7200.0 {
        format!("{:.1} min", s / 60.0)
    } else {
        format!("{:.1} h", s / 3600.0)
    }
}

/// Format bytes in binary units.
pub fn fmt_bytes(b: u64) -> String {
    const KB: f64 = 1024.0;
    let b = b as f64;
    if b < KB {
        format!("{b:.0} B")
    } else if b < KB * KB {
        format!("{:.1} KB", b / KB)
    } else if b < KB * KB * KB {
        format!("{:.1} MB", b / (KB * KB))
    } else {
        format!("{:.2} GB", b / (KB * KB * KB))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer-name".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("longer-name"));
        // Value column aligned.
        let pos0 = lines[0].find("value").unwrap();
        let pos3 = lines[3].find("22").unwrap();
        assert_eq!(pos0, pos3);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_rows_panic() {
        render_table(&["a", "b"], &[vec!["only-one".into()]]);
    }

    #[test]
    fn humanized_units() {
        assert_eq!(fmt_secs(0.5), "500 ms");
        assert_eq!(fmt_secs(65.0), "65.0 s");
        assert_eq!(fmt_secs(600.0), "10.0 min");
        assert_eq!(fmt_secs(7300.0), "2.0 h");
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(240 << 20), "240.0 MB");
        assert_eq!(fmt_bytes(3 << 30), "3.00 GB");
    }
}
