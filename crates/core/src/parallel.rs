//! Deterministic parallel execution engine for the experiment stack.
//!
//! Every figure/table runner is a sweep: a grid of independent simulation
//! configurations, each of which is deterministic given its seed. That makes
//! the whole stack embarrassingly parallel — the only thing the engine has to
//! guarantee is that fanning jobs across cores does not change the *order* or
//! *content* of the output relative to the serial loop it replaces.
//!
//! [`par_map`] delivers exactly that contract: results come back in input
//! order, byte-identical to `items.into_iter().map(f).collect()`. Jobs are
//! distributed through a [`crossbeam::deque::Injector`] so a long-running
//! point (e.g. an Unmanaged strategy with many retries) does not serialize the
//! rest of its batch behind it, and worker threads are scoped
//! (`std::thread::scope`) so `f` can borrow from the caller's stack.
//!
//! [`run_sweep_parallel`] is the sweep-shaped entry point used by the fig6–9
//! runners and the ablation binary: each job yields a `Vec<SweepPoint>`, and
//! the engine flattens them in job order so downstream CSV/pivot code sees
//! the same stream the serial loops produced.

use crate::experiments::sweep::SweepPoint;
use crossbeam::deque::{Injector, Steal};
use parking_lot::Mutex;
use std::num::NonZeroUsize;

/// Number of worker threads `par_map` will use for `n` items: one per
/// available core, never more than there are items.
pub fn worker_threads(n: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    cores.min(n).max(1)
}

/// Map `f` over `items` across all available cores, preserving input order.
///
/// The result is exactly `items.into_iter().map(f).collect()` — same order,
/// same values — regardless of how many threads run or how work interleaves.
/// With one core (or one item) this degrades to the plain serial loop, so
/// single-core CI produces identical output by construction, not just by
/// test assertion.
///
/// A panic in `f` propagates to the caller once all threads have stopped.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = worker_threads(items.len());
    par_map_with_threads(items, threads, f)
}

/// Pre-interned telemetry names for the parallel engine. `job` spans are
/// emitted once per work item, so the names are interned once per process
/// instead of hashed per emission.
struct ParKeys {
    jobs: lfm_telemetry::Name,
    steal_retry: lfm_telemetry::Name,
    job: lfm_telemetry::Name,
    run_sweep: lfm_telemetry::Name,
    cat_parallel: lfm_telemetry::Name,
    cat_sweep: lfm_telemetry::Name,
    a_index: lfm_telemetry::Name,
    a_jobs: lfm_telemetry::Name,
}

fn pk() -> &'static ParKeys {
    static KEYS: std::sync::OnceLock<ParKeys> = std::sync::OnceLock::new();
    KEYS.get_or_init(|| ParKeys {
        jobs: lfm_telemetry::Name::intern("parallel.jobs"),
        steal_retry: lfm_telemetry::Name::intern("parallel.steal_retry"),
        job: lfm_telemetry::Name::intern("job"),
        run_sweep: lfm_telemetry::Name::intern("run_sweep"),
        cat_parallel: lfm_telemetry::Name::intern("parallel"),
        cat_sweep: lfm_telemetry::Name::intern("sweep"),
        a_index: lfm_telemetry::Name::intern("index"),
        a_jobs: lfm_telemetry::Name::intern("jobs"),
    })
}

/// [`par_map`] with an explicit thread count. Exists so the threaded path
/// (injector queue, scoped workers, slot writes) can be exercised and
/// equivalence-tested even on machines where `available_parallelism` is 1
/// and [`par_map`] would take the serial fallback.
pub fn par_map_with_threads<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let tel = lfm_telemetry::global();
    if n > 0 {
        tel.counter_key(pk().jobs, n as u64);
    }
    if threads <= 1 || n <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| {
                let mut span = tel.wall_span_key(pk().job, pk().cat_parallel);
                span.attr_key(pk().a_index, i as u64);
                f(item)
            })
            .collect();
    }
    let threads = threads.min(n);

    // Index every item so results can be written straight into their output
    // slot no matter which thread picks them up.
    let queue: Injector<(usize, T)> = Injector::new();
    for pair in items.into_iter().enumerate() {
        queue.push(pair);
    }

    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let slots = Mutex::new(&mut slots);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let (i, item) = match queue.steal() {
                    Steal::Success(pair) => pair,
                    Steal::Empty => break,
                    Steal::Retry => {
                        tel.counter_key(pk().steal_retry, 1);
                        continue;
                    }
                };
                let result = {
                    let mut span = tel.wall_span_key(pk().job, pk().cat_parallel);
                    span.attr_key(pk().a_index, i as u64);
                    f(item)
                };
                slots.lock()[i] = Some(result);
            });
        }
    });

    slots
        .into_inner()
        .iter_mut()
        .map(|slot| slot.take().expect("every index produced exactly once"))
        .collect()
}

/// Run a sweep: execute `run` on every job in parallel and flatten the
/// per-job point vectors in job order.
///
/// This is the engine behind all fig6–fig9 grid runners and the ablation
/// binary. Each job is one self-contained simulation batch (a grid point, or
/// a (grid point, strategy) pair); `run` must be a pure function of its job,
/// which every runner in this workspace satisfies because the simulations
/// are seeded and share no mutable state.
pub fn run_sweep_parallel<J, F>(jobs: Vec<J>, run: F) -> Vec<SweepPoint>
where
    J: Send,
    F: Fn(J) -> Vec<SweepPoint> + Sync,
{
    let mut span = lfm_telemetry::global().wall_span_key(pk().run_sweep, pk().cat_sweep);
    span.attr_key(pk().a_jobs, jobs.len() as u64);
    par_map(jobs, run).into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_serial_order_and_values() {
        let items: Vec<u64> = (0..64).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        let parallel = par_map(items, |x| x * x + 1);
        assert_eq!(parallel, serial);
    }

    #[test]
    fn forced_threads_match_serial_even_on_one_core() {
        // Drives the real threaded machinery regardless of the machine's
        // core count.
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = items.iter().map(|x| x.wrapping_mul(31) ^ 7).collect();
        for threads in [2, 4, 8] {
            let parallel = par_map_with_threads(items.clone(), threads, |x| x.wrapping_mul(31) ^ 7);
            assert_eq!(parallel, serial, "{threads} threads");
        }
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        assert_eq!(par_map(Vec::<u32>::new(), |x| x), Vec::<u32>::new());
        assert_eq!(par_map(vec![7], |x| x + 1), vec![8]);
    }

    #[test]
    fn run_sweep_parallel_flattens_in_job_order() {
        let jobs: Vec<u64> = vec![3, 1, 2];
        let points = run_sweep_parallel(jobs, |n| {
            (0..n)
                .map(|i| SweepPoint {
                    x: n * 10 + i,
                    strategy: format!("s{n}"),
                    makespan_secs: n as f64,
                    retry_fraction: 0.0,
                    core_efficiency: 1.0,
                })
                .collect()
        });
        let xs: Vec<u64> = points.iter().map(|p| p.x).collect();
        assert_eq!(xs, vec![30, 31, 32, 10, 20, 21]);
    }

    #[test]
    fn par_map_uses_at_most_item_count_threads() {
        assert_eq!(worker_threads(0), 1);
        assert_eq!(worker_threads(1), 1);
        assert!(worker_threads(1000) >= 1);
    }
}
