//! Figure 4: Python import time vs. scale on Theta.
//!
//! "On each core we run a Python script that loads Python and imports a
//! single module... We see constant performance for smaller modules...
//! For the larger TensorFlow, load time increases with the number of
//! nodes."
//!
//! Reproduced by computing the per-client import cost of each module's
//! resolved environment against the Theta shared-filesystem model, with one
//! importing client per core (64 cores/node).

use lfm_pyenv::index::PackageIndex;
use lfm_pyenv::requirements::{Requirement, RequirementSet};
use lfm_pyenv::resolve::resolve_cached;
use lfm_simcluster::sharedfs::SharedFs;
use lfm_simcluster::sites::theta;
use serde::{Deserialize, Serialize};

/// The modules Figure 4 imports.
pub const MODULES: &[&str] = &[
    "python",
    "numpy",
    "scipy",
    "pandas",
    "scikit-learn",
    "tensorflow",
];

/// Node counts swept (64 cores each → 64..32768 cores).
pub const NODE_COUNTS: &[u32] = &[1, 2, 4, 8, 16, 32, 64, 128, 256, 512];

/// One measured point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImportPoint {
    pub module: String,
    pub nodes: u32,
    pub cores: u32,
    /// Average per-client import latency, seconds.
    pub import_secs: f64,
}

/// Files the bare interpreter touches at startup (stdlib bootstrap).
const INTERPRETER_TOUCHED_FILES: u64 = 150;
/// Bytes the bare interpreter reads at startup.
const INTERPRETER_TOUCHED_BYTES: u64 = 5 << 20;
/// Fraction of a library's installed files its import actually opens
/// (packages lazy-load most submodules).
const LIB_TOUCH_FRACTION: f64 = 0.30;
/// Fraction of a library's installed bytes read at import time.
const LIB_READ_FRACTION: f64 = 0.15;

/// The import footprint of a module: (files touched, bytes read). This is
/// what `import m` actually costs — NOT the full installed closure, since
/// Python imports lazily and the interpreter only reads a bootstrap slice
/// of the stdlib.
pub fn import_footprint(index: &PackageIndex, module: &str) -> (u64, u64) {
    let closure = |name: &str| {
        let mut reqs = RequirementSet::new();
        reqs.add(Requirement::any(name));
        // Cached: the "python" closure is re-requested for every module.
        let r = resolve_cached(index, &reqs).expect("figure-4 modules resolve");
        (
            r.total_files(index).expect("closure exists"),
            r.total_bytes(index).expect("closure exists"),
        )
    };
    let (py_files, py_bytes) = closure("python");
    if module == "python" {
        return (INTERPRETER_TOUCHED_FILES, INTERPRETER_TOUCHED_BYTES);
    }
    let (all_files, all_bytes) = closure(module);
    let lib_files = all_files.saturating_sub(py_files);
    let lib_bytes = all_bytes.saturating_sub(py_bytes);
    (
        INTERPRETER_TOUCHED_FILES + (lib_files as f64 * LIB_TOUCH_FRACTION) as u64,
        INTERPRETER_TOUCHED_BYTES + (lib_bytes as f64 * LIB_READ_FRACTION) as u64,
    )
}

/// Run the sweep.
pub fn run() -> Vec<ImportPoint> {
    let index = PackageIndex::builtin();
    let site = theta();
    let cores_per_node = site.node.resources.cores;
    let mut out = Vec::new();
    for module in MODULES {
        let (files, bytes) = import_footprint(&index, module);
        for &nodes in NODE_COUNTS {
            let mut fs = SharedFs::new(site.fs);
            let clients = (nodes * cores_per_node) as usize;
            let t = fs.import_cost(files, bytes, clients);
            out.push(ImportPoint {
                module: module.to_string(),
                nodes,
                cores: nodes * cores_per_node,
                import_secs: t,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series<'a>(points: &'a [ImportPoint], module: &str) -> Vec<&'a ImportPoint> {
        points.iter().filter(|p| p.module == module).collect()
    }

    #[test]
    fn covers_full_grid() {
        let points = run();
        assert_eq!(points.len(), MODULES.len() * NODE_COUNTS.len());
    }

    #[test]
    fn small_module_flat_tensorflow_grows() {
        let points = run();
        let python = series(&points, "python");
        let tf = series(&points, "tensorflow");
        let ratio = |s: &[&ImportPoint]| s.last().unwrap().import_secs / s[0].import_secs;
        // Python: near-constant (its import set still contends at the very
        // largest scales, but far less than TF).
        // TensorFlow: strong growth — the paper's headline observation.
        assert!(
            ratio(&tf) > 10.0 * ratio(&python),
            "tf growth {} vs python growth {}",
            ratio(&tf),
            ratio(&python)
        );
        assert!(
            ratio(&tf) > 10.0,
            "tf must degrade at scale, got {}",
            ratio(&tf)
        );
    }

    #[test]
    fn cost_ordering_follows_footprint() {
        let points = run();
        // At any fixed scale, heavier packages import slower.
        for &nodes in NODE_COUNTS {
            let at = |m: &str| {
                points
                    .iter()
                    .find(|p| p.module == m && p.nodes == nodes)
                    .unwrap()
                    .import_secs
            };
            assert!(at("tensorflow") > at("numpy"), "at {nodes} nodes");
            assert!(at("numpy") > at("python"), "at {nodes} nodes");
        }
    }

    #[test]
    fn monotone_in_scale() {
        let points = run();
        for module in MODULES {
            let s = series(&points, module);
            for w in s.windows(2) {
                assert!(
                    w[1].import_secs >= w[0].import_secs - 1e-9,
                    "{module}: cost decreased with scale"
                );
            }
        }
    }
}
