//! Figure 5: cumulative TensorFlow import time, direct shared-filesystem
//! access vs. transfer-packed-then-unpack-locally, across sites and scales.
//!
//! "In each case, transferring the environment using the shared file system
//! and unpacking it locally significantly outperforms the use of the shared
//! file system directly."

use lfm_pyenv::environment::Environment;
use lfm_pyenv::index::PackageIndex;
use lfm_pyenv::pack::{pack_cached, PackedEnv};
use lfm_pyenv::requirements::{Requirement, RequirementSet};
use lfm_pyenv::resolve::resolve_cached;
use lfm_simcluster::sharedfs::SharedFs;
use lfm_simcluster::sites::{cori, nd_crc, theta, Site};
use lfm_simcluster::storage::LocalDisk;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Distribution method measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Method {
    /// Import straight from the shared filesystem on every node.
    DirectAccess,
    /// Stream the packed archive to each node, unpack on local disk, import
    /// locally.
    LocalUnpack,
}

impl Method {
    pub fn name(&self) -> &'static str {
        match self {
            Method::DirectAccess => "direct access",
            Method::LocalUnpack => "local unpack",
        }
    }
}

/// One point: cumulative time summed over all importing nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistPoint {
    pub site: String,
    pub method: Method,
    pub nodes: u32,
    /// Sum of per-node load times, seconds (the paper plots cumulative
    /// time, "many hours" at scale).
    pub cumulative_secs: f64,
}

/// Node counts swept.
pub const NODE_COUNTS: &[u32] = &[1, 4, 16, 64, 128, 256, 512];

/// The TensorFlow environment used throughout Figure 5. Resolve and pack go
/// through the process-wide caches: the 42-cell grid in [`run`] re-requests
/// this environment per cell, but only the first call does real work.
fn tf_env() -> (Arc<PackedEnv>, u64, u64) {
    let index = PackageIndex::builtin();
    let mut reqs = RequirementSet::new();
    reqs.add(Requirement::any("tensorflow"));
    let resolution = resolve_cached(&index, &reqs).expect("tensorflow resolves");
    let env =
        Environment::from_resolution("tf", "/envs/tf", &index, &resolution).expect("tf env builds");
    let files = env.total_files();
    let bytes = env.total_bytes();
    (pack_cached(&env), files, bytes)
}

/// Per-node cost at a given scale for one method at one site.
fn node_cost(site: &Site, method: Method, nodes: u32) -> f64 {
    let (packed, files, bytes) = tf_env();
    let mut fs = SharedFs::new(site.fs);
    match method {
        Method::DirectAccess => {
            // Import reads ~15% of the payload but touches every file's
            // metadata.
            fs.import_cost(files, (bytes as f64 * 0.15) as u64, nodes as usize)
        }
        Method::LocalUnpack => {
            let disk = LocalDisk::nvme(u64::MAX);
            let stream = fs.stream_cost(packed.archive_bytes(), nodes as usize);
            let unpack = disk.unpack_cost(
                packed.installed_bytes(),
                packed.file_count(),
                packed.relocation_ops("/scratch"),
            );
            // The subsequent import hits only local disk.
            let local_import = disk.read_cost((bytes as f64 * 0.15) as u64, files);
            stream + unpack + local_import
        }
    }
}

/// Run the full sweep over three sites.
pub fn run() -> Vec<DistPoint> {
    let mut out = Vec::new();
    for site in [theta(), cori(), nd_crc()] {
        for &nodes in NODE_COUNTS {
            for method in [Method::DirectAccess, Method::LocalUnpack] {
                let per_node = node_cost(&site, method, nodes);
                out.push(DistPoint {
                    site: site.name.to_string(),
                    method,
                    nodes,
                    cumulative_secs: per_node * nodes as f64,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_grid() {
        let points = run();
        assert_eq!(points.len(), 3 * NODE_COUNTS.len() * 2);
    }

    #[test]
    fn local_unpack_wins_at_scale_everywhere() {
        let points = run();
        for site in ["Theta (ALCF)", "Cori (NERSC)", "ND-CRC"] {
            let at = |method: Method, nodes: u32| {
                points
                    .iter()
                    .find(|p| p.site == site && p.method == method && p.nodes == nodes)
                    .unwrap()
                    .cumulative_secs
            };
            let nodes = *NODE_COUNTS.last().unwrap();
            assert!(
                at(Method::DirectAccess, nodes) > 3.0 * at(Method::LocalUnpack, nodes),
                "{site}: direct {} vs unpack {}",
                at(Method::DirectAccess, nodes),
                at(Method::LocalUnpack, nodes)
            );
        }
    }

    #[test]
    fn both_methods_grow_with_nodes() {
        // "all three sites show an increase in overhead as the number of
        // nodes increases, irrespective of the distribution method" —
        // cumulative time grows because every node pays at least its own
        // share.
        let points = run();
        for site in ["Theta (ALCF)", "Cori (NERSC)", "ND-CRC"] {
            for method in [Method::DirectAccess, Method::LocalUnpack] {
                let series: Vec<f64> = NODE_COUNTS
                    .iter()
                    .map(|&n| {
                        points
                            .iter()
                            .find(|p| p.site == site && p.method == method && p.nodes == n)
                            .unwrap()
                            .cumulative_secs
                    })
                    .collect();
                for w in series.windows(2) {
                    assert!(w[1] > w[0], "{site} {:?} not growing", method);
                }
            }
        }
    }

    #[test]
    fn direct_at_scale_is_hours_cumulative() {
        // The paper: "On many nodes, cumulative time is many hours."
        let points = run();
        let worst = points
            .iter()
            .filter(|p| p.method == Method::DirectAccess && p.nodes == 512)
            .map(|p| p.cumulative_secs)
            .fold(0.0, f64::max);
        assert!(
            worst > 3600.0,
            "cumulative direct cost {worst} should reach hours"
        );
    }
}
