//! Table III: the evaluation-site inventory.

use lfm_simcluster::sites::{all_sites, Site};

/// The catalog as rendered rows (name, scheduler, filesystem, container
/// tech, node shape, max nodes).
pub fn rows() -> Vec<Vec<String>> {
    all_sites().iter().map(row).collect()
}

fn row(s: &Site) -> Vec<String> {
    vec![
        s.name.to_string(),
        s.scheduler.to_string(),
        s.filesystem.to_string(),
        s.container_tech.to_string(),
        format!(
            "{}c / {} GB",
            s.node.resources.cores,
            s.node.resources.memory_mb / 1024
        ),
        s.max_nodes.to_string(),
    ]
}

/// Header for the rendered table.
pub const HEADERS: &[&str] = &[
    "site",
    "scheduler",
    "filesystem",
    "containers",
    "node",
    "max nodes",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_sites_six_columns() {
        let r = rows();
        assert_eq!(r.len(), 5);
        assert!(r.iter().all(|row| row.len() == HEADERS.len()));
    }

    #[test]
    fn known_entries() {
        let r = rows();
        let theta = r.iter().find(|row| row[0].contains("Theta")).unwrap();
        assert_eq!(theta[2], "Lustre");
        assert_eq!(theta[3], "Singularity");
        let nscc = r.iter().find(|row| row[0].contains("NSCC")).unwrap();
        assert!(nscc[4].contains("24c"));
    }
}
