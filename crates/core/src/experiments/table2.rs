//! Table II: per-package costs to analyze, create, and run environments,
//! plus package size and dependency count.
//!
//! * **analyze** — wall time of *our actual static analyzer* over a
//!   generated source importing the package (measured, not modelled);
//! * **create** — solver work (measured) plus simulated download of the
//!   resolved closure;
//! * **run** — a hello-world import of the environment via the shared
//!   filesystem (the conventional path Table II timed);
//! * **size** — installed closure bytes; **deps** — distributions in the
//!   transitive closure.

use lfm_pyenv::analyze::analyze_source;
use lfm_pyenv::index::PackageIndex;
use lfm_pyenv::requirements::{Requirement, RequirementSet};
use lfm_pyenv::resolve::resolve_with_stats;
use lfm_pyenv::source::SourceBuilder;
use lfm_simcluster::sharedfs::{SharedFs, SharedFsParams};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// The Table II package list: interpreter, NumPy, five high-download
/// SCIENTIFIC/ENGINEERING PyPI packages, and the three applications.
pub const PACKAGES: &[&str] = &[
    "python",
    "numpy",
    "scipy",
    "pandas",
    "scikit-learn",
    "matplotlib",
    "sympy",
    "tensorflow",
    "mxnet",
    "hep-coffea-app",
    "drug-screen-app",
    "gdc-genomic-app",
];

/// One Table II row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PackagingRow {
    pub package: String,
    /// Static-analysis wall time, seconds (real measurement of our parser
    /// + analyzer on a representative source).
    pub analyze_secs: f64,
    /// Environment creation: solve + download, seconds.
    pub create_secs: f64,
    /// Hello-world run via shared filesystem, seconds.
    pub run_secs: f64,
    /// Installed closure size, bytes.
    pub size_bytes: u64,
    /// Transitive dependency count.
    pub dep_count: usize,
}

/// A representative source importing the package (module-name aware).
fn source_for(index: &PackageIndex, package: &str) -> String {
    // The canonical import name is the first module the newest release
    // provides; packages without modules (pure tools) import via subprocess.
    let module = index
        .latest(package)
        .and_then(|r| r.modules.first().cloned())
        .unwrap_or_else(|| "subprocess".to_string());
    SourceBuilder::new()
        .import(&module)
        .parsl_app("hello", &["x"], &[&module], 8, "x")
        .build()
}

/// Run the packaging-cost benchmark.
pub fn run() -> Vec<PackagingRow> {
    let index = PackageIndex::builtin();
    let net_bw = 100e6; // package-channel download bandwidth, bytes/sec
    PACKAGES
        .iter()
        .map(|package| {
            // Analyze: measured on the real analyzer.
            let source = source_for(&index, package);
            let started = Instant::now();
            let analysis = analyze_source(&source).expect("generated source parses");
            let analyze_secs = started.elapsed().as_secs_f64();
            let _ = analysis;

            // Create: measured solve + simulated download.
            let mut reqs = RequirementSet::new();
            reqs.add(Requirement::any(*package));
            let started = Instant::now();
            let (resolution, _stats) =
                resolve_with_stats(&index, &reqs).expect("table-2 packages resolve");
            let solve_secs = started.elapsed().as_secs_f64();
            let size_bytes = resolution.total_bytes(&index).expect("closure exists");
            // Conda downloads compressed artifacts (~2.5:1) then extracts.
            let download_secs = (size_bytes as f64 / 2.5) / net_bw;
            let extract_secs = size_bytes as f64 / 400e6;
            let create_secs = solve_secs + download_secs + extract_secs;

            // Run: hello world importing from the shared FS, single node.
            let files = resolution.total_files(&index).expect("closure exists");
            let mut fs = SharedFs::new(SharedFsParams::lustre_leadership());
            let run_secs = 0.15 + fs.import_cost(files, (size_bytes as f64 * 0.15) as u64, 1);

            PackagingRow {
                package: package.to_string(),
                analyze_secs,
                create_secs,
                run_secs,
                size_bytes,
                dep_count: resolution.len(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_rows_present() {
        let rows = run();
        assert_eq!(rows.len(), PACKAGES.len());
        assert!(rows.iter().all(|r| r.size_bytes > 0 && r.dep_count >= 1));
    }

    #[test]
    fn ml_frameworks_cost_most_among_libraries() {
        let rows = run();
        let get = |p: &str| rows.iter().find(|r| r.package == p).unwrap().clone();
        let tf = get("tensorflow");
        let np = get("numpy");
        let py = get("python");
        assert!(tf.create_secs > np.create_secs);
        assert!(tf.run_secs > np.run_secs);
        assert!(tf.size_bytes > np.size_bytes);
        assert!(tf.dep_count > np.dep_count);
        assert!(np.dep_count > py.dep_count);
    }

    #[test]
    fn applications_have_many_dependencies() {
        let rows = run();
        for app in ["hep-coffea-app", "drug-screen-app", "gdc-genomic-app"] {
            let row = rows.iter().find(|r| r.package == app).unwrap();
            assert!(row.dep_count >= 15, "{app} deps {}", row.dep_count);
        }
    }

    #[test]
    fn analyze_is_fast_and_nonzero() {
        // The analyzer is "lightweight": microseconds to low milliseconds.
        for row in run() {
            assert!(row.analyze_secs > 0.0);
            assert!(
                row.analyze_secs < 0.5,
                "{}: {}",
                row.package,
                row.analyze_secs
            );
        }
    }
}
