//! Table I: time to run "Hello World" under Conda vs. the site's container
//! technology (Singularity on Theta, Shifter on Cori, Docker on EC2).

use lfm_funcx::container::{measure_activation, ActivationMeasurement, ActivationTech};
use serde::{Deserialize, Serialize};

/// One table row: a site with both its measurements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivationRow {
    pub site: String,
    pub conda: ActivationMeasurement,
    pub container: ActivationMeasurement,
}

/// The (site, container tech) pairs the paper measured.
pub const PAIRS: &[(&str, ActivationTech)] = &[
    ("Theta (ALCF)", ActivationTech::Singularity),
    ("Cori (NERSC)", ActivationTech::Shifter),
    ("AWS EC2", ActivationTech::Docker),
];

/// Run the benchmark: `trials` hello-world executions per cell.
pub fn run(trials: u32, seed: u64) -> Vec<ActivationRow> {
    PAIRS
        .iter()
        .enumerate()
        .map(|(i, (site, tech))| ActivationRow {
            site: site.to_string(),
            conda: measure_activation(ActivationTech::Conda, site, trials, seed + i as u64),
            container: measure_activation(*tech, site, trials, seed + 100 + i as u64),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_sites_measured() {
        let rows = run(30, 7);
        assert_eq!(rows.len(), 3);
        let techs: Vec<_> = rows.iter().map(|r| r.container.tech).collect();
        assert!(techs.contains(&ActivationTech::Singularity));
        assert!(techs.contains(&ActivationTech::Shifter));
        assert!(techs.contains(&ActivationTech::Docker));
    }

    #[test]
    fn conda_significantly_faster_everywhere() {
        for row in run(50, 11) {
            assert!(
                row.container.mean_secs > 3.0 * row.conda.mean_secs,
                "{}: container {} vs conda {}",
                row.site,
                row.container.mean_secs,
                row.conda.mean_secs
            );
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let a = run(20, 3);
        let b = run(20, 3);
        assert_eq!(a, b);
    }
}
