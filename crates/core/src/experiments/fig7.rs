//! Figure 7: drug-screening completion time on Theta. Left panel: varying
//! the number of molecule batches on 14 nodes. Right panel: varying worker
//! count with workload proportional to workers.

use crate::experiments::sweep::{point_jobs, run_jobs, standard_strategies, SweepPoint};
use lfm_workloads::drug;

/// Left panel: vary total batches on a fixed 14-worker pool.
pub fn by_tasks(batch_counts: &[u64], seed: u64) -> Vec<SweepPoint> {
    let mut jobs = Vec::new();
    for &n in batch_counts {
        let w = drug::build(n, seed ^ n);
        let strategies = standard_strategies(&w);
        jobs.extend(point_jobs(
            n * 6, // 6 tasks per batch — x-axis is task count
            &w,
            &strategies,
            &|s| drug::master_config(s, seed),
            14,
            drug::worker_spec(),
        ));
    }
    run_jobs(jobs)
}

/// Right panel: vary workers with ~4 tasks per worker.
pub fn by_workers(worker_counts: &[u32], seed: u64) -> Vec<SweepPoint> {
    let mut jobs = Vec::new();
    for &workers in worker_counts {
        // 4 tasks/worker ≈ 2/3 batch per worker (6 tasks per batch).
        let batches = ((4 * workers as u64) / 6).max(1);
        let w = drug::build(batches, seed ^ workers as u64);
        let strategies = standard_strategies(&w);
        jobs.extend(point_jobs(
            workers as u64,
            &w,
            &strategies,
            &|s| drug::master_config(s, seed),
            workers,
            drug::worker_spec(),
        ));
    }
    run_jobs(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::sweep::series;

    #[test]
    fn oracle_first_auto_close_unmanaged_worst() {
        // 120 batches = 720 tasks saturates the 14-node pool; below
        // saturation the strategies converge (as in the paper's left edge).
        let points = by_tasks(&[120], 21);
        let get = |s: &str| series(&points, s)[0].makespan_secs;
        assert!(get("Oracle") <= get("Auto") * 1.1);
        assert!(get("Unmanaged") > get("Oracle") * 1.5);
        assert!(get("Unmanaged") > get("Auto"));
    }

    #[test]
    fn completion_grows_with_batches() {
        let points = by_tasks(&[10, 120], 9);
        let oracle = series(&points, "Oracle");
        assert!(oracle[1].makespan_secs > oracle[0].makespan_secs);
    }

    #[test]
    fn worker_sweep_produces_all_strategies() {
        let points = by_workers(&[4, 8], 13);
        assert_eq!(points.len(), 8);
        for s in ["Oracle", "Auto", "Guess", "Unmanaged"] {
            assert_eq!(series(&points, s).len(), 2, "{s}");
        }
    }
}
