//! Figure 6: HEP completion time under the four strategies, varying task
//! count, worker count, and worker size (2/4/8-core workers with 1 GB
//! memory + 2 GB disk per core).

use crate::experiments::sweep::{point_jobs, run_jobs, standard_strategies, SweepPoint};
use lfm_workloads::hep;

/// Vary the number of analysis tasks on a fixed pool.
pub fn by_tasks(
    task_counts: &[u64],
    workers: u32,
    worker_cores: u32,
    seed: u64,
) -> Vec<SweepPoint> {
    let mut jobs = Vec::new();
    for &n in task_counts {
        let w = hep::build(n, seed ^ n);
        let strategies = standard_strategies(&w);
        jobs.extend(point_jobs(
            n,
            &w,
            &strategies,
            &|s| hep::master_config(s, seed),
            workers,
            hep::worker_spec(worker_cores),
        ));
    }
    run_jobs(jobs)
}

/// Vary the worker count with workload proportional to workers.
pub fn by_workers(
    worker_counts: &[u32],
    tasks_per_worker: u64,
    worker_cores: u32,
    seed: u64,
) -> Vec<SweepPoint> {
    let mut jobs = Vec::new();
    for &workers in worker_counts {
        let n = tasks_per_worker * workers as u64 * worker_cores as u64;
        let w = hep::build(n, seed ^ n);
        let strategies = standard_strategies(&w);
        jobs.extend(point_jobs(
            workers as u64,
            &w,
            &strategies,
            &|s| hep::master_config(s, seed),
            workers,
            hep::worker_spec(worker_cores),
        ));
    }
    run_jobs(jobs)
}

/// Vary the worker size (2/4/8 cores) at fixed tasks and workers.
pub fn by_worker_size(tasks: u64, workers: u32, seed: u64) -> Vec<SweepPoint> {
    let mut jobs = Vec::new();
    for cores in [2u32, 4, 8] {
        let w = hep::build(tasks, seed ^ cores as u64);
        let strategies = standard_strategies(&w);
        jobs.extend(point_jobs(
            cores as u64,
            &w,
            &strategies,
            &|s| hep::master_config(s, seed),
            workers,
            hep::worker_spec(cores),
        ));
    }
    run_jobs(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::sweep::series;

    #[test]
    fn ordering_oracle_auto_guess_unmanaged() {
        let points = by_tasks(&[160], 6, 8, 42);
        let get = |s: &str| series(&points, s)[0].makespan_secs;
        let (oracle, auto, guess, unmanaged) =
            (get("Oracle"), get("Auto"), get("Guess"), get("Unmanaged"));
        // The paper's headline ordering.
        assert!(oracle <= auto * 1.05, "oracle {oracle} vs auto {auto}");
        assert!(auto < guess, "auto {auto} vs guess {guess}");
        assert!(guess < unmanaged, "guess {guess} vs unmanaged {unmanaged}");
        assert!(
            unmanaged > 2.0 * oracle,
            "several-fold gap expected: unmanaged {unmanaged} vs oracle {oracle}"
        );
    }

    #[test]
    fn auto_retries_below_one_percent() {
        // "less than 1% of tasks were retried because of resource
        // exhaustion" — the HEP workload is uniform.
        let points = by_tasks(&[100], 6, 8, 7);
        let auto = series(&points, "Auto")[0];
        assert!(
            auto.retry_fraction < 0.01,
            "retries {}",
            auto.retry_fraction
        );
    }

    #[test]
    fn makespan_grows_with_tasks() {
        let points = by_tasks(&[24, 96], 4, 8, 3);
        for s in ["Oracle", "Auto", "Unmanaged"] {
            let ser = series(&points, s);
            assert!(ser[1].makespan_secs > ser[0].makespan_secs, "{s}");
        }
    }

    #[test]
    fn more_workers_help() {
        let points = by_workers(&[2, 8], 2, 4, 5);
        let oracle = series(&points, "Oracle");
        // Workload scales with workers, so perfect scaling would be flat;
        // accept mild growth but require the big pool to stay in the same
        // regime rather than exploding.
        assert!(oracle[1].makespan_secs < 3.0 * oracle[0].makespan_secs);
    }

    #[test]
    fn io_bound_tasks_limit_big_worker_benefit() {
        // "increasing the degree of parallelism on individual workers is of
        // limited benefit": going 2→8 cores must help Oracle less than 4×.
        let points = by_worker_size(64, 6, 11);
        let oracle = series(&points, "Oracle");
        let t2 = oracle[0].makespan_secs;
        let t8 = oracle[2].makespan_secs;
        assert!(t8 < t2, "bigger workers should still help");
        assert!(t2 / t8 < 4.0, "speedup {:.2} should be sub-linear", t2 / t8);
    }
}
