//! Figure 8: genomic-analysis completion time on NSCC Aspire. Left panel:
//! varying genomes analyzed on 14 nodes. Right panel: varying workers at
//! one genome per worker. The paper notes Auto occasionally *beats* the
//! hand-configured Oracle because VEP's usage depends on the variant count
//! — an artifact this reproduction preserves.

use crate::experiments::sweep::{point_jobs, run_jobs, standard_strategies, SweepPoint};
use lfm_workloads::genomic;

/// Left panel: vary genome count on 14 workers.
pub fn by_genomes(genome_counts: &[u64], seed: u64) -> Vec<SweepPoint> {
    let mut jobs = Vec::new();
    for &n in genome_counts {
        let w = genomic::build(n, seed ^ n);
        let strategies = standard_strategies(&w);
        jobs.extend(point_jobs(
            n,
            &w,
            &strategies,
            &|s| genomic::master_config(s, seed),
            14,
            genomic::worker_spec(),
        ));
    }
    run_jobs(jobs)
}

/// Right panel: one genome per worker, 1→16 workers.
pub fn by_workers(worker_counts: &[u32], seed: u64) -> Vec<SweepPoint> {
    let mut jobs = Vec::new();
    for &workers in worker_counts {
        let w = genomic::build(workers as u64, seed ^ workers as u64);
        let strategies = standard_strategies(&w);
        jobs.extend(point_jobs(
            workers as u64,
            &w,
            &strategies,
            &|s| genomic::master_config(s, seed),
            workers,
            genomic::worker_spec(),
        ));
    }
    run_jobs(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::sweep::series;

    #[test]
    fn managed_strategies_beat_unmanaged() {
        // 40 genomes on 14 workers: beyond saturation, where management
        // pays (small runs converge, matching the paper's left edge).
        let points = by_genomes(&[40], 17);
        let get = |s: &str| series(&points, s)[0].makespan_secs;
        assert!(get("Unmanaged") > get("Oracle"));
        assert!(get("Unmanaged") > get("Auto"));
    }

    #[test]
    fn auto_is_competitive_with_oracle() {
        // VEP's heavy tail costs the Oracle retries too; Auto must land
        // within a modest factor (and sometimes wins).
        let points = by_genomes(&[10], 23);
        let oracle = series(&points, "Oracle")[0].makespan_secs;
        let auto = series(&points, "Auto")[0].makespan_secs;
        assert!(auto < 1.6 * oracle, "auto {auto} vs oracle {oracle}");
    }

    #[test]
    fn completion_grows_with_genomes() {
        let points = by_genomes(&[4, 16], 29);
        let auto = series(&points, "Auto");
        assert!(auto[1].makespan_secs > auto[0].makespan_secs);
    }

    #[test]
    fn one_genome_per_worker_scales_flat_for_oracle() {
        let points = by_workers(&[2, 8], 31);
        let oracle = series(&points, "Oracle");
        // Proportional workload on proportional workers: near-flat.
        assert!(oracle[1].makespan_secs < 2.0 * oracle[0].makespan_secs);
    }
}
