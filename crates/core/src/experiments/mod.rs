//! One module per paper table/figure (see DESIGN.md's experiment index).

pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod sweep;
pub mod table1;
pub mod table2;
pub mod table3;
