//! Shared machinery for the Figure 6–9 strategy sweeps.

use lfm_simcluster::node::NodeSpec;
use lfm_workloads::common::Workload;
use lfm_workqueue::allocate::Strategy;
use lfm_workqueue::master::{run_workload, MasterConfig};
use serde::{Deserialize, Serialize};

/// One plotted point: x-value (tasks or workers), strategy, completion time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Meaning depends on the sweep: task count or worker count.
    pub x: u64,
    pub strategy: String,
    pub makespan_secs: f64,
    pub retry_fraction: f64,
    pub core_efficiency: f64,
}

/// The standard four-strategy set for a workload (Figures 6–8).
pub fn standard_strategies(w: &Workload) -> Vec<Strategy> {
    vec![
        w.oracle_strategy(),
        Strategy::Auto(Default::default()),
        w.guess_strategy(),
        Strategy::Unmanaged,
    ]
}

/// Run every strategy over one workload instance.
pub fn run_point(
    x: u64,
    workload: &Workload,
    strategies: &[Strategy],
    config_for: &dyn Fn(Strategy) -> MasterConfig,
    workers: u32,
    spec: NodeSpec,
) -> Vec<SweepPoint> {
    strategies
        .iter()
        .map(|s| {
            let cfg = config_for(s.clone());
            let report = run_workload(&cfg, workload.tasks.clone(), workers, spec);
            assert_eq!(
                report.abandoned_tasks, 0,
                "{}: workload must complete (x={x})",
                s.name()
            );
            SweepPoint {
                x,
                strategy: s.name().to_string(),
                makespan_secs: report.makespan_secs,
                retry_fraction: report.retry_fraction(),
                core_efficiency: report.core_efficiency(),
            }
        })
        .collect()
}

/// Fetch one strategy's series from a point cloud, ordered by x.
pub fn series<'a>(points: &'a [SweepPoint], strategy: &str) -> Vec<&'a SweepPoint> {
    let mut s: Vec<&SweepPoint> =
        points.iter().filter(|p| p.strategy == strategy).collect();
    s.sort_by_key(|p| p.x);
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfm_workloads::hep;

    #[test]
    fn run_point_covers_all_strategies() {
        let w = hep::build(12, 1);
        let strategies = standard_strategies(&w);
        let points = run_point(
            12,
            &w,
            &strategies,
            &|s| MasterConfig::new(s).with_seed(1),
            4,
            hep::worker_spec(8),
        );
        assert_eq!(points.len(), 4);
        let names: Vec<_> = points.iter().map(|p| p.strategy.as_str()).collect();
        assert_eq!(names, vec!["Oracle", "Auto", "Guess", "Unmanaged"]);
        assert!(points.iter().all(|p| p.makespan_secs > 0.0));
    }

    #[test]
    fn series_sorted_by_x() {
        let mk = |x, s: &str| SweepPoint {
            x,
            strategy: s.into(),
            makespan_secs: 1.0,
            retry_fraction: 0.0,
            core_efficiency: 1.0,
        };
        let points = vec![mk(30, "Auto"), mk(10, "Auto"), mk(20, "Oracle")];
        let s = series(&points, "Auto");
        assert_eq!(s.iter().map(|p| p.x).collect::<Vec<_>>(), vec![10, 30]);
    }
}
