//! Shared machinery for the Figure 6–9 strategy sweeps.
//!
//! A sweep decomposes into independent [`SweepJob`]s — one per
//! (x-value, strategy) pair — each carrying everything its simulation needs.
//! [`run_jobs`] fans them across cores via [`crate::parallel`]; because every
//! job is seeded and self-contained, the output is byte-identical to the
//! serial [`run_point`] loop it generalizes.

use lfm_simcluster::node::NodeSpec;
use lfm_workloads::common::Workload;
use lfm_workqueue::allocate::Strategy;
use lfm_workqueue::master::{run_workload, MasterConfig};
use lfm_workqueue::task::TaskSpec;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One plotted point: x-value (tasks or workers), strategy, completion time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Meaning depends on the sweep: task count or worker count.
    pub x: u64,
    pub strategy: String,
    pub makespan_secs: f64,
    pub retry_fraction: f64,
    pub core_efficiency: f64,
}

/// The standard four-strategy set for a workload (Figures 6–8).
pub fn standard_strategies(w: &Workload) -> Vec<Strategy> {
    vec![
        w.oracle_strategy(),
        Strategy::Auto(Default::default()),
        w.guess_strategy(),
        Strategy::Unmanaged,
    ]
}

/// One self-contained simulation: a single (x-value, strategy) cell of a
/// sweep grid. Tasks are shared via `Arc` so the four strategies of a grid
/// point don't quadruple the workload's memory footprint.
#[derive(Debug, Clone)]
pub struct SweepJob {
    pub x: u64,
    pub strategy: Strategy,
    pub tasks: Arc<Vec<TaskSpec>>,
    pub config: MasterConfig,
    pub workers: u32,
    pub spec: NodeSpec,
}

/// Decompose one grid point (one workload, all strategies) into jobs.
pub fn point_jobs(
    x: u64,
    workload: &Workload,
    strategies: &[Strategy],
    config_for: &dyn Fn(Strategy) -> MasterConfig,
    workers: u32,
    spec: NodeSpec,
) -> Vec<SweepJob> {
    let tasks = Arc::new(workload.tasks.clone());
    strategies
        .iter()
        .map(|s| SweepJob {
            x,
            strategy: s.clone(),
            tasks: Arc::clone(&tasks),
            config: config_for(s.clone()),
            workers,
            spec,
        })
        .collect()
}

/// Pre-interned names for the per-job sweep span (one emission per grid
/// point, across every fig6-fig9 runner).
struct SweepKeys {
    run_job: lfm_telemetry::Name,
    cat_sweep: lfm_telemetry::Name,
    a_strategy: lfm_telemetry::Name,
    a_x: lfm_telemetry::Name,
}

fn sk() -> &'static SweepKeys {
    static KEYS: std::sync::OnceLock<SweepKeys> = std::sync::OnceLock::new();
    KEYS.get_or_init(|| SweepKeys {
        run_job: lfm_telemetry::Name::intern("run_job"),
        cat_sweep: lfm_telemetry::Name::intern("sweep"),
        a_strategy: lfm_telemetry::Name::intern("strategy"),
        a_x: lfm_telemetry::Name::intern("x"),
    })
}

/// Execute one job. Panics if the simulated workload fails to complete,
/// exactly as the serial runners always have.
pub fn run_job(job: SweepJob) -> SweepPoint {
    let mut span = lfm_telemetry::global().wall_span_key(sk().run_job, sk().cat_sweep);
    span.attr_key(sk().a_strategy, job.strategy.name());
    span.attr_key(sk().a_x, job.x);
    let report = run_workload(
        &job.config,
        job.tasks.as_ref().clone(),
        job.workers,
        job.spec,
    );
    assert_eq!(
        report.abandoned_tasks,
        0,
        "{}: workload must complete (x={})",
        job.strategy.name(),
        job.x
    );
    SweepPoint {
        x: job.x,
        strategy: job.strategy.name().to_string(),
        makespan_secs: report.makespan_secs,
        retry_fraction: report.retry_fraction(),
        core_efficiency: report.core_efficiency(),
    }
}

/// Run a batch of jobs across all available cores, output in job order.
pub fn run_jobs(jobs: Vec<SweepJob>) -> Vec<SweepPoint> {
    crate::parallel::run_sweep_parallel(jobs, |job| vec![run_job(job)])
}

/// Run every strategy over one workload instance, serially. Kept as the
/// reference implementation the parallel engine is tested against.
pub fn run_point(
    x: u64,
    workload: &Workload,
    strategies: &[Strategy],
    config_for: &dyn Fn(Strategy) -> MasterConfig,
    workers: u32,
    spec: NodeSpec,
) -> Vec<SweepPoint> {
    point_jobs(x, workload, strategies, config_for, workers, spec)
        .into_iter()
        .map(run_job)
        .collect()
}

/// Fetch one strategy's series from a point cloud, ordered by x.
pub fn series<'a>(points: &'a [SweepPoint], strategy: &str) -> Vec<&'a SweepPoint> {
    let mut s: Vec<&SweepPoint> = points.iter().filter(|p| p.strategy == strategy).collect();
    s.sort_by_key(|p| p.x);
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfm_workloads::hep;

    #[test]
    fn run_point_covers_all_strategies() {
        let w = hep::build(12, 1);
        let strategies = standard_strategies(&w);
        let points = run_point(
            12,
            &w,
            &strategies,
            &|s| MasterConfig::new(s).with_seed(1),
            4,
            hep::worker_spec(8),
        );
        assert_eq!(points.len(), 4);
        let names: Vec<_> = points.iter().map(|p| p.strategy.as_str()).collect();
        assert_eq!(names, vec!["Oracle", "Auto", "Guess", "Unmanaged"]);
        assert!(points.iter().all(|p| p.makespan_secs > 0.0));
    }

    #[test]
    fn series_sorted_by_x() {
        let mk = |x, s: &str| SweepPoint {
            x,
            strategy: s.into(),
            makespan_secs: 1.0,
            retry_fraction: 0.0,
            core_efficiency: 1.0,
        };
        let points = vec![mk(30, "Auto"), mk(10, "Auto"), mk(20, "Oracle")];
        let s = series(&points, "Auto");
        assert_eq!(s.iter().map(|p| p.x).collect::<Vec<_>>(), vec![10, 30]);
    }
}
