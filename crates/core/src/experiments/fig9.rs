//! Figure 9: funcX image-classification benchmark — LFM (Auto, Guess)
//! vs. non-LFM containers (Unmanaged), varying tasks and workers.

use crate::experiments::sweep::SweepPoint;
use lfm_funcx::container::ActivationTech;
use lfm_funcx::registry::FunctionRegistry;
use lfm_funcx::service::{Endpoint, ExecutionMode, FuncXService};
use lfm_workloads::faas;
use lfm_workqueue::allocate::Strategy;

/// The three Figure 9 configurations.
fn modes() -> Vec<(&'static str, ExecutionMode)> {
    vec![
        ("Auto", ExecutionMode::Lfm(Strategy::Auto(Default::default()))),
        ("Guess", ExecutionMode::Lfm(Strategy::Guess(faas::guess()))),
        ("Unmanaged", ExecutionMode::Container(ActivationTech::Singularity)),
    ]
}

fn run_batch(n_tasks: u64, workers: u32, seed: u64) -> Vec<SweepPoint> {
    let svc = FuncXService::new();
    let mut reg = FunctionRegistry::new();
    let id = reg.register("classify_image", faas::source()).expect("source registers");
    let ep = Endpoint::new("hpc-endpoint", faas::worker_spec(), workers);
    modes()
        .into_iter()
        .map(|(name, mode)| {
            let report = svc
                .run_batch(
                    &reg,
                    id,
                    n_tasks,
                    &ep,
                    &mode,
                    faas::resnet_profile(),
                    faas::image_bytes(),
                    seed,
                )
                .expect("funcx batch runs");
            assert_eq!(report.abandoned_tasks, 0, "{name}");
            SweepPoint {
                x: n_tasks,
                strategy: name.to_string(),
                makespan_secs: report.makespan_secs,
                retry_fraction: report.retry_fraction(),
                core_efficiency: report.core_efficiency(),
            }
        })
        .collect()
}

/// Left panel: vary task count on a fixed pool.
pub fn by_tasks(task_counts: &[u64], workers: u32, seed: u64) -> Vec<SweepPoint> {
    task_counts.iter().flat_map(|&n| run_batch(n, workers, seed ^ n)).collect()
}

/// Right panel: vary workers with tasks proportional to workers.
pub fn by_workers(worker_counts: &[u32], tasks_per_worker: u64, seed: u64) -> Vec<SweepPoint> {
    worker_counts
        .iter()
        .flat_map(|&w| {
            let mut points = run_batch(tasks_per_worker * w as u64, w, seed ^ w as u64);
            for p in &mut points {
                p.x = w as u64;
            }
            points
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::sweep::series;

    #[test]
    fn lfm_auto_near_oracle_beats_unmanaged() {
        let points = by_tasks(&[64], 4, 3);
        let get = |s: &str| series(&points, s)[0].makespan_secs;
        assert!(
            get("Unmanaged") > 2.0 * get("Auto"),
            "unmanaged {} vs auto {}",
            get("Unmanaged"),
            get("Auto")
        );
        assert!(get("Auto") <= get("Guess") * 1.05);
    }

    #[test]
    fn three_lines_per_point() {
        let points = by_workers(&[2, 4], 8, 5);
        assert_eq!(points.len(), 6);
        for s in ["Auto", "Guess", "Unmanaged"] {
            assert_eq!(series(&points, s).len(), 2, "{s}");
        }
    }

    #[test]
    fn makespan_grows_with_tasks() {
        let points = by_tasks(&[32, 128], 4, 7);
        for s in ["Auto", "Unmanaged"] {
            let ser = series(&points, s);
            assert!(ser[1].makespan_secs > ser[0].makespan_secs, "{s}");
        }
    }
}
