//! Figure 9: funcX image-classification benchmark — LFM (Auto, Guess)
//! vs. non-LFM containers (Unmanaged), varying tasks and workers.

use crate::experiments::sweep::SweepPoint;
use crate::parallel::run_sweep_parallel;
use lfm_funcx::container::ActivationTech;
use lfm_funcx::registry::FunctionRegistry;
use lfm_funcx::service::{Endpoint, ExecutionMode, FuncXService};
use lfm_workloads::faas;
use lfm_workqueue::allocate::Strategy;

/// The three Figure 9 configurations.
fn modes() -> Vec<(&'static str, ExecutionMode)> {
    vec![
        (
            "Auto",
            ExecutionMode::Lfm(Strategy::Auto(Default::default())),
        ),
        ("Guess", ExecutionMode::Lfm(Strategy::Guess(faas::guess()))),
        (
            "Unmanaged",
            ExecutionMode::Container(ActivationTech::Singularity),
        ),
    ]
}

/// One (batch-size, mode) cell of the Figure 9 grid. The service, registry,
/// and endpoint are rebuilt inside the job so each simulation is fully
/// self-contained and can run on any thread.
struct BatchJob {
    x: u64,
    name: &'static str,
    mode: ExecutionMode,
    n_tasks: u64,
    workers: u32,
    seed: u64,
}

fn run_batch_job(job: BatchJob) -> SweepPoint {
    let svc = FuncXService::new();
    let mut reg = FunctionRegistry::new();
    let id = reg
        .register("classify_image", faas::source())
        .expect("source registers");
    let ep = Endpoint::new("hpc-endpoint", faas::worker_spec(), job.workers);
    let report = svc
        .run_batch(
            &reg,
            id,
            job.n_tasks,
            &ep,
            &job.mode,
            faas::resnet_profile(),
            faas::image_bytes(),
            job.seed,
        )
        .expect("funcx batch runs");
    assert_eq!(report.abandoned_tasks, 0, "{}", job.name);
    SweepPoint {
        x: job.x,
        strategy: job.name.to_string(),
        makespan_secs: report.makespan_secs,
        retry_fraction: report.retry_fraction(),
        core_efficiency: report.core_efficiency(),
    }
}

fn batch_jobs(x: u64, n_tasks: u64, workers: u32, seed: u64) -> Vec<BatchJob> {
    modes()
        .into_iter()
        .map(|(name, mode)| BatchJob {
            x,
            name,
            mode,
            n_tasks,
            workers,
            seed,
        })
        .collect()
}

/// Left panel: vary task count on a fixed pool.
pub fn by_tasks(task_counts: &[u64], workers: u32, seed: u64) -> Vec<SweepPoint> {
    let jobs: Vec<BatchJob> = task_counts
        .iter()
        .flat_map(|&n| batch_jobs(n, n, workers, seed ^ n))
        .collect();
    run_sweep_parallel(jobs, |job| vec![run_batch_job(job)])
}

/// Right panel: vary workers with tasks proportional to workers.
pub fn by_workers(worker_counts: &[u32], tasks_per_worker: u64, seed: u64) -> Vec<SweepPoint> {
    let jobs: Vec<BatchJob> = worker_counts
        .iter()
        .flat_map(|&w| batch_jobs(w as u64, tasks_per_worker * w as u64, w, seed ^ w as u64))
        .collect();
    run_sweep_parallel(jobs, |job| vec![run_batch_job(job)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::sweep::series;

    #[test]
    fn lfm_auto_near_oracle_beats_unmanaged() {
        let points = by_tasks(&[64], 4, 3);
        let get = |s: &str| series(&points, s)[0].makespan_secs;
        assert!(
            get("Unmanaged") > 2.0 * get("Auto"),
            "unmanaged {} vs auto {}",
            get("Unmanaged"),
            get("Auto")
        );
        assert!(get("Auto") <= get("Guess") * 1.05);
    }

    #[test]
    fn three_lines_per_point() {
        let points = by_workers(&[2, 4], 8, 5);
        assert_eq!(points.len(), 6);
        for s in ["Auto", "Guess", "Unmanaged"] {
            assert_eq!(series(&points, s).len(), 2, "{s}");
        }
    }

    #[test]
    fn makespan_grows_with_tasks() {
        let points = by_tasks(&[32, 128], 4, 7);
        for s in ["Auto", "Unmanaged"] {
            let ser = series(&points, s);
            assert!(ser[1].makespan_secs > ser[0].makespan_secs, "{s}");
        }
    }
}
