//! Distribution planning: which environment-distribution method to use for
//! a given deployment (§V-D weighs three methods; this module decides).

use lfm_pyenv::pack::PackedEnv;
use lfm_simcluster::sharedfs::SharedFs;
use lfm_simcluster::sites::Site;
use lfm_simcluster::storage::LocalDisk;
use lfm_workqueue::master::DistMode;
use serde::{Deserialize, Serialize};

/// The planner's estimate for one option.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanEstimate {
    pub mode: DistMode,
    /// Estimated total environment-loading cost over the run, seconds.
    pub total_secs: f64,
}

/// Fraction of an environment's installed bytes actually read by `import`:
/// Python lazy-loads most submodules, so an import touches every file's
/// metadata but streams only a slice of the payload.
const IMPORT_READ_FRACTION: f64 = 0.15;

/// Estimate total environment-loading cost for both methods and pick the
/// cheaper. `tasks_per_worker` matters because direct access pays per task
/// while packed transfer pays once per worker.
pub fn plan(
    site: &Site,
    packed: &PackedEnv,
    env_files: u64,
    env_bytes: u64,
    workers: u32,
    tasks_per_worker: u64,
) -> (DistMode, Vec<PlanEstimate>) {
    let n = workers as usize;
    let import_bytes = (env_bytes as f64 * IMPORT_READ_FRACTION) as u64;
    // One estimator serves both estimates: its cost methods only record
    // served traffic, so the two what-if queries don't perturb each other.
    let mut fs = SharedFs::new(site.fs);
    // Direct: every task on every worker re-imports.
    let per_import = fs.import_cost(env_files, import_bytes, n);
    let direct_total = per_import * workers as f64 * tasks_per_worker as f64;
    // Packed: one stream + unpack per worker, then local imports.
    let disk = LocalDisk::nvme(u64::MAX);
    let stream = fs.stream_cost(packed.archive_bytes(), n);
    let unpack = disk.unpack_cost(
        packed.installed_bytes(),
        packed.file_count(),
        packed.relocation_ops("/scratch"),
    );
    let local = disk.read_cost(import_bytes, env_files);
    let packed_total =
        (stream + unpack) * workers as f64 + local * workers as f64 * tasks_per_worker as f64;

    let estimates = vec![
        PlanEstimate {
            mode: DistMode::SharedFsDirect,
            total_secs: direct_total,
        },
        PlanEstimate {
            mode: DistMode::PackedTransfer,
            total_secs: packed_total,
        },
    ];
    let best = estimates
        .iter()
        .min_by(|a, b| a.total_secs.total_cmp(&b.total_secs))
        .expect("two candidates")
        .mode;
    (best, estimates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfm_pyenv::environment::Environment;
    use lfm_pyenv::index::PackageIndex;
    use lfm_pyenv::requirements::{Requirement, RequirementSet};
    use lfm_pyenv::resolve::resolve;
    use lfm_simcluster::sites::theta;

    fn tf_packed() -> (PackedEnv, u64, u64) {
        let index = PackageIndex::builtin();
        let mut reqs = RequirementSet::new();
        reqs.add(Requirement::any("tensorflow"));
        let r = resolve(&index, &reqs).unwrap();
        let env = Environment::from_resolution("tf", "/envs/tf", &index, &r).unwrap();
        (PackedEnv::pack(&env), env.total_files(), env.total_bytes())
    }

    #[test]
    fn packed_wins_for_many_tasks_at_scale() {
        let (packed, files, bytes) = tf_packed();
        let (best, _) = plan(&theta(), &packed, files, bytes, 256, 50);
        assert_eq!(best, DistMode::PackedTransfer);
    }

    #[test]
    fn direct_can_win_for_a_single_tiny_run() {
        // One worker, one task: paying the pack/unpack machinery for a
        // single import is not worth it on an idle filesystem.
        let (packed, files, bytes) = tf_packed();
        let (_, estimates) = plan(&theta(), &packed, files, bytes, 1, 1);
        let direct = estimates
            .iter()
            .find(|e| e.mode == DistMode::SharedFsDirect)
            .unwrap()
            .total_secs;
        let packed_cost = estimates
            .iter()
            .find(|e| e.mode == DistMode::PackedTransfer)
            .unwrap()
            .total_secs;
        // Either may win depending on unpack cost vs. metadata cost, but
        // the two must at least be the same order of magnitude here —
        // the packed advantage should *emerge from scale*, not be an
        // artifact of the single-node case.
        assert!(direct < 10.0 * packed_cost);
    }

    #[test]
    fn estimates_cover_both_modes() {
        let (packed, files, bytes) = tf_packed();
        let (_, estimates) = plan(&theta(), &packed, files, bytes, 8, 4);
        assert_eq!(estimates.len(), 2);
        assert!(estimates.iter().all(|e| e.total_secs > 0.0));
    }
}
