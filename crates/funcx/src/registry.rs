//! Function registry — funcX's serialized-function store.
//!
//! funcX users register functions once and invoke them by id; the service
//! ships the serialized function (and its dependency list) to endpoints
//! (§VI-C4). Registration here captures the mini-Python source, the
//! serialized form, and the statically-analyzed dependency list.

use lfm_pyenv::analyze::analyze_source;
use lfm_pyenv::error::Result as PyResult;
use lfm_pyenv::pack::fnv1a;
use lfm_pyenv::pickle::PyValue;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Opaque function identifier (content-addressed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FunctionId(pub u64);

impl std::fmt::Display for FunctionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fx-{:016x}", self.0)
    }
}

/// A registered function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegisteredFunction {
    pub id: FunctionId,
    pub name: String,
    pub source: String,
    /// Serialized ("pickled") function payload shipped to endpoints.
    pub payload: Vec<u8>,
    /// Top-level modules the function imports, from static analysis.
    pub dependencies: Vec<String>,
}

/// The registry.
#[derive(Debug, Default, Clone)]
pub struct FunctionRegistry {
    functions: BTreeMap<FunctionId, RegisteredFunction>,
}

impl FunctionRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a function: analyze its source, serialize it, store it.
    /// Re-registering identical source returns the same id.
    pub fn register(&mut self, name: &str, source: &str) -> PyResult<FunctionId> {
        let analysis = analyze_source(source)?;
        let id = FunctionId(fnv1a(source.as_bytes()) ^ fnv1a(name.as_bytes()));
        let payload = PyValue::Dict(vec![
            (PyValue::Str("name".into()), PyValue::Str(name.into())),
            (PyValue::Str("source".into()), PyValue::Str(source.into())),
        ])
        .dumps()
        .to_vec();
        let dependencies = analysis
            .top_level_modules()
            .into_iter()
            .map(str::to_string)
            .collect();
        self.functions.insert(
            id,
            RegisteredFunction {
                id,
                name: name.to_string(),
                source: source.to_string(),
                payload,
                dependencies,
            },
        );
        Ok(id)
    }

    pub fn get(&self, id: FunctionId) -> Option<&RegisteredFunction> {
        self.functions.get(&id)
    }

    pub fn len(&self) -> usize {
        self.functions.len()
    }

    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &RegisteredFunction> {
        self.functions.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfm_pyenv::source::funcx_classify_source;

    #[test]
    fn register_and_fetch() {
        let mut reg = FunctionRegistry::new();
        let id = reg
            .register("classify_image", funcx_classify_source())
            .unwrap();
        let f = reg.get(id).unwrap();
        assert_eq!(f.name, "classify_image");
        assert!(f.dependencies.contains(&"tensorflow".to_string()));
        assert!(f.dependencies.contains(&"PIL".to_string()));
        assert!(!f.payload.is_empty());
    }

    #[test]
    fn identical_source_same_id() {
        let mut reg = FunctionRegistry::new();
        let a = reg.register("f", "def f():\n    return 1\n").unwrap();
        let b = reg.register("f", "def f():\n    return 1\n").unwrap();
        assert_eq!(a, b);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn different_source_different_id() {
        let mut reg = FunctionRegistry::new();
        let a = reg.register("f", "def f():\n    return 1\n").unwrap();
        let b = reg.register("f", "def f():\n    return 2\n").unwrap();
        assert_ne!(a, b);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn bad_source_rejected() {
        let mut reg = FunctionRegistry::new();
        assert!(reg.register("broken", "def broken(:\n").is_err());
        assert!(reg.is_empty());
    }

    #[test]
    fn payload_roundtrips_through_pickle() {
        let mut reg = FunctionRegistry::new();
        let id = reg.register("g", "def g(x):\n    return x\n").unwrap();
        let f = reg.get(id).unwrap();
        let v = PyValue::loads(&f.payload).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("g"));
    }

    #[test]
    fn same_source_different_name_different_id() {
        // The id is content-addressed over (name, source): registering the
        // same body under two names must yield two distinct functions.
        let mut reg = FunctionRegistry::new();
        let src = "def f():\n    return 1\n";
        let a = reg.register("alpha", src).unwrap();
        let b = reg.register("beta", src).unwrap();
        assert_ne!(a, b);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.get(a).unwrap().name, "alpha");
        assert_eq!(reg.get(b).unwrap().name, "beta");
    }

    #[test]
    fn reregistration_is_idempotent_not_duplicating() {
        let mut reg = FunctionRegistry::new();
        let src = funcx_classify_source();
        let first = reg.register("classify_image", src).unwrap();
        let before = reg.get(first).unwrap().clone();
        let second = reg.register("classify_image", src).unwrap();
        assert_eq!(first, second);
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.get(second).unwrap(), &before, "entry must be stable");
    }

    #[test]
    fn dependencies_reflect_only_imported_modules() {
        let mut reg = FunctionRegistry::new();
        let id = reg
            .register(
                "h",
                "def h(x):\n    import numpy\n    return numpy.sqrt(x)\n",
            )
            .unwrap();
        let deps = &reg.get(id).unwrap().dependencies;
        assert!(deps.contains(&"numpy".to_string()), "{deps:?}");
        assert!(
            !deps.contains(&"tensorflow".to_string()),
            "unimported module leaked into deps: {deps:?}"
        );
    }

    #[test]
    fn iter_yields_registered_functions_in_stable_order() {
        let mut reg = FunctionRegistry::new();
        let a = reg.register("a", "def a():\n    return 1\n").unwrap();
        let b = reg.register("b", "def b():\n    return 2\n").unwrap();
        let ids: Vec<FunctionId> = reg.iter().map(|f| f.id).collect();
        let mut expect = vec![a, b];
        expect.sort();
        assert_eq!(ids, expect, "iteration must follow id order");
        assert_eq!(reg.iter().count(), 2);
    }

    #[test]
    fn unknown_id_lookup_is_none() {
        let reg = FunctionRegistry::new();
        assert!(reg.get(FunctionId(0xdeadbeef)).is_none());
    }
}
