//! # lfm-funcx — FaaS integration
//!
//! The funcX tier of the evaluation (§VI-C4): a function registry storing
//! serialized functions with statically-analyzed dependency lists, endpoint
//! descriptions, container activation-cost models (Table I), and a service
//! that executes invocation batches either inside containers (conventional
//! FaaS) or inside LFMs with automatic resource labeling.

pub mod container;
pub mod registry;
pub mod service;

pub mod prelude {
    pub use crate::container::{
        measure_activation, ActivationMeasurement, ActivationModel, ActivationTech,
    };
    pub use crate::registry::{FunctionId, FunctionRegistry, RegisteredFunction};
    pub use crate::service::{Endpoint, ExecutionMode, FuncXService};
}
