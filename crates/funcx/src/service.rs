//! The funcX service: registered functions executed on endpoints, with the
//! LFM execution model swapped in for containers (§VI-C4).
//!
//! "When functions are to be executed funcX simply passes the serialized
//! function (and its list of dependencies) to our system, using LFMs in
//! place of containers." Static analysis and environment distribution are
//! provided by funcX itself here (the dependency list attached at
//! registration), so the endpoint only prepares the environment file and
//! runs the batch.

use crate::container::{ActivationModel, ActivationTech};
use crate::registry::{FunctionId, FunctionRegistry};
use lfm_monitor::sim::SimTaskProfile;
use lfm_pyenv::environment::Environment;
use lfm_pyenv::index::PackageIndex;
use lfm_pyenv::pack::PackedEnv;
use lfm_pyenv::requirements::{Requirement, RequirementSet};
use lfm_pyenv::resolve::resolve;
use lfm_simcluster::node::NodeSpec;
use lfm_simcluster::rng::SimRng;
use lfm_workqueue::allocate::Strategy;
use lfm_workqueue::files::FileRef;
use lfm_workqueue::master::{run_workload, MasterConfig, RunReport};
use lfm_workqueue::task::{TaskId, TaskSpec};
use serde::{Deserialize, Serialize};

/// Where a batch executes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Endpoint {
    pub name: String,
    pub node: NodeSpec,
    pub workers: u32,
}

impl Endpoint {
    pub fn new(name: impl Into<String>, node: NodeSpec, workers: u32) -> Self {
        Endpoint {
            name: name.into(),
            node,
            workers,
        }
    }
}

/// How the endpoint contains function invocations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ExecutionMode {
    /// Lightweight function monitors with the given allocation strategy.
    Lfm(Strategy),
    /// Conventional containers: per-invocation cold-start activation, no
    /// function-level resource management (whole-worker allocations).
    Container(ActivationTech),
    /// Containers with reuse: the first invocation on each worker pays the
    /// cold start, later ones only the warm overhead. Still unmanaged.
    ContainerWarm(ActivationTech),
}

/// The service.
pub struct FuncXService {
    pub index: PackageIndex,
}

impl Default for FuncXService {
    fn default() -> Self {
        Self::new()
    }
}

impl FuncXService {
    pub fn new() -> Self {
        FuncXService {
            index: PackageIndex::builtin(),
        }
    }

    /// Build the packed-environment input file for a registered function
    /// from its dependency list (funcX supplies the list; we resolve+pack).
    pub fn environment_for(
        &self,
        registry: &FunctionRegistry,
        id: FunctionId,
    ) -> Result<FileRef, String> {
        let f = registry
            .get(id)
            .ok_or_else(|| format!("unknown function {id}"))?;
        let mut reqs = RequirementSet::new();
        reqs.add(Requirement::any("python"));
        for m in &f.dependencies {
            let dist = self.index.dist_for_module(m).map_err(|e| e.to_string())?;
            reqs.add(Requirement::any(dist));
        }
        let resolution = resolve(&self.index, &reqs).map_err(|e| e.to_string())?;
        let env = Environment::from_resolution(
            format!("{}-env", f.name),
            format!("/envs/{}", f.name),
            &self.index,
            &resolution,
        )
        .map_err(|e| e.to_string())?;
        let packed = PackedEnv::pack(&env);
        Ok(FileRef::environment(
            format!("{}-env.tar.gz", f.name),
            packed.archive_bytes(),
            packed.installed_bytes(),
            packed.file_count(),
            packed.relocation_ops("/scratch"),
        ))
    }

    /// Execute `n_tasks` invocations of `id` on `endpoint` under `mode`.
    ///
    /// `profile` is the function's true per-invocation behaviour (e.g. the
    /// Keras-ResNet classification task). Container mode adds a sampled
    /// activation latency to every invocation and disables function-level
    /// management.
    #[allow(clippy::too_many_arguments)]
    pub fn run_batch(
        &self,
        registry: &FunctionRegistry,
        id: FunctionId,
        n_tasks: u64,
        endpoint: &Endpoint,
        mode: &ExecutionMode,
        profile: SimTaskProfile,
        input_bytes: u64,
        seed: u64,
    ) -> Result<RunReport, String> {
        let f = registry
            .get(id)
            .ok_or_else(|| format!("unknown function {id}"))?;
        let env_file = self.environment_for(registry, id)?;
        let mut rng = SimRng::seeded(seed);
        enum Overhead {
            None,
            ColdEvery(ActivationModel),
            /// Cold for the first `pool` invocations (one per worker), warm
            /// for the rest — the container-reuse approximation.
            WarmAfter(ActivationModel, u64),
        }
        let (strategy, overhead) = match mode {
            ExecutionMode::Lfm(s) => (s.clone(), Overhead::None),
            ExecutionMode::Container(tech) => (
                Strategy::Unmanaged,
                Overhead::ColdEvery(ActivationModel::for_tech(*tech)),
            ),
            ExecutionMode::ContainerWarm(tech) => (
                Strategy::Unmanaged,
                Overhead::WarmAfter(ActivationModel::for_tech(*tech), endpoint.workers as u64),
            ),
        };
        let tasks: Vec<TaskSpec> = (0..n_tasks)
            .map(|i| {
                let mut p = profile;
                match &overhead {
                    Overhead::None => {}
                    Overhead::ColdEvery(model) => p.duration_secs += model.sample(&mut rng),
                    Overhead::WarmAfter(model, pool) => {
                        p.duration_secs += if i < *pool {
                            model.sample(&mut rng)
                        } else {
                            model.sample_warm(&mut rng)
                        };
                    }
                }
                TaskSpec::new(
                    TaskId(i),
                    f.name.clone(),
                    vec![
                        env_file.clone(),
                        FileRef::data(format!("img-{i}"), input_bytes),
                    ],
                    4 * 1024, // small classification result
                    p,
                )
            })
            .collect();
        let config = MasterConfig::new(strategy).with_seed(seed);
        Ok(run_workload(
            &config,
            tasks,
            endpoint.workers,
            endpoint.node,
        ))
    }

    /// Route a batch across heterogeneous endpoints — funcX "supports
    /// function execution on heterogeneous resources". Tasks split
    /// proportionally to each endpoint's packing capacity for this
    /// function's profile; each endpoint runs its share and the combined
    /// makespan is the slowest endpoint's.
    #[allow(clippy::too_many_arguments)]
    pub fn route_batch(
        &self,
        registry: &FunctionRegistry,
        id: FunctionId,
        n_tasks: u64,
        endpoints: &[Endpoint],
        mode: &ExecutionMode,
        profile: SimTaskProfile,
        input_bytes: u64,
        seed: u64,
    ) -> Result<Vec<(String, RunReport)>, String> {
        if endpoints.is_empty() {
            return Err("no endpoints".to_string());
        }
        let need = lfm_simcluster::node::Resources::new(
            profile.cores_used.ceil() as u32,
            profile.peak_memory_mb,
            profile.peak_disk_mb,
        );
        let capacities: Vec<u64> = endpoints
            .iter()
            .map(|ep| (need.copies_in(&ep.node.resources) as u64 * ep.workers as u64).max(1))
            .collect();
        let total: u64 = capacities.iter().sum();
        let mut shares: Vec<u64> = capacities.iter().map(|c| n_tasks * c / total).collect();
        // Distribute the rounding remainder to the largest endpoints.
        let mut assigned: u64 = shares.iter().sum();
        let mut order: Vec<usize> = (0..endpoints.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(capacities[i]));
        let mut cursor = 0;
        while assigned < n_tasks {
            shares[order[cursor % order.len()]] += 1;
            assigned += 1;
            cursor += 1;
        }
        let mut out = Vec::new();
        for (i, ep) in endpoints.iter().enumerate() {
            if shares[i] == 0 {
                continue;
            }
            let report = self.run_batch(
                registry,
                id,
                shares[i],
                ep,
                mode,
                profile,
                input_bytes,
                seed ^ (i as u64 + 1),
            )?;
            out.push((ep.name.clone(), report));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfm_pyenv::source::funcx_classify_source;
    use lfm_workqueue::allocate::AutoConfig;

    fn setup() -> (FuncXService, FunctionRegistry, FunctionId, Endpoint) {
        let svc = FuncXService::new();
        let mut reg = FunctionRegistry::new();
        let id = reg
            .register("classify_image", funcx_classify_source())
            .unwrap();
        let ep = Endpoint::new("theta-ep", NodeSpec::new(8, 32 * 1024, 64 * 1024), 4);
        (svc, reg, id, ep)
    }

    /// ResNet-50 inference: ~4 s, 1 core, ~2 GB resident.
    fn resnet_profile() -> SimTaskProfile {
        SimTaskProfile::new(4.0, 1.0, 2048, 512)
    }

    #[test]
    fn environment_includes_function_deps() {
        let (svc, reg, id, _) = setup();
        let env = svc.environment_for(&reg, id).unwrap();
        // TensorFlow's stack is huge; the archive must be substantial.
        assert!(
            env.size_bytes > 100 << 20,
            "archive {} too small",
            env.size_bytes
        );
    }

    #[test]
    fn lfm_auto_beats_containers() {
        let (svc, reg, id, ep) = setup();
        let lfm = svc
            .run_batch(
                &reg,
                id,
                64,
                &ep,
                &ExecutionMode::Lfm(Strategy::Auto(AutoConfig::default())),
                resnet_profile(),
                150 << 10,
                1,
            )
            .unwrap();
        let container = svc
            .run_batch(
                &reg,
                id,
                64,
                &ep,
                &ExecutionMode::Container(ActivationTech::Singularity),
                resnet_profile(),
                150 << 10,
                1,
            )
            .unwrap();
        assert!(
            container.makespan_secs > 2.0 * lfm.makespan_secs,
            "container {} vs lfm {}",
            container.makespan_secs,
            lfm.makespan_secs
        );
    }

    #[test]
    fn all_invocations_complete_in_both_modes() {
        let (svc, reg, id, ep) = setup();
        for mode in [
            ExecutionMode::Lfm(Strategy::Auto(AutoConfig::default())),
            ExecutionMode::Container(ActivationTech::Docker),
        ] {
            let rep = svc
                .run_batch(&reg, id, 20, &ep, &mode, resnet_profile(), 1 << 10, 2)
                .unwrap();
            assert_eq!(rep.abandoned_tasks, 0, "{mode:?}");
            let ok = rep
                .results
                .iter()
                .filter(|r| r.outcome.is_success())
                .count();
            assert_eq!(ok, 20, "{mode:?}");
        }
    }

    #[test]
    fn warm_containers_beat_cold_but_lfm_still_wins() {
        let (svc, reg, id, ep) = setup();
        let run = |mode: &ExecutionMode| {
            svc.run_batch(&reg, id, 96, &ep, mode, resnet_profile(), 150 << 10, 3)
                .unwrap()
                .makespan_secs
        };
        let cold = run(&ExecutionMode::Container(ActivationTech::Singularity));
        let warm = run(&ExecutionMode::ContainerWarm(ActivationTech::Singularity));
        let lfm = run(&ExecutionMode::Lfm(Strategy::Auto(AutoConfig::default())));
        assert!(warm < cold, "warm {warm} vs cold {cold}");
        // Even with container reuse, whole-worker allocation can't pack —
        // the LFM still wins.
        assert!(lfm < warm, "lfm {lfm} vs warm {warm}");
    }

    #[test]
    fn routing_splits_by_capacity_and_beats_single_endpoint() {
        let (svc, reg, id, _) = setup();
        let small = Endpoint::new("campus", NodeSpec::new(8, 32 * 1024, 64 * 1024), 2);
        let big = Endpoint::new("hpc", NodeSpec::new(64, 192 * 1024, 128 * 1024), 8);
        let mode = ExecutionMode::Lfm(Strategy::Auto(AutoConfig::default()));
        let routed = svc
            .route_batch(
                &reg,
                id,
                200,
                &[small.clone(), big.clone()],
                &mode,
                resnet_profile(),
                1 << 10,
                9,
            )
            .unwrap();
        assert_eq!(routed.len(), 2);
        let share =
            |name: &str| routed.iter().find(|(n, _)| n == name).unwrap().1.task_count as u64;
        assert_eq!(share("campus") + share("hpc"), 200);
        assert!(
            share("hpc") > 4 * share("campus"),
            "big endpoint should take most tasks: hpc={} campus={}",
            share("hpc"),
            share("campus")
        );
        // Combined (max endpoint makespan) beats the small endpoint alone.
        let combined = routed
            .iter()
            .map(|(_, r)| r.makespan_secs)
            .fold(0.0, f64::max);
        let alone = svc
            .run_batch(&reg, id, 200, &small, &mode, resnet_profile(), 1 << 10, 9)
            .unwrap()
            .makespan_secs;
        assert!(
            combined < alone,
            "routing {combined} vs small-alone {alone}"
        );
    }

    #[test]
    fn routing_handles_single_endpoint_and_errors() {
        let (svc, reg, id, ep) = setup();
        let mode = ExecutionMode::Lfm(Strategy::Unmanaged);
        let routed = svc
            .route_batch(&reg, id, 10, &[ep], &mode, resnet_profile(), 1, 3)
            .unwrap();
        assert_eq!(routed.len(), 1);
        assert_eq!(routed[0].1.task_count, 10);
        assert!(svc
            .route_batch(&reg, id, 10, &[], &mode, resnet_profile(), 1, 3)
            .is_err());
    }

    #[test]
    fn unknown_function_errors() {
        let (svc, reg, _, ep) = setup();
        let err = svc
            .run_batch(
                &reg,
                FunctionId(0xdead),
                1,
                &ep,
                &ExecutionMode::Lfm(Strategy::Unmanaged),
                resnet_profile(),
                1,
                0,
            )
            .unwrap_err();
        assert!(err.contains("unknown function"));
    }
}
