//! Environment-activation cost models (Table I).
//!
//! The paper measures "the time to run a simple Hello World function" under
//! Conda vs. Singularity (Theta), Shifter (Cori), and Docker (EC2). Conda
//! activation only rewrites environment variables; containers additionally
//! create kernel namespaces, mount disk images, and prepare I/O and resource
//! controllers. Each technology is modelled as a sum of those component
//! latencies, with site-measured jitter.

use lfm_simcluster::rng::SimRng;
use serde::{Deserialize, Serialize};

/// An activation technology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ActivationTech {
    /// Conda environment activation (environment-variable rewrite only).
    Conda,
    Singularity,
    Shifter,
    Docker,
}

impl ActivationTech {
    pub fn name(&self) -> &'static str {
        match self {
            ActivationTech::Conda => "Conda",
            ActivationTech::Singularity => "Singularity",
            ActivationTech::Shifter => "Shifter",
            ActivationTech::Docker => "Docker",
        }
    }
}

/// Cost components for one activation, seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActivationModel {
    /// Interpreter start + environment-variable setup.
    pub env_setup: f64,
    /// Kernel namespace creation (0 for Conda).
    pub namespace_setup: f64,
    /// Image mount / overlay preparation (0 for Conda).
    pub image_mount: f64,
    /// cgroup / IO-controller preparation (0 for Conda).
    pub io_controllers: f64,
    /// Relative jitter (fraction of the mean).
    pub jitter: f64,
}

impl ActivationModel {
    /// The model for a technology.
    pub fn for_tech(tech: ActivationTech) -> Self {
        match tech {
            ActivationTech::Conda => ActivationModel {
                env_setup: 0.15,
                namespace_setup: 0.0,
                image_mount: 0.0,
                io_controllers: 0.0,
                jitter: 0.12,
            },
            ActivationTech::Singularity => ActivationModel {
                env_setup: 0.18,
                namespace_setup: 0.55,
                image_mount: 1.60,
                io_controllers: 0.25,
                jitter: 0.18,
            },
            ActivationTech::Shifter => ActivationModel {
                env_setup: 0.20,
                namespace_setup: 0.80,
                image_mount: 3.10,
                io_controllers: 0.70,
                jitter: 0.22,
            },
            ActivationTech::Docker => ActivationModel {
                env_setup: 0.16,
                namespace_setup: 0.35,
                image_mount: 0.45,
                io_controllers: 0.30,
                jitter: 0.15,
            },
        }
    }

    /// Mean cold activation latency.
    pub fn mean(&self) -> f64 {
        self.env_setup + self.namespace_setup + self.image_mount + self.io_controllers
    }

    /// Warm-start overhead: the container already exists on the worker, so
    /// only the in-container environment setup is paid per invocation.
    pub fn warm_overhead(&self) -> f64 {
        self.env_setup
    }

    /// Sample a warm-start overhead.
    pub fn sample_warm(&self, rng: &mut SimRng) -> f64 {
        let mean = self.warm_overhead();
        rng.normal_trunc(mean, mean * self.jitter, mean * 0.1)
    }

    /// Sample one activation (truncated at 10% of the mean).
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        let mean = self.mean();
        rng.normal_trunc(mean, mean * self.jitter, mean * 0.1)
    }
}

/// One Table I cell: mean ± std over `trials` hello-world runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivationMeasurement {
    pub tech: ActivationTech,
    pub site: String,
    pub mean_secs: f64,
    pub std_secs: f64,
    pub trials: u32,
}

/// Run the hello-world benchmark for one technology at one site.
pub fn measure_activation(
    tech: ActivationTech,
    site: &str,
    trials: u32,
    seed: u64,
) -> ActivationMeasurement {
    let model = ActivationModel::for_tech(tech);
    let mut rng = SimRng::seeded(seed);
    let mut sum = 0.0;
    let mut sumsq = 0.0;
    for _ in 0..trials {
        let t = model.sample(&mut rng);
        sum += t;
        sumsq += t * t;
    }
    let n = trials as f64;
    let mean = sum / n;
    let var = (sumsq / n - mean * mean).max(0.0);
    ActivationMeasurement {
        tech,
        site: site.to_string(),
        mean_secs: mean,
        std_secs: var.sqrt(),
        trials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conda_is_cheapest_everywhere() {
        let conda = ActivationModel::for_tech(ActivationTech::Conda).mean();
        for tech in [
            ActivationTech::Singularity,
            ActivationTech::Shifter,
            ActivationTech::Docker,
        ] {
            let m = ActivationModel::for_tech(tech).mean();
            assert!(
                m > 3.0 * conda,
                "{} ({m}) should be several times Conda ({conda})",
                tech.name()
            );
        }
    }

    #[test]
    fn containers_pay_namespace_and_mount() {
        let conda = ActivationModel::for_tech(ActivationTech::Conda);
        assert_eq!(conda.namespace_setup, 0.0);
        assert_eq!(conda.image_mount, 0.0);
        let sing = ActivationModel::for_tech(ActivationTech::Singularity);
        assert!(sing.namespace_setup > 0.0);
        assert!(sing.image_mount > 0.0);
    }

    #[test]
    fn measurement_is_stable_and_positive() {
        let m = measure_activation(ActivationTech::Conda, "Theta", 50, 42);
        assert!(m.mean_secs > 0.0);
        assert!(m.std_secs < m.mean_secs);
        let m2 = measure_activation(ActivationTech::Conda, "Theta", 50, 42);
        assert_eq!(m.mean_secs, m2.mean_secs);
    }

    #[test]
    fn warm_start_is_much_cheaper() {
        for tech in [
            ActivationTech::Singularity,
            ActivationTech::Shifter,
            ActivationTech::Docker,
        ] {
            let m = ActivationModel::for_tech(tech);
            assert!(
                m.warm_overhead() < m.mean() / 4.0,
                "{}: warm {} vs cold {}",
                tech.name(),
                m.warm_overhead(),
                m.mean()
            );
        }
    }

    #[test]
    fn sample_never_collapses_to_zero() {
        let model = ActivationModel::for_tech(ActivationTech::Shifter);
        let mut rng = SimRng::seeded(7);
        for _ in 0..500 {
            assert!(model.sample(&mut rng) >= model.mean() * 0.1);
        }
    }

    #[test]
    fn warm_and_cold_samples_are_deterministic_per_seed() {
        let model = ActivationModel::for_tech(ActivationTech::Docker);
        let draw = |seed: u64| {
            let mut rng = SimRng::seeded(seed);
            let cold: Vec<f64> = (0..20).map(|_| model.sample(&mut rng)).collect();
            let warm: Vec<f64> = (0..20).map(|_| model.sample_warm(&mut rng)).collect();
            (cold, warm)
        };
        assert_eq!(draw(11), draw(11));
        assert_ne!(draw(11), draw(12));
    }

    #[test]
    fn warm_samples_center_on_env_setup_only() {
        // A warm container re-enters an existing namespace: the sampled
        // overhead must track env_setup, never the full cold path.
        for tech in [
            ActivationTech::Singularity,
            ActivationTech::Shifter,
            ActivationTech::Docker,
        ] {
            let model = ActivationModel::for_tech(tech);
            let mut rng = SimRng::seeded(3);
            let mean: f64 = (0..2000).map(|_| model.sample_warm(&mut rng)).sum::<f64>() / 2000.0;
            assert!(
                (mean - model.warm_overhead()).abs() < model.warm_overhead() * 0.1,
                "{}: warm sample mean {mean} vs model {}",
                tech.name(),
                model.warm_overhead()
            );
            assert!(
                mean < model.mean() / 3.0,
                "{}: warm mean {mean} not well below cold {}",
                tech.name(),
                model.mean()
            );
        }
    }

    #[test]
    fn warm_samples_respect_truncation_floor() {
        let model = ActivationModel::for_tech(ActivationTech::Conda);
        let mut rng = SimRng::seeded(9);
        for _ in 0..500 {
            assert!(model.sample_warm(&mut rng) >= model.warm_overhead() * 0.1);
        }
    }

    #[test]
    fn measurement_varies_with_seed_but_tracks_model() {
        let a = measure_activation(ActivationTech::Docker, "EC2", 200, 1);
        let b = measure_activation(ActivationTech::Docker, "EC2", 200, 2);
        assert_ne!(a.mean_secs, b.mean_secs, "distinct seeds must differ");
        let model_mean = ActivationModel::for_tech(ActivationTech::Docker).mean();
        for m in [&a, &b] {
            assert!(
                (m.mean_secs - model_mean).abs() < model_mean * 0.1,
                "measured {} far from model {model_mean}",
                m.mean_secs
            );
            assert_eq!(m.trials, 200);
            assert_eq!(m.site, "EC2");
        }
    }
}
