//! Benchmark support: the pre-binary heap recorder kept as a reference
//! implementation, plus shared event generators, so the criterion bench
//! and the `bench_telemetry` binary measure the binary wire path against
//! the exact allocation profile it replaced.
//!
//! [`HeapRecorder`] is what [`crate::Recorder`] used to be: every emission
//! builds a full [`Record`] — `String` name and category, `Vec` attrs —
//! and pushes it onto a per-shard `Vec<Record>`. The binary path encodes
//! the same information as interned ids and varints into a flat byte
//! buffer; records are only materialised at drain time.

use crate::record::{AttrValue, InstantRecord, MetricKind, MetricRecord, Record, SpanRecord};
use crate::{Name, Recorder};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Shard count mirrors [`crate::Recorder`] so contention is comparable.
const SHARDS: usize = 16;

/// The old heap-allocating recorder, preserved verbatim in shape: one
/// `Vec<Record>` per shard, a global `seq`, sort-merge on drain.
pub struct HeapRecorder {
    seq: AtomicU64,
    shards: Vec<Mutex<Vec<Record>>>,
}

impl Default for HeapRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl HeapRecorder {
    pub fn new() -> Self {
        HeapRecorder {
            seq: AtomicU64::new(0),
            shards: (0..SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    fn shard(&self) -> usize {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        std::thread::current().id().hash(&mut h);
        (h.finish() as usize) % SHARDS
    }

    fn push(&self, record: Record) {
        self.shards[self.shard()].lock().push(record);
    }

    pub fn span(&self, name: &str, cat: &str, start_secs: f64, end_secs: f64, task: u64) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.push(Record::Span(SpanRecord {
            seq,
            name: name.to_string(),
            cat: cat.to_string(),
            start_secs,
            end_secs,
            track: task % 14,
            depth: 0,
            task: Some(task),
            attempt: None,
            attrs: vec![
                ("status".to_string(), AttrValue::Str("done".to_string())),
                ("cpu_s".to_string(), AttrValue::F64(0.5)),
            ],
        }));
    }

    pub fn instant(&self, name: &str, cat: &str, at_secs: f64, task: u64) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.push(Record::Instant(InstantRecord {
            seq,
            name: name.to_string(),
            cat: cat.to_string(),
            at_secs,
            track: task % 14,
            task: Some(task),
            attempt: None,
            attrs: Vec::new(),
        }));
    }

    pub fn counter_at(&self, name: &str, delta: u64, at_secs: f64) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.push(Record::Metric(MetricRecord {
            seq,
            name: name.to_string(),
            kind: MetricKind::Counter,
            value: delta as f64,
            at_secs: Some(at_secs),
        }));
    }

    pub fn take(&self) -> Vec<Record> {
        let mut out: Vec<Record> = self
            .shards
            .iter()
            .flat_map(|s| std::mem::take(&mut *s.lock()))
            .collect();
        out.sort_by_key(Record::seq);
        out
    }
}

/// Pre-interned names for [`emit_mixed`], interned once per process the
/// way real instrumentation sites hold their keys.
pub struct MixKeys {
    pub exec: Name,
    pub dispatch: Name,
    pub task_done: Name,
    pub cat_lfm: Name,
    pub cat_master: Name,
    pub a_status: Name,
    pub a_cpu_s: Name,
    pub v_done: Name,
}

pub fn mix_keys() -> &'static MixKeys {
    static KEYS: std::sync::OnceLock<MixKeys> = std::sync::OnceLock::new();
    KEYS.get_or_init(|| MixKeys {
        exec: Name::intern("exec"),
        dispatch: Name::intern("dispatch"),
        task_done: Name::intern("master.task_done"),
        cat_lfm: Name::intern("lfm"),
        cat_master: Name::intern("master"),
        a_status: Name::intern("status"),
        a_cpu_s: Name::intern("cpu_s"),
        v_done: Name::intern("done"),
    })
}

/// Emit `n` events through the binary recorder: a rotating span / instant /
/// counter mix shaped like one simulated task's telemetry (the span carries
/// the status + cpu attrs the master's `exec` span does).
pub fn emit_mixed(recorder: &Recorder, n: u64) {
    let k = mix_keys();
    for i in 0..n {
        let t = i as f64 * 0.001;
        match i % 3 {
            0 => recorder
                .span_key(k.exec, k.cat_lfm)
                .between_secs(t, t + 0.5)
                .track(i % 14)
                .task(i)
                .attr_key(k.a_status, k.v_done)
                .attr_key(k.a_cpu_s, 0.5f64)
                .emit(),
            1 => recorder
                .instant_key(k.dispatch, k.cat_master)
                .at(lfm_simcluster::time::SimTime::from_secs(t))
                .track(i % 14)
                .task(i)
                .emit(),
            _ => {
                recorder.counter_at_key(k.task_done, 1, lfm_simcluster::time::SimTime::from_secs(t))
            }
        }
    }
}

/// The same rotating mix through the heap reference path.
pub fn emit_mixed_heap(recorder: &HeapRecorder, n: u64) {
    for i in 0..n {
        let t = i as f64 * 0.001;
        match i % 3 {
            0 => recorder.span("exec", "lfm", t, t + 0.5, i),
            1 => recorder.instant("dispatch", "master", t, i),
            _ => recorder.counter_at("master.task_done", 1, t),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The two paths must agree on the drained stream, so the bench
    /// compares equal work.
    #[test]
    fn binary_and_heap_paths_drain_equivalent_streams() {
        let binary = Recorder::enabled();
        emit_mixed(&binary, 99);
        let heap = HeapRecorder::new();
        emit_mixed_heap(&heap, 99);
        let a = binary.take();
        let b = heap.take();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            match (x, y) {
                (Record::Span(s), Record::Span(h)) => {
                    assert_eq!(s.name, h.name);
                    assert_eq!(s.attrs, h.attrs);
                    assert_eq!((s.start_secs, s.end_secs), (h.start_secs, h.end_secs));
                }
                (Record::Instant(s), Record::Instant(h)) => {
                    assert_eq!(s.name, h.name);
                    assert_eq!(s.at_secs, h.at_secs);
                }
                (Record::Metric(s), Record::Metric(h)) => {
                    assert_eq!(s.name, h.name);
                    assert_eq!(s.value, h.value);
                    assert_eq!(s.at_secs, h.at_secs);
                }
                _ => panic!("record kind mismatch"),
            }
        }
    }
}
