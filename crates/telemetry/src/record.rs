//! The record vocabulary: spans, instants, and metric samples.
//!
//! Every record carries a globally-ordered `seq` assigned at emission time
//! by the owning [`crate::Recorder`]; merging the recorder's per-thread
//! shards back into one stream is a sort by `seq`, which makes export
//! ordering total and — for a single-threaded simulation — deterministic.

use serde::{Deserialize, Serialize};

/// A typed attribute value, so numeric attrs survive into JSONL/Chrome args
/// without a string round-trip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AttrValue {
    U64(u64),
    F64(f64),
    Str(String),
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}

impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

/// A completed interval on some timeline (simulated seconds for the
/// scheduler layers, wall-clock seconds for the host-side engine).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    pub seq: u64,
    pub name: String,
    /// Layer category: "master", "worker", "lfm", "sweep", "parallel", ...
    pub cat: String,
    pub start_secs: f64,
    pub end_secs: f64,
    /// Display lane (Chrome `tid`): worker id for scheduler spans, thread
    /// lane for host spans.
    pub track: u64,
    /// Nesting depth at emission (wall spans track this per thread).
    pub depth: u32,
    pub task: Option<u64>,
    pub attempt: Option<u32>,
    pub attrs: Vec<(String, AttrValue)>,
}

impl SpanRecord {
    pub fn duration_secs(&self) -> f64 {
        self.end_secs - self.start_secs
    }

    /// Does `self` fully contain `other` in time?
    pub fn contains(&self, other: &SpanRecord) -> bool {
        self.start_secs <= other.start_secs && other.end_secs <= self.end_secs
    }
}

/// A point event (dispatch, retry, limit-kill, ...).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstantRecord {
    pub seq: u64,
    pub name: String,
    pub cat: String,
    pub at_secs: f64,
    pub track: u64,
    pub task: Option<u64>,
    pub attempt: Option<u32>,
    pub attrs: Vec<(String, AttrValue)>,
}

/// What a metric sample means.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MetricKind {
    /// Monotonic delta; the registry sums, the Chrome exporter plots the
    /// running total.
    Counter,
    /// Last-value-wins level (queue depth); aggregated as a [`Summary`]
    /// series too.
    ///
    /// [`Summary`]: lfm_simcluster::metrics::Summary
    Gauge,
    /// A distribution sample, aggregated into a
    /// [`Histogram`](lfm_simcluster::metrics::Histogram).
    Histogram,
}

/// One metric sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricRecord {
    pub seq: u64,
    pub name: String,
    pub kind: MetricKind,
    pub value: f64,
    /// Simulated timestamp, when the emitting layer has one; untimed
    /// samples (cache counters, engine counters) aggregate only.
    pub at_secs: Option<f64>,
}

/// The union the recorder buffers and the exporters consume.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Record {
    Span(SpanRecord),
    Instant(InstantRecord),
    Metric(MetricRecord),
}

impl Record {
    pub fn seq(&self) -> u64 {
        match self {
            Record::Span(s) => s.seq,
            Record::Instant(i) => i.seq,
            Record::Metric(m) => m.seq,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_containment() {
        let mk = |s, e| SpanRecord {
            seq: 0,
            name: "x".into(),
            cat: "t".into(),
            start_secs: s,
            end_secs: e,
            track: 0,
            depth: 0,
            task: None,
            attempt: None,
            attrs: vec![],
        };
        let outer = mk(1.0, 10.0);
        let inner = mk(2.0, 9.0);
        assert!(outer.contains(&inner));
        assert!(!inner.contains(&outer));
        assert_eq!(outer.duration_secs(), 9.0);
    }

    #[test]
    fn attr_value_conversions() {
        assert_eq!(AttrValue::from(3u64), AttrValue::U64(3));
        assert_eq!(AttrValue::from(2.5f64), AttrValue::F64(2.5));
        assert_eq!(AttrValue::from("hi"), AttrValue::Str("hi".into()));
    }
}
