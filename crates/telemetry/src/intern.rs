//! Process-global string interning for the binary record protocol.
//!
//! The binary wire format ([`crate::wire`]) never carries string bytes on
//! the hot path: span/instant names, categories, attribute keys, and
//! string-valued attributes are all interned once into a process-wide
//! table and referenced by a `u32` [`Name`]. Hot call sites intern their
//! names a single time (usually in a `OnceLock`-initialised key struct)
//! and emit through the `*_key` recorder APIs, paying one varint per
//! string per record instead of one heap `String`.
//!
//! The table only grows — entries are leaked `&'static str`s — which is
//! the standard interner trade-off: the set of distinct telemetry names is
//! small and fixed by the instrumented code (plus bounded run-scoped sets
//! like tenant names and fault labels), so the leak is bounded and
//! `resolve` is a lock-free-after-read `&'static` return with no
//! reference counting on the decode path.

use std::collections::HashMap;
use std::sync::{OnceLock, RwLock};

/// An interned string: a dense index into the process-global table.
///
/// `Name`s are stable for the lifetime of the process and shared by every
/// [`crate::Recorder`]; they are *not* stable across processes, which is
/// why the exporters always resolve them back to strings — identifiers
/// never leak into trace output, keeping identical seeded runs
/// byte-identical regardless of interning order.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Name(pub(crate) u32);

struct Table {
    by_str: HashMap<&'static str, u32>,
    by_id: Vec<&'static str>,
}

fn table() -> &'static RwLock<Table> {
    static TABLE: OnceLock<RwLock<Table>> = OnceLock::new();
    TABLE.get_or_init(|| {
        RwLock::new(Table {
            by_str: HashMap::new(),
            by_id: Vec::new(),
        })
    })
}

impl Name {
    /// Intern `s`, returning its stable id. Read-locks on the (overwhelming
    /// majority) hit path; write-locks only the first time a string is
    /// seen.
    pub fn intern(s: &str) -> Name {
        let t = table();
        if let Some(&id) = t.read().unwrap().by_str.get(s) {
            return Name(id);
        }
        let mut w = t.write().unwrap();
        if let Some(&id) = w.by_str.get(s) {
            return Name(id); // raced with another interner
        }
        let id = w.by_id.len() as u32;
        let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
        w.by_id.push(leaked);
        w.by_str.insert(leaked, id);
        Name(id)
    }

    /// The interned string, or `None` for an id that was never handed out
    /// (possible only when decoding corrupt bytes — the decoder turns this
    /// into a [`crate::wire::DecodeError`], never a panic).
    pub fn resolve(self) -> Option<&'static str> {
        table().read().unwrap().by_id.get(self.0 as usize).copied()
    }

    /// The interned string; panics on an unknown id (encoder-side use,
    /// where ids are by construction valid).
    pub fn as_str(self) -> &'static str {
        self.resolve().expect("unknown interned Name")
    }
}

impl From<&str> for Name {
    fn from(s: &str) -> Self {
        Name::intern(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_resolves() {
        let a = Name::intern("telemetry.test.alpha");
        let b = Name::intern("telemetry.test.alpha");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "telemetry.test.alpha");
        let c = Name::intern("telemetry.test.beta");
        assert_ne!(a, c);
    }

    #[test]
    fn unknown_id_resolves_to_none() {
        assert_eq!(Name(u32::MAX).resolve(), None);
    }

    #[test]
    fn concurrent_interning_agrees() {
        let names: Vec<String> = (0..64).map(|i| format!("telemetry.race.{i}")).collect();
        let ids: Vec<Vec<Name>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let names = &names;
                    s.spawn(move || names.iter().map(|n| Name::intern(n)).collect::<Vec<_>>())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for other in &ids[1..] {
            assert_eq!(&ids[0], other, "all threads must agree on ids");
        }
    }
}
