//! The compact binary record protocol and its streaming decoder.
//!
//! Every emission encodes into a handful of bytes appended to the emitting
//! thread's shard ring buffer: a tag byte (record kind + presence flags),
//! varint-packed u64 fields, interned-string ids ([`Name`]) for every
//! name/category/attr key, and delta-coded timestamps. The old hot path
//! heap-allocated two `String`s and a ~150-byte enum per record; this one
//! writes ~6–30 bytes with zero allocation.
//!
//! ## Record layout
//!
//! ```text
//! tag: u8      bits 0..3 = kind   (0 Span, 1 Instant, 2 Counter,
//!                                  3 CounterAt, 4 Gauge, 5 Observe)
//!              bit 3 TIME_RAW     timestamps as raw f64 bits, not varint µs
//!              bit 4 HAS_TASK     span/instant carries a task id; for
//!                                 metrics the same bit is HAS_AT
//!                                 (a simulated timestamp follows)
//!              bit 5 HAS_ATTEMPT  span/instant carries an attempt number
//!              bit 6 HAS_ATTRS    span/instant carries an attr list
//!              bit 7 VAL_RAW      metric value as raw f64 bits
//! seq:   varint  delta vs. the previous record in the same shard
//!                (strictly increasing: the global counter is read under
//!                the shard lock, so within a shard deltas never go back)
//! name:  varint  interned id; spans/instants follow with cat: varint
//! time:  spans   zigzag(start_µs − shard.last_µs) + varint(duration_µs),
//!                or 16 raw LE f64 bytes when TIME_RAW
//!        instants / timed metrics
//!                zigzag(at_µs − shard.last_µs), or 8 raw f64 bytes
//! rest:  spans   track varint, depth varint, [task], [attempt], [attrs]
//!        instants track varint, [task], [attempt], [attrs]
//!        counters delta varint;  gauges/observations value (varint u64
//!                fast path for integral values, raw f64 otherwise)
//! attrs: count varint, then per attr varint(key_id << 2 | vtag) with
//!        vtag 0 = u64 varint, 1 = f64 raw, 2 = interned str id varint,
//!        3 = integral f64 as varint
//! ```
//!
//! Timestamps use the µs fast path only when `(µs as f64) / 1e6` exactly
//! reproduces the original `f64` seconds — the decoder therefore
//! reconstructs bit-identical floats and the exporters stay byte-identical
//! with the old heap-record pipeline. Non-µs-representable times (and wall
//! clock spans) fall back to raw f64 bits, flagged per record.
//!
//! [`ShardDecoder`] streams one shard's bytes back into [`Record`]s;
//! [`MergeDecoder`] k-way-merges the per-shard streams on `seq`,
//! reconstructing the total order without materialising or sorting the
//! whole stream first. Decoding is fully bounds-checked: truncated or
//! corrupt input yields [`DecodeError`], never a panic.

use crate::intern::Name;
use crate::record::{AttrValue, InstantRecord, MetricKind, MetricRecord, Record, SpanRecord};

pub(crate) const KIND_SPAN: u8 = 0;
pub(crate) const KIND_INSTANT: u8 = 1;
pub(crate) const KIND_COUNTER: u8 = 2;
pub(crate) const KIND_COUNTER_AT: u8 = 3;
pub(crate) const KIND_GAUGE: u8 = 4;
pub(crate) const KIND_OBSERVE: u8 = 5;
const KIND_MASK: u8 = 0b111;

pub(crate) const FLAG_TIME_RAW: u8 = 1 << 3;
pub(crate) const FLAG_TASK: u8 = 1 << 4;
/// Shared bit: metric records never carry task ids, so the task bit
/// doubles as "a timestamp follows".
pub(crate) const FLAG_AT: u8 = FLAG_TASK;
pub(crate) const FLAG_ATTEMPT: u8 = 1 << 5;
pub(crate) const FLAG_ATTRS: u8 = 1 << 6;
pub(crate) const FLAG_VAL_RAW: u8 = 1 << 7;

/// Attr value as carried on the wire: already interned, `Copy`, no heap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WireVal {
    U64(u64),
    F64(f64),
    Str(Name),
}

/// Public wrapper accepted by the builder `attr` methods; mirrors the
/// `From` conversions [`AttrValue`] offers, but interns strings instead of
/// boxing them.
#[derive(Debug, Clone, Copy)]
pub struct AttrVal(pub(crate) WireVal);

impl From<u64> for AttrVal {
    fn from(v: u64) -> Self {
        AttrVal(WireVal::U64(v))
    }
}

impl From<f64> for AttrVal {
    fn from(v: f64) -> Self {
        AttrVal(WireVal::F64(v))
    }
}

impl From<&str> for AttrVal {
    fn from(v: &str) -> Self {
        AttrVal(WireVal::Str(Name::intern(v)))
    }
}

impl From<String> for AttrVal {
    fn from(v: String) -> Self {
        AttrVal(WireVal::Str(Name::intern(&v)))
    }
}

impl From<Name> for AttrVal {
    fn from(v: Name) -> Self {
        AttrVal(WireVal::Str(v))
    }
}

/// Attrs inline up to the workspace maximum (the widest emitter, the
/// `exec` span, carries 7); the rare overflow spills to the heap rather
/// than silently dropping.
const INLINE_ATTRS: usize = 8;

#[derive(Debug)]
pub(crate) struct AttrList {
    len: u8,
    inline: [(Name, WireVal); INLINE_ATTRS],
    spill: Vec<(Name, WireVal)>,
}

impl Default for AttrList {
    fn default() -> Self {
        AttrList {
            len: 0,
            inline: [(Name(0), WireVal::U64(0)); INLINE_ATTRS],
            spill: Vec::new(),
        }
    }
}

impl AttrList {
    pub(crate) fn push(&mut self, key: Name, val: WireVal) {
        if (self.len as usize) < INLINE_ATTRS {
            self.inline[self.len as usize] = (key, val);
            self.len += 1;
        } else {
            self.spill.push((key, val));
        }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn count(&self) -> usize {
        self.len as usize + self.spill.len()
    }

    fn iter(&self) -> impl Iterator<Item = &(Name, WireVal)> {
        self.inline[..self.len as usize].iter().chain(&self.spill)
    }
}

/// A span waiting to be encoded (held by the builder, on the stack).
#[derive(Debug, Default)]
pub(crate) struct PendingSpan {
    pub name: Name,
    pub cat: Name,
    pub start_secs: f64,
    pub end_secs: f64,
    pub track: u64,
    pub depth: u32,
    pub task: Option<u64>,
    pub attempt: Option<u32>,
    pub attrs: AttrList,
}

/// An instant waiting to be encoded.
#[derive(Debug, Default)]
pub(crate) struct PendingInstant {
    pub name: Name,
    pub cat: Name,
    pub at_secs: f64,
    pub track: u64,
    pub task: Option<u64>,
    pub attempt: Option<u32>,
    pub attrs: AttrList,
}

/// Per-shard codec state: both ends of the wire track it identically, so
/// it never travels. Reset when a shard buffer is drained.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct CodecState {
    last_seq: u64,
    last_us: u64,
}

// ---------------------------------------------------------------------
// varint primitives
// ---------------------------------------------------------------------

#[inline]
fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        buf.push((v as u8) | 0x80);
        v >>= 7;
    }
    buf.push(v as u8);
}

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// `Some(µs)` iff dividing back by 1e6 reproduces `secs` bit-exactly —
/// the condition under which the varint time path is lossless.
#[inline]
fn as_exact_micros(secs: f64) -> Option<u64> {
    if secs < 0.0 || secs.is_nan() {
        return None;
    }
    let us = (secs * 1e6).round();
    if us >= 9_007_199_254_740_992.0 {
        return None; // beyond 2^53: u64→f64 no longer exact
    }
    let u = us as u64;
    if (u as f64) / 1e6 == secs {
        Some(u)
    } else {
        None
    }
}

/// `Some(n)` iff `n as f64` reproduces `v` bit-exactly (integral fast
/// path for gauge/observation values).
#[inline]
fn as_exact_u64(v: f64) -> Option<u64> {
    if v.is_nan() || !(0.0..9_007_199_254_740_992.0).contains(&v) {
        return None;
    }
    let u = v as u64;
    if u as f64 == v {
        Some(u)
    } else {
        None
    }
}

// ---------------------------------------------------------------------
// encode
// ---------------------------------------------------------------------

fn put_attrs(buf: &mut Vec<u8>, attrs: &AttrList) {
    put_varint(buf, attrs.count() as u64);
    for (key, val) in attrs.iter() {
        match val {
            WireVal::U64(v) => {
                put_varint(buf, (key.0 as u64) << 2);
                put_varint(buf, *v);
            }
            WireVal::F64(v) => {
                if let Some(u) = as_exact_u64(*v) {
                    put_varint(buf, (key.0 as u64) << 2 | 3);
                    put_varint(buf, u);
                } else {
                    put_varint(buf, (key.0 as u64) << 2 | 1);
                    buf.extend_from_slice(&v.to_le_bytes());
                }
            }
            WireVal::Str(id) => {
                put_varint(buf, (key.0 as u64) << 2 | 2);
                put_varint(buf, id.0 as u64);
            }
        }
    }
}

fn put_seq(buf: &mut Vec<u8>, st: &mut CodecState, seq: u64) {
    debug_assert!(seq >= st.last_seq || st.last_seq == 0);
    put_varint(buf, seq.wrapping_sub(st.last_seq));
    st.last_seq = seq;
}

/// Encode one span into a shard buffer.
pub(crate) fn encode_span(buf: &mut Vec<u8>, st: &mut CodecState, seq: u64, s: &PendingSpan) {
    let mut tag = KIND_SPAN;
    let times = match (as_exact_micros(s.start_secs), as_exact_micros(s.end_secs)) {
        (Some(a), Some(b)) if b >= a => Some((a, b)),
        _ => None,
    };
    if times.is_none() {
        tag |= FLAG_TIME_RAW;
    }
    if s.task.is_some() {
        tag |= FLAG_TASK;
    }
    if s.attempt.is_some() {
        tag |= FLAG_ATTEMPT;
    }
    if !s.attrs.is_empty() {
        tag |= FLAG_ATTRS;
    }
    buf.push(tag);
    put_seq(buf, st, seq);
    put_varint(buf, s.name.0 as u64);
    put_varint(buf, s.cat.0 as u64);
    match times {
        Some((start_us, end_us)) => {
            put_varint(buf, zigzag(start_us as i64 - st.last_us as i64));
            put_varint(buf, end_us - start_us);
            st.last_us = start_us;
        }
        None => {
            buf.extend_from_slice(&s.start_secs.to_le_bytes());
            buf.extend_from_slice(&s.end_secs.to_le_bytes());
        }
    }
    put_varint(buf, s.track);
    put_varint(buf, s.depth as u64);
    if let Some(t) = s.task {
        put_varint(buf, t);
    }
    if let Some(a) = s.attempt {
        put_varint(buf, a as u64);
    }
    if !s.attrs.is_empty() {
        put_attrs(buf, &s.attrs);
    }
}

/// Encode one instant into a shard buffer.
pub(crate) fn encode_instant(buf: &mut Vec<u8>, st: &mut CodecState, seq: u64, i: &PendingInstant) {
    let mut tag = KIND_INSTANT;
    let at = as_exact_micros(i.at_secs);
    if at.is_none() {
        tag |= FLAG_TIME_RAW;
    }
    if i.task.is_some() {
        tag |= FLAG_TASK;
    }
    if i.attempt.is_some() {
        tag |= FLAG_ATTEMPT;
    }
    if !i.attrs.is_empty() {
        tag |= FLAG_ATTRS;
    }
    buf.push(tag);
    put_seq(buf, st, seq);
    put_varint(buf, i.name.0 as u64);
    put_varint(buf, i.cat.0 as u64);
    match at {
        Some(us) => {
            put_varint(buf, zigzag(us as i64 - st.last_us as i64));
            st.last_us = us;
        }
        None => buf.extend_from_slice(&i.at_secs.to_le_bytes()),
    }
    put_varint(buf, i.track);
    if let Some(t) = i.task {
        put_varint(buf, t);
    }
    if let Some(a) = i.attempt {
        put_varint(buf, a as u64);
    }
    if !i.attrs.is_empty() {
        put_attrs(buf, &i.attrs);
    }
}

/// Encode one metric sample (counter / gauge / observation).
pub(crate) fn encode_metric(
    buf: &mut Vec<u8>,
    st: &mut CodecState,
    seq: u64,
    name: Name,
    kind: MetricKind,
    value: f64,
    at_secs: Option<f64>,
) {
    let mut tag = match (kind, at_secs.is_some()) {
        (MetricKind::Counter, false) => KIND_COUNTER,
        (MetricKind::Counter, true) => KIND_COUNTER_AT,
        (MetricKind::Gauge, _) => KIND_GAUGE,
        (MetricKind::Histogram, _) => KIND_OBSERVE,
    };
    let at = at_secs.and_then(as_exact_micros);
    if at_secs.is_some() {
        tag |= FLAG_AT;
        if at.is_none() {
            tag |= FLAG_TIME_RAW;
        }
    }
    let value_packed = match as_exact_u64(value) {
        Some(_) => true,
        None => {
            tag |= FLAG_VAL_RAW;
            false
        }
    };
    buf.push(tag);
    put_seq(buf, st, seq);
    put_varint(buf, name.0 as u64);
    if let Some(secs) = at_secs {
        match at {
            Some(us) => {
                put_varint(buf, zigzag(us as i64 - st.last_us as i64));
                st.last_us = us;
            }
            None => buf.extend_from_slice(&secs.to_le_bytes()),
        }
    }
    if value_packed {
        put_varint(buf, value as u64);
    } else {
        buf.extend_from_slice(&value.to_le_bytes());
    }
}

// ---------------------------------------------------------------------
// decode
// ---------------------------------------------------------------------

/// Why a shard's byte stream stopped decoding. Never a panic: a truncated
/// final record (e.g. a crash mid-append, or a fuzzer chop) surfaces here
/// and the already-decoded prefix stands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended inside a record at this byte offset.
    Truncated { at: usize },
    /// An undefined record kind.
    BadTag { at: usize, tag: u8 },
    /// A string id that was never interned in this process.
    BadName { at: usize, id: u64 },
    /// A field that decodes to an impossible value (negative time delta
    /// below zero, oversized varint, ...).
    Corrupt { at: usize, what: &'static str },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated { at } => write!(f, "record truncated at byte {at}"),
            DecodeError::BadTag { at, tag } => write!(f, "bad record tag {tag:#x} at byte {at}"),
            DecodeError::BadName { at, id } => write!(f, "unknown string id {id} at byte {at}"),
            DecodeError::Corrupt { at, what } => write!(f, "corrupt field ({what}) at byte {at}"),
        }
    }
}

/// Streaming decoder over one shard's bytes. Yields records in shard
/// (= seq) order; stops at the first error, which [`Iterator::next`]
/// reports once and then fuses.
pub struct ShardDecoder<'a> {
    bytes: &'a [u8],
    pos: usize,
    st: CodecState,
    failed: bool,
}

impl<'a> ShardDecoder<'a> {
    pub fn new(bytes: &'a [u8]) -> Self {
        Self::with_state(bytes, CodecState::default())
    }

    /// A decoder that starts from an explicit codec state instead of the
    /// default. This is what makes mid-stream resumption possible: a tail
    /// drain hands out a byte chunk whose first record was delta-coded
    /// against the *previous* chunk's final state, so the consumer resumes
    /// with the state it saved rather than re-decoding the prefix.
    pub(crate) fn with_state(bytes: &'a [u8], st: CodecState) -> Self {
        ShardDecoder {
            bytes,
            pos: 0,
            st,
            failed: false,
        }
    }

    /// Bytes consumed so far (diagnostics).
    pub fn position(&self) -> usize {
        self.pos
    }

    /// The codec state after the last successfully decoded record — save
    /// it and pass to [`ShardDecoder::with_state`] to resume decoding a
    /// later chunk of the same shard stream.
    pub(crate) fn state(&self) -> CodecState {
        self.st
    }

    fn get_u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or(DecodeError::Truncated { at: self.pos })?;
        self.pos += 1;
        Ok(b)
    }

    fn get_varint(&mut self) -> Result<u64, DecodeError> {
        let start = self.pos;
        let mut out: u64 = 0;
        let mut shift = 0u32;
        loop {
            let b = self.get_u8()?;
            if shift == 63 && b > 1 {
                return Err(DecodeError::Corrupt {
                    at: start,
                    what: "varint overflow",
                });
            }
            out |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(out);
            }
            shift += 7;
            if shift > 63 {
                return Err(DecodeError::Corrupt {
                    at: start,
                    what: "varint too long",
                });
            }
        }
    }

    fn get_f64(&mut self) -> Result<f64, DecodeError> {
        let end = self
            .pos
            .checked_add(8)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(DecodeError::Truncated { at: self.pos })?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.bytes[self.pos..end]);
        self.pos = end;
        Ok(f64::from_le_bytes(raw))
    }

    fn get_name(&mut self) -> Result<&'static str, DecodeError> {
        let at = self.pos;
        let id = self.get_varint()?;
        u32::try_from(id)
            .ok()
            .and_then(|id| Name(id).resolve())
            .ok_or(DecodeError::BadName { at, id })
    }

    /// A timestamp: varint µs delta against shard state, or raw f64.
    fn get_time(&mut self, raw: bool) -> Result<f64, DecodeError> {
        if raw {
            return self.get_f64();
        }
        let at = self.pos;
        let delta = unzigzag(self.get_varint()?);
        let us = (self.st.last_us as i64)
            .checked_add(delta)
            .ok_or(DecodeError::Corrupt {
                at,
                what: "time delta overflow",
            })?;
        if us < 0 {
            return Err(DecodeError::Corrupt {
                at,
                what: "negative time",
            });
        }
        self.st.last_us = us as u64;
        Ok(us as f64 / 1e6)
    }

    fn get_attrs(&mut self) -> Result<Vec<(String, AttrValue)>, DecodeError> {
        let at = self.pos;
        let n = self.get_varint()?;
        if n > 1 << 20 {
            return Err(DecodeError::Corrupt {
                at,
                what: "absurd attr count",
            });
        }
        let mut attrs = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let at = self.pos;
            let packed = self.get_varint()?;
            let key_id = packed >> 2;
            let key = u32::try_from(key_id)
                .ok()
                .and_then(|id| Name(id).resolve())
                .ok_or(DecodeError::BadName { at, id: key_id })?;
            let value = match packed & 3 {
                0 => AttrValue::U64(self.get_varint()?),
                1 => AttrValue::F64(self.get_f64()?),
                2 => {
                    let at = self.pos;
                    let id = self.get_varint()?;
                    let s = u32::try_from(id)
                        .ok()
                        .and_then(|id| Name(id).resolve())
                        .ok_or(DecodeError::BadName { at, id })?;
                    AttrValue::Str(s.to_string())
                }
                _ => AttrValue::F64(self.get_varint()? as f64),
            };
            attrs.push((key.to_string(), value));
        }
        Ok(attrs)
    }

    fn decode_one(&mut self) -> Result<Record, DecodeError> {
        let at = self.pos;
        let tag = self.get_u8()?;
        let kind = tag & KIND_MASK;
        let raw_time = tag & FLAG_TIME_RAW != 0;
        let seq = self.st.last_seq.wrapping_add(self.get_varint()?);
        self.st.last_seq = seq;
        match kind {
            KIND_SPAN => {
                let name = self.get_name()?.to_string();
                let cat = self.get_name()?.to_string();
                let (start_secs, end_secs) = if raw_time {
                    (self.get_f64()?, self.get_f64()?)
                } else {
                    let start = self.get_time(false)?;
                    let dur_us = self.get_varint()?;
                    let end_us =
                        self.st
                            .last_us
                            .checked_add(dur_us)
                            .ok_or(DecodeError::Corrupt {
                                at,
                                what: "duration overflow",
                            })?;
                    (start, end_us as f64 / 1e6)
                };
                let track = self.get_varint()?;
                let depth = self.get_varint()? as u32;
                let task = (tag & FLAG_TASK != 0)
                    .then(|| self.get_varint())
                    .transpose()?;
                let attempt = (tag & FLAG_ATTEMPT != 0)
                    .then(|| self.get_varint().map(|v| v as u32))
                    .transpose()?;
                let attrs = if tag & FLAG_ATTRS != 0 {
                    self.get_attrs()?
                } else {
                    Vec::new()
                };
                Ok(Record::Span(SpanRecord {
                    seq,
                    name,
                    cat,
                    start_secs,
                    end_secs,
                    track,
                    depth,
                    task,
                    attempt,
                    attrs,
                }))
            }
            KIND_INSTANT => {
                let name = self.get_name()?.to_string();
                let cat = self.get_name()?.to_string();
                let at_secs = self.get_time(raw_time)?;
                let track = self.get_varint()?;
                let task = (tag & FLAG_TASK != 0)
                    .then(|| self.get_varint())
                    .transpose()?;
                let attempt = (tag & FLAG_ATTEMPT != 0)
                    .then(|| self.get_varint().map(|v| v as u32))
                    .transpose()?;
                let attrs = if tag & FLAG_ATTRS != 0 {
                    self.get_attrs()?
                } else {
                    Vec::new()
                };
                Ok(Record::Instant(InstantRecord {
                    seq,
                    name,
                    cat,
                    at_secs,
                    track,
                    task,
                    attempt,
                    attrs,
                }))
            }
            KIND_COUNTER | KIND_COUNTER_AT | KIND_GAUGE | KIND_OBSERVE => {
                let name = self.get_name()?.to_string();
                let metric_kind = match kind {
                    KIND_COUNTER | KIND_COUNTER_AT => MetricKind::Counter,
                    KIND_GAUGE => MetricKind::Gauge,
                    _ => MetricKind::Histogram,
                };
                let at_secs = if tag & FLAG_AT != 0 {
                    Some(self.get_time(raw_time)?)
                } else {
                    None
                };
                let value = if tag & FLAG_VAL_RAW != 0 {
                    self.get_f64()?
                } else {
                    self.get_varint()? as f64
                };
                Ok(Record::Metric(MetricRecord {
                    seq,
                    name,
                    kind: metric_kind,
                    value,
                    at_secs,
                }))
            }
            _ => Err(DecodeError::BadTag { at, tag }),
        }
    }
}

impl Iterator for ShardDecoder<'_> {
    type Item = Result<Record, DecodeError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed || self.pos >= self.bytes.len() {
            return None;
        }
        match self.decode_one() {
            Ok(r) => Some(Ok(r)),
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}

/// K-way merge of per-shard streams on `seq`, reconstructing the global
/// total order as a stream — no whole-buffer sort, O(shards) per record.
pub struct MergeDecoder<'a> {
    decoders: Vec<ShardDecoder<'a>>,
    heads: Vec<Option<Record>>,
    errors: Vec<DecodeError>,
}

impl<'a> MergeDecoder<'a> {
    pub fn new(shards: impl IntoIterator<Item = &'a [u8]>) -> Self {
        Self::with_states(
            shards
                .into_iter()
                .map(|bytes| (bytes, CodecState::default())),
        )
    }

    /// [`MergeDecoder::new`] with per-shard starting codec states — the
    /// form [`crate::Recorder::take`] uses after a tail consumer has
    /// already drained a prefix of each shard's stream (the remaining
    /// bytes were delta-coded against the drained prefix).
    pub(crate) fn with_states(shards: impl IntoIterator<Item = (&'a [u8], CodecState)>) -> Self {
        let mut decoders: Vec<ShardDecoder<'a>> = shards
            .into_iter()
            .map(|(bytes, st)| ShardDecoder::with_state(bytes, st))
            .collect();
        let mut errors = Vec::new();
        let heads = decoders
            .iter_mut()
            .map(|d| Self::pull(d, &mut errors))
            .collect();
        MergeDecoder {
            decoders,
            heads,
            errors,
        }
    }

    fn pull(d: &mut ShardDecoder<'a>, errors: &mut Vec<DecodeError>) -> Option<Record> {
        match d.next() {
            Some(Ok(r)) => Some(r),
            Some(Err(e)) => {
                errors.push(e);
                None
            }
            None => None,
        }
    }

    /// Decode errors hit so far (a shard that errors stops contributing
    /// but the merge continues over the healthy shards).
    pub fn errors(&self) -> &[DecodeError] {
        &self.errors
    }
}

impl Iterator for MergeDecoder<'_> {
    type Item = Record;

    fn next(&mut self) -> Option<Self::Item> {
        let mut best: Option<(usize, u64)> = None;
        for (i, head) in self.heads.iter().enumerate() {
            if let Some(r) = head {
                let seq = r.seq();
                let better = match best {
                    None => true,
                    Some((_, s)) => seq < s,
                };
                if better {
                    best = Some((i, seq));
                }
            }
        }
        let (i, _) = best?;
        let out = self.heads[i].take();
        self.heads[i] = Self::pull(&mut self.decoders[i], &mut self.errors);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(seq: u64, start: f64, end: f64) -> (Vec<u8>, Record) {
        let mut buf = Vec::new();
        let mut st = CodecState::default();
        let pending = PendingSpan {
            name: Name::intern("wire.test.span"),
            cat: Name::intern("wire.test"),
            start_secs: start,
            end_secs: end,
            track: 3,
            depth: 1,
            task: Some(42),
            attempt: Some(2),
            attrs: {
                let mut a = AttrList::default();
                a.push(Name::intern("polls"), WireVal::U64(7));
                a.push(Name::intern("peak"), WireVal::F64(1.25));
                a.push(Name::intern("status"), WireVal::Str(Name::intern("ok")));
                a
            },
        };
        encode_span(&mut buf, &mut st, seq, &pending);
        let want = Record::Span(SpanRecord {
            seq,
            name: "wire.test.span".into(),
            cat: "wire.test".into(),
            start_secs: start,
            end_secs: end,
            track: 3,
            depth: 1,
            task: Some(42),
            attempt: Some(2),
            attrs: vec![
                ("polls".into(), AttrValue::U64(7)),
                ("peak".into(), AttrValue::F64(1.25)),
                ("status".into(), AttrValue::Str("ok".into())),
            ],
        });
        (buf, want)
    }

    #[test]
    fn span_round_trips_exactly() {
        for (start, end) in [
            (0.0, 0.0),
            (1.0, 3.5),
            (0.1, 0.30000000000000004),
            (12.000000000000002, 17.999999999999996),
            (1e9, 1e9 + 0.5),
        ] {
            let (buf, want) = span(5, start, end);
            let got: Vec<_> = ShardDecoder::new(&buf).collect::<Result<_, _>>().unwrap();
            assert_eq!(got, vec![want], "times {start}..{end}");
        }
    }

    #[test]
    fn metrics_round_trip_exactly() {
        let mut buf = Vec::new();
        let mut st = CodecState::default();
        let name = Name::intern("wire.test.metric");
        encode_metric(&mut buf, &mut st, 0, name, MetricKind::Counter, 3.0, None);
        encode_metric(
            &mut buf,
            &mut st,
            1,
            name,
            MetricKind::Counter,
            1.0,
            Some(2.5),
        );
        encode_metric(
            &mut buf,
            &mut st,
            2,
            name,
            MetricKind::Gauge,
            17.0,
            Some(2.75),
        );
        encode_metric(
            &mut buf,
            &mut st,
            3,
            name,
            MetricKind::Gauge,
            0.336,
            Some(3.0000000000000004),
        );
        encode_metric(
            &mut buf,
            &mut st,
            9,
            name,
            MetricKind::Histogram,
            123.456,
            None,
        );
        let got: Vec<_> = ShardDecoder::new(&buf).collect::<Result<_, _>>().unwrap();
        let values: Vec<(u64, f64, Option<f64>)> = got
            .iter()
            .map(|r| match r {
                Record::Metric(m) => (m.seq, m.value, m.at_secs),
                _ => panic!("expected metric"),
            })
            .collect();
        assert_eq!(
            values,
            vec![
                (0, 3.0, None),
                (1, 1.0, Some(2.5)),
                (2, 17.0, Some(2.75)),
                (3, 0.336, Some(3.0000000000000004)),
                (9, 123.456, None),
            ]
        );
    }

    #[test]
    fn truncated_input_errors_instead_of_panicking() {
        let (buf, _) = span(0, 1.0, 2.0);
        for cut in 0..buf.len() {
            let mut dec = ShardDecoder::new(&buf[..cut]);
            match dec.next() {
                None => assert_eq!(cut, 0, "only the empty prefix yields nothing"),
                Some(Err(_)) => {}
                Some(Ok(r)) => panic!("decoded {r:?} from a {cut}-byte prefix"),
            }
            assert!(dec.next().is_none(), "decoder fuses after an error");
        }
    }

    #[test]
    fn corrupt_tag_and_name_error_cleanly() {
        // Undefined kind 7.
        let mut dec = ShardDecoder::new(&[0x07, 0x00]);
        assert!(matches!(dec.next(), Some(Err(DecodeError::BadTag { .. }))));
        // Counter with an id far past anything interned.
        let mut buf = vec![KIND_COUNTER, 0x00];
        put_varint(&mut buf, u32::MAX as u64 - 1);
        put_varint(&mut buf, 1);
        let mut dec = ShardDecoder::new(&buf);
        assert!(matches!(dec.next(), Some(Err(DecodeError::BadName { .. }))));
    }

    #[test]
    fn merge_reconstructs_total_order() {
        // Interleave seqs 0..30 across 3 "shards".
        let mut bufs = vec![Vec::new(); 3];
        let mut states = [CodecState::default(); 3];
        let name = Name::intern("wire.test.merge");
        for seq in 0..30u64 {
            let shard = (seq % 3) as usize;
            encode_metric(
                &mut bufs[shard],
                &mut states[shard],
                seq,
                name,
                MetricKind::Counter,
                1.0,
                None,
            );
        }
        let merged: Vec<_> = MergeDecoder::new(bufs.iter().map(|b| b.as_slice())).collect();
        let seqs: Vec<u64> = merged.iter().map(Record::seq).collect();
        assert_eq!(seqs, (0..30).collect::<Vec<_>>());
    }

    #[test]
    fn merge_survives_one_truncated_shard() {
        let mut good = Vec::new();
        let mut st = CodecState::default();
        let name = Name::intern("wire.test.survive");
        for seq in [0u64, 2, 4] {
            encode_metric(
                &mut good,
                &mut st,
                seq,
                name,
                MetricKind::Counter,
                1.0,
                None,
            );
        }
        let mut bad = Vec::new();
        let mut st = CodecState::default();
        for seq in [1u64, 3] {
            encode_metric(&mut bad, &mut st, seq, name, MetricKind::Counter, 1.0, None);
        }
        bad.truncate(bad.len() - 1); // chop the final record mid-field
        let mut merge = MergeDecoder::new([good.as_slice(), bad.as_slice()]);
        let seqs: Vec<u64> = merge.by_ref().map(|r| r.seq()).collect();
        assert_eq!(seqs, vec![0, 1, 2, 4], "healthy records all survive");
        assert_eq!(merge.errors().len(), 1);
    }
}
