//! In-process aggregation of metric samples.
//!
//! The recorder buffers raw samples; this registry folds them into the
//! existing `lfm_simcluster::metrics` aggregate types — counters sum,
//! gauges become a [`Summary`] series (plus last value), histogram samples
//! become an exact-percentile [`Histogram`].

use crate::record::{MetricKind, Record};
use lfm_monitor::summary::JsonObject;
use lfm_simcluster::metrics::{Histogram, Summary};
use std::collections::BTreeMap;

/// Aggregated view of a record stream's metric samples.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, (Summary, f64)>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold a merged record stream (spans and instants are skipped).
    pub fn from_records(records: &[Record]) -> Self {
        let mut reg = Self::new();
        for record in records {
            let Record::Metric(m) = record else { continue };
            match m.kind {
                MetricKind::Counter => {
                    *reg.counters.entry(m.name.clone()).or_insert(0) += m.value as u64;
                }
                MetricKind::Gauge => {
                    let entry = reg
                        .gauges
                        .entry(m.name.clone())
                        .or_insert_with(|| (Summary::new(), 0.0));
                    entry.0.record(m.value);
                    entry.1 = m.value;
                }
                MetricKind::Histogram => {
                    reg.histograms
                        .entry(m.name.clone())
                        .or_default()
                        .record(m.value);
                }
            }
        }
        reg
    }

    /// Total of a counter; 0 if never emitted.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Streaming summary of every value a gauge took.
    pub fn gauge_summary(&self, name: &str) -> Option<&Summary> {
        self.gauges.get(name).map(|(s, _)| s)
    }

    /// Last value a gauge was set to.
    pub fn gauge_last(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).map(|(_, v)| *v)
    }

    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    pub fn histogram_mut(&mut self, name: &str) -> Option<&mut Histogram> {
        self.histograms.get_mut(name)
    }

    pub fn counter_names(&self) -> impl Iterator<Item = &str> {
        self.counters.keys().map(String::as_str)
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// One flat JSON object with every aggregate: counter totals, gauge
    /// mean/max/last, histogram p50/p95/p99. The runner binaries print this
    /// as the trace's companion summary line.
    pub fn to_json(&mut self) -> String {
        let mut o = JsonObject::new();
        for (name, total) in &self.counters {
            o.field_u64(name, *total);
        }
        for (name, (summary, last)) in &self.gauges {
            o.field_f64(&format!("{name}.mean"), summary.mean());
            o.field_f64(&format!("{name}.max"), summary.max());
            o.field_f64(&format!("{name}.last"), *last);
        }
        for (name, hist) in &mut self.histograms {
            o.field_u64(&format!("{name}.count"), hist.count() as u64);
            o.field_f64(&format!("{name}.p50"), hist.p50());
            o.field_f64(&format!("{name}.p95"), hist.p95());
            o.field_f64(&format!("{name}.p99"), hist.p99());
        }
        o.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;
    use lfm_simcluster::time::SimTime;

    #[test]
    fn aggregates_each_kind() {
        let r = Recorder::enabled();
        r.counter("hits", 2);
        r.counter("hits", 3);
        r.gauge("depth", 4.0, SimTime::from_secs(1.0));
        r.gauge("depth", 2.0, SimTime::from_secs(2.0));
        for v in [1.0, 2.0, 3.0, 4.0] {
            r.observe("lat", v);
        }
        let mut reg = r.metrics();
        assert_eq!(reg.counter("hits"), 5);
        assert_eq!(reg.counter("absent"), 0);
        assert_eq!(reg.gauge_last("depth"), Some(2.0));
        assert_eq!(reg.gauge_summary("depth").unwrap().max(), 4.0);
        let h = reg.histogram_mut("lat").unwrap();
        assert_eq!(h.count(), 4);
        assert_eq!(h.p50(), 2.0);
    }

    #[test]
    fn json_summary_contains_aggregates() {
        let r = Recorder::enabled();
        r.counter("cache.hit", 7);
        r.gauge("pending", 3.0, SimTime::from_secs(1.0));
        r.observe("turnaround_s", 12.0);
        let mut reg = r.metrics();
        let j = reg.to_json();
        assert!(j.contains("\"cache.hit\":7"));
        assert!(j.contains("\"pending.last\":3"));
        assert!(j.contains("\"turnaround_s.p95\":12"));
    }

    #[test]
    fn empty_registry() {
        let reg = MetricsRegistry::from_records(&[]);
        assert!(reg.is_empty());
    }
}
