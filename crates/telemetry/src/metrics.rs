//! In-process aggregation of metric samples.
//!
//! The recorder buffers raw samples; this registry folds them into the
//! existing `lfm_simcluster::metrics` aggregate types — counters sum,
//! gauges become a [`Summary`] series (plus last value), histogram samples
//! become an exact-percentile [`Histogram`] — until a series passes
//! [`HISTOGRAM_FOLD_THRESHOLD`] samples, at which point it folds into a
//! bounded [`SparseHistogram`] sketch (relative-error quantiles, memory
//! independent of sample count). The fold point is a pure function of the
//! sample count, so identical record streams always produce identical
//! aggregates.

use crate::record::{MetricKind, Record};
use lfm_monitor::summary::JsonObject;
use lfm_simcluster::metrics::{Histogram, SparseHistogram, Summary};
use std::collections::BTreeMap;

/// Above this many samples a histogram series folds into a bounded
/// [`SparseHistogram`]; below it, every sample is kept and percentiles are
/// exact. Batch experiments (hundreds of turnaround samples) stay on the
/// exact path and keep byte-identical trace summaries; serving-scale
/// streams (millions of invocation latencies) are bounded at a few
/// hundred buckets with 1% relative-error quantiles.
pub const HISTOGRAM_FOLD_THRESHOLD: usize = 16_384;

/// A histogram series that is exact while small and a bounded sketch once
/// it crosses [`HISTOGRAM_FOLD_THRESHOLD`]. The fold replays the retained
/// samples into the sketch, so the transition depends only on how many
/// samples arrived — never on timing — and identical streams fold
/// identically.
#[derive(Debug, Clone)]
pub enum FoldedHistogram {
    /// Every sample retained; percentiles exact.
    Exact(Histogram),
    /// Bounded DDSketch-style buckets; percentiles within 1% relative error.
    Sketch(SparseHistogram),
}

impl Default for FoldedHistogram {
    fn default() -> Self {
        FoldedHistogram::Exact(Histogram::new())
    }
}

impl FoldedHistogram {
    fn record(&mut self, x: f64) {
        match self {
            FoldedHistogram::Exact(h) => {
                h.record(x);
                if h.count() > HISTOGRAM_FOLD_THRESHOLD {
                    let mut sketch = SparseHistogram::new();
                    for v in h.iter() {
                        sketch.record(v);
                    }
                    *self = FoldedHistogram::Sketch(sketch);
                }
            }
            FoldedHistogram::Sketch(s) => s.record(x),
        }
    }

    pub fn count(&self) -> u64 {
        match self {
            FoldedHistogram::Exact(h) => h.count() as u64,
            FoldedHistogram::Sketch(s) => s.count(),
        }
    }

    /// True once the series has folded into the bounded sketch.
    pub fn is_sketch(&self) -> bool {
        matches!(self, FoldedHistogram::Sketch(_))
    }

    pub fn percentile(&mut self, p: f64) -> f64 {
        match self {
            FoldedHistogram::Exact(h) => h.percentile(p),
            FoldedHistogram::Sketch(s) => s.percentile(p),
        }
    }

    pub fn p50(&mut self) -> f64 {
        self.percentile(50.0)
    }

    pub fn p95(&mut self) -> f64 {
        self.percentile(95.0)
    }

    pub fn p99(&mut self) -> f64 {
        self.percentile(99.0)
    }

    pub fn max(&mut self) -> f64 {
        match self {
            FoldedHistogram::Exact(h) => h.max(),
            FoldedHistogram::Sketch(s) => s.max(),
        }
    }
}

/// Aggregated view of a record stream's metric samples.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, (Summary, f64)>,
    histograms: BTreeMap<String, FoldedHistogram>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold a merged record stream (spans and instants are skipped).
    pub fn from_records(records: &[Record]) -> Self {
        let mut reg = Self::new();
        for record in records {
            reg.observe_record(record);
        }
        reg
    }

    /// Fold one record (the streaming counterpart of
    /// [`MetricsRegistry::from_records`]: feeding records one at a time
    /// produces the same registry as folding the whole slice). Spans and
    /// instants are skipped.
    pub fn observe_record(&mut self, record: &Record) {
        let Record::Metric(m) = record else { return };
        match m.kind {
            MetricKind::Counter => {
                *self.counters.entry(m.name.clone()).or_insert(0) += m.value as u64;
            }
            MetricKind::Gauge => {
                let entry = self
                    .gauges
                    .entry(m.name.clone())
                    .or_insert_with(|| (Summary::new(), 0.0));
                entry.0.record(m.value);
                entry.1 = m.value;
            }
            MetricKind::Histogram => {
                self.histograms
                    .entry(m.name.clone())
                    .or_default()
                    .record(m.value);
            }
        }
    }

    /// Total of a counter; 0 if never emitted.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Streaming summary of every value a gauge took.
    pub fn gauge_summary(&self, name: &str) -> Option<&Summary> {
        self.gauges.get(name).map(|(s, _)| s)
    }

    /// Last value a gauge was set to.
    pub fn gauge_last(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).map(|(_, v)| *v)
    }

    pub fn histogram(&self, name: &str) -> Option<&FoldedHistogram> {
        self.histograms.get(name)
    }

    pub fn histogram_mut(&mut self, name: &str) -> Option<&mut FoldedHistogram> {
        self.histograms.get_mut(name)
    }

    pub fn counter_names(&self) -> impl Iterator<Item = &str> {
        self.counters.keys().map(String::as_str)
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// One flat JSON object with every aggregate: counter totals, gauge
    /// mean/max/last, histogram p50/p95/p99. The runner binaries print this
    /// as the trace's companion summary line.
    pub fn to_json(&mut self) -> String {
        let mut o = JsonObject::new();
        for (name, total) in &self.counters {
            o.field_u64(name, *total);
        }
        for (name, (summary, last)) in &self.gauges {
            o.field_f64(&format!("{name}.mean"), summary.mean());
            o.field_f64(&format!("{name}.max"), summary.max());
            o.field_f64(&format!("{name}.last"), *last);
        }
        for (name, hist) in &mut self.histograms {
            o.field_u64(&format!("{name}.count"), hist.count());
            o.field_f64(&format!("{name}.p50"), hist.p50());
            o.field_f64(&format!("{name}.p95"), hist.p95());
            o.field_f64(&format!("{name}.p99"), hist.p99());
        }
        o.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;
    use lfm_simcluster::time::SimTime;

    #[test]
    fn aggregates_each_kind() {
        let r = Recorder::enabled();
        r.counter("hits", 2);
        r.counter("hits", 3);
        r.gauge("depth", 4.0, SimTime::from_secs(1.0));
        r.gauge("depth", 2.0, SimTime::from_secs(2.0));
        for v in [1.0, 2.0, 3.0, 4.0] {
            r.observe("lat", v);
        }
        let mut reg = r.metrics();
        assert_eq!(reg.counter("hits"), 5);
        assert_eq!(reg.counter("absent"), 0);
        assert_eq!(reg.gauge_last("depth"), Some(2.0));
        assert_eq!(reg.gauge_summary("depth").unwrap().max(), 4.0);
        let h = reg.histogram_mut("lat").unwrap();
        assert_eq!(h.count(), 4);
        assert_eq!(h.p50(), 2.0);
    }

    #[test]
    fn json_summary_contains_aggregates() {
        let r = Recorder::enabled();
        r.counter("cache.hit", 7);
        r.gauge("pending", 3.0, SimTime::from_secs(1.0));
        r.observe("turnaround_s", 12.0);
        let mut reg = r.metrics();
        let j = reg.to_json();
        assert!(j.contains("\"cache.hit\":7"));
        assert!(j.contains("\"pending.last\":3"));
        assert!(j.contains("\"turnaround_s.p95\":12"));
    }

    #[test]
    fn histogram_folds_to_bounded_sketch_past_threshold() {
        let mut h = FoldedHistogram::default();
        // Deterministic spread over three decades.
        for i in 0..HISTOGRAM_FOLD_THRESHOLD {
            h.record(0.001 * (1 + i % 1000) as f64);
        }
        assert!(!h.is_sketch(), "at the threshold the series is still exact");
        let exact_p99 = h.p99();
        h.record(0.5);
        assert!(h.is_sketch(), "one sample past the threshold folds it");
        assert_eq!(h.count(), HISTOGRAM_FOLD_THRESHOLD as u64 + 1);
        // The replayed sketch agrees with the exact percentile to within
        // its configured relative error (1%, doubled for rank rounding).
        let sketch_p99 = h.p99();
        assert!(
            (sketch_p99 - exact_p99).abs() / exact_p99 < 0.02,
            "sketch p99 {sketch_p99} vs exact {exact_p99}"
        );
        // Memory is bounded by occupied buckets, not sample count.
        let FoldedHistogram::Sketch(s) = &h else {
            unreachable!()
        };
        assert!(s.bucket_count() < 1_200, "buckets: {}", s.bucket_count());
    }

    #[test]
    fn folded_aggregation_is_deterministic() {
        let run = || {
            let r = Recorder::enabled();
            for i in 0..(HISTOGRAM_FOLD_THRESHOLD + 100) {
                r.observe("lat", 0.0001 * (1 + i % 3000) as f64);
            }
            r.metrics().to_json()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn empty_registry() {
        let reg = MetricsRegistry::from_records(&[]);
        assert!(reg.is_empty());
    }

    #[test]
    fn incremental_observe_matches_batch_fold() {
        let r = Recorder::enabled();
        for i in 0..200u64 {
            r.counter("hits", i % 3);
            r.gauge("depth", (i % 11) as f64, SimTime::from_secs(i as f64));
            r.observe("lat", 0.01 * (1 + i % 50) as f64);
        }
        let records = r.take();
        let mut batch = MetricsRegistry::from_records(&records);
        let mut inc = MetricsRegistry::new();
        for rec in &records {
            inc.observe_record(rec);
        }
        assert_eq!(inc.to_json(), batch.to_json());
    }
}
