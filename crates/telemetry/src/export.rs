//! Exporters: Chrome trace-event JSON and flat JSONL.
//!
//! The Chrome exporter emits the object form of the trace-event format
//! (`{"traceEvents":[...]}`) that `chrome://tracing` and Perfetto load
//! directly: spans become complete (`"X"`) events with microsecond
//! timestamps, instants become thread-scoped `"i"` events, and timed
//! counters/gauges become counter (`"C"`) tracks (counters plot their
//! running total). Untimed metric samples have no place on a timeline;
//! their aggregate totals ride along in a top-level `otherData` object.
//!
//! Everything is built with the same hand-rolled JSON writer the resource
//! monitor's summaries use ([`lfm_monitor::summary::JsonObject`]) — the
//! dependency set has no JSON crate, and the documents are flat. Output is
//! byte-deterministic for a deterministic record stream (pinned by a
//! golden integration test).

pub use crate::perfetto::{perfetto_trace, validate_trace, write_perfetto_trace, TraceStats};

use crate::metrics::MetricsRegistry;
use crate::record::{AttrValue, Record};
use lfm_monitor::summary::JsonObject;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::Path;

const MICROS: f64 = 1e6;

fn attr_field(o: &mut JsonObject, key: &str, value: &AttrValue) {
    match value {
        AttrValue::U64(v) => o.field_u64(key, *v),
        AttrValue::F64(v) => o.field_f64(key, *v),
        AttrValue::Str(v) => o.field_str(key, v),
    };
}

fn args_object(task: Option<u64>, attempt: Option<u32>, attrs: &[(String, AttrValue)]) -> String {
    let mut o = JsonObject::new();
    if let Some(t) = task {
        o.field_u64("task", t);
    }
    if let Some(a) = attempt {
        o.field_u64("attempt", a as u64);
    }
    for (k, v) in attrs {
        attr_field(&mut o, k, v);
    }
    o.finish()
}

/// Render a record stream as a Chrome trace-event JSON document.
pub fn chrome_trace(records: &[Record]) -> String {
    let mut events: Vec<String> = Vec::with_capacity(records.len() + 1);

    // Name the process lane once up front.
    let mut meta = JsonObject::new();
    meta.field_str("name", "process_name")
        .field_str("ph", "M")
        .field_u64("pid", 1)
        .field_raw("args", "{\"name\":\"lfm-sim\"}");
    events.push(meta.finish());

    // Counters plot running totals.
    let mut totals: BTreeMap<&str, f64> = BTreeMap::new();

    for record in records {
        match record {
            Record::Span(s) => {
                let mut o = JsonObject::new();
                o.field_str("name", &s.name)
                    .field_str("cat", &s.cat)
                    .field_str("ph", "X")
                    .field_f64("ts", s.start_secs * MICROS)
                    .field_f64("dur", s.duration_secs() * MICROS)
                    .field_u64("pid", 1)
                    .field_u64("tid", s.track)
                    .field_raw("args", &args_object(s.task, s.attempt, &s.attrs));
                events.push(o.finish());
            }
            Record::Instant(i) => {
                let mut o = JsonObject::new();
                o.field_str("name", &i.name)
                    .field_str("cat", &i.cat)
                    .field_str("ph", "i")
                    .field_str("s", "t")
                    .field_f64("ts", i.at_secs * MICROS)
                    .field_u64("pid", 1)
                    .field_u64("tid", i.track)
                    .field_raw("args", &args_object(i.task, i.attempt, &i.attrs));
                events.push(o.finish());
            }
            Record::Metric(m) => {
                let Some(at) = m.at_secs else { continue };
                let value = match m.kind {
                    crate::record::MetricKind::Counter => {
                        let total = totals.entry(m.name.as_str()).or_insert(0.0);
                        *total += m.value;
                        *total
                    }
                    _ => m.value,
                };
                let mut args = JsonObject::new();
                args.field_f64("value", value);
                let mut o = JsonObject::new();
                o.field_str("name", &m.name)
                    .field_str("ph", "C")
                    .field_f64("ts", at * MICROS)
                    .field_u64("pid", 1)
                    .field_u64("tid", 0)
                    .field_raw("args", &args.finish());
                events.push(o.finish());
            }
        }
    }

    let mut doc = JsonObject::new();
    doc.field_raw("traceEvents", &format!("[{}]", events.join(",")))
        .field_str("displayTimeUnit", "ms")
        .field_raw(
            "otherData",
            &MetricsRegistry::from_records(records).to_json(),
        );
    doc.finish()
}

/// Render a record stream as JSONL: one self-describing object per line,
/// for scripted analysis (`jq`, pandas).
pub fn jsonl(records: &[Record]) -> String {
    let mut out = String::new();
    for record in records {
        let mut o = JsonObject::new();
        match record {
            Record::Span(s) => {
                o.field_str("type", "span")
                    .field_u64("seq", s.seq)
                    .field_str("name", &s.name)
                    .field_str("cat", &s.cat)
                    .field_f64("start_s", s.start_secs)
                    .field_f64("end_s", s.end_secs)
                    .field_f64("dur_s", s.duration_secs())
                    .field_u64("track", s.track)
                    .field_u64("depth", s.depth as u64)
                    .field_raw("args", &args_object(s.task, s.attempt, &s.attrs));
            }
            Record::Instant(i) => {
                o.field_str("type", "instant")
                    .field_u64("seq", i.seq)
                    .field_str("name", &i.name)
                    .field_str("cat", &i.cat)
                    .field_f64("at_s", i.at_secs)
                    .field_u64("track", i.track)
                    .field_raw("args", &args_object(i.task, i.attempt, &i.attrs));
            }
            Record::Metric(m) => {
                o.field_str(
                    "type",
                    match m.kind {
                        crate::record::MetricKind::Counter => "counter",
                        crate::record::MetricKind::Gauge => "gauge",
                        crate::record::MetricKind::Histogram => "observe",
                    },
                )
                .field_u64("seq", m.seq)
                .field_str("name", &m.name)
                .field_f64("value", m.value);
                if let Some(at) = m.at_secs {
                    o.field_f64("at_s", at);
                }
            }
        }
        out.push_str(&o.finish());
        out.push('\n');
    }
    out
}

/// Write the Chrome trace for `records` to `path`.
pub fn write_chrome_trace(path: &Path, records: &[Record]) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(chrome_trace(records).as_bytes())
}

/// Write the JSONL dump for `records` to `path`.
pub fn write_jsonl(path: &Path, records: &[Record]) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(jsonl(records).as_bytes())
}

/// Strict structural JSON validator (no value model — it only answers "is
/// this well-formed?"). The dependency set has no JSON parser; the trace
/// tests use this to prove exporter output actually loads.
pub fn validate_json(s: &str) -> Result<(), String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_lit(b, pos, b"true"),
        Some(b'f') => parse_lit(b, pos, b"false"),
        Some(b'n') => parse_lit(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:#x} at {pos:?}")),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut digits = 0;
    while *pos < b.len() && b[*pos].is_ascii_digit() {
        *pos += 1;
        digits += 1;
    }
    if digits == 0 {
        return Err(format!("bad number at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        let mut frac = 0;
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
            frac += 1;
        }
        if frac == 0 {
            return Err(format!("bad fraction at byte {start}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e') | Some(b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+') | Some(b'-')) {
            *pos += 1;
        }
        let mut exp = 0;
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
            exp += 1;
        }
        if exp == 0 {
            return Err(format!("bad exponent at byte {start}"));
        }
    }
    Ok(())
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        for i in 1..=4 {
                            if !b.get(*pos + i).is_some_and(u8::is_ascii_hexdigit) {
                                return Err(format!("bad \\u escape at byte {}", *pos));
                            }
                        }
                        *pos += 5;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
            }
            c if c < 0x20 => return Err(format!("raw control byte at {}", *pos)),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {}", *pos));
        }
        *pos += 1;
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;
    use lfm_simcluster::time::SimTime;

    fn sample_recorder() -> Recorder {
        let r = Recorder::enabled();
        r.span("exec", "lfm")
            .at(SimTime::from_secs(1.0), SimTime::from_secs(3.5))
            .track(2)
            .task(9)
            .attempt(0)
            .attr("polls", 3u64)
            .attr("outcome", "completed")
            .emit();
        r.instant("kill", "lfm")
            .at(SimTime::from_secs(3.5))
            .track(2)
            .task(9)
            .emit();
        r.counter_at("event.task_done", 1, SimTime::from_secs(3.5));
        r.counter_at("event.task_done", 1, SimTime::from_secs(4.0));
        r.gauge("pending", 5.0, SimTime::from_secs(2.0));
        r.counter("cache.hit", 4);
        r.observe("turnaround_s", 3.5);
        r
    }

    #[test]
    fn chrome_trace_is_valid_json_with_expected_events() {
        let trace = chrome_trace(&sample_recorder().take());
        validate_json(&trace).expect("chrome trace must be valid JSON");
        assert!(trace.starts_with("{\"traceEvents\":["));
        assert!(trace.contains("\"ph\":\"X\""), "span event");
        assert!(trace.contains("\"ph\":\"i\""), "instant event");
        assert!(trace.contains("\"ph\":\"C\""), "counter event");
        assert!(trace.contains("\"ph\":\"M\""), "metadata event");
        // Span: 1.0 s -> 1e6 us, 2.5 s duration.
        assert!(trace.contains("\"ts\":1000000"), "{trace}");
        assert!(trace.contains("\"dur\":2500000"));
        // Counter track plots the running total: second sample reads 2.
        assert!(trace.contains("\"value\":2"));
        // Untimed aggregates land in otherData.
        assert!(trace.contains("\"otherData\":{"));
        assert!(trace.contains("\"cache.hit\":4"));
        assert!(trace.contains("\"turnaround_s.p95\":3.5"));
    }

    #[test]
    fn jsonl_one_valid_object_per_record() {
        let records = sample_recorder().take();
        let dump = jsonl(&records);
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), records.len());
        for line in &lines {
            validate_json(line).expect("each JSONL line must be valid JSON");
        }
        assert!(lines[0].contains("\"type\":\"span\""));
        assert!(dump.contains("\"type\":\"counter\""));
        assert!(dump.contains("\"type\":\"gauge\""));
        assert!(dump.contains("\"type\":\"observe\""));
    }

    #[test]
    fn empty_stream_exports_cleanly() {
        let trace = chrome_trace(&[]);
        validate_json(&trace).unwrap();
        assert_eq!(jsonl(&[]), "");
    }

    #[test]
    fn validator_rejects_malformed() {
        for bad in [
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1,}",
            "\"unterminated",
            "01a",
            "{\"a\":1}extra",
            "nul",
            "1.",
            "[\"\\x\"]",
        ] {
            assert!(validate_json(bad).is_err(), "accepted: {bad}");
        }
        for good in [
            "{}",
            "[]",
            "null",
            "-1.5e-3",
            "{\"a\":[1,2,{\"b\":\"c\\n\"}],\"d\":true}",
            "\"\\u00e9\"",
        ] {
            assert!(validate_json(good).is_ok(), "rejected: {good}");
        }
    }
}
