//! Exporters: Chrome trace-event JSON, flat JSONL, and Perfetto — all
//! behind one streaming [`TraceSink`] interface.
//!
//! The Chrome exporter emits the object form of the trace-event format
//! (`{"traceEvents":[...]}`) that `chrome://tracing` and Perfetto load
//! directly: spans become complete (`"X"`) events with microsecond
//! timestamps, instants become thread-scoped `"i"` events, and timed
//! counters/gauges become counter (`"C"`) tracks (counters plot their
//! running total). Untimed metric samples have no place on a timeline;
//! their aggregate totals ride along in a top-level `otherData` object.
//!
//! ### The sink API
//!
//! Every exporter implements [`TraceSink`] — `begin` once, `record` per
//! record, `finish` once — so the same code path serves both post-hoc
//! export (feed a full `take()`d stream) and live streaming (feed each
//! [`crate::Recorder::drain_since`] batch as it arrives, which is what
//! `--trace <fmt>:stream` does in the runner binaries). [`ChromeSink`]
//! and [`JsonlSink`] write incrementally with O(distinct metric names)
//! state; the Perfetto sinks are in [`crate::perfetto`] ([`PerfettoSink`]
//! buffered + byte-identical to [`perfetto_trace`],
//! [`PerfettoStreamSink`] incremental + bounded). The slice-based
//! [`chrome_trace`] / [`jsonl`] / [`write_chrome_trace`] /
//! [`write_jsonl`] functions are legacy shims implemented over the sinks
//! (kept because their output is pinned byte-for-byte by golden tests —
//! prefer the sinks in new code).
//!
//! Everything is built with the same hand-rolled JSON writer the resource
//! monitor's summaries use ([`lfm_monitor::summary::JsonObject`]) — the
//! dependency set has no JSON crate, and the documents are flat. Output is
//! byte-deterministic for a deterministic record stream (pinned by a
//! golden integration test).

pub use crate::perfetto::{
    perfetto_trace, validate_trace, write_perfetto_trace, PerfettoSink, PerfettoStreamSink,
    TraceStats,
};

use crate::metrics::MetricsRegistry;
use crate::record::{AttrValue, Record};
use lfm_monitor::summary::JsonObject;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;

/// A streaming trace exporter: `begin` once, `record` per record in
/// merged `seq` order, `finish` once to terminate the document. Sinks
/// write to their inner writer as records arrive; how much state they
/// buffer between calls is reported by
/// [`TraceSink::buffered_records`] (the live-streaming memory bound
/// asserted in `bench_tail`).
pub trait TraceSink {
    /// Write the document preamble. Must be called exactly once, first.
    fn begin(&mut self) -> std::io::Result<()>;
    /// Feed the next record of the merged stream.
    fn record(&mut self, record: &Record) -> std::io::Result<()>;
    /// Terminate the document and flush the inner writer.
    fn finish(&mut self) -> std::io::Result<()>;
    /// Records the sink is currently holding back from its writer — 0 for
    /// the truly incremental sinks, the full stream length for buffered
    /// ones (like [`PerfettoSink`], which needs a global sort).
    fn buffered_records(&self) -> usize {
        0
    }
}

/// Drive a sink over a whole record stream: `begin`, every record in
/// iterator order, `finish`.
pub fn export_records<I>(sink: &mut dyn TraceSink, records: I) -> std::io::Result<()>
where
    I: IntoIterator<Item = Record>,
{
    sink.begin()?;
    for record in records {
        sink.record(&record)?;
    }
    sink.finish()
}

/// Streaming Chrome trace-event sink. Incremental state is one running
/// total per counter name plus the [`MetricsRegistry`] that becomes
/// `otherData` — bounded by distinct metric names, not run length. Output
/// is byte-identical to [`chrome_trace`] (which is implemented over this
/// sink).
pub struct ChromeSink<W: Write> {
    w: W,
    totals: BTreeMap<String, f64>,
    registry: MetricsRegistry,
}

impl<W: Write> ChromeSink<W> {
    pub fn new(w: W) -> Self {
        ChromeSink {
            w,
            totals: BTreeMap::new(),
            registry: MetricsRegistry::new(),
        }
    }

    /// Recover the inner writer (call after [`TraceSink::finish`]).
    pub fn into_inner(self) -> W {
        self.w
    }
}

impl<W: Write> TraceSink for ChromeSink<W> {
    fn begin(&mut self) -> std::io::Result<()> {
        // Document preamble + the process-name metadata event, so every
        // later event writes as ",<event>".
        let mut meta = JsonObject::new();
        meta.field_str("name", "process_name")
            .field_str("ph", "M")
            .field_u64("pid", 1)
            .field_raw("args", "{\"name\":\"lfm-sim\"}");
        write!(self.w, "{{\"traceEvents\":[{}", meta.finish())
    }

    fn record(&mut self, record: &Record) -> std::io::Result<()> {
        self.registry.observe_record(record);
        let event = match record {
            Record::Span(s) => {
                let mut o = JsonObject::new();
                o.field_str("name", &s.name)
                    .field_str("cat", &s.cat)
                    .field_str("ph", "X")
                    .field_f64("ts", s.start_secs * MICROS)
                    .field_f64("dur", s.duration_secs() * MICROS)
                    .field_u64("pid", 1)
                    .field_u64("tid", s.track)
                    .field_raw("args", &args_object(s.task, s.attempt, &s.attrs));
                o.finish()
            }
            Record::Instant(i) => {
                let mut o = JsonObject::new();
                o.field_str("name", &i.name)
                    .field_str("cat", &i.cat)
                    .field_str("ph", "i")
                    .field_str("s", "t")
                    .field_f64("ts", i.at_secs * MICROS)
                    .field_u64("pid", 1)
                    .field_u64("tid", i.track)
                    .field_raw("args", &args_object(i.task, i.attempt, &i.attrs));
                o.finish()
            }
            Record::Metric(m) => {
                let Some(at) = m.at_secs else { return Ok(()) };
                let value = match m.kind {
                    crate::record::MetricKind::Counter => {
                        let total = self.totals.entry(m.name.clone()).or_insert(0.0);
                        *total += m.value;
                        *total
                    }
                    _ => m.value,
                };
                let mut args = JsonObject::new();
                args.field_f64("value", value);
                let mut o = JsonObject::new();
                o.field_str("name", &m.name)
                    .field_str("ph", "C")
                    .field_f64("ts", at * MICROS)
                    .field_u64("pid", 1)
                    .field_u64("tid", 0)
                    .field_raw("args", &args.finish());
                o.finish()
            }
        };
        write!(self.w, ",{event}")
    }

    fn finish(&mut self) -> std::io::Result<()> {
        write!(
            self.w,
            "],\"displayTimeUnit\":\"ms\",\"otherData\":{}}}",
            self.registry.to_json()
        )?;
        self.w.flush()
    }
}

/// Streaming JSONL sink: one self-describing object per record, written
/// as it arrives. No buffered state at all.
pub struct JsonlSink<W: Write> {
    w: W,
}

impl<W: Write> JsonlSink<W> {
    pub fn new(w: W) -> Self {
        JsonlSink { w }
    }

    /// Recover the inner writer (call after [`TraceSink::finish`]).
    pub fn into_inner(self) -> W {
        self.w
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn begin(&mut self) -> std::io::Result<()> {
        Ok(())
    }

    fn record(&mut self, record: &Record) -> std::io::Result<()> {
        writeln!(self.w, "{}", jsonl_line(record))
    }

    fn finish(&mut self) -> std::io::Result<()> {
        self.w.flush()
    }
}

const MICROS: f64 = 1e6;

fn attr_field(o: &mut JsonObject, key: &str, value: &AttrValue) {
    match value {
        AttrValue::U64(v) => o.field_u64(key, *v),
        AttrValue::F64(v) => o.field_f64(key, *v),
        AttrValue::Str(v) => o.field_str(key, v),
    };
}

fn args_object(task: Option<u64>, attempt: Option<u32>, attrs: &[(String, AttrValue)]) -> String {
    let mut o = JsonObject::new();
    if let Some(t) = task {
        o.field_u64("task", t);
    }
    if let Some(a) = attempt {
        o.field_u64("attempt", a as u64);
    }
    for (k, v) in attrs {
        attr_field(&mut o, k, v);
    }
    o.finish()
}

/// One JSONL object for a record (no trailing newline).
fn jsonl_line(record: &Record) -> String {
    let mut o = JsonObject::new();
    match record {
        Record::Span(s) => {
            o.field_str("type", "span")
                .field_u64("seq", s.seq)
                .field_str("name", &s.name)
                .field_str("cat", &s.cat)
                .field_f64("start_s", s.start_secs)
                .field_f64("end_s", s.end_secs)
                .field_f64("dur_s", s.duration_secs())
                .field_u64("track", s.track)
                .field_u64("depth", s.depth as u64)
                .field_raw("args", &args_object(s.task, s.attempt, &s.attrs));
        }
        Record::Instant(i) => {
            o.field_str("type", "instant")
                .field_u64("seq", i.seq)
                .field_str("name", &i.name)
                .field_str("cat", &i.cat)
                .field_f64("at_s", i.at_secs)
                .field_u64("track", i.track)
                .field_raw("args", &args_object(i.task, i.attempt, &i.attrs));
        }
        Record::Metric(m) => {
            o.field_str(
                "type",
                match m.kind {
                    crate::record::MetricKind::Counter => "counter",
                    crate::record::MetricKind::Gauge => "gauge",
                    crate::record::MetricKind::Histogram => "observe",
                },
            )
            .field_u64("seq", m.seq)
            .field_str("name", &m.name)
            .field_f64("value", m.value);
            if let Some(at) = m.at_secs {
                o.field_f64("at_s", at);
            }
        }
    }
    o.finish()
}

/// Render a record stream as a Chrome trace-event JSON document.
///
/// Legacy slice shim over [`ChromeSink`] (byte-identical output); prefer
/// the sink for streaming or large traces.
pub fn chrome_trace(records: &[Record]) -> String {
    let mut sink = ChromeSink::new(Vec::new());
    export_records(&mut sink, records.iter().cloned()).expect("Vec write is infallible");
    String::from_utf8(sink.into_inner()).expect("JSON writer emits UTF-8")
}

/// Render a record stream as JSONL: one self-describing object per line,
/// for scripted analysis (`jq`, pandas).
///
/// Legacy slice shim over [`JsonlSink`] (byte-identical output); prefer
/// the sink for streaming or large traces.
pub fn jsonl(records: &[Record]) -> String {
    let mut sink = JsonlSink::new(Vec::new());
    export_records(&mut sink, records.iter().cloned()).expect("Vec write is infallible");
    String::from_utf8(sink.into_inner()).expect("JSON writer emits UTF-8")
}

/// Write the Chrome trace for `records` to `path` (streamed through
/// [`ChromeSink`]; legacy slice shim).
pub fn write_chrome_trace(path: &Path, records: &[Record]) -> std::io::Result<()> {
    let f = std::io::BufWriter::new(std::fs::File::create(path)?);
    let mut sink = ChromeSink::new(f);
    export_records(&mut sink, records.iter().cloned())
}

/// Write the JSONL dump for `records` to `path` (streamed through
/// [`JsonlSink`]; legacy slice shim).
pub fn write_jsonl(path: &Path, records: &[Record]) -> std::io::Result<()> {
    let f = std::io::BufWriter::new(std::fs::File::create(path)?);
    let mut sink = JsonlSink::new(f);
    export_records(&mut sink, records.iter().cloned())
}

/// Strict structural JSON validator (no value model — it only answers "is
/// this well-formed?"). The dependency set has no JSON parser; the trace
/// tests use this to prove exporter output actually loads.
pub fn validate_json(s: &str) -> Result<(), String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_lit(b, pos, b"true"),
        Some(b'f') => parse_lit(b, pos, b"false"),
        Some(b'n') => parse_lit(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:#x} at {pos:?}")),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut digits = 0;
    while *pos < b.len() && b[*pos].is_ascii_digit() {
        *pos += 1;
        digits += 1;
    }
    if digits == 0 {
        return Err(format!("bad number at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        let mut frac = 0;
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
            frac += 1;
        }
        if frac == 0 {
            return Err(format!("bad fraction at byte {start}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e') | Some(b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+') | Some(b'-')) {
            *pos += 1;
        }
        let mut exp = 0;
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
            exp += 1;
        }
        if exp == 0 {
            return Err(format!("bad exponent at byte {start}"));
        }
    }
    Ok(())
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        for i in 1..=4 {
                            if !b.get(*pos + i).is_some_and(u8::is_ascii_hexdigit) {
                                return Err(format!("bad \\u escape at byte {}", *pos));
                            }
                        }
                        *pos += 5;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
            }
            c if c < 0x20 => return Err(format!("raw control byte at {}", *pos)),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {}", *pos));
        }
        *pos += 1;
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;
    use lfm_simcluster::time::SimTime;

    fn sample_recorder() -> Recorder {
        let r = Recorder::enabled();
        r.span("exec", "lfm")
            .at(SimTime::from_secs(1.0), SimTime::from_secs(3.5))
            .track(2)
            .task(9)
            .attempt(0)
            .attr("polls", 3u64)
            .attr("outcome", "completed")
            .emit();
        r.instant("kill", "lfm")
            .at(SimTime::from_secs(3.5))
            .track(2)
            .task(9)
            .emit();
        r.counter_at("event.task_done", 1, SimTime::from_secs(3.5));
        r.counter_at("event.task_done", 1, SimTime::from_secs(4.0));
        r.gauge("pending", 5.0, SimTime::from_secs(2.0));
        r.counter("cache.hit", 4);
        r.observe("turnaround_s", 3.5);
        r
    }

    #[test]
    fn chrome_trace_is_valid_json_with_expected_events() {
        let trace = chrome_trace(&sample_recorder().take());
        validate_json(&trace).expect("chrome trace must be valid JSON");
        assert!(trace.starts_with("{\"traceEvents\":["));
        assert!(trace.contains("\"ph\":\"X\""), "span event");
        assert!(trace.contains("\"ph\":\"i\""), "instant event");
        assert!(trace.contains("\"ph\":\"C\""), "counter event");
        assert!(trace.contains("\"ph\":\"M\""), "metadata event");
        // Span: 1.0 s -> 1e6 us, 2.5 s duration.
        assert!(trace.contains("\"ts\":1000000"), "{trace}");
        assert!(trace.contains("\"dur\":2500000"));
        // Counter track plots the running total: second sample reads 2.
        assert!(trace.contains("\"value\":2"));
        // Untimed aggregates land in otherData.
        assert!(trace.contains("\"otherData\":{"));
        assert!(trace.contains("\"cache.hit\":4"));
        assert!(trace.contains("\"turnaround_s.p95\":3.5"));
    }

    #[test]
    fn jsonl_one_valid_object_per_record() {
        let records = sample_recorder().take();
        let dump = jsonl(&records);
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), records.len());
        for line in &lines {
            validate_json(line).expect("each JSONL line must be valid JSON");
        }
        assert!(lines[0].contains("\"type\":\"span\""));
        assert!(dump.contains("\"type\":\"counter\""));
        assert!(dump.contains("\"type\":\"gauge\""));
        assert!(dump.contains("\"type\":\"observe\""));
    }

    #[test]
    fn empty_stream_exports_cleanly() {
        let trace = chrome_trace(&[]);
        validate_json(&trace).unwrap();
        assert_eq!(jsonl(&[]), "");
    }

    #[test]
    fn chrome_sink_fed_in_batches_matches_slice_output() {
        let records = sample_recorder().take();
        let slice = chrome_trace(&records);
        let mut buf = Vec::new();
        let mut sink = ChromeSink::new(&mut buf);
        sink.begin().unwrap();
        // Uneven batches mimic live tail drains; bytes must not care.
        for chunk in records.chunks(3) {
            for r in chunk {
                sink.record(r).unwrap();
            }
        }
        sink.finish().unwrap();
        assert_eq!(sink.buffered_records(), 0, "chrome sink is incremental");
        drop(sink);
        assert_eq!(String::from_utf8(buf).unwrap(), slice);
    }

    #[test]
    fn jsonl_sink_fed_in_batches_matches_slice_output() {
        let records = sample_recorder().take();
        let slice = jsonl(&records);
        let mut buf = Vec::new();
        let mut sink = JsonlSink::new(&mut buf);
        sink.begin().unwrap();
        for chunk in records.chunks(2) {
            for r in chunk {
                sink.record(r).unwrap();
            }
        }
        sink.finish().unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), slice);
    }

    #[test]
    fn export_records_drives_the_full_sink_lifecycle() {
        let records = sample_recorder().take();
        let mut buf = Vec::new();
        let mut sink = ChromeSink::new(&mut buf);
        export_records(&mut sink, records.iter().cloned()).unwrap();
        drop(sink);
        assert_eq!(String::from_utf8(buf).unwrap(), chrome_trace(&records));
    }

    #[test]
    fn validator_rejects_malformed() {
        for bad in [
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1,}",
            "\"unterminated",
            "01a",
            "{\"a\":1}extra",
            "nul",
            "1.",
            "[\"\\x\"]",
        ] {
            assert!(validate_json(bad).is_err(), "accepted: {bad}");
        }
        for good in [
            "{}",
            "[]",
            "null",
            "-1.5e-3",
            "{\"a\":[1,2,{\"b\":\"c\\n\"}],\"d\":true}",
            "\"\\u00e9\"",
        ] {
            assert!(validate_json(good).is_ok(), "rejected: {good}");
        }
    }
}
