//! Live tailing: incremental consumption of the shard ring buffers while
//! the run is still producing.
//!
//! [`crate::Recorder::take`] / [`crate::Recorder::snapshot`] are
//! post-mortem drains: they decode the whole buffered stream at once. The
//! tailer turns the same binary wire streams into an *online* source — a
//! consumer polls [`crate::Recorder::drain_since`] with a [`TailCursor`]
//! and receives, each poll, exactly the records that became visible since
//! the previous poll, already k-way merged into global `seq` order.
//!
//! Three invariants make the cursor correct:
//!
//! 1. **Codec continuity.** A tail drain takes a shard's bytes *without*
//!    resetting its encoder state, so the chunks a cursor receives over
//!    time concatenate into the exact byte stream an undrained buffer
//!    would have held. Each [`ShardTail`] resumes its decoder from the
//!    state saved after the previous chunk
//!    ([`crate::wire::ShardDecoder`]'s resumable form) — the prefix is
//!    never re-decoded.
//! 2. **Sequence density.** Overflowing records are dropped *before* a
//!    sequence number is assigned, so the surviving global stream is
//!    dense. [`TailMerger`] exploits that: it emits records only while
//!    the head of its reorder buffer is contiguous with the last emitted
//!    `seq`, holding cross-shard stragglers (a record written to another
//!    shard after this poll already passed it) until the gap closes. The
//!    reorder buffer is therefore bounded by what the shards themselves
//!    can hold — memory stays constant no matter how long the run is.
//! 3. **Drop accounting.** Overflow between polls surfaces as
//!    [`TailBatch::dropped_delta`] (computed from a monotonic lifetime
//!    counter, so it survives `take`'s reset of the per-epoch counter) —
//!    never as a decode error and never as a permanently-stalled gap.
//!
//! Truncated input — a consumer tailing *shipped* bytes that end
//! mid-record — yields [`TailPoll::NeedMoreData`] and resumes cleanly
//! when the rest arrives; only genuinely corrupt bytes produce a
//! [`DecodeError`]. In-process drains always hand out whole records (the
//! encoder appends atomically under the shard lock), so `NeedMoreData`
//! there only means "buffer exhausted".

use crate::record::Record;
use crate::wire::{CodecState, DecodeError, ShardDecoder};
use std::collections::VecDeque;

/// Result of one [`ShardTail::poll`].
#[derive(Debug, PartialEq)]
pub enum TailPoll {
    /// The next record in this shard's stream.
    Record(Record),
    /// The buffered bytes end cleanly or mid-record; feed more and poll
    /// again. Never an error: a chunk boundary is not corruption.
    NeedMoreData,
}

/// Incremental decoder over one shard's wire stream, fed chunk by chunk.
///
/// Bytes that arrive truncated mid-record stay buffered until the rest is
/// fed; the decoder state only advances past *complete* records, so a
/// failed attempt is invisible (no partial state, no re-decode of the
/// prefix once the record completes).
#[derive(Debug, Default)]
pub struct ShardTail {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted away periodically).
    pos: usize,
    /// Decoder state after the last complete record.
    st: CodecState,
    /// Decoded records not yet handed out. Sequence numbers are claimed
    /// under the shard lock, so within one shard they are strictly
    /// increasing — this queue is always sorted, which is what lets
    /// [`TailMerger`] merge without a per-record reorder structure.
    ready: VecDeque<Record>,
    /// First real corruption error, if any; the tail fuses on it.
    failed: Option<DecodeError>,
}

impl ShardTail {
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a chunk of the shard's wire stream.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact the consumed prefix before growing: keeps the buffer
        // bounded by (undecoded tail + chunk), not by stream length.
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Decode every complete record currently buffered into the ready
    /// queue with a single decoder pass, committing position and codec
    /// state after each success — a trailing truncated record is simply
    /// never committed, so it retries when more bytes arrive. One decoder
    /// per fill (not per record) is what keeps the live path within the
    /// post-hoc decoder's throughput.
    fn fill(&mut self) {
        if self.failed.is_some() || self.pos >= self.buf.len() {
            return;
        }
        let mut dec = ShardDecoder::with_state(&self.buf[self.pos..], self.st);
        let mut committed = (0usize, self.st);
        loop {
            match dec.next() {
                Some(Ok(record)) => {
                    committed = (dec.position(), dec.state());
                    self.ready.push_back(record);
                }
                Some(Err(DecodeError::Truncated { .. })) | None => break,
                Some(Err(e)) => {
                    self.failed = Some(e);
                    break;
                }
            }
        }
        self.pos += committed.0;
        self.st = committed.1;
    }

    /// Decode the next record, if a complete one is buffered.
    ///
    /// `Err` only on real corruption (bad tag / unknown name / impossible
    /// field); the tail then fuses — corrupt streams cannot resync.
    /// Records decoded before the corruption point are still handed out
    /// first.
    pub fn poll(&mut self) -> Result<TailPoll, DecodeError> {
        if self.ready.is_empty() {
            self.fill();
        }
        if let Some(record) = self.ready.pop_front() {
            return Ok(TailPoll::Record(record));
        }
        if let Some(e) = &self.failed {
            return Err(e.clone());
        }
        Ok(TailPoll::NeedMoreData)
    }

    /// Sequence number of the next ready record, if any is decoded.
    fn head_seq(&self) -> Option<u64> {
        self.ready.front().map(Record::seq)
    }

    fn pop_ready(&mut self) -> Record {
        self.ready.pop_front().expect("pop_ready on empty queue")
    }

    fn error(&self) -> Option<&DecodeError> {
        self.failed.as_ref()
    }

    /// Bytes buffered but not yet decoded (diagnostics / memory bound).
    pub fn buffered_bytes(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// Incremental k-way merge of the per-shard tail streams on `seq`.
///
/// The post-hoc [`crate::MergeDecoder`] sees every shard's full stream up
/// front; this merger accepts mid-stream appends. Because the live global
/// stream is sequence-dense, emission is gated on contiguity: records are
/// released only while `seq` matches the next expected value, and
/// stragglers wait in their shard's (already sorted) ready queue — the
/// reorder buffer *is* the set of ready queues, so merging costs one
/// shard-head scan per record and no per-record allocation.
#[derive(Debug)]
pub struct TailMerger {
    tails: Vec<ShardTail>,
    /// Next seq to emit; `None` right after a resync, when the merger
    /// re-bases on the minimum ready seq (the records below it were
    /// consumed elsewhere and will never arrive).
    next_seq: Option<u64>,
    errors: Vec<DecodeError>,
}

impl TailMerger {
    pub fn new(shards: usize) -> Self {
        TailMerger {
            tails: (0..shards).map(|_| ShardTail::new()).collect(),
            next_seq: Some(0),
            errors: Vec::new(),
        }
    }

    /// Append a chunk of shard `shard`'s wire stream.
    pub fn feed(&mut self, shard: usize, bytes: &[u8]) {
        self.tails[shard].feed(bytes);
    }

    /// Decode everything decodable and emit the contiguous run of records
    /// starting at the next expected `seq`, in global order.
    pub fn poll(&mut self) -> Vec<Record> {
        for tail in &mut self.tails {
            tail.fill();
            if let Some(e) = tail.error() {
                // A corrupt shard stops contributing (mirroring
                // MergeDecoder); the healthy shards keep merging.
                if !self.errors.contains(e) {
                    self.errors.push(e.clone());
                }
            }
        }
        // Size for the common case (everything decoded gets emitted):
        // growing from empty every poll would memcpy the batch log(n)
        // times, which the post-hoc decoder never pays.
        let mut out = Vec::with_capacity(self.pending_len());
        if self.next_seq.is_none() {
            // Post-resync: adopt the smallest surviving seq as the new
            // base. (Everything below it was drained by `take`.)
            self.next_seq = self.tails.iter().filter_map(ShardTail::head_seq).min();
        }
        let Some(mut next) = self.next_seq else {
            return out;
        };
        // The stream is dense, so at most one shard head can carry `next`;
        // `hint` remembers which shard matched last, making the common
        // case (a run of records from one producer thread) a single probe.
        let n = self.tails.len();
        let mut hint = 0;
        'merge: loop {
            for off in 0..n {
                let i = (hint + off) % n;
                if self.tails[i].head_seq() == Some(next) {
                    out.push(self.tails[i].pop_ready());
                    next += 1;
                    hint = i;
                    continue 'merge;
                }
            }
            break;
        }
        self.next_seq = Some(next);
        out
    }

    /// Emit everything still pending, gaps and all (end of run: the
    /// producer is done, so no straggler can fill them anymore).
    pub fn flush(&mut self) -> Vec<Record> {
        let mut out: Vec<Record> = Vec::new();
        for tail in &mut self.tails {
            out.extend(tail.ready.drain(..));
        }
        out.sort_by_key(Record::seq);
        if let (Some(last), Some(next)) = (out.last(), &mut self.next_seq) {
            *next = (*next).max(last.seq() + 1);
        }
        out
    }

    /// Forget per-shard decode state and re-base the contiguity gate: a
    /// `take` drained (and reset) the shards behind the merger's back, so
    /// buffered decoder state no longer matches the byte streams and gaps
    /// below the surviving records will never fill.
    pub fn resync(&mut self) -> Vec<Record> {
        let flushed = self.flush();
        for tail in &mut self.tails {
            *tail = ShardTail::new();
        }
        self.next_seq = None;
        flushed
    }

    /// Records decoded but still held back (gated on a sequence gap or
    /// simply not yet polled); bounded by shard capacity.
    pub fn pending_len(&self) -> usize {
        self.tails.iter().map(|t| t.ready.len()).sum()
    }

    /// Undecoded bytes buffered across all shard tails.
    pub fn buffered_bytes(&self) -> usize {
        self.tails.iter().map(ShardTail::buffered_bytes).sum()
    }

    /// Corruption errors hit so far (never includes truncation).
    pub fn errors(&self) -> &[DecodeError] {
        &self.errors
    }
}

/// Position of one tail consumer in a recorder's live stream. Create with
/// [`crate::Recorder::cursor`], advance with
/// [`crate::Recorder::drain_since`].
#[derive(Debug)]
pub struct TailCursor {
    merger: TailMerger,
    epoch: u64,
    dropped_seen: u64,
    /// Records flushed by an epoch resync, delivered with the next poll.
    carry: Vec<Record>,
}

/// One poll's worth of the live stream.
#[derive(Debug, Default, PartialEq)]
pub struct TailBatch {
    /// Records that became visible since the last poll, in `seq` order.
    pub records: Vec<Record>,
    /// Records dropped at full shards since the last poll — the live
    /// counterpart of the synthetic `telemetry.dropped_events` counter.
    pub dropped_delta: u64,
}

impl TailCursor {
    pub(crate) fn new(shards: usize, epoch: u64) -> Self {
        TailCursor {
            merger: TailMerger::new(shards),
            epoch,
            dropped_seen: 0,
            carry: Vec::new(),
        }
    }

    pub(crate) fn observe_epoch(&mut self, epoch: u64) {
        if epoch != self.epoch {
            self.epoch = epoch;
            let flushed = self.merger.resync();
            self.carry.extend(flushed);
        }
    }

    pub(crate) fn feed(&mut self, shard: usize, bytes: &[u8]) {
        self.merger.feed(shard, bytes);
    }

    pub(crate) fn poll(&mut self) -> Vec<Record> {
        let mut out = std::mem::take(&mut self.carry);
        out.extend(self.merger.poll());
        out
    }

    pub(crate) fn flush(&mut self) -> Vec<Record> {
        let mut out = std::mem::take(&mut self.carry);
        out.extend(self.merger.flush());
        out
    }

    pub(crate) fn observe_dropped(&mut self, total: u64) -> u64 {
        let delta = total.saturating_sub(self.dropped_seen);
        self.dropped_seen = total;
        delta
    }

    /// Records held for contiguity (bounded by the shard capacities).
    pub fn pending_len(&self) -> usize {
        self.merger.pending_len() + self.carry.len()
    }

    /// Undecoded bytes buffered in the cursor.
    pub fn buffered_bytes(&self) -> usize {
        self.merger.buffered_bytes()
    }

    /// Corruption errors hit so far (truncation is never an error).
    pub fn errors(&self) -> &[DecodeError] {
        self.merger.errors()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intern::Name;
    use crate::record::MetricKind;
    use crate::wire::encode_metric;
    use crate::Recorder;

    fn counter_stream(seqs: &[u64]) -> Vec<u8> {
        let mut buf = Vec::new();
        let mut st = CodecState::default();
        let name = Name::intern("tail.test.counter");
        for &seq in seqs {
            encode_metric(&mut buf, &mut st, seq, name, MetricKind::Counter, 1.0, None);
        }
        buf
    }

    #[test]
    fn shard_tail_resumes_across_arbitrary_chunk_boundaries() {
        let buf = counter_stream(&[0, 1, 2, 3, 4]);
        // Feed one byte at a time: every record must eventually decode,
        // with NeedMoreData (never an error) in between.
        let mut tail = ShardTail::new();
        let mut got = Vec::new();
        for &b in &buf {
            tail.feed(&[b]);
            while let TailPoll::Record(r) = tail.poll().expect("truncation must not error") {
                got.push(r.seq());
            }
        }
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        assert_eq!(tail.buffered_bytes(), 0);
    }

    #[test]
    fn shard_tail_fuses_on_corruption() {
        let mut tail = ShardTail::new();
        tail.feed(&[0x07, 0x00]); // undefined record kind 7
        assert!(tail.poll().is_err());
        assert!(tail.poll().is_err(), "fused after corruption");
    }

    #[test]
    fn merger_reorders_cross_shard_stragglers() {
        // Shard 0 carries even seqs, shard 1 odd; deliver shard 0 first.
        let even = counter_stream(&[0, 2, 4]);
        let odd = counter_stream(&[1, 3, 5]);
        let mut m = TailMerger::new(2);
        m.feed(0, &even);
        let first = m.poll();
        assert_eq!(
            first.iter().map(Record::seq).collect::<Vec<_>>(),
            vec![0],
            "seqs 2 and 4 must wait for the gap at 1"
        );
        assert_eq!(m.pending_len(), 2);
        m.feed(1, &odd);
        let rest = m.poll();
        assert_eq!(
            rest.iter().map(Record::seq).collect::<Vec<_>>(),
            vec![1, 2, 3, 4, 5]
        );
        assert_eq!(m.pending_len(), 0);
    }

    #[test]
    fn merger_flush_releases_gapped_records() {
        let mut m = TailMerger::new(1);
        m.feed(0, &counter_stream(&[2, 3]));
        assert!(m.poll().is_empty(), "gated on the gap at 0");
        let flushed = m.flush();
        assert_eq!(
            flushed.iter().map(Record::seq).collect::<Vec<_>>(),
            vec![2, 3]
        );
    }

    #[test]
    fn drain_since_is_incremental_and_ordered() {
        let r = Recorder::enabled();
        let mut cursor = r.cursor();
        r.counter("tail.a", 1);
        r.counter("tail.b", 2);
        let batch = r.drain_since(&mut cursor);
        assert_eq!(batch.records.len(), 2);
        assert_eq!(batch.dropped_delta, 0);
        assert!(r.is_empty(), "drain consumes");
        r.counter("tail.c", 3);
        let batch = r.drain_since(&mut cursor);
        assert_eq!(batch.records.len(), 1);
        assert_eq!(batch.records[0].seq(), 2, "codec state carried across");
        assert!(r.drain_since(&mut cursor).records.is_empty());
    }

    #[test]
    fn drained_chunks_concatenate_into_the_posthoc_stream() {
        // The equivalence the proptest scales up: chunks taken by a tail
        // consumer concatenate into one decodable wire stream identical
        // to what a single post-hoc decode would have seen.
        let r = Recorder::enabled();
        let mut cursor = r.cursor();
        let mut live = Vec::new();
        let mut chunks: Vec<u8> = Vec::new();
        for round in 0..5u64 {
            for i in 0..10u64 {
                r.counter("tail.concat", round * 10 + i);
            }
            chunks.extend(r.raw_shards().concat());
            live.extend(r.drain_since(&mut cursor).records);
        }
        live.extend(r.finish_tail(&mut cursor).records);
        let posthoc: Vec<Record> = ShardDecoder::new(&chunks)
            .collect::<Result<_, _>>()
            .expect("concatenated chunks decode");
        assert_eq!(live, posthoc);
    }

    #[test]
    fn overflow_between_polls_reports_dropped_delta() {
        let r = Recorder::enabled_with_capacity(2);
        let mut cursor = r.cursor();
        for i in 0..5u64 {
            r.counter("tail.drop", i);
        }
        let b1 = r.drain_since(&mut cursor);
        assert_eq!(b1.records.len(), 2);
        assert_eq!(b1.dropped_delta, 3);
        // Capacity freed by the drain: the next burst fits again.
        for i in 0..3u64 {
            r.counter("tail.drop", i);
        }
        let b2 = r.drain_since(&mut cursor);
        assert_eq!(b2.records.len(), 2);
        assert_eq!(b2.dropped_delta, 1);
        // Seqs stay dense across the drops.
        let seqs: Vec<u64> = b1
            .records
            .iter()
            .chain(&b2.records)
            .map(Record::seq)
            .collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn cursor_resyncs_after_take() {
        let r = Recorder::enabled();
        let mut cursor = r.cursor();
        r.counter("tail.epoch", 1);
        assert_eq!(r.drain_since(&mut cursor).records.len(), 1);
        r.counter("tail.epoch", 2);
        let taken = r.take(); // consumes seq 1 behind the cursor's back
        assert_eq!(taken.len(), 1);
        r.counter("tail.epoch", 3);
        let batch = r.drain_since(&mut cursor);
        assert_eq!(batch.records.len(), 1, "post-take records still arrive");
        assert_eq!(batch.records[0].seq(), 2);
    }

    #[test]
    fn snapshot_then_drain_does_not_double_count() {
        let r = Recorder::enabled();
        let mut cursor = r.cursor();
        r.counter("tail.snap", 1);
        r.counter("tail.snap", 2);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 2, "snapshot is non-destructive");
        let batch = r.drain_since(&mut cursor);
        assert_eq!(batch.records.len(), 2, "drain sees each record once");
        assert_eq!(
            snap, batch.records,
            "snapshot and drain agree on the stream"
        );
        assert!(r.snapshot().is_empty(), "drain consumed the buffers");
        assert!(r.take().is_empty());
    }

    #[test]
    fn snapshot_decodes_correctly_after_tail_drains() {
        let r = Recorder::enabled();
        let mut cursor = r.cursor();
        r.gauge(
            "tail.base_st",
            1.0,
            lfm_simcluster::time::SimTime::from_secs(5.0),
        );
        r.drain_since(&mut cursor);
        // The next record is delta-coded against the drained prefix; both
        // snapshot and take must resume from the saved base state.
        r.gauge(
            "tail.base_st",
            2.0,
            lfm_simcluster::time::SimTime::from_secs(6.0),
        );
        let snap = r.snapshot();
        assert_eq!(snap.len(), 1);
        let Record::Metric(m) = &snap[0] else {
            panic!("expected metric")
        };
        assert_eq!(m.at_secs, Some(6.0));
        assert_eq!(m.seq, 1);
        assert_eq!(r.take(), snap);
    }

    #[test]
    fn synthesize_dropped_consumes_a_fresh_seq() {
        let r = Recorder::enabled();
        r.counter("tail.synth", 1);
        let rec = r.synthesize_dropped(7).expect("nonzero count");
        let Record::Metric(m) = &rec else {
            panic!("expected metric")
        };
        assert_eq!(m.name, "telemetry.dropped_events");
        assert_eq!(m.value, 7.0);
        assert_eq!(m.seq, 1);
        assert_eq!(r.synthesize_dropped(0), None);
    }
}
