//! Perfetto binary trace exporter (+ structural validator).
//!
//! Emits the subset of the Perfetto `Trace` protobuf that the Perfetto UI
//! and `trace_processor` need to display our streams natively — hand-rolled
//! field-by-field (the dependency set has no protobuf crate), which is
//! fine because the schema surface we touch is small and stable:
//!
//! ```text
//! Trace            { repeated TracePacket packet = 1; }
//! TracePacket      { timestamp = 8 (ns), trusted_packet_sequence_id = 10,
//!                    track_event = 11, track_descriptor = 60 }
//! TrackDescriptor  { uuid = 1, name = 2, process = 3, parent_uuid = 5,
//!                    counter = 8 (marks a counter track) }
//! ProcessDescriptor{ pid = 1, process_name = 6 }
//! TrackEvent       { debug_annotations = 4, type = 9, track_uuid = 11,
//!                    categories = 22, name = 23,
//!                    counter_value = 30, double_counter_value = 44 }
//! DebugAnnotation  { uint_value = 3, double_value = 5, string_value = 6,
//!                    name = 10 }
//! ```
//!
//! Mapping from our [`Record`] stream:
//!
//! * Every sim track id becomes a child `TrackDescriptor` under one
//!   process track ("lfm-sim"); descriptors are emitted before any event
//!   that references them.
//! * Spans become `SLICE_BEGIN`/`SLICE_END` pairs (Perfetto's track
//!   events are stateful, unlike Chrome's complete `"X"` events), with
//!   task/attempt/attrs as debug annotations on the begin event. Packets
//!   are ordered so nesting reconstructs correctly: at equal timestamps,
//!   ends of earlier slices close first (innermost — shortest — first),
//!   then begins open outermost-first, and zero-duration slices emit
//!   their end immediately after their begin.
//! * Timed counters/gauges become counter tracks; counters plot running
//!   totals exactly like the Chrome exporter. Integral values use the
//!   varint `counter_value`, everything else `double_counter_value`.
//! * Untimed metric samples have no Perfetto timeline representation and
//!   are skipped here — their aggregates already ship in the Chrome
//!   trace's `otherData` and the JSONL dump.
//!
//! [`validate_trace`] is the in-repo structural checker the round-trip
//! tests use: a generic wiretype walker that verifies the packet framing,
//! that every `track_uuid` was declared by a descriptor packet first, and
//! that slice begin/end depth stays balanced per track.

use crate::export::TraceSink;
use crate::record::{AttrValue, MetricKind, Record};
use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;

const NANOS: f64 = 1e9;

// TracePacket field numbers.
const PKT_TIMESTAMP: u64 = 8;
const PKT_SEQUENCE_ID: u64 = 10;
const PKT_TRACK_EVENT: u64 = 11;
const PKT_TRACK_DESCRIPTOR: u64 = 60;

// TrackDescriptor / ProcessDescriptor field numbers.
const TDESC_UUID: u64 = 1;
const TDESC_NAME: u64 = 2;
const TDESC_PROCESS: u64 = 3;
const TDESC_PARENT_UUID: u64 = 5;
const TDESC_COUNTER: u64 = 8;
const PDESC_PID: u64 = 1;
const PDESC_NAME: u64 = 6;

// TrackEvent field numbers and event types.
const TEV_DEBUG_ANNOTATION: u64 = 4;
const TEV_TYPE: u64 = 9;
const TEV_TRACK_UUID: u64 = 11;
const TEV_CATEGORY: u64 = 22;
const TEV_NAME: u64 = 23;
const TEV_COUNTER_VALUE: u64 = 30;
const TEV_DOUBLE_COUNTER_VALUE: u64 = 44;
const TYPE_SLICE_BEGIN: u64 = 1;
const TYPE_SLICE_END: u64 = 2;
const TYPE_INSTANT: u64 = 3;
const TYPE_COUNTER: u64 = 4;

// DebugAnnotation field numbers.
const ANN_UINT: u64 = 3;
const ANN_DOUBLE: u64 = 5;
const ANN_STRING: u64 = 6;
const ANN_NAME: u64 = 10;

const PROCESS_UUID: u64 = 1;
const SEQUENCE_ID: u64 = 1;

// -------------------------------------------------------------------
// protobuf writer primitives
// -------------------------------------------------------------------

fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        buf.push((v as u8) | 0x80);
        v >>= 7;
    }
    buf.push(v as u8);
}

fn put_tag(buf: &mut Vec<u8>, field: u64, wire_type: u64) {
    put_varint(buf, field << 3 | wire_type);
}

fn put_varint_field(buf: &mut Vec<u8>, field: u64, v: u64) {
    put_tag(buf, field, 0);
    put_varint(buf, v);
}

fn put_double_field(buf: &mut Vec<u8>, field: u64, v: f64) {
    put_tag(buf, field, 1);
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_len_field(buf: &mut Vec<u8>, field: u64, bytes: &[u8]) {
    put_tag(buf, field, 2);
    put_varint(buf, bytes.len() as u64);
    buf.extend_from_slice(bytes);
}

fn put_str_field(buf: &mut Vec<u8>, field: u64, s: &str) {
    put_len_field(buf, field, s.as_bytes());
}

// -------------------------------------------------------------------
// export
// -------------------------------------------------------------------

fn annotation(name: &str, value: &AttrValue) -> Vec<u8> {
    let mut a = Vec::with_capacity(name.len() + 12);
    match value {
        AttrValue::U64(v) => put_varint_field(&mut a, ANN_UINT, *v),
        AttrValue::F64(v) => put_double_field(&mut a, ANN_DOUBLE, *v),
        AttrValue::Str(v) => put_str_field(&mut a, ANN_STRING, v),
    }
    put_str_field(&mut a, ANN_NAME, name);
    a
}

fn ns(secs: f64) -> u64 {
    (secs * NANOS).round().max(0.0) as u64
}

/// One fully-encoded TracePacket plus its sort key; packets at equal
/// timestamps order as: ends of earlier slices (innermost first), then
/// begins (outermost first, zero-duration ends riding just behind their
/// begin), then instants, then counter samples. `idx` (emission order)
/// breaks remaining ties deterministically.
struct Packet {
    key: (u64, u8, u64, usize, u8),
    bytes: Vec<u8>,
}

fn packet(ts: Option<u64>, event: &[u8]) -> Vec<u8> {
    let mut p = Vec::with_capacity(event.len() + 12);
    if let Some(ts) = ts {
        put_varint_field(&mut p, PKT_TIMESTAMP, ts);
    }
    put_varint_field(&mut p, PKT_SEQUENCE_ID, SEQUENCE_ID);
    put_len_field(&mut p, PKT_TRACK_EVENT, event);
    p
}

fn descriptor_packet(desc: &[u8]) -> Vec<u8> {
    let mut p = Vec::with_capacity(desc.len() + 8);
    put_varint_field(&mut p, PKT_SEQUENCE_ID, SEQUENCE_ID);
    put_len_field(&mut p, PKT_TRACK_DESCRIPTOR, desc);
    p
}

/// Render a record stream as a binary Perfetto trace.
pub fn perfetto_trace(records: &[Record]) -> Vec<u8> {
    // Pass 1: assign track uuids by first appearance so descriptors can
    // all be emitted ahead of every event that references them.
    let mut lane_uuid: BTreeMap<u64, u64> = BTreeMap::new(); // sim track id → uuid
    let mut counter_uuid: BTreeMap<&str, u64> = BTreeMap::new(); // metric name → uuid
    let mut next_uuid = PROCESS_UUID + 1;
    for record in records {
        match record {
            Record::Span(s) => {
                lane_uuid.entry(s.track).or_insert_with(|| {
                    next_uuid += 1;
                    next_uuid - 1
                });
            }
            Record::Instant(i) => {
                lane_uuid.entry(i.track).or_insert_with(|| {
                    next_uuid += 1;
                    next_uuid - 1
                });
            }
            Record::Metric(m) if m.at_secs.is_some() => {
                counter_uuid.entry(m.name.as_str()).or_insert_with(|| {
                    next_uuid += 1;
                    next_uuid - 1
                });
            }
            Record::Metric(_) => {} // untimed: aggregates only, no timeline
        }
    }

    let mut out = Vec::with_capacity(records.len() * 24 + 64);

    // Process track.
    let mut process = Vec::new();
    put_varint_field(&mut process, PDESC_PID, 1);
    put_str_field(&mut process, PDESC_NAME, "lfm-sim");
    let mut desc = Vec::new();
    put_varint_field(&mut desc, TDESC_UUID, PROCESS_UUID);
    put_str_field(&mut desc, TDESC_NAME, "lfm-sim");
    put_len_field(&mut desc, TDESC_PROCESS, &process);
    put_len_field(&mut out, 1, &descriptor_packet(&desc));

    // Lane and counter tracks, in uuid (= first appearance) order.
    let mut tracks: Vec<(u64, String, bool)> = lane_uuid
        .iter()
        .map(|(lane, &uuid)| (uuid, format!("track-{lane}"), false))
        .chain(
            counter_uuid
                .iter()
                .map(|(name, &uuid)| (uuid, (*name).to_string(), true)),
        )
        .collect();
    tracks.sort_by_key(|(uuid, _, _)| *uuid);
    for (uuid, name, is_counter) in &tracks {
        let mut desc = Vec::new();
        put_varint_field(&mut desc, TDESC_UUID, *uuid);
        put_str_field(&mut desc, TDESC_NAME, name);
        put_varint_field(&mut desc, TDESC_PARENT_UUID, PROCESS_UUID);
        if *is_counter {
            put_len_field(&mut desc, TDESC_COUNTER, &[]); // presence marks the track type
        }
        put_len_field(&mut out, 1, &descriptor_packet(&desc));
    }

    // Pass 2: encode events with nesting-stable sort keys.
    let mut packets: Vec<Packet> = Vec::with_capacity(records.len() * 2);
    let mut totals: BTreeMap<&str, f64> = BTreeMap::new();
    for (idx, record) in records.iter().enumerate() {
        match record {
            Record::Span(s) => {
                let uuid = lane_uuid[&s.track];
                let (start, end) = (ns(s.start_secs), ns(s.end_secs));
                let dur = end.saturating_sub(start);
                let mut begin = Vec::new();
                for (k, v) in &s.attrs {
                    put_len_field(&mut begin, TEV_DEBUG_ANNOTATION, &annotation(k, v));
                }
                if let Some(t) = s.task {
                    put_len_field(
                        &mut begin,
                        TEV_DEBUG_ANNOTATION,
                        &annotation("task", &AttrValue::U64(t)),
                    );
                }
                if let Some(a) = s.attempt {
                    put_len_field(
                        &mut begin,
                        TEV_DEBUG_ANNOTATION,
                        &annotation("attempt", &AttrValue::U64(a as u64)),
                    );
                }
                put_varint_field(&mut begin, TEV_TYPE, TYPE_SLICE_BEGIN);
                put_varint_field(&mut begin, TEV_TRACK_UUID, uuid);
                put_str_field(&mut begin, TEV_CATEGORY, &s.cat);
                put_str_field(&mut begin, TEV_NAME, &s.name);
                let mut end_ev = Vec::new();
                put_varint_field(&mut end_ev, TEV_TYPE, TYPE_SLICE_END);
                put_varint_field(&mut end_ev, TEV_TRACK_UUID, uuid);
                // Begins open outermost (longest) first; ends close
                // innermost (shortest) first. A zero-duration slice keeps
                // its end glued right after its begin (same rank/idx,
                // sub-order 1) so track depth never dips negative.
                packets.push(Packet {
                    key: (start, 1, u64::MAX - dur, idx, 0),
                    bytes: packet(Some(start), &begin),
                });
                packets.push(Packet {
                    key: if dur == 0 {
                        (end, 1, u64::MAX, idx, 1)
                    } else {
                        (end, 0, dur, idx, 0)
                    },
                    bytes: packet(Some(end), &end_ev),
                });
            }
            Record::Instant(i) => {
                let uuid = lane_uuid[&i.track];
                let at = ns(i.at_secs);
                let mut ev = Vec::new();
                for (k, v) in &i.attrs {
                    put_len_field(&mut ev, TEV_DEBUG_ANNOTATION, &annotation(k, v));
                }
                if let Some(t) = i.task {
                    put_len_field(
                        &mut ev,
                        TEV_DEBUG_ANNOTATION,
                        &annotation("task", &AttrValue::U64(t)),
                    );
                }
                if let Some(a) = i.attempt {
                    put_len_field(
                        &mut ev,
                        TEV_DEBUG_ANNOTATION,
                        &annotation("attempt", &AttrValue::U64(a as u64)),
                    );
                }
                put_varint_field(&mut ev, TEV_TYPE, TYPE_INSTANT);
                put_varint_field(&mut ev, TEV_TRACK_UUID, uuid);
                put_str_field(&mut ev, TEV_CATEGORY, &i.cat);
                put_str_field(&mut ev, TEV_NAME, &i.name);
                packets.push(Packet {
                    key: (at, 2, 0, idx, 0),
                    bytes: packet(Some(at), &ev),
                });
            }
            Record::Metric(m) => {
                let Some(at_secs) = m.at_secs else { continue };
                let uuid = counter_uuid[m.name.as_str()];
                let at = ns(at_secs);
                let value = match m.kind {
                    MetricKind::Counter => {
                        let total = totals.entry(m.name.as_str()).or_insert(0.0);
                        *total += m.value;
                        *total
                    }
                    _ => m.value,
                };
                let mut ev = Vec::new();
                put_varint_field(&mut ev, TEV_TYPE, TYPE_COUNTER);
                put_varint_field(&mut ev, TEV_TRACK_UUID, uuid);
                if (0.0..9_007_199_254_740_992.0).contains(&value) && (value as u64) as f64 == value
                {
                    put_varint_field(&mut ev, TEV_COUNTER_VALUE, value as u64);
                } else {
                    put_double_field(&mut ev, TEV_DOUBLE_COUNTER_VALUE, value);
                }
                packets.push(Packet {
                    key: (at, 3, 0, idx, 0),
                    bytes: packet(Some(at), &ev),
                });
            }
        }
    }
    packets.sort_by_key(|p| p.key);
    for p in packets {
        put_len_field(&mut out, 1, &p.bytes);
    }
    out
}

/// Write the Perfetto trace for `records` to `path` (legacy slice shim
/// over [`PerfettoSink`]).
pub fn write_perfetto_trace(path: &Path, records: &[Record]) -> std::io::Result<()> {
    let f = std::io::BufWriter::new(std::fs::File::create(path)?);
    let mut sink = PerfettoSink::new(f);
    crate::export::export_records(&mut sink, records.iter().cloned())
}

/// Buffered Perfetto sink: collects the whole stream and renders it with
/// [`perfetto_trace`] at `finish` — **byte-identical** to the slice path.
/// Perfetto's nesting-stable packet order is a global sort over all
/// events, so exact byte parity requires seeing the full stream; memory
/// therefore grows with it. For live streaming with bounded memory use
/// [`PerfettoStreamSink`].
pub struct PerfettoSink<W: Write> {
    w: W,
    records: Vec<Record>,
}

impl<W: Write> PerfettoSink<W> {
    pub fn new(w: W) -> Self {
        PerfettoSink {
            w,
            records: Vec::new(),
        }
    }
}

impl<W: Write> TraceSink for PerfettoSink<W> {
    fn begin(&mut self) -> std::io::Result<()> {
        Ok(())
    }

    fn record(&mut self, record: &Record) -> std::io::Result<()> {
        self.records.push(record.clone());
        Ok(())
    }

    fn finish(&mut self) -> std::io::Result<()> {
        self.w.write_all(&perfetto_trace(&self.records))?;
        self.w.flush()
    }

    fn buffered_records(&self) -> usize {
        self.records.len()
    }
}

/// Incremental Perfetto sink with bounded memory: packets are written as
/// records arrive, descriptors lazily the moment a track is first
/// referenced (always before the event that needs them), and each span's
/// `SLICE_END` rides immediately behind its `SLICE_BEGIN` so per-track
/// depth stays balanced no matter where the stream stops. State is one
/// uuid per distinct track/counter name plus one running total per
/// counter — independent of run length.
///
/// The price of streaming is packet order: packets appear in record
/// order, not the globally time-sorted, nesting-stable order
/// [`perfetto_trace`] produces, so the bytes differ from the buffered
/// path (Perfetto's trace_processor sorts on load; [`validate_trace`]
/// passes either way). Where byte-stable golden output matters, use
/// [`PerfettoSink`].
pub struct PerfettoStreamSink<W: Write> {
    w: W,
    lane_uuid: BTreeMap<u64, u64>,
    counter_uuid: BTreeMap<String, u64>,
    next_uuid: u64,
    totals: BTreeMap<String, f64>,
}

impl<W: Write> PerfettoStreamSink<W> {
    pub fn new(w: W) -> Self {
        PerfettoStreamSink {
            w,
            lane_uuid: BTreeMap::new(),
            counter_uuid: BTreeMap::new(),
            next_uuid: PROCESS_UUID + 1,
            totals: BTreeMap::new(),
        }
    }

    /// Tracks declared so far (memory-bound diagnostics).
    pub fn tracks_declared(&self) -> usize {
        self.lane_uuid.len() + self.counter_uuid.len()
    }

    fn write_packet(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        let mut framed = Vec::with_capacity(bytes.len() + 4);
        put_len_field(&mut framed, 1, bytes);
        self.w.write_all(&framed)
    }

    fn lane_track(&mut self, lane: u64) -> std::io::Result<u64> {
        if let Some(&uuid) = self.lane_uuid.get(&lane) {
            return Ok(uuid);
        }
        let uuid = self.next_uuid;
        self.next_uuid += 1;
        self.lane_uuid.insert(lane, uuid);
        let mut desc = Vec::new();
        put_varint_field(&mut desc, TDESC_UUID, uuid);
        put_str_field(&mut desc, TDESC_NAME, &format!("track-{lane}"));
        put_varint_field(&mut desc, TDESC_PARENT_UUID, PROCESS_UUID);
        self.write_packet(&descriptor_packet(&desc))?;
        Ok(uuid)
    }

    fn counter_track(&mut self, name: &str) -> std::io::Result<u64> {
        if let Some(&uuid) = self.counter_uuid.get(name) {
            return Ok(uuid);
        }
        let uuid = self.next_uuid;
        self.next_uuid += 1;
        self.counter_uuid.insert(name.to_string(), uuid);
        let mut desc = Vec::new();
        put_varint_field(&mut desc, TDESC_UUID, uuid);
        put_str_field(&mut desc, TDESC_NAME, name);
        put_varint_field(&mut desc, TDESC_PARENT_UUID, PROCESS_UUID);
        put_len_field(&mut desc, TDESC_COUNTER, &[]); // presence marks the track type
        self.write_packet(&descriptor_packet(&desc))?;
        Ok(uuid)
    }
}

fn annotate_ids(
    ev: &mut Vec<u8>,
    attrs: &[(String, AttrValue)],
    task: Option<u64>,
    attempt: Option<u32>,
) {
    for (k, v) in attrs {
        put_len_field(ev, TEV_DEBUG_ANNOTATION, &annotation(k, v));
    }
    if let Some(t) = task {
        put_len_field(
            ev,
            TEV_DEBUG_ANNOTATION,
            &annotation("task", &AttrValue::U64(t)),
        );
    }
    if let Some(a) = attempt {
        put_len_field(
            ev,
            TEV_DEBUG_ANNOTATION,
            &annotation("attempt", &AttrValue::U64(a as u64)),
        );
    }
}

impl<W: Write> TraceSink for PerfettoStreamSink<W> {
    fn begin(&mut self) -> std::io::Result<()> {
        let mut process = Vec::new();
        put_varint_field(&mut process, PDESC_PID, 1);
        put_str_field(&mut process, PDESC_NAME, "lfm-sim");
        let mut desc = Vec::new();
        put_varint_field(&mut desc, TDESC_UUID, PROCESS_UUID);
        put_str_field(&mut desc, TDESC_NAME, "lfm-sim");
        put_len_field(&mut desc, TDESC_PROCESS, &process);
        self.write_packet(&descriptor_packet(&desc))
    }

    fn record(&mut self, record: &Record) -> std::io::Result<()> {
        match record {
            Record::Span(s) => {
                let uuid = self.lane_track(s.track)?;
                let (start, end) = (ns(s.start_secs), ns(s.end_secs));
                let mut begin = Vec::new();
                annotate_ids(&mut begin, &s.attrs, s.task, s.attempt);
                put_varint_field(&mut begin, TEV_TYPE, TYPE_SLICE_BEGIN);
                put_varint_field(&mut begin, TEV_TRACK_UUID, uuid);
                put_str_field(&mut begin, TEV_CATEGORY, &s.cat);
                put_str_field(&mut begin, TEV_NAME, &s.name);
                self.write_packet(&packet(Some(start), &begin))?;
                let mut end_ev = Vec::new();
                put_varint_field(&mut end_ev, TEV_TYPE, TYPE_SLICE_END);
                put_varint_field(&mut end_ev, TEV_TRACK_UUID, uuid);
                self.write_packet(&packet(Some(end), &end_ev))
            }
            Record::Instant(i) => {
                let uuid = self.lane_track(i.track)?;
                let at = ns(i.at_secs);
                let mut ev = Vec::new();
                annotate_ids(&mut ev, &i.attrs, i.task, i.attempt);
                put_varint_field(&mut ev, TEV_TYPE, TYPE_INSTANT);
                put_varint_field(&mut ev, TEV_TRACK_UUID, uuid);
                put_str_field(&mut ev, TEV_CATEGORY, &i.cat);
                put_str_field(&mut ev, TEV_NAME, &i.name);
                self.write_packet(&packet(Some(at), &ev))
            }
            Record::Metric(m) => {
                let Some(at_secs) = m.at_secs else {
                    return Ok(()); // untimed: aggregates only, no timeline
                };
                let uuid = self.counter_track(&m.name)?;
                let at = ns(at_secs);
                let value = match m.kind {
                    MetricKind::Counter => {
                        let total = self.totals.entry(m.name.clone()).or_insert(0.0);
                        *total += m.value;
                        *total
                    }
                    _ => m.value,
                };
                let mut ev = Vec::new();
                put_varint_field(&mut ev, TEV_TYPE, TYPE_COUNTER);
                put_varint_field(&mut ev, TEV_TRACK_UUID, uuid);
                if (0.0..9_007_199_254_740_992.0).contains(&value) && (value as u64) as f64 == value
                {
                    put_varint_field(&mut ev, TEV_COUNTER_VALUE, value as u64);
                } else {
                    put_double_field(&mut ev, TEV_DOUBLE_COUNTER_VALUE, value);
                }
                self.write_packet(&packet(Some(at), &ev))
            }
        }
    }

    fn finish(&mut self) -> std::io::Result<()> {
        self.w.flush()
    }
}

// -------------------------------------------------------------------
// structural validation
// -------------------------------------------------------------------

/// What [`validate_trace`] counted while walking a trace.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TraceStats {
    pub packets: usize,
    pub tracks: usize,
    pub slices: usize,
    pub instants: usize,
    pub counter_samples: usize,
}

struct Reader<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn done(&self) -> bool {
        self.pos >= self.b.len()
    }

    fn varint(&mut self) -> Result<u64, String> {
        let mut out = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = *self
                .b
                .get(self.pos)
                .ok_or_else(|| format!("varint truncated at byte {}", self.pos))?;
            self.pos += 1;
            if shift >= 64 {
                return Err(format!("varint too long at byte {}", self.pos));
            }
            out |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(out);
            }
            shift += 7;
        }
    }

    fn skip(&mut self, n: usize) -> Result<(), String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.b.len())
            .ok_or_else(|| format!("field truncated at byte {}", self.pos))?;
        self.pos = end;
        Ok(())
    }

    fn len_delimited(&mut self) -> Result<&'a [u8], String> {
        let n = self.varint()? as usize;
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.b.len())
            .ok_or_else(|| format!("length-delimited field truncated at byte {}", self.pos))?;
        let out = &self.b[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Read one field tag and its payload; returns `(field, varint value
    /// if wiretype 0, bytes if wiretype 2)`.
    #[allow(clippy::type_complexity)]
    fn field(&mut self) -> Result<(u64, Option<u64>, Option<&'a [u8]>), String> {
        let key = self.varint()?;
        let field = key >> 3;
        match key & 7 {
            0 => Ok((field, Some(self.varint()?), None)),
            1 => {
                self.skip(8)?;
                Ok((field, None, None))
            }
            2 => {
                let bytes = self.len_delimited()?;
                Ok((field, None, Some(bytes)))
            }
            5 => {
                self.skip(4)?;
                Ok((field, None, None))
            }
            wt => Err(format!("unsupported wire type {wt} at byte {}", self.pos)),
        }
    }
}

/// Structurally validate a Perfetto trace produced by [`perfetto_trace`]
/// (or anything schema-compatible): correct protobuf framing with every
/// byte consumed, every `track_uuid` declared by a preceding descriptor,
/// and slice begin/end balanced per track (depth never negative, zero at
/// the end). Returns counts for round-trip assertions.
pub fn validate_trace(bytes: &[u8]) -> Result<TraceStats, String> {
    let mut stats = TraceStats::default();
    let mut known_tracks: BTreeMap<u64, i64> = BTreeMap::new(); // uuid → open slice depth
    let mut r = Reader { b: bytes, pos: 0 };
    while !r.done() {
        let (field, _, payload) = r.field()?;
        if field != 1 {
            return Err(format!("unexpected top-level field {field}"));
        }
        let payload = payload.ok_or("packet must be length-delimited")?;
        stats.packets += 1;
        let mut pkt = Reader { b: payload, pos: 0 };
        while !pkt.done() {
            let (field, value, bytes) = pkt.field()?;
            match field {
                PKT_TIMESTAMP | PKT_SEQUENCE_ID => {
                    value.ok_or("timestamp/sequence id must be varint")?;
                }
                PKT_TRACK_DESCRIPTOR => {
                    let mut desc = Reader {
                        b: bytes.ok_or("track descriptor must be a message")?,
                        pos: 0,
                    };
                    let mut uuid = None;
                    while !desc.done() {
                        let (f, v, _) = desc.field()?;
                        if f == TDESC_UUID {
                            uuid = Some(v.ok_or("uuid must be varint")?);
                        }
                    }
                    let uuid = uuid.ok_or("track descriptor without uuid")?;
                    if known_tracks.insert(uuid, 0).is_some() {
                        return Err(format!("duplicate descriptor for track {uuid}"));
                    }
                    stats.tracks += 1;
                }
                PKT_TRACK_EVENT => {
                    let mut ev = Reader {
                        b: bytes.ok_or("track event must be a message")?,
                        pos: 0,
                    };
                    let (mut ev_type, mut uuid) = (None, None);
                    while !ev.done() {
                        let (f, v, _) = ev.field()?;
                        match f {
                            TEV_TYPE => ev_type = Some(v.ok_or("event type must be varint")?),
                            TEV_TRACK_UUID => uuid = Some(v.ok_or("track uuid must be varint")?),
                            _ => {}
                        }
                    }
                    let uuid = uuid.ok_or("track event without track_uuid")?;
                    let depth = known_tracks
                        .get_mut(&uuid)
                        .ok_or_else(|| format!("event references undeclared track {uuid}"))?;
                    match ev_type.ok_or("track event without type")? {
                        TYPE_SLICE_BEGIN => {
                            *depth += 1;
                            stats.slices += 1;
                        }
                        TYPE_SLICE_END => {
                            *depth -= 1;
                            if *depth < 0 {
                                return Err(format!("slice end underflow on track {uuid}"));
                            }
                        }
                        TYPE_INSTANT => stats.instants += 1,
                        TYPE_COUNTER => stats.counter_samples += 1,
                        t => return Err(format!("unknown track event type {t}")),
                    }
                }
                _ => {}
            }
        }
    }
    for (uuid, depth) in &known_tracks {
        if *depth != 0 {
            return Err(format!("track {uuid} ends with {depth} unclosed slices"));
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;
    use lfm_simcluster::time::SimTime;

    #[test]
    fn exported_trace_validates_with_expected_counts() {
        let r = Recorder::enabled();
        r.span("outer", "sim")
            .at(SimTime::from_secs(1.0), SimTime::from_secs(4.0))
            .track(2)
            .attr("k", 7u64)
            .emit();
        r.span("inner", "sim")
            .at(SimTime::from_secs(2.0), SimTime::from_secs(3.0))
            .track(2)
            .task(5)
            .emit();
        r.instant("kill", "sim")
            .at(SimTime::from_secs(3.0))
            .track(2)
            .emit();
        r.counter_at("done", 1, SimTime::from_secs(3.0));
        r.counter_at("done", 1, SimTime::from_secs(4.0));
        r.gauge("pending", 2.5, SimTime::from_secs(2.0));
        r.counter("untimed", 9); // aggregates only: skipped on the timeline
        let trace = perfetto_trace(&r.take());
        let stats = validate_trace(&trace).expect("trace must validate");
        assert_eq!(stats.tracks, 4, "process + lane + 2 counter tracks");
        assert_eq!(stats.slices, 2);
        assert_eq!(stats.instants, 1);
        assert_eq!(stats.counter_samples, 3);
    }

    #[test]
    fn zero_duration_and_shared_timestamps_keep_depth_balanced() {
        let r = Recorder::enabled();
        // Outer span, inner span ending at the same instant, and a
        // zero-duration span at that same timestamp.
        r.span("outer", "sim")
            .at(SimTime::from_secs(1.0), SimTime::from_secs(2.0))
            .emit();
        r.span("inner", "sim")
            .at(SimTime::from_secs(1.5), SimTime::from_secs(2.0))
            .emit();
        r.span("blip", "sim")
            .at(SimTime::from_secs(2.0), SimTime::from_secs(2.0))
            .emit();
        let trace = perfetto_trace(&r.take());
        let stats = validate_trace(&trace).expect("nesting must stay balanced");
        assert_eq!(stats.slices, 3);
    }

    #[test]
    fn truncated_and_corrupt_traces_are_rejected() {
        let r = Recorder::enabled();
        r.counter_at("c", 1, SimTime::from_secs(1.0));
        let trace = perfetto_trace(&r.take());
        assert!(validate_trace(&trace[..trace.len() - 1]).is_err());
        // An event referencing a track no descriptor declared.
        let mut ev = Vec::new();
        put_varint_field(&mut ev, TEV_TYPE, TYPE_INSTANT);
        put_varint_field(&mut ev, TEV_TRACK_UUID, 99);
        let mut bogus = Vec::new();
        put_len_field(&mut bogus, 1, &packet(Some(5), &ev));
        assert!(validate_trace(&bogus)
            .unwrap_err()
            .contains("undeclared track"));
    }

    #[test]
    fn empty_stream_is_a_valid_single_descriptor_trace() {
        let stats = validate_trace(&perfetto_trace(&[])).unwrap();
        assert_eq!(stats.tracks, 1, "just the process track");
        assert_eq!(stats.slices + stats.instants + stats.counter_samples, 0);
    }

    fn busy_recorder() -> Recorder {
        let r = Recorder::enabled();
        for i in 0..50u64 {
            let t = i as f64;
            r.span("step", "sim")
                .at(SimTime::from_secs(t), SimTime::from_secs(t + 0.5))
                .track(i % 3)
                .task(i)
                .attr("i", i)
                .emit();
            r.counter_at("done", 1, SimTime::from_secs(t + 0.5));
            r.gauge("depth", (i % 7) as f64, SimTime::from_secs(t));
        }
        r.instant("mark", "sim").at(SimTime::from_secs(9.0)).emit();
        r.counter("untimed", 3);
        r
    }

    #[test]
    fn buffered_sink_is_byte_identical_to_slice_export() {
        let records = busy_recorder().take();
        let slice = perfetto_trace(&records);
        let mut buf = Vec::new();
        let mut sink = PerfettoSink::new(&mut buf);
        crate::export::export_records(&mut sink, records.iter().cloned()).unwrap();
        assert_eq!(sink.buffered_records(), records.len());
        drop(sink);
        assert_eq!(buf, slice);
    }

    #[test]
    fn stream_sink_validates_with_matching_counts_and_bounded_state() {
        let records = busy_recorder().take();
        let slice_stats = validate_trace(&perfetto_trace(&records)).unwrap();
        let mut buf = Vec::new();
        let mut sink = PerfettoStreamSink::new(&mut buf);
        sink.begin().unwrap();
        for r in &records {
            sink.record(r).unwrap();
        }
        sink.finish().unwrap();
        assert_eq!(sink.buffered_records(), 0, "stream sink holds no records");
        // 3 lanes + 2 counter tracks, no matter how many records flowed.
        assert_eq!(sink.tracks_declared(), 5);
        drop(sink);
        let stats = validate_trace(&buf).expect("streamed trace must validate");
        assert_eq!(stats.tracks, slice_stats.tracks);
        assert_eq!(stats.slices, slice_stats.slices);
        assert_eq!(stats.instants, slice_stats.instants);
        assert_eq!(stats.counter_samples, slice_stats.counter_samples);
    }
}
