//! Multi-window SLO burn-rate alerting over the live telemetry stream.
//!
//! The SRE playbook's burn-rate alert, applied to the serving tier: an
//! availability objective (say 99% of requests admitted and served fast
//! enough) defines an error *budget* of `1 - objective`. The **burn
//! rate** over a window is the observed error ratio divided by that
//! budget — burn 1.0 exhausts the budget exactly at the objective
//! period's end, burn 14.4 exhausts a 30-day budget in ~2 days. An alert
//! fires only when a *short* and a *long* window both exceed the
//! threshold: the long window filters blips, the short window makes the
//! alert reset quickly once the incident ends.
//!
//! [`SloMonitor`] consumes the live record stream (fed from a
//! [`crate::TailCursor`] drain, see [`crate::Recorder::drain_since`]) and
//! buckets per-tenant good/bad events by simulated time:
//!
//! * `serving.admitted.<tenant>` counters are **good** events,
//!   `serving.rejected.<tenant>` / `serving.shed.<tenant>` are **bad** —
//!   the availability half of the objective.
//! * `serving.invoke` spans (one per completed invocation, tenant in the
//!   attrs) are latency events when
//!   [`SloConfig::latency_threshold_secs`] is set: an invocation slower
//!   than the threshold is a bad event at its completion time.
//!
//! [`SloMonitor::evaluate`] runs at tick boundaries with simulated time
//! as the clock, so alert firing is a pure function of the record stream:
//! identical seeds give identical alert sections, byte for byte. Old
//! buckets are pruned past the longest window — memory is bounded by
//! `tenants x windows`, independent of run length.

use crate::record::{AttrValue, MetricKind, Record};
use std::collections::BTreeMap;

/// Alert urgency, ordered by how fast the budget is burning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Slow burn: file a ticket, look during business hours.
    Ticket,
    /// Fast burn: the budget dies within the response time — page.
    Page,
}

impl Severity {
    pub fn as_str(&self) -> &'static str {
        match self {
            Severity::Ticket => "ticket",
            Severity::Page => "page",
        }
    }
}

/// One multi-window burn-rate rule: fire when both windows burn faster
/// than `threshold`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnWindow {
    pub short_secs: f64,
    pub long_secs: f64,
    /// Burn-rate threshold (in budgets-per-objective-period).
    pub threshold: f64,
    pub severity: Severity,
}

impl BurnWindow {
    pub fn new(short_secs: f64, long_secs: f64, threshold: f64, severity: Severity) -> Self {
        assert!(
            short_secs > 0.0 && long_secs >= short_secs,
            "windows must be positive with short <= long"
        );
        assert!(threshold > 0.0, "non-positive burn threshold");
        BurnWindow {
            short_secs,
            long_secs,
            threshold,
            severity,
        }
    }
}

/// SLO definition plus the alerting rules evaluated against it.
#[derive(Debug, Clone, PartialEq)]
pub struct SloConfig {
    /// Success-ratio objective in (0, 1), e.g. 0.99 = "99% of requests
    /// good". The error budget is `1 - objective`.
    pub objective: f64,
    /// When set, completed `serving.invoke` spans slower than this count
    /// as bad events (the latency half of the SLO). When `None` the SLO
    /// is availability-only.
    pub latency_threshold_secs: Option<f64>,
    /// Bucket granularity of the good/bad event rings. Window sums are
    /// bucket-aligned, so windows should be multiples of this.
    pub bucket_secs: f64,
    /// Rules, evaluated in order every [`SloMonitor::evaluate`].
    pub windows: Vec<BurnWindow>,
}

impl SloConfig {
    /// SRE-textbook defaults for the given objective: page on a 5m/1h
    /// fast burn (14.4x), ticket on a 30m/6h slow burn (6x).
    pub fn new(objective: f64) -> Self {
        assert!(
            objective > 0.0 && objective < 1.0,
            "objective must be in (0, 1)"
        );
        SloConfig {
            objective,
            latency_threshold_secs: None,
            bucket_secs: 5.0,
            windows: vec![
                BurnWindow::new(300.0, 3600.0, 14.4, Severity::Page),
                BurnWindow::new(1800.0, 21600.0, 6.0, Severity::Ticket),
            ],
        }
    }

    /// Replace the window rules (simulation horizons are seconds, not
    /// days, so tests and benches scale the windows down).
    pub fn with_windows(mut self, windows: Vec<BurnWindow>) -> Self {
        assert!(!windows.is_empty(), "no burn windows");
        self.windows = windows;
        self
    }

    pub fn with_bucket_secs(mut self, bucket_secs: f64) -> Self {
        assert!(bucket_secs > 0.0, "non-positive bucket");
        self.bucket_secs = bucket_secs;
        self
    }

    pub fn with_latency_threshold(mut self, secs: f64) -> Self {
        assert!(secs > 0.0, "non-positive latency threshold");
        self.latency_threshold_secs = Some(secs);
        self
    }

    fn budget(&self) -> f64 {
        1.0 - self.objective
    }

    fn longest_window_secs(&self) -> f64 {
        self.windows.iter().fold(0.0, |m, w| m.max(w.long_secs))
    }
}

/// One fired burn-rate alert (possibly since resolved).
#[derive(Debug, Clone, PartialEq)]
pub struct SloAlert {
    pub tenant: String,
    pub severity: Severity,
    pub short_secs: f64,
    pub long_secs: f64,
    pub threshold: f64,
    /// Simulated time of the evaluation tick that fired the alert.
    pub fired_at_secs: f64,
    /// Set when a later evaluation saw both windows back under the
    /// threshold; `None` = still firing at end of run.
    pub resolved_at_secs: Option<f64>,
    /// Highest short-window burn rate observed while the alert was
    /// active.
    pub peak_burn: f64,
}

/// One edge of an alert's lifecycle, emitted exactly once per transition:
/// `rising = true` the evaluation tick a (tenant, window) rule started
/// firing, `rising = false` the tick it resolved. Consumers that *act* on
/// alerts (the serving control loop) drain these with
/// [`SloMonitor::take_transitions`] instead of diffing the alert log —
/// the rising-edge dedup lives here, in one place, so repeated firing
/// ticks never produce repeated actions.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertTransition {
    pub tenant: String,
    pub severity: Severity,
    /// Index into [`SloConfig::windows`] of the rule that transitioned.
    pub window: usize,
    /// True when the alert fired, false when it resolved.
    pub rising: bool,
    /// Evaluation time of the transition.
    pub at_secs: f64,
    /// Short-window burn rate observed at the transition tick.
    pub burn: f64,
}

/// Good/bad event counts in one time bucket.
#[derive(Debug, Clone, Copy, Default)]
struct Bucket {
    good: u64,
    bad: u64,
}

/// Per-tenant alerting state.
#[derive(Debug, Default)]
struct TenantState {
    /// Time-bucketed ring: bucket index -> counts, pruned past the
    /// longest window.
    buckets: BTreeMap<u64, Bucket>,
    /// Index into [`SloMonitor::alerts`] of the active alert per window
    /// rule (by position in `config.windows`), `None` when quiet.
    active: Vec<Option<usize>>,
}

/// Streaming burn-rate evaluator: feed records with
/// [`SloMonitor::consume`], evaluate at tick boundaries with
/// [`SloMonitor::evaluate`], read the deterministic alert log with
/// [`SloMonitor::alerts`].
#[derive(Debug)]
pub struct SloMonitor {
    config: SloConfig,
    tenants: BTreeMap<String, TenantState>,
    alerts: Vec<SloAlert>,
    /// Un-drained alert edges since the last [`take_transitions`].
    ///
    /// [`take_transitions`]: SloMonitor::take_transitions
    transitions: Vec<AlertTransition>,
}

impl SloMonitor {
    pub fn new(config: SloConfig) -> Self {
        SloMonitor {
            config,
            tenants: BTreeMap::new(),
            alerts: Vec::new(),
            transitions: Vec::new(),
        }
    }

    pub fn config(&self) -> &SloConfig {
        &self.config
    }

    fn bucket_index(&self, at_secs: f64) -> u64 {
        (at_secs.max(0.0) / self.config.bucket_secs) as u64
    }

    fn record_event(&mut self, tenant: &str, at_secs: f64, good: bool, count: u64) {
        let idx = self.bucket_index(at_secs);
        let windows = self.config.windows.len();
        let state = self
            .tenants
            .entry(tenant.to_string())
            .or_insert_with(|| TenantState {
                buckets: BTreeMap::new(),
                active: vec![None; windows],
            });
        let b = state.buckets.entry(idx).or_default();
        if good {
            b.good += count;
        } else {
            b.bad += count;
        }
    }

    /// Feed one record from the live stream. Non-serving records are
    /// ignored, so the monitor can share a recorder with every other
    /// layer of the stack.
    pub fn consume(&mut self, record: &Record) {
        match record {
            Record::Metric(m) if m.kind == MetricKind::Counter => {
                let Some(at) = m.at_secs else { return };
                let (good, prefix) = if let Some(t) = m.name.strip_prefix("serving.admitted.") {
                    (true, t)
                } else if let Some(t) = m.name.strip_prefix("serving.rejected.") {
                    (false, t)
                } else if let Some(t) = m.name.strip_prefix("serving.shed.") {
                    (false, t)
                } else {
                    return;
                };
                // Counters carry a delta (always 1 from the gateway, but
                // honour larger deltas from other emitters).
                let count = m.value.max(0.0) as u64;
                if count > 0 {
                    let tenant = prefix.to_string();
                    self.record_event(&tenant, at, good, count);
                }
            }
            Record::Span(s) if s.name == "serving.invoke" => {
                let Some(threshold) = self.config.latency_threshold_secs else {
                    return;
                };
                let Some(tenant) = s.attrs.iter().find_map(|(k, v)| match (k.as_str(), v) {
                    ("tenant", AttrValue::Str(t)) => Some(t.clone()),
                    _ => None,
                }) else {
                    return;
                };
                let slow = s.duration_secs() > threshold;
                self.record_event(&tenant, s.end_secs, !slow, 1);
            }
            _ => {}
        }
    }

    /// Error ratio over `(now - window_secs, now]`, bucket-aligned.
    fn error_ratio(&self, state: &TenantState, now_secs: f64, window_secs: f64) -> f64 {
        let now_idx = self.bucket_index(now_secs);
        let from = now_secs - window_secs;
        let from_idx = if from <= 0.0 {
            0
        } else {
            self.bucket_index(from)
        };
        let (mut good, mut bad) = (0u64, 0u64);
        for (_, b) in state.buckets.range(from_idx..=now_idx) {
            good += b.good;
            bad += b.bad;
        }
        let total = good + bad;
        if total == 0 {
            0.0
        } else {
            bad as f64 / total as f64
        }
    }

    /// Evaluate every (tenant, window) rule at simulated time `now_secs`:
    /// fire rising edges, resolve falling ones, track peak burn, prune
    /// buckets past the longest window. Call at tick boundaries with
    /// non-decreasing times.
    pub fn evaluate(&mut self, now_secs: f64) {
        let budget = self.config.budget();
        let windows = self.config.windows.clone();
        // Split-borrow dance: evaluation appends to `alerts` while
        // iterating tenants, so take both maps apart explicitly.
        let mut tenants = std::mem::take(&mut self.tenants);
        for (tenant, state) in tenants.iter_mut() {
            for (wi, w) in windows.iter().enumerate() {
                let burn_short = self.error_ratio(state, now_secs, w.short_secs) / budget;
                let burn_long = self.error_ratio(state, now_secs, w.long_secs) / budget;
                let firing = burn_short >= w.threshold && burn_long >= w.threshold;
                match (state.active[wi], firing) {
                    (None, true) => {
                        state.active[wi] = Some(self.alerts.len());
                        self.alerts.push(SloAlert {
                            tenant: tenant.clone(),
                            severity: w.severity,
                            short_secs: w.short_secs,
                            long_secs: w.long_secs,
                            threshold: w.threshold,
                            fired_at_secs: now_secs,
                            resolved_at_secs: None,
                            peak_burn: burn_short,
                        });
                        self.transitions.push(AlertTransition {
                            tenant: tenant.clone(),
                            severity: w.severity,
                            window: wi,
                            rising: true,
                            at_secs: now_secs,
                            burn: burn_short,
                        });
                    }
                    (Some(ai), true) => {
                        let a = &mut self.alerts[ai];
                        if burn_short > a.peak_burn {
                            a.peak_burn = burn_short;
                        }
                    }
                    (Some(ai), false) => {
                        self.alerts[ai].resolved_at_secs = Some(now_secs);
                        state.active[wi] = None;
                        self.transitions.push(AlertTransition {
                            tenant: tenant.clone(),
                            severity: w.severity,
                            window: wi,
                            rising: false,
                            at_secs: now_secs,
                            burn: burn_short,
                        });
                    }
                    (None, false) => {}
                }
            }
            // Prune: everything strictly older than the longest window
            // can never influence another evaluation.
            let horizon = now_secs - self.config.longest_window_secs();
            if horizon > 0.0 {
                let keep_from = self.bucket_index(horizon);
                state.buckets = state.buckets.split_off(&keep_from);
            }
        }
        self.tenants = tenants;
    }

    /// The alert log so far, in firing order (deterministic: tenants are
    /// iterated in name order, windows in config order, at monotone tick
    /// times).
    pub fn alerts(&self) -> &[SloAlert] {
        &self.alerts
    }

    /// Drain the alert edges (rising + falling) recorded since the last
    /// call, in evaluation order (tenant name, then window index, at
    /// monotone tick times). Each transition is delivered exactly once —
    /// an alert that keeps firing across many ticks yields one rising
    /// edge, which is what makes edge-driven control deterministic.
    pub fn take_transitions(&mut self) -> Vec<AlertTransition> {
        std::mem::take(&mut self.transitions)
    }

    /// Buckets currently held (memory-bound diagnostics).
    pub fn buckets_held(&self) -> usize {
        self.tenants.values().map(|s| s.buckets.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::MetricRecord;

    fn counter(name: &str, value: f64, at: f64) -> Record {
        Record::Metric(MetricRecord {
            seq: 0,
            name: name.to_string(),
            kind: MetricKind::Counter,
            value,
            at_secs: Some(at),
        })
    }

    fn test_config() -> SloConfig {
        // Scaled for second-scale sims: 95% objective, page on 2x burn
        // over 5s/15s windows, 1s buckets.
        SloConfig::new(0.95)
            .with_bucket_secs(1.0)
            .with_windows(vec![BurnWindow::new(5.0, 15.0, 2.0, Severity::Page)])
    }

    #[test]
    fn quiet_stream_never_fires() {
        let mut mon = SloMonitor::new(test_config());
        for t in 0..30 {
            mon.consume(&counter("serving.admitted.acme", 1.0, t as f64));
            mon.evaluate(t as f64);
        }
        assert!(mon.alerts().is_empty());
    }

    #[test]
    fn sustained_errors_fire_and_resolve() {
        let mut mon = SloMonitor::new(test_config());
        // 50% errors for 20s: burn = 0.5 / 0.05 = 10x >> 2x threshold.
        for t in 0..20 {
            mon.consume(&counter("serving.admitted.acme", 1.0, t as f64));
            mon.consume(&counter("serving.rejected.acme", 1.0, t as f64));
            mon.evaluate(t as f64);
        }
        assert_eq!(mon.alerts().len(), 1, "one alert, not one per tick");
        let a = &mon.alerts()[0];
        assert_eq!(a.tenant, "acme");
        assert_eq!(a.severity, Severity::Page);
        assert!(a.resolved_at_secs.is_none(), "still firing");
        assert!(a.peak_burn >= 9.0, "peak burn {}", a.peak_burn);
        // Recovery: clean traffic until both windows decay under 2x.
        for t in 20..60 {
            mon.consume(&counter("serving.admitted.acme", 4.0, t as f64));
            mon.evaluate(t as f64);
        }
        let a = &mon.alerts()[0];
        assert!(
            a.resolved_at_secs.is_some(),
            "alert must resolve after recovery"
        );
        assert_eq!(mon.alerts().len(), 1);
    }

    #[test]
    fn short_blip_filtered_by_long_window() {
        let mut mon = SloMonitor::new(test_config());
        // 14s of clean traffic, then a single 1s error burst: the short
        // window spikes but the long window stays under threshold.
        for t in 0..14 {
            mon.consume(&counter("serving.admitted.blip", 10.0, t as f64));
            mon.evaluate(t as f64);
        }
        mon.consume(&counter("serving.rejected.blip", 3.0, 14.0));
        mon.consume(&counter("serving.admitted.blip", 7.0, 14.0));
        mon.evaluate(14.0);
        assert!(
            mon.alerts().is_empty(),
            "long window must veto a 1-bucket blip: {:?}",
            mon.alerts()
        );
    }

    #[test]
    fn latency_slo_counts_slow_invokes_as_bad() {
        use crate::record::SpanRecord;
        let cfg = test_config().with_latency_threshold(1.0);
        let mut mon = SloMonitor::new(cfg);
        let invoke = |start: f64, end: f64| {
            Record::Span(SpanRecord {
                seq: 0,
                name: "serving.invoke".to_string(),
                cat: "serving".to_string(),
                start_secs: start,
                end_secs: end,
                track: 0,
                depth: 0,
                task: Some(1),
                attempt: None,
                attrs: vec![("tenant".to_string(), AttrValue::Str("lat".to_string()))],
            })
        };
        for t in 0..20 {
            // Every invocation takes 3s: all bad against a 1s threshold.
            mon.consume(&invoke(t as f64, t as f64 + 3.0));
            mon.evaluate(t as f64 + 3.0);
        }
        assert_eq!(mon.alerts().len(), 1);
        assert_eq!(mon.alerts()[0].tenant, "lat");
    }

    #[test]
    fn per_tenant_isolation() {
        let mut mon = SloMonitor::new(test_config());
        for t in 0..20 {
            mon.consume(&counter("serving.admitted.good", 5.0, t as f64));
            mon.consume(&counter("serving.rejected.bad", 5.0, t as f64));
            mon.evaluate(t as f64);
        }
        let tenants: Vec<&str> = mon.alerts().iter().map(|a| a.tenant.as_str()).collect();
        assert_eq!(tenants, vec!["bad"], "only the failing tenant pages");
    }

    #[test]
    fn buckets_prune_to_constant_memory() {
        let mut mon = SloMonitor::new(test_config());
        for t in 0..10_000 {
            mon.consume(&counter("serving.admitted.mem", 1.0, t as f64));
            mon.evaluate(t as f64);
        }
        // Longest window 15s at 1s buckets: ~16 live buckets + slack.
        assert!(
            mon.buckets_held() <= 20,
            "buckets must prune: {}",
            mon.buckets_held()
        );
    }

    #[test]
    fn transitions_are_edge_deduped_and_drained_once() {
        let mut mon = SloMonitor::new(test_config());
        // 20s of 50% errors: fires once, despite firing on many ticks.
        for t in 0..20 {
            mon.consume(&counter("serving.admitted.acme", 1.0, t as f64));
            mon.consume(&counter("serving.rejected.acme", 1.0, t as f64));
            mon.evaluate(t as f64);
        }
        let rising = mon.take_transitions();
        assert_eq!(rising.len(), 1, "one rising edge: {rising:?}");
        assert!(rising[0].rising);
        assert_eq!(rising[0].tenant, "acme");
        assert_eq!(rising[0].window, 0);
        assert!(mon.take_transitions().is_empty(), "drained exactly once");
        // Recovery produces exactly one falling edge.
        for t in 20..60 {
            mon.consume(&counter("serving.admitted.acme", 4.0, t as f64));
            mon.evaluate(t as f64);
        }
        let falling = mon.take_transitions();
        assert_eq!(falling.len(), 1, "{falling:?}");
        assert!(!falling[0].rising);
        assert!(falling[0].at_secs > rising[0].at_secs);
    }

    #[test]
    fn untimed_and_foreign_records_ignored() {
        let mut mon = SloMonitor::new(test_config());
        mon.consume(&Record::Metric(MetricRecord {
            seq: 0,
            name: "serving.admitted.x".to_string(),
            kind: MetricKind::Counter,
            value: 1.0,
            at_secs: None,
        }));
        mon.consume(&counter("master.submitted", 1.0, 1.0));
        mon.consume(&Record::Metric(MetricRecord {
            seq: 0,
            name: "serving.queue_depth.x".to_string(),
            kind: MetricKind::Gauge,
            value: 9.0,
            at_secs: Some(1.0),
        }));
        mon.evaluate(1.0);
        assert!(mon.tenants.is_empty());
    }
}
