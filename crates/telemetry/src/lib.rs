//! # lfm-telemetry — end-to-end tracing & metrics for the LFM stack
//!
//! The paper makes *function invocations* the unit of resource management;
//! this crate makes them the unit of observability. Every layer of the
//! simulated stack (master, worker, LFM, sweep engine, environment caches)
//! records **spans** (named intervals in simulated or wall time, with
//! task/worker/attempt ids and key=value attrs) and **counters / gauges /
//! histogram samples** through a cheap [`Recorder`] handle.
//!
//! Design rules:
//!
//! * **Zero perturbation.** Recording never touches simulation state: no
//!   RNG draws, no event-queue traffic, no timing inputs. A run with a live
//!   recorder produces a byte-identical `RunReport` to one with
//!   [`Recorder::disabled`] (pinned by an integration test).
//! * **~Free when off.** [`Recorder::disabled`] is a `None` behind the
//!   handle; every emission path checks it first and allocates nothing —
//!   including string interning, which only happens once a live shard is
//!   in hand.
//! * **Binary hot path.** Live recording encodes each record straight into
//!   a per-shard byte buffer using the compact wire format in [`wire`]:
//!   interned-name ids ([`Name`]) instead of heap `String`s, varint fields,
//!   delta-coded timestamps. A span that used to cost two `String`
//!   allocations plus a ~150-byte enum now costs ~10–30 buffer bytes and
//!   zero allocations (amortised). [`Recorder::take`] / [`Recorder::snapshot`]
//!   stream-decode the shards back into [`Record`]s through a k-way merge
//!   on the global sequence number, so exporters and tests see exactly the
//!   stream the heap-record implementation produced — byte-identical traces
//!   for identical seeded runs.
//! * **Sharded buffers.** Live recording appends to one of a fixed set of
//!   mutex-guarded shards chosen by thread, so parallel sweep jobs sharing
//!   a recorder do not serialize on one lock. A global sequence number
//!   gives the merged stream a total order.
//! * **Bounded memory.** Each shard holds at most a fixed number of
//!   records ([`Recorder::enabled_with_capacity`]); overflowing records
//!   are dropped and counted, and the count surfaces as a synthetic
//!   untimed `telemetry.dropped_events` counter in [`Recorder::take`] /
//!   [`Recorder::snapshot`] output (and thence the Chrome trace's
//!   `otherData`), so a million-task federation run cannot OOM the host
//!   silently.
//!
//! ### Atomic ordering contract
//!
//! Both atomics in the recorder use `Relaxed` everywhere, deliberately:
//!
//! * `seq` is bumped with `fetch_add` *while holding the emitting shard's
//!   mutex*. The total order of the merged stream comes from the **values**
//!   the counter hands out, not from memory ordering; and the
//!   happens-before edges that make each encoded record visible to
//!   `take`/`snapshot` come from the shard mutexes (readers lock every
//!   shard). Holding the lock across the `fetch_add` also makes sequence
//!   numbers strictly increasing *within* a shard, which is what lets the
//!   wire format delta-code them as non-negative varints.
//! * `dropped` is a pure statistics counter guarding no data; `swap(0,
//!   Relaxed)` in `take` is a single atomic read-and-reset, which is all
//!   the reset needs. Its value is only *reported* (never used to index or
//!   gate memory), so weaker-than-`AcqRel` is sound.
//!
//! A multi-thread stress test (`tests/telemetry_binary.rs`) hammers eight
//! emitters against concurrent snapshots to pin merge total-order
//! stability under this contract.
//!
//! Exporters (see [`export`]) turn the merged stream into Chrome
//! trace-event JSON (`chrome://tracing` loadable), flat JSONL, or a binary
//! Perfetto protobuf trace ([`export::perfetto_trace`]);
//! [`MetricsRegistry`] aggregates the metric samples into the existing
//! `lfm_simcluster::metrics` types.
//!
//! ### Hot call sites: pre-interned keys
//!
//! `span("exec", "lfm")` interns both strings on every call — a hash
//! lookup under a read lock. Hot sites skip even that by interning once
//! into a [`Name`] (typically in a `OnceLock`-initialised key struct) and
//! emitting through the `*_key` variants ([`Recorder::span_key`],
//! [`Recorder::counter_key`], ...), which take pre-interned ids and touch
//! no string machinery at all.

pub mod bench_api;
pub mod export;
pub mod intern;
pub mod metrics;
pub mod perfetto;
pub mod record;
pub mod slo;
pub mod tail;
pub mod wire;

pub use intern::Name;
pub use metrics::MetricsRegistry;
pub use record::{AttrValue, InstantRecord, MetricKind, MetricRecord, Record, SpanRecord};
pub use tail::{TailBatch, TailCursor};
pub use wire::{AttrVal, DecodeError, MergeDecoder, ShardDecoder};

use lfm_simcluster::time::SimTime;
use parking_lot::Mutex;
use std::cell::Cell;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;
use wire::{CodecState, PendingInstant, PendingSpan};

/// Number of per-thread buffer shards. A small power of two: the stack
/// never runs more than a few dozen recording threads at once.
const SHARD_COUNT: usize = 16;

/// Default per-shard record cap (~4M records across 16 shards): generous
/// for every paper figure, small enough that a runaway emitter cannot eat
/// the host.
const DEFAULT_SHARD_CAPACITY: usize = 1 << 18;

/// One shard: an append-only byte buffer of wire-encoded records plus the
/// codec state both ends of the wire mirror (seq/time deltas).
#[derive(Default)]
struct Shard {
    buf: Vec<u8>,
    /// Records currently encoded in `buf` (the capacity unit — capping on
    /// records, not bytes, preserves the PR-2 overflow semantics exactly).
    records: usize,
    /// Encoder state at the *end* of `buf` (what the next record is
    /// delta-coded against).
    st: CodecState,
    /// Decoder state at the *start* of `buf`. Equal to the default until a
    /// tail consumer drains the shard mid-run: a tail drain takes the
    /// bytes without resetting `st`, so the remaining stream's first
    /// record is delta-coded against the drained prefix and any later
    /// whole-buffer decode ([`Recorder::take`] / [`Recorder::snapshot`])
    /// must resume from this state.
    base_st: CodecState,
}

struct Inner {
    /// Global sequence counter; `Relaxed` per the module-level ordering
    /// contract (bumped under a shard mutex, ordered by value).
    seq: AtomicU64,
    shards: Vec<Mutex<Shard>>,
    /// Per-shard record cap; pushes beyond it are dropped and counted.
    shard_capacity: usize,
    /// Records dropped at full shards since the last [`Recorder::take`].
    /// `Relaxed`: a pure statistics counter, see the ordering contract.
    dropped: AtomicU64,
    /// Records dropped at full shards over the recorder's whole lifetime —
    /// never reset, so tail cursors can report per-poll deltas no matter
    /// how `take` interleaves with them.
    dropped_total: AtomicU64,
    /// Bumped by every [`Recorder::take`]; tail cursors compare it to
    /// detect that records were consumed behind their back and resync
    /// instead of waiting forever for sequence numbers that will never
    /// arrive.
    take_epoch: AtomicU64,
    /// Wall-clock origin for host-side spans ([`Recorder::wall_span`]).
    origin: Instant,
}

thread_local! {
    /// Wall-span nesting depth for the current thread.
    static WALL_DEPTH: Cell<u32> = const { Cell::new(0) };
    /// Cached shard index (usize::MAX = not yet computed). Hashing the
    /// thread id costs more than the rest of a binary emission combined,
    /// so it happens once per thread, not once per record.
    static SHARD_IDX: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// Cheap, cloneable handle to a recording session (or to nothing at all).
///
/// Cloning shares the underlying buffers: a `MasterConfig` cloned across a
/// sweep fans every job's records into the same session.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(inner) => write!(f, "Recorder(enabled, {} records)", inner.len()),
            None => write!(f, "Recorder(disabled)"),
        }
    }
}

impl Inner {
    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().records).sum()
    }
}

/// Shard index for the current thread: stable within a thread, spread
/// across threads.
fn thread_shard() -> usize {
    SHARD_IDX.with(|c| {
        let cached = c.get();
        if cached != usize::MAX {
            return cached;
        }
        let mut h = std::collections::hash_map::DefaultHasher::new();
        std::thread::current().id().hash(&mut h);
        let idx = (h.finish() as usize) % SHARD_COUNT;
        c.set(idx);
        idx
    })
}

impl Recorder {
    /// A live recording session with empty buffers and the default
    /// per-shard capacity.
    pub fn enabled() -> Self {
        Self::enabled_with_capacity(DEFAULT_SHARD_CAPACITY)
    }

    /// A live recording session whose shards each hold at most
    /// `shard_capacity` records (clamped to ≥ 1). Overflowing records are
    /// dropped and counted — see [`Recorder::dropped`].
    pub fn enabled_with_capacity(shard_capacity: usize) -> Self {
        Recorder {
            inner: Some(Arc::new(Inner {
                seq: AtomicU64::new(0),
                shards: (0..SHARD_COUNT)
                    .map(|_| Mutex::new(Shard::default()))
                    .collect(),
                shard_capacity: shard_capacity.max(1),
                dropped: AtomicU64::new(0),
                dropped_total: AtomicU64::new(0),
                take_epoch: AtomicU64::new(0),
                origin: Instant::now(),
            })),
        }
    }

    /// Records dropped at full shards since the last [`Recorder::take`]
    /// (0 for a disabled recorder).
    pub fn dropped(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|i| i.dropped.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// The no-op recorder: every emission is a single branch, no
    /// allocation, no locking.
    pub fn disabled() -> Self {
        Recorder { inner: None }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records buffered so far (all shards).
    pub fn len(&self) -> usize {
        self.inner.as_ref().map(|i| i.len()).unwrap_or(0)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently buffered across all shards (diagnostics/benches).
    pub fn buffered_bytes(&self) -> usize {
        self.inner
            .as_ref()
            .map(|i| i.shards.iter().map(|s| s.lock().buf.len()).sum())
            .unwrap_or(0)
    }

    /// The emission hot path: claim the thread's shard, enforce the record
    /// cap, hand out a sequence number, and encode in place. The closure
    /// runs under the shard lock — it must only append to the buffer.
    #[inline]
    fn emit(&self, encode: impl FnOnce(u64, &mut Vec<u8>, &mut CodecState)) {
        let Some(inner) = &self.inner else { return };
        let mut shard = inner.shards[thread_shard()].lock();
        if shard.records >= inner.shard_capacity {
            // Drop-and-count: no seq is consumed, so the surviving stream
            // stays dense and totally ordered.
            inner.dropped.fetch_add(1, Ordering::Relaxed);
            inner.dropped_total.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // Relaxed is sound here: the shard mutex orders the buffer bytes,
        // and the seq *value* orders the merged stream (see module docs).
        let seq = inner.seq.fetch_add(1, Ordering::Relaxed);
        let Shard {
            buf, records, st, ..
        } = &mut *shard;
        encode(seq, buf, st);
        *records += 1;
    }

    /// The synthetic record surfacing the overflow count: an untimed
    /// monotonic counter, which the Chrome exporter aggregates into
    /// `otherData` like any other untimed metric.
    fn dropped_record(seq: u64, dropped: u64) -> Record {
        Record::Metric(MetricRecord {
            seq,
            name: "telemetry.dropped_events".to_string(),
            kind: MetricKind::Counter,
            value: dropped as f64,
            at_secs: None,
        })
    }

    /// Begin a span description; finish with [`SpanBuilder::emit`]. When
    /// the recorder is disabled the builder is inert and nothing is
    /// allocated or interned.
    pub fn span(&self, name: &str, cat: &str) -> SpanBuilder<'_> {
        if self.inner.is_none() {
            return SpanBuilder {
                recorder: self,
                pending: None,
            };
        }
        self.span_key(Name::intern(name), Name::intern(cat))
    }

    /// [`Recorder::span`] with pre-interned names: the hot-site variant,
    /// no string hashing at all.
    pub fn span_key(&self, name: Name, cat: Name) -> SpanBuilder<'_> {
        SpanBuilder {
            recorder: self,
            pending: self.inner.as_ref().map(|_| PendingSpan {
                name,
                cat,
                ..Default::default()
            }),
        }
    }

    /// Begin a point-event description; finish with
    /// [`InstantBuilder::emit`].
    pub fn instant(&self, name: &str, cat: &str) -> InstantBuilder<'_> {
        if self.inner.is_none() {
            return InstantBuilder {
                recorder: self,
                pending: None,
            };
        }
        self.instant_key(Name::intern(name), Name::intern(cat))
    }

    /// [`Recorder::instant`] with pre-interned names.
    pub fn instant_key(&self, name: Name, cat: Name) -> InstantBuilder<'_> {
        InstantBuilder {
            recorder: self,
            pending: self.inner.as_ref().map(|_| PendingInstant {
                name,
                cat,
                ..Default::default()
            }),
        }
    }

    /// Add `delta` to an untimed monotonic counter.
    pub fn counter(&self, name: &str, delta: u64) {
        if self.inner.is_some() {
            self.counter_key(Name::intern(name), delta);
        }
    }

    /// [`Recorder::counter`] with a pre-interned name.
    pub fn counter_key(&self, name: Name, delta: u64) {
        self.emit(|seq, buf, st| {
            wire::encode_metric(buf, st, seq, name, MetricKind::Counter, delta as f64, None);
        });
    }

    /// Add `delta` to a counter at a simulated timestamp (plotted as a
    /// running total in the Chrome trace).
    pub fn counter_at(&self, name: &str, delta: u64, at: SimTime) {
        if self.inner.is_some() {
            self.counter_at_key(Name::intern(name), delta, at);
        }
    }

    /// [`Recorder::counter_at`] with a pre-interned name.
    pub fn counter_at_key(&self, name: Name, delta: u64, at: SimTime) {
        self.emit(|seq, buf, st| {
            wire::encode_metric(
                buf,
                st,
                seq,
                name,
                MetricKind::Counter,
                delta as f64,
                Some(at.as_secs()),
            );
        });
    }

    /// Record a level (queue depth, pool size) at a simulated timestamp.
    pub fn gauge(&self, name: &str, value: f64, at: SimTime) {
        if self.inner.is_some() {
            self.gauge_key(Name::intern(name), value, at);
        }
    }

    /// [`Recorder::gauge`] with a pre-interned name.
    pub fn gauge_key(&self, name: Name, value: f64, at: SimTime) {
        self.emit(|seq, buf, st| {
            wire::encode_metric(
                buf,
                st,
                seq,
                name,
                MetricKind::Gauge,
                value,
                Some(at.as_secs()),
            );
        });
    }

    /// Record one sample of a distribution.
    pub fn observe(&self, name: &str, value: f64) {
        if self.inner.is_some() {
            self.observe_key(Name::intern(name), value);
        }
    }

    /// [`Recorder::observe`] with a pre-interned name.
    pub fn observe_key(&self, name: Name, value: f64) {
        self.emit(|seq, buf, st| {
            wire::encode_metric(buf, st, seq, name, MetricKind::Histogram, value, None);
        });
    }

    /// Open a wall-clock span that records itself on drop. Used by the
    /// host-side layers (parallel sweep engine) whose time axis is real.
    /// Nested guards on one thread track their depth.
    pub fn wall_span(&self, name: &str, cat: &str) -> WallSpan {
        if self.inner.is_none() {
            return WallSpan { state: None };
        }
        self.wall_span_key(Name::intern(name), Name::intern(cat))
    }

    /// [`Recorder::wall_span`] with pre-interned names.
    pub fn wall_span_key(&self, name: Name, cat: Name) -> WallSpan {
        let Some(inner) = &self.inner else {
            return WallSpan { state: None };
        };
        let depth = WALL_DEPTH.with(|d| {
            let cur = d.get();
            d.set(cur + 1);
            cur
        });
        WallSpan {
            state: Some(WallSpanState {
                recorder: self.clone(),
                name,
                cat,
                start_secs: inner.origin.elapsed().as_secs_f64(),
                depth,
                attrs: wire::AttrList::default(),
            }),
        }
    }

    /// Decode + k-way merge shard buffers into `seq` order, resuming each
    /// shard from its saved base codec state (non-default only after a
    /// tail consumer drained a prefix of the stream).
    fn decode_merged(bufs: &[(Vec<u8>, CodecState)], capacity: usize) -> Vec<Record> {
        let mut out = Vec::with_capacity(capacity + 1);
        let mut merge = MergeDecoder::with_states(bufs.iter().map(|(b, st)| (b.as_slice(), *st)));
        out.extend(merge.by_ref());
        debug_assert!(
            merge.errors().is_empty(),
            "self-encoded stream must decode cleanly: {:?}",
            merge.errors()
        );
        out
    }

    /// Drain every shard and return the merged stream in `seq` order. If
    /// any records were dropped at full shards, a synthetic untimed
    /// `telemetry.dropped_events` counter carrying the count is appended
    /// and the drop counter resets.
    pub fn take(&self) -> Vec<Record> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut total = 0;
        let bufs: Vec<(Vec<u8>, CodecState)> = inner
            .shards
            .iter()
            .map(|s| {
                let mut shard = s.lock();
                total += shard.records;
                shard.records = 0;
                shard.st = CodecState::default();
                let base = shard.base_st;
                shard.base_st = CodecState::default();
                (std::mem::take(&mut shard.buf), base)
            })
            .collect();
        inner.take_epoch.fetch_add(1, Ordering::Relaxed);
        let mut out = Self::decode_merged(&bufs, total);
        let dropped = inner.dropped.swap(0, Ordering::Relaxed);
        if dropped > 0 {
            let seq = inner.seq.fetch_add(1, Ordering::Relaxed);
            out.push(Self::dropped_record(seq, dropped));
        }
        out
    }

    /// Clone the merged stream in `seq` order **without draining**:
    /// repeated snapshots (and a later [`Recorder::take`] or tail drain)
    /// all see the same buffered records — nothing is consumed or reset.
    /// A nonzero drop count is surfaced as a trailing synthetic
    /// `telemetry.dropped_events` counter (without resetting it).
    pub fn snapshot(&self) -> Vec<Record> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut total = 0;
        let bufs: Vec<(Vec<u8>, CodecState)> = inner
            .shards
            .iter()
            .map(|s| {
                let shard = s.lock();
                total += shard.records;
                (shard.buf.clone(), shard.base_st)
            })
            .collect();
        let mut out = Self::decode_merged(&bufs, total);
        let dropped = inner.dropped.load(Ordering::Relaxed);
        if dropped > 0 {
            out.push(Self::dropped_record(
                inner.seq.load(Ordering::Relaxed),
                dropped,
            ));
        }
        out
    }

    /// Clone the raw binary shard buffers without draining or decoding.
    /// Each buffer is an independent wire stream for [`ShardDecoder`];
    /// feed all of them to [`MergeDecoder`] to reconstruct the total
    /// order. [`Recorder::take`] is the in-process convenience wrapper
    /// around exactly that; this accessor is for consumers that ship the
    /// bytes elsewhere (or tests that corrupt them on purpose). Note that
    /// after a tail drain the buffers no longer start from the default
    /// codec state, so a fresh [`ShardDecoder`] only decodes them when no
    /// tail consumer is active.
    pub fn raw_shards(&self) -> Vec<Vec<u8>> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        inner.shards.iter().map(|s| s.lock().buf.clone()).collect()
    }

    /// Open a tail cursor at the current take-epoch with zero drained
    /// records. Hand it to [`Recorder::drain_since`] to consume the
    /// stream incrementally while the run is live.
    ///
    /// A recorder supports **one** draining tail consumer at a time:
    /// drains consume buffered records (like [`Recorder::take`], but
    /// incremental), so two cursors — or a cursor raced against periodic
    /// `take` calls — would each see a disjoint subset of the stream.
    /// [`Recorder::snapshot`] stays safe to mix in: it never consumes, so
    /// a snapshot-then-drain sequence sees each record exactly once in
    /// the drain (no double counting, pinned by a unit test).
    pub fn cursor(&self) -> TailCursor {
        TailCursor::new(
            SHARD_COUNT,
            self.inner
                .as_ref()
                .map(|i| i.take_epoch.load(Ordering::Relaxed))
                .unwrap_or(0),
        )
    }

    /// Drain every record buffered since the cursor's last poll and merge
    /// them into `seq` order, without resetting the per-shard codec state
    /// — successive drains are one continuous wire stream per shard, so
    /// concatenating the raw chunks reproduces exactly what an undrained
    /// buffer would have held. Records dropped at full shards since the
    /// last poll are reported as [`TailBatch::dropped_delta`] (never as a
    /// decode error). Records whose sequence numbers have gaps still being
    /// filled by other shards stay buffered in the cursor until the gap
    /// closes; [`Recorder::finish_tail`] flushes them at end of run.
    pub fn drain_since(&self, cursor: &mut TailCursor) -> TailBatch {
        let Some(inner) = &self.inner else {
            return TailBatch::default();
        };
        let epoch = inner.take_epoch.load(Ordering::Relaxed);
        cursor.observe_epoch(epoch);
        for (i, s) in inner.shards.iter().enumerate() {
            let mut shard = s.lock();
            if shard.buf.is_empty() {
                continue;
            }
            shard.records = 0;
            // Keep `st` (encoder keeps delta-coding against the drained
            // prefix) and advance `base_st` to match: the buffer now
            // starts where the encoder stands.
            shard.base_st = shard.st;
            cursor.feed(i, &shard.buf);
            // clear() keeps the allocation: stealing the Vec would force
            // the emit hot path to regrow it from zero after every poll.
            shard.buf.clear();
        }
        let records = cursor.poll();
        let dropped_delta = cursor.observe_dropped(inner.dropped_total.load(Ordering::Relaxed));
        TailBatch {
            records,
            dropped_delta,
        }
    }

    /// Final tail poll: drain whatever is still buffered, then flush any
    /// records the cursor was holding for sequence-gap contiguity. Call
    /// once after the producing run has finished.
    pub fn finish_tail(&self, cursor: &mut TailCursor) -> TailBatch {
        let mut batch = self.drain_since(cursor);
        batch.records.extend(cursor.flush());
        batch
    }

    /// Build the synthetic `telemetry.dropped_events` record a tail
    /// consumer appends at end of stream, consuming one fresh sequence
    /// number exactly like [`Recorder::take`] does for its own synthetic
    /// record. Pure construction: no counters are read or reset — pass
    /// the drop total the cursor accumulated.
    pub fn synthesize_dropped(&self, dropped: u64) -> Option<Record> {
        let inner = self.inner.as_ref()?;
        if dropped == 0 {
            return None;
        }
        let seq = inner.seq.fetch_add(1, Ordering::Relaxed);
        Some(Self::dropped_record(seq, dropped))
    }

    /// Aggregate the buffered metric samples into a registry.
    pub fn metrics(&self) -> MetricsRegistry {
        MetricsRegistry::from_records(&self.snapshot())
    }
}

/// Builder for a span; inert when the recorder is disabled.
#[must_use = "call .emit() to record the span"]
pub struct SpanBuilder<'r> {
    recorder: &'r Recorder,
    pending: Option<PendingSpan>,
}

impl SpanBuilder<'_> {
    /// Simulated-time interval.
    pub fn at(self, start: SimTime, end: SimTime) -> Self {
        self.between_secs(start.as_secs(), end.as_secs())
    }

    /// Raw-seconds interval (for wall-time callers).
    pub fn between_secs(mut self, start: f64, end: f64) -> Self {
        if let Some(p) = &mut self.pending {
            p.start_secs = start;
            p.end_secs = end;
        }
        self
    }

    pub fn track(mut self, track: u64) -> Self {
        if let Some(p) = &mut self.pending {
            p.track = track;
        }
        self
    }

    pub fn task(mut self, task: u64) -> Self {
        if let Some(p) = &mut self.pending {
            p.task = Some(task);
        }
        self
    }

    pub fn attempt(mut self, attempt: u32) -> Self {
        if let Some(p) = &mut self.pending {
            p.attempt = Some(attempt);
        }
        self
    }

    pub fn attr(mut self, key: &str, value: impl Into<AttrVal>) -> Self {
        if let Some(p) = &mut self.pending {
            p.attrs.push(Name::intern(key), value.into().0);
        }
        self
    }

    /// [`SpanBuilder::attr`] with a pre-interned key.
    pub fn attr_key(mut self, key: Name, value: impl Into<AttrVal>) -> Self {
        if let Some(p) = &mut self.pending {
            p.attrs.push(key, value.into().0);
        }
        self
    }

    pub fn emit(self) {
        if let Some(p) = self.pending {
            debug_assert!(
                p.end_secs >= p.start_secs,
                "span '{}' ends before it starts",
                p.name.as_str()
            );
            self.recorder
                .emit(|seq, buf, st| wire::encode_span(buf, st, seq, &p));
        }
    }
}

/// Builder for an instant event; inert when the recorder is disabled.
#[must_use = "call .emit() to record the event"]
pub struct InstantBuilder<'r> {
    recorder: &'r Recorder,
    pending: Option<PendingInstant>,
}

impl InstantBuilder<'_> {
    pub fn at(mut self, at: SimTime) -> Self {
        if let Some(p) = &mut self.pending {
            p.at_secs = at.as_secs();
        }
        self
    }

    pub fn track(mut self, track: u64) -> Self {
        if let Some(p) = &mut self.pending {
            p.track = track;
        }
        self
    }

    pub fn task(mut self, task: u64) -> Self {
        if let Some(p) = &mut self.pending {
            p.task = Some(task);
        }
        self
    }

    pub fn attempt(mut self, attempt: u32) -> Self {
        if let Some(p) = &mut self.pending {
            p.attempt = Some(attempt);
        }
        self
    }

    pub fn attr(mut self, key: &str, value: impl Into<AttrVal>) -> Self {
        if let Some(p) = &mut self.pending {
            p.attrs.push(Name::intern(key), value.into().0);
        }
        self
    }

    /// [`InstantBuilder::attr`] with a pre-interned key.
    pub fn attr_key(mut self, key: Name, value: impl Into<AttrVal>) -> Self {
        if let Some(p) = &mut self.pending {
            p.attrs.push(key, value.into().0);
        }
        self
    }

    pub fn emit(self) {
        if let Some(p) = self.pending {
            self.recorder
                .emit(|seq, buf, st| wire::encode_instant(buf, st, seq, &p));
        }
    }
}

struct WallSpanState {
    recorder: Recorder,
    name: Name,
    cat: Name,
    start_secs: f64,
    depth: u32,
    attrs: wire::AttrList,
}

/// RAII wall-clock span; records on drop. Inert when disabled.
pub struct WallSpan {
    state: Option<WallSpanState>,
}

impl WallSpan {
    /// Attach an attribute (no-op when disabled).
    pub fn attr(&mut self, key: &str, value: impl Into<AttrVal>) {
        if let Some(s) = &mut self.state {
            s.attrs.push(Name::intern(key), value.into().0);
        }
    }

    /// [`WallSpan::attr`] with a pre-interned key.
    pub fn attr_key(&mut self, key: Name, value: impl Into<AttrVal>) {
        if let Some(s) = &mut self.state {
            s.attrs.push(key, value.into().0);
        }
    }

    /// Nesting depth this span was opened at (tests; disabled spans report
    /// 0).
    pub fn depth(&self) -> u32 {
        self.state.as_ref().map(|s| s.depth).unwrap_or(0)
    }
}

impl Drop for WallSpan {
    fn drop(&mut self) {
        let Some(state) = self.state.take() else {
            return;
        };
        WALL_DEPTH.with(|d| d.set(state.depth));
        let WallSpanState {
            recorder,
            name,
            cat,
            start_secs,
            depth,
            attrs,
        } = state;
        let Some(inner) = &recorder.inner else { return };
        let pending = PendingSpan {
            name,
            cat,
            start_secs,
            end_secs: inner.origin.elapsed().as_secs_f64(),
            track: thread_shard() as u64,
            depth,
            task: None,
            attempt: None,
            attrs,
        };
        recorder.emit(|seq, buf, st| wire::encode_span(buf, st, seq, &pending));
    }
}

static GLOBAL: OnceLock<Recorder> = OnceLock::new();

/// Install (idempotently) and return the process-wide recorder. The first
/// caller enables it; later callers get the same session. Used by runner
/// binaries behind `--trace-out`.
pub fn install_global() -> Recorder {
    GLOBAL.get_or_init(Recorder::enabled).clone()
}

/// The process-wide recorder: the installed session, or the no-op recorder
/// when nothing was installed. Layers without an explicit handle (caches,
/// the parallel engine) emit through this.
pub fn global() -> Recorder {
    GLOBAL.get().cloned().unwrap_or_else(Recorder::disabled)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let r = Recorder::disabled();
        r.counter("c", 1);
        r.observe("h", 2.0);
        r.gauge("g", 3.0, SimTime::from_secs(1.0));
        r.span("s", "t")
            .at(SimTime::ZERO, SimTime::from_secs(1.0))
            .emit();
        r.instant("i", "t").at(SimTime::ZERO).emit();
        drop(r.wall_span("w", "t"));
        assert!(!r.is_enabled());
        assert!(r.is_empty());
        assert!(r.take().is_empty());
    }

    #[test]
    fn records_merge_in_seq_order() {
        let r = Recorder::enabled();
        r.counter("a", 1);
        r.span("s", "t")
            .at(SimTime::from_secs(1.0), SimTime::from_secs(2.0))
            .emit();
        r.counter("b", 2);
        let records = r.take();
        let seqs: Vec<u64> = records.iter().map(Record::seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert!(r.is_empty(), "take drains");
    }

    #[test]
    fn snapshot_does_not_drain() {
        let r = Recorder::enabled();
        r.counter("a", 1);
        assert_eq!(r.snapshot().len(), 1);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn span_builder_carries_ids_and_attrs() {
        let r = Recorder::enabled();
        r.span("exec", "lfm")
            .at(SimTime::from_secs(3.0), SimTime::from_secs(5.5))
            .track(7)
            .task(42)
            .attempt(1)
            .attr("polls", 12u64)
            .attr("peak_mb", 110.5)
            .attr("outcome", "completed")
            .emit();
        let records = r.take();
        let Record::Span(s) = &records[0] else {
            panic!("expected span")
        };
        assert_eq!(s.name, "exec");
        assert_eq!(s.cat, "lfm");
        assert_eq!((s.start_secs, s.end_secs), (3.0, 5.5));
        assert_eq!(s.track, 7);
        assert_eq!(s.task, Some(42));
        assert_eq!(s.attempt, Some(1));
        assert_eq!(s.attrs.len(), 3);
    }

    #[test]
    fn keyed_emission_matches_string_emission() {
        let by_str = Recorder::enabled();
        by_str.counter("k.counter", 2);
        by_str
            .span("k.span", "k.cat")
            .at(SimTime::from_secs(1.0), SimTime::from_secs(2.0))
            .attr("w", 9u64)
            .emit();
        let by_key = Recorder::enabled();
        let (name, cat, key) = (
            Name::intern("k.span"),
            Name::intern("k.cat"),
            Name::intern("w"),
        );
        by_key.counter_key(Name::intern("k.counter"), 2);
        by_key
            .span_key(name, cat)
            .at(SimTime::from_secs(1.0), SimTime::from_secs(2.0))
            .attr_key(key, 9u64)
            .emit();
        assert_eq!(by_str.take(), by_key.take());
    }

    #[test]
    fn wall_spans_nest_and_contain() {
        let r = Recorder::enabled();
        {
            let outer = r.wall_span("outer", "host");
            assert_eq!(outer.depth(), 0);
            {
                let mut inner = r.wall_span("inner", "host");
                inner.attr("i", 1u64);
                assert_eq!(inner.depth(), 1);
            }
            {
                let inner2 = r.wall_span("inner2", "host");
                assert_eq!(inner2.depth(), 1, "depth restored after sibling drop");
            }
        }
        let records = r.take();
        let spans: Vec<&SpanRecord> = records
            .iter()
            .filter_map(|rec| match rec {
                Record::Span(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(spans.len(), 3);
        // Drop order: inner, inner2, outer.
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        for name in ["inner", "inner2"] {
            let inner = spans.iter().find(|s| s.name == name).unwrap();
            assert_eq!(inner.depth, outer.depth + 1);
            assert!(outer.contains(inner), "{name} not contained in outer");
        }
    }

    #[test]
    fn sharded_recording_from_many_threads_merges_totally_ordered() {
        let r = Recorder::enabled();
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let r = r.clone();
                scope.spawn(move || {
                    for i in 0..100u64 {
                        r.counter("thread_counter", t * 1000 + i);
                    }
                });
            }
        });
        let records = r.take();
        assert_eq!(records.len(), 800);
        let seqs: Vec<u64> = records.iter().map(Record::seq).collect();
        for w in seqs.windows(2) {
            assert!(w[0] < w[1], "merge must be strictly seq-ordered");
        }
        assert_eq!(*seqs.last().unwrap(), 799, "seq is dense across shards");
    }

    #[test]
    fn full_shard_drops_and_counts() {
        let r = Recorder::enabled_with_capacity(2);
        // One thread lands every record on one shard: 2 fit, 3 drop.
        for i in 0..5u64 {
            r.counter("c", i);
        }
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 3);

        // snapshot surfaces the count without resetting it.
        let snap = r.snapshot();
        assert_eq!(snap.len(), 3);
        let Record::Metric(m) = snap.last().unwrap() else {
            panic!("expected metric")
        };
        assert_eq!(m.name, "telemetry.dropped_events");
        assert_eq!(m.value, 3.0);
        assert_eq!(m.at_secs, None, "must be untimed → otherData");
        assert_eq!(r.dropped(), 3);

        // take drains, appends the synthetic counter, and resets.
        let records = r.take();
        assert_eq!(records.len(), 3);
        let Record::Metric(m) = records.last().unwrap() else {
            panic!("expected metric")
        };
        assert_eq!(m.name, "telemetry.dropped_events");
        assert_eq!(m.value, 3.0);
        assert_eq!(r.dropped(), 0);
        assert!(r.take().is_empty(), "no stale synthetic record");
        let seqs: Vec<u64> = records.iter().map(Record::seq).collect();
        for w in seqs.windows(2) {
            assert!(w[0] < w[1], "survivors + synthetic stay seq-ordered");
        }
    }

    #[test]
    fn dropped_overflow_reaches_other_data() {
        let r = Recorder::enabled_with_capacity(1);
        r.counter("c", 1);
        r.counter("c", 2);
        let trace = crate::export::chrome_trace(&r.take());
        assert!(trace.contains("\"telemetry.dropped_events\":1"), "{trace}");
    }

    #[test]
    fn global_defaults_to_disabled() {
        // Note: install_global() is tested implicitly by the runner
        // binaries; calling it here would leak an enabled recorder into
        // every other test in this process.
        assert!(!global().is_enabled() || GLOBAL.get().is_some());
    }
}
