//! `/proc` readers (Linux).
//!
//! The paper's LFM measures tasks by "reading process information from
//! /proc/PID/" at each polling interval and tracking the process tree. This
//! module implements those reads for real processes. On non-Linux platforms
//! every function returns `None`/empty, and the simulated monitor is used
//! instead.

use std::fs;
use std::path::Path;

/// CPU and thread info parsed from `/proc/<pid>/stat`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcStat {
    /// User-mode CPU seconds.
    pub utime_secs: f64,
    /// Kernel-mode CPU seconds.
    pub stime_secs: f64,
    pub num_threads: u32,
}

/// Kernel clock ticks per second. `_SC_CLK_TCK` is 100 on every mainstream
/// Linux configuration; reading it portably requires libc, which is outside
/// the approved dependency set.
const CLK_TCK: f64 = 100.0;

/// Parse the body of a `/proc/<pid>/stat` file.
///
/// The `comm` field (2nd) is parenthesized and may itself contain spaces or
/// parentheses, so fields are located relative to the *last* `)`.
pub fn parse_stat(body: &str) -> Option<ProcStat> {
    let close = body.rfind(')')?;
    let rest = body.get(close + 1..)?.trim_start();
    let fields: Vec<&str> = rest.split_ascii_whitespace().collect();
    // `rest` begins at field 3 (state). utime is field 14, stime 15,
    // num_threads 20 (1-indexed in proc(5)) → indices 11, 12, 17 here.
    let utime: u64 = fields.get(11)?.parse().ok()?;
    let stime: u64 = fields.get(12)?.parse().ok()?;
    let threads: u32 = fields.get(17)?.parse().ok()?;
    Some(ProcStat {
        utime_secs: utime as f64 / CLK_TCK,
        stime_secs: stime as f64 / CLK_TCK,
        num_threads: threads,
    })
}

/// Parse `/proc/<pid>/statm` → resident set size in bytes (field 2 × page
/// size; 4 KiB pages on every supported configuration).
pub fn parse_statm_rss(body: &str) -> Option<u64> {
    let resident_pages: u64 = body.split_ascii_whitespace().nth(1)?.parse().ok()?;
    Some(resident_pages * 4096)
}

/// Parse `/proc/<pid>/io` → (read_bytes, write_bytes).
pub fn parse_io(body: &str) -> Option<(u64, u64)> {
    let mut read = None;
    let mut write = None;
    for line in body.lines() {
        if let Some(v) = line.strip_prefix("read_bytes: ") {
            read = v.trim().parse().ok();
        } else if let Some(v) = line.strip_prefix("write_bytes: ") {
            write = v.trim().parse().ok();
        }
    }
    Some((read?, write?))
}

/// Live reads against the real `/proc`. Each returns `None` if the process
/// vanished (the normal race while polling a tree that is exiting).
pub fn read_stat(pid: u32) -> Option<ProcStat> {
    let body = fs::read_to_string(format!("/proc/{pid}/stat")).ok()?;
    parse_stat(&body)
}

pub fn read_rss_bytes(pid: u32) -> Option<u64> {
    let body = fs::read_to_string(format!("/proc/{pid}/statm")).ok()?;
    parse_statm_rss(&body)
}

pub fn read_io(pid: u32) -> Option<(u64, u64)> {
    // /proc/<pid>/io needs ptrace-level access; unreadable under some
    // configurations — callers treat None as zeros.
    let body = fs::read_to_string(format!("/proc/{pid}/io")).ok()?;
    parse_io(&body)
}

/// Direct children of `pid`, via `/proc/<pid>/task/*/children`.
///
/// This replaces the paper's LD_PRELOAD fork/exit interception: instead of
/// hooking `fork(2)`, the poller re-walks the tree each interval and diffs
/// the membership (see [`crate::events`]).
pub fn read_children(pid: u32) -> Vec<u32> {
    let mut out = Vec::new();
    let task_dir = format!("/proc/{pid}/task");
    let Ok(entries) = fs::read_dir(&task_dir) else {
        return out;
    };
    for entry in entries.flatten() {
        let path = entry.path().join("children");
        if let Ok(body) = fs::read_to_string(&path) {
            for tok in body.split_ascii_whitespace() {
                if let Ok(child) = tok.parse::<u32>() {
                    out.push(child);
                }
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// The full process tree rooted at `pid` (including `pid`), breadth-first.
pub fn process_tree(pid: u32) -> Vec<u32> {
    let mut tree = vec![pid];
    let mut frontier = vec![pid];
    while let Some(p) = frontier.pop() {
        for c in read_children(p) {
            if !tree.contains(&c) {
                tree.push(c);
                frontier.push(c);
            }
        }
    }
    tree
}

/// Does `/proc/<pid>` still exist?
pub fn alive(pid: u32) -> bool {
    Path::new(&format!("/proc/{pid}")).exists()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_stat_ordinary_comm() {
        // pid (comm) state ppid pgrp session tty tpgid flags minflt cminflt
        // majflt cmajflt utime stime cutime cstime priority nice num_threads ...
        let body = "1234 (python3) S 1 1234 1234 0 -1 4194304 500 0 0 0 250 50 0 0 20 0 7 0 12345 100000 2000 18446744073709551615";
        let s = parse_stat(body).unwrap();
        assert!((s.utime_secs - 2.5).abs() < 1e-9);
        assert!((s.stime_secs - 0.5).abs() < 1e-9);
        assert_eq!(s.num_threads, 7);
    }

    #[test]
    fn parse_stat_comm_with_spaces_and_parens() {
        let body = "99 (weird (name) x) R 1 99 99 0 -1 0 0 0 0 0 100 200 0 0 20 0 3 0 0 0 0 0";
        let s = parse_stat(body).unwrap();
        assert!((s.utime_secs - 1.0).abs() < 1e-9);
        assert!((s.stime_secs - 2.0).abs() < 1e-9);
        assert_eq!(s.num_threads, 3);
    }

    #[test]
    fn parse_stat_garbage_is_none() {
        assert!(parse_stat("").is_none());
        assert!(parse_stat("1234 (x) S 1").is_none());
    }

    #[test]
    fn parse_statm() {
        assert_eq!(parse_statm_rss("2000 512 300 10 0 400 0"), Some(512 * 4096));
        assert!(parse_statm_rss("2000").is_none());
        assert!(parse_statm_rss("").is_none());
    }

    #[test]
    fn parse_io_fields() {
        let body = "rchar: 100\nwchar: 200\nsyscr: 1\nsyscw: 2\nread_bytes: 4096\nwrite_bytes: 8192\ncancelled_write_bytes: 0\n";
        assert_eq!(parse_io(body), Some((4096, 8192)));
        assert!(parse_io("rchar: 5\n").is_none());
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn read_own_process() {
        let me = std::process::id();
        assert!(alive(me));
        let stat = read_stat(me).expect("own stat readable");
        assert!(stat.num_threads >= 1);
        let rss = read_rss_bytes(me).expect("own statm readable");
        assert!(rss > 1024 * 1024, "rss {rss} suspiciously small");
        let tree = process_tree(me);
        assert!(tree.contains(&me));
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn children_of_spawned_process() {
        use std::process::Command;
        // A shell that spawns a sleeping child.
        let mut child = Command::new("sh")
            .args(["-c", "sleep 2 & wait"])
            .spawn()
            .expect("spawn sh");
        // Give the shell a moment to fork.
        std::thread::sleep(std::time::Duration::from_millis(300));
        let tree = process_tree(child.id());
        assert!(tree.len() >= 2, "expected sh + sleep in tree, got {tree:?}");
        child.kill().ok();
        child.wait().ok();
    }

    #[test]
    fn dead_pid_not_alive() {
        // PID near the default pid_max is almost certainly unused; even if
        // used, read_stat on it shouldn't panic.
        let _ = read_stat(4_000_000);
        assert!(!alive(4_000_000) || read_stat(4_000_000).is_some());
    }
}
