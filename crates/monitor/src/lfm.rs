//! The lightweight function monitor for real processes.
//!
//! Mirrors the paper's §VI-B1 design: the task runs in its own process
//! (a fork of the interpreter, here any `Command`); results come back over
//! a queue; a poller reads `/proc` at a fixed interval, tracks the process
//! tree, enforces limits by killing the tree, and emits a
//! [`ResourceReport`] at the end. A callback can observe every poll —
//! the decorator's `callback` argument.

use crate::events::ProcessTracker;
use crate::limits::ResourceLimits;
use crate::procfs;
use crate::report::{MonitorOutcome, ResourceReport, UsageSnapshot};
use std::io;
use std::process::{Child, Command};
use std::time::{Duration, Instant};

/// Per-poll observer: receives each snapshot as it is taken.
pub type PollCallback<'a> = dyn FnMut(&UsageSnapshot) + 'a;

/// Builder for monitored executions — the "decorator".
pub struct Lfm<'a> {
    limits: ResourceLimits,
    poll_interval: Duration,
    callback: Option<Box<PollCallback<'a>>>,
    /// Scratch directory whose size is attributed to the task as disk use
    /// (the LFM's sandbox directory in Work Queue).
    scratch_dir: Option<std::path::PathBuf>,
}

impl Default for Lfm<'_> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'a> Lfm<'a> {
    pub fn new() -> Self {
        Lfm {
            limits: ResourceLimits::unlimited(),
            // The paper finds polling "sufficient for tasks that run for
            // more than a handful of seconds"; 250 ms keeps relative
            // overhead tiny at that scale.
            poll_interval: Duration::from_millis(250),
            callback: None,
            scratch_dir: None,
        }
    }

    /// Attribute the recursive size of `dir` to the task as scratch-disk
    /// usage (sampled at every poll).
    pub fn with_scratch_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.scratch_dir = Some(dir.into());
        self
    }

    pub fn with_limits(mut self, limits: ResourceLimits) -> Self {
        self.limits = limits;
        self
    }

    pub fn with_poll_interval(mut self, interval: Duration) -> Self {
        assert!(!interval.is_zero(), "poll interval must be positive");
        self.poll_interval = interval;
        self
    }

    /// Register a per-poll callback (e.g. live resource reporting).
    pub fn with_callback(mut self, cb: impl FnMut(&UsageSnapshot) + 'a) -> Self {
        self.callback = Some(Box::new(cb));
        self
    }

    /// Run `cmd` under the monitor. Blocks until the process tree finishes
    /// or violates a limit.
    pub fn run(mut self, cmd: &mut Command) -> io::Result<MonitorOutcome> {
        let start = Instant::now();
        let mut child = cmd.spawn()?;
        let root = child.id();
        let mut tracker = ProcessTracker::new();
        let mut report = ResourceReport::default();
        let mut prev: Option<UsageSnapshot> = None;
        let mut monitor_cpu = 0.0f64;

        loop {
            // Did the root exit?
            if let Some(status) = child.try_wait()? {
                // One final poll so very short tails are still accounted.
                if let Some(mut snap) = sample_tree(root, &mut tracker, start) {
                    snap.disk_mb = snap.disk_mb.max(self.scratch_mb());
                    report.absorb(&snap, prev.as_ref());
                    if let Some(cb) = self.callback.as_mut() {
                        cb(&snap);
                    }
                }
                report.wall_secs = start.elapsed().as_secs_f64();
                report.monitor_overhead_secs = monitor_cpu;
                let code = status.code().unwrap_or(-1);
                return Ok(if code == 0 {
                    MonitorOutcome::Completed(report)
                } else {
                    MonitorOutcome::Failed {
                        exit_code: code,
                        report,
                    }
                });
            }

            let poll_started = Instant::now();
            if let Some(mut snap) = sample_tree(root, &mut tracker, start) {
                snap.disk_mb = snap.disk_mb.max(self.scratch_mb());
                report.absorb(&snap, prev.as_ref());
                if let Some(cb) = self.callback.as_mut() {
                    cb(&snap);
                }
                if let Some(kind) = self.limits.check(&snap, prev.as_ref()) {
                    kill_tree(&mut child, &tracker);
                    report.wall_secs = start.elapsed().as_secs_f64();
                    report.monitor_overhead_secs = monitor_cpu;
                    return Ok(MonitorOutcome::LimitExceeded { kind, report });
                }
                prev = Some(snap);
            }
            monitor_cpu += poll_started.elapsed().as_secs_f64();
            std::thread::sleep(self.poll_interval);
        }
    }
}

impl Lfm<'_> {
    /// Current scratch-directory footprint in MB (0 when unset/missing).
    fn scratch_mb(&self) -> u64 {
        self.scratch_dir.as_deref().map(dir_size_bytes).unwrap_or(0) / (1024 * 1024)
    }
}

/// Recursive directory size (best-effort; races with deletion are fine).
fn dir_size_bytes(dir: &std::path::Path) -> u64 {
    let mut total = 0;
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    for entry in entries.flatten() {
        let Ok(meta) = entry.metadata() else { continue };
        if meta.is_dir() {
            total += dir_size_bytes(&entry.path());
        } else {
            total += meta.len();
        }
    }
    total
}

/// Aggregate a snapshot over the process tree rooted at `root`.
fn sample_tree(root: u32, tracker: &mut ProcessTracker, start: Instant) -> Option<UsageSnapshot> {
    let tree = procfs::process_tree(root);
    if tree.is_empty() {
        return None;
    }
    tracker.observe(&tree);
    let mut snap = UsageSnapshot {
        elapsed: start.elapsed().as_secs_f64(),
        ..Default::default()
    };
    let mut any = false;
    for pid in tree {
        if let Some(stat) = procfs::read_stat(pid) {
            snap.cpu_secs += stat.utime_secs + stat.stime_secs;
            any = true;
        }
        if let Some(rss) = procfs::read_rss_bytes(pid) {
            snap.rss_mb += rss / (1024 * 1024);
        }
        if let Some((r, w)) = procfs::read_io(pid) {
            snap.read_bytes += r;
            snap.write_bytes += w;
        }
        snap.processes += 1;
    }
    // Approximate scratch-disk usage by write volume: without a dedicated
    // scratch mount we cannot attribute filesystem blocks to the task.
    snap.disk_mb = snap.write_bytes / (1024 * 1024);
    any.then_some(snap)
}

/// Kill the root and every tracked descendant. The root dies via
/// `Child::kill`; descendants are signalled through the `kill(1)` utility
/// (process-group semantics without a libc dependency).
fn kill_tree(child: &mut Child, tracker: &ProcessTracker) {
    let root = child.id();
    let _ = child.kill();
    let descendants: Vec<String> = tracker
        .live()
        .filter(|&pid| pid != root)
        .map(|pid| pid.to_string())
        .collect();
    if !descendants.is_empty() {
        let _ = Command::new("kill").arg("-9").args(&descendants).status();
    }
    let _ = child.wait();
}

/// Run an in-process closure with result-queue semantics: the function runs
/// on its own thread, the return value (or panic payload) travels back over
/// a channel, and wall time is measured. In-process execution cannot be
/// forcibly killed from safe Rust, so limits are *not* enforced here — use
/// [`Lfm::run`] for enforcement; this is the low-overhead measurement path
/// for trusted functions.
pub fn monitor_inline<T, F>(f: F) -> (std::thread::Result<T>, ResourceReport)
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let start = Instant::now();
    let rss_before = procfs::read_rss_bytes(std::process::id()).unwrap_or(0);
    let (tx, rx) = crossbeam::channel::bounded(1);
    let handle = std::thread::spawn(move || {
        let out = f();
        // Receiver outlives us; ignore send failure on abandoned monitor.
        let _ = tx.send(());
        out
    });
    let _ = rx.recv();
    let result = handle.join();
    let rss_after = procfs::read_rss_bytes(std::process::id()).unwrap_or(rss_before);
    let report = ResourceReport {
        wall_secs: start.elapsed().as_secs_f64(),
        peak_rss_mb: rss_after.saturating_sub(rss_before) / (1024 * 1024),
        peak_processes: 1,
        polls: 1,
        ..Default::default()
    };
    (result, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::ResourceKind;

    #[test]
    fn inline_monitor_returns_value_and_times() {
        let (result, report) = monitor_inline(|| {
            std::thread::sleep(Duration::from_millis(120));
            21 * 2
        });
        assert_eq!(result.unwrap(), 42);
        assert!(report.wall_secs >= 0.1, "wall {}", report.wall_secs);
    }

    #[test]
    fn inline_monitor_propagates_panic() {
        let (result, _report) = monitor_inline(|| panic!("task exploded"));
        assert!(result.is_err());
    }

    #[cfg(target_os = "linux")]
    mod linux {
        use super::*;

        #[test]
        fn completed_command_reports_resources() {
            let mut cmd = Command::new("sh");
            cmd.args(["-c", "sleep 0.6; exit 0"]);
            let outcome = Lfm::new()
                .with_poll_interval(Duration::from_millis(50))
                .run(&mut cmd)
                .unwrap();
            assert!(outcome.is_success(), "{outcome:?}");
            let r = outcome.report();
            assert!(r.wall_secs >= 0.5, "wall {}", r.wall_secs);
            assert!(r.polls >= 2, "polls {}", r.polls);
            assert!(r.peak_processes >= 1);
        }

        #[test]
        fn failing_command_reports_exit_code() {
            let mut cmd = Command::new("sh");
            cmd.args(["-c", "exit 3"]);
            let outcome = Lfm::new()
                .with_poll_interval(Duration::from_millis(20))
                .run(&mut cmd)
                .unwrap();
            match outcome {
                MonitorOutcome::Failed { exit_code, .. } => assert_eq!(exit_code, 3),
                other => panic!("expected Failed, got {other:?}"),
            }
        }

        #[test]
        fn wall_limit_kills_runaway() {
            let mut cmd = Command::new("sleep");
            cmd.arg("30");
            let started = Instant::now();
            let outcome = Lfm::new()
                .with_limits(ResourceLimits::unlimited().with_wall_secs(0.3))
                .with_poll_interval(Duration::from_millis(50))
                .run(&mut cmd)
                .unwrap();
            assert!(
                started.elapsed() < Duration::from_secs(5),
                "kill was not prompt"
            );
            match outcome {
                MonitorOutcome::LimitExceeded { kind, .. } => {
                    assert_eq!(kind, ResourceKind::WallTime)
                }
                other => panic!("expected LimitExceeded, got {other:?}"),
            }
        }

        #[test]
        fn callback_sees_polls() {
            let mut count = 0u32;
            let mut cmd = Command::new("sleep");
            cmd.arg("0.4");
            let outcome = Lfm::new()
                .with_poll_interval(Duration::from_millis(50))
                .with_callback(|_snap| count += 1)
                .run(&mut cmd)
                .unwrap();
            assert!(outcome.is_success());
            assert!(count >= 2, "callback ran {count} times");
        }

        #[test]
        fn scratch_dir_attributed_as_disk() {
            let dir = std::env::temp_dir().join(format!("lfm-scratch-{}", std::process::id()));
            std::fs::create_dir_all(&dir).unwrap();
            let file = dir.join("blob.bin");
            let mut cmd = Command::new("sh");
            cmd.args([
                "-c",
                &format!(
                    "dd if=/dev/zero of={} bs=1M count=8 2>/dev/null; sleep 0.4",
                    file.display()
                ),
            ]);
            let outcome = Lfm::new()
                .with_poll_interval(Duration::from_millis(50))
                .with_scratch_dir(&dir)
                .run(&mut cmd)
                .unwrap();
            std::fs::remove_dir_all(&dir).ok();
            assert!(outcome.is_success());
            assert!(
                outcome.report().peak_disk_mb >= 7,
                "scratch blob not attributed: {} MB",
                outcome.report().peak_disk_mb
            );
        }

        #[test]
        fn disk_limit_on_scratch_dir_kills() {
            let dir = std::env::temp_dir().join(format!("lfm-scratch2-{}", std::process::id()));
            std::fs::create_dir_all(&dir).unwrap();
            let file = dir.join("blob.bin");
            let mut cmd = Command::new("sh");
            cmd.args([
                "-c",
                &format!(
                    "dd if=/dev/zero of={} bs=1M count=30 2>/dev/null; sleep 10",
                    file.display()
                ),
            ]);
            let outcome = Lfm::new()
                .with_poll_interval(Duration::from_millis(50))
                .with_limits(ResourceLimits::unlimited().with_disk_mb(10))
                .with_scratch_dir(&dir)
                .run(&mut cmd)
                .unwrap();
            std::fs::remove_dir_all(&dir).ok();
            match outcome {
                MonitorOutcome::LimitExceeded { kind, .. } => {
                    assert_eq!(kind, ResourceKind::Disk)
                }
                other => panic!("expected disk kill, got {other:?}"),
            }
        }

        #[test]
        fn child_processes_are_observed() {
            // sh forks two sleeps; the tree should peak at ≥ 3 processes.
            let mut cmd = Command::new("sh");
            cmd.args(["-c", "sleep 0.5 & sleep 0.5 & wait"]);
            let outcome = Lfm::new()
                .with_poll_interval(Duration::from_millis(40))
                .run(&mut cmd)
                .unwrap();
            let r = outcome.report();
            assert!(r.peak_processes >= 3, "peak processes {}", r.peak_processes);
        }
    }
}
