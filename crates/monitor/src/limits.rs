//! Resource limits and enforcement policy.

use crate::report::{ResourceKind, UsageSnapshot};
use serde::{Deserialize, Serialize};

/// Limits an LFM enforces on one invocation. `None` axes are unlimited.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ResourceLimits {
    /// Maximum cores (measured as CPU-time derivative over a poll interval).
    pub cores: Option<f64>,
    /// Maximum resident memory, MB.
    pub memory_mb: Option<u64>,
    /// Maximum scratch disk, MB.
    pub disk_mb: Option<u64>,
    /// Maximum wall-clock, seconds.
    pub wall_secs: Option<f64>,
}

impl ResourceLimits {
    /// No limits — pure measurement mode (the allocator's first big run).
    pub fn unlimited() -> Self {
        ResourceLimits::default()
    }

    pub fn with_memory_mb(mut self, mb: u64) -> Self {
        self.memory_mb = Some(mb);
        self
    }

    pub fn with_cores(mut self, cores: f64) -> Self {
        self.cores = Some(cores);
        self
    }

    pub fn with_disk_mb(mut self, mb: u64) -> Self {
        self.disk_mb = Some(mb);
        self
    }

    pub fn with_wall_secs(mut self, secs: f64) -> Self {
        self.wall_secs = Some(secs);
        self
    }

    /// Check a snapshot (with the previous one for the cores derivative).
    /// Returns the first violated axis, checking in the order the Work Queue
    /// monitor does: memory (most damaging to co-located tasks), disk,
    /// cores, wall time.
    pub fn check(
        &self,
        snap: &UsageSnapshot,
        prev: Option<&UsageSnapshot>,
    ) -> Option<ResourceKind> {
        if let Some(limit) = self.memory_mb {
            if snap.rss_mb > limit {
                return Some(ResourceKind::Memory);
            }
        }
        if let Some(limit) = self.disk_mb {
            if snap.disk_mb > limit {
                return Some(ResourceKind::Disk);
            }
        }
        if let (Some(limit), Some(p)) = (self.cores, prev) {
            // Allow a tolerance of half a core: scheduler jitter makes exact
            // instantaneous enforcement meaninglessly strict.
            if snap.cores_since(p) > limit + 0.5 {
                return Some(ResourceKind::Cores);
            }
        }
        if let Some(limit) = self.wall_secs {
            if snap.elapsed > limit {
                return Some(ResourceKind::WallTime);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(elapsed: f64, cpu: f64, rss: u64, disk: u64) -> UsageSnapshot {
        UsageSnapshot {
            elapsed,
            cpu_secs: cpu,
            rss_mb: rss,
            disk_mb: disk,
            processes: 1,
            ..Default::default()
        }
    }

    #[test]
    fn unlimited_never_violates() {
        let l = ResourceLimits::unlimited();
        assert_eq!(l.check(&snap(1e6, 1e6, u64::MAX, u64::MAX), None), None);
    }

    #[test]
    fn memory_limit_trips() {
        let l = ResourceLimits::unlimited().with_memory_mb(100);
        assert_eq!(l.check(&snap(1.0, 0.5, 100, 0), None), None);
        assert_eq!(
            l.check(&snap(1.0, 0.5, 101, 0), None),
            Some(ResourceKind::Memory)
        );
    }

    #[test]
    fn disk_limit_trips() {
        let l = ResourceLimits::unlimited().with_disk_mb(1024);
        assert_eq!(
            l.check(&snap(1.0, 0.0, 0, 2048), None),
            Some(ResourceKind::Disk)
        );
    }

    #[test]
    fn cores_limit_needs_previous_snapshot() {
        let l = ResourceLimits::unlimited().with_cores(1.0);
        let a = snap(1.0, 1.0, 0, 0);
        let b = snap(2.0, 3.0, 0, 0); // 2 cores over the interval
        assert_eq!(l.check(&b, None), None); // no derivative available
        assert_eq!(l.check(&b, Some(&a)), Some(ResourceKind::Cores));
        // 1.3 cores is within the 0.5 tolerance.
        let c = snap(3.0, 4.3, 0, 0);
        assert_eq!(l.check(&c, Some(&b)), None);
    }

    #[test]
    fn wall_limit_trips() {
        let l = ResourceLimits::unlimited().with_wall_secs(60.0);
        assert_eq!(
            l.check(&snap(61.0, 0.0, 0, 0), None),
            Some(ResourceKind::WallTime)
        );
    }

    #[test]
    fn memory_checked_before_wall() {
        let l = ResourceLimits::unlimited()
            .with_memory_mb(10)
            .with_wall_secs(1.0);
        assert_eq!(
            l.check(&snap(5.0, 0.0, 99, 0), None),
            Some(ResourceKind::Memory)
        );
    }
}
