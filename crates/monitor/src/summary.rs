//! Resource-summary emission — the Work Queue resource monitor writes a
//! summary file per task; this module produces the equivalent JSON document
//! for an LFM outcome, so downstream tooling (and the scheduler's logs) get
//! a stable, self-describing record.
//!
//! The encoder is a deliberately tiny hand-rolled JSON writer: reports are
//! flat documents of numbers and short strings, and the approved dependency
//! set has no JSON crate.

use crate::report::{MonitorOutcome, ResourceReport};
use std::fmt::Write as _;

/// Minimal JSON string escaping.
fn escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).unwrap();
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn num(x: f64, out: &mut String) {
    if x.is_finite() {
        write!(out, "{x}").unwrap();
    } else {
        out.push_str("null");
    }
}

/// A tiny builder for flat JSON objects.
#[derive(Default)]
pub struct JsonObject {
    body: String,
}

impl JsonObject {
    pub fn new() -> Self {
        Self::default()
    }

    fn key(&mut self, k: &str) {
        if !self.body.is_empty() {
            self.body.push(',');
        }
        escape(k, &mut self.body);
        self.body.push(':');
    }

    pub fn field_str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        escape(v, &mut self.body);
        self
    }

    pub fn field_f64(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k);
        num(v, &mut self.body);
        self
    }

    pub fn field_u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k);
        write!(self.body, "{v}").unwrap();
        self
    }

    pub fn field_i64(&mut self, k: &str, v: i64) -> &mut Self {
        self.key(k);
        write!(self.body, "{v}").unwrap();
        self
    }

    pub fn field_raw(&mut self, k: &str, raw: &str) -> &mut Self {
        self.key(k);
        self.body.push_str(raw);
        self
    }

    pub fn finish(&self) -> String {
        format!("{{{}}}", self.body)
    }
}

impl ResourceReport {
    /// Serialize as a Work Queue-style resource summary object.
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.field_f64("wall_time_s", self.wall_secs)
            .field_f64("cpu_time_s", self.cpu_secs)
            .field_f64("cores", self.peak_cores)
            .field_u64("memory_mb", self.peak_rss_mb)
            .field_u64("max_concurrent_processes", self.peak_processes as u64)
            .field_u64("disk_mb", self.peak_disk_mb)
            .field_u64("bytes_read", self.read_bytes)
            .field_u64("bytes_written", self.write_bytes)
            .field_u64("polls", self.polls)
            .field_f64("monitor_overhead_s", self.monitor_overhead_secs);
        o.finish()
    }
}

impl MonitorOutcome {
    /// Serialize the outcome (status + limit info + report).
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        match self {
            MonitorOutcome::Completed(r) => {
                o.field_str("status", "completed")
                    .field_raw("resources", &r.to_json());
            }
            MonitorOutcome::LimitExceeded { kind, report } => {
                o.field_str("status", "limit_exceeded")
                    .field_str("limit_exceeded", &kind.to_string())
                    .field_raw("resources", &report.to_json());
            }
            MonitorOutcome::SpuriousKill { report } => {
                o.field_str("status", "spurious_kill")
                    .field_raw("resources", &report.to_json());
            }
            MonitorOutcome::Failed { exit_code, report } => {
                o.field_str("status", "failed")
                    .field_i64("exit_code", *exit_code as i64)
                    .field_raw("resources", &report.to_json());
            }
        }
        o.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::ResourceKind;

    fn sample_report() -> ResourceReport {
        ResourceReport {
            wall_secs: 61.25,
            cpu_secs: 58.0,
            peak_cores: 0.95,
            peak_rss_mb: 110,
            peak_processes: 3,
            peak_disk_mb: 880,
            read_bytes: 1024,
            write_bytes: 2048,
            polls: 61,
            monitor_overhead_secs: 0.03,
        }
    }

    #[test]
    fn report_json_has_all_fields() {
        let j = sample_report().to_json();
        for key in [
            "wall_time_s",
            "cpu_time_s",
            "cores",
            "memory_mb",
            "max_concurrent_processes",
            "disk_mb",
            "bytes_read",
            "bytes_written",
            "polls",
            "monitor_overhead_s",
        ] {
            assert!(j.contains(&format!("\"{key}\"")), "missing {key} in {j}");
        }
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"memory_mb\":110"));
        assert!(j.contains("\"wall_time_s\":61.25"));
    }

    #[test]
    fn outcome_json_statuses() {
        let ok = MonitorOutcome::Completed(sample_report()).to_json();
        assert!(ok.contains("\"status\":\"completed\""));
        assert!(ok.contains("\"resources\":{"));
        let killed = MonitorOutcome::LimitExceeded {
            kind: ResourceKind::Memory,
            report: sample_report(),
        }
        .to_json();
        assert!(killed.contains("\"status\":\"limit_exceeded\""));
        assert!(killed.contains("\"limit_exceeded\":\"memory\""));
        let failed = MonitorOutcome::Failed {
            exit_code: 3,
            report: sample_report(),
        }
        .to_json();
        assert!(failed.contains("\"exit_code\":3"));
    }

    #[test]
    fn strings_are_escaped() {
        let mut o = JsonObject::new();
        o.field_str("k", "a\"b\\c\nd\te\u{1}");
        let j = o.finish();
        assert_eq!(j, "{\"k\":\"a\\\"b\\\\c\\nd\\te\\u0001\"}");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        let mut o = JsonObject::new();
        o.field_f64("x", f64::NAN).field_f64("y", f64::INFINITY);
        let j = o.finish();
        assert_eq!(j, "{\"x\":null,\"y\":null}");
    }
}
