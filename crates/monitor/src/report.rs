//! Resource consumption reports — what an LFM emits for every invocation.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A point-in-time view of a (process tree's) resource usage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct UsageSnapshot {
    /// Seconds since the function started.
    pub elapsed: f64,
    /// Total CPU seconds consumed (user + system, all processes).
    pub cpu_secs: f64,
    /// Resident set size, MB, summed over the process tree.
    pub rss_mb: u64,
    /// Live processes in the tree.
    pub processes: u32,
    /// Cumulative bytes read from storage.
    pub read_bytes: u64,
    /// Cumulative bytes written to storage.
    pub write_bytes: u64,
    /// Scratch disk in use, MB.
    pub disk_mb: u64,
}

impl UsageSnapshot {
    /// Cores in use, estimated from the CPU-time derivative between two
    /// snapshots (how the Work Queue resource monitor reports "cores").
    pub fn cores_since(&self, earlier: &UsageSnapshot) -> f64 {
        let dt = self.elapsed - earlier.elapsed;
        if dt <= 0.0 {
            return 0.0;
        }
        ((self.cpu_secs - earlier.cpu_secs) / dt).max(0.0)
    }
}

/// The final report for one function invocation.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ResourceReport {
    /// Wall-clock duration, seconds.
    pub wall_secs: f64,
    /// Total CPU seconds.
    pub cpu_secs: f64,
    /// Peak cores observed over any polling interval.
    pub peak_cores: f64,
    /// Peak resident memory, MB.
    pub peak_rss_mb: u64,
    /// Peak concurrent processes.
    pub peak_processes: u32,
    /// Peak scratch disk, MB.
    pub peak_disk_mb: u64,
    /// Total I/O.
    pub read_bytes: u64,
    pub write_bytes: u64,
    /// Number of polls taken.
    pub polls: u64,
    /// Monitoring overhead (seconds of monitor CPU), supporting the
    /// "lightweight" claim.
    pub monitor_overhead_secs: f64,
}

impl ResourceReport {
    /// Fold one snapshot into the running peaks.
    pub fn absorb(&mut self, snap: &UsageSnapshot, prev: Option<&UsageSnapshot>) {
        self.wall_secs = self.wall_secs.max(snap.elapsed);
        self.cpu_secs = self.cpu_secs.max(snap.cpu_secs);
        if let Some(p) = prev {
            self.peak_cores = self.peak_cores.max(snap.cores_since(p));
        }
        self.peak_rss_mb = self.peak_rss_mb.max(snap.rss_mb);
        self.peak_processes = self.peak_processes.max(snap.processes);
        self.peak_disk_mb = self.peak_disk_mb.max(snap.disk_mb);
        self.read_bytes = self.read_bytes.max(snap.read_bytes);
        self.write_bytes = self.write_bytes.max(snap.write_bytes);
        self.polls += 1;
    }
}

impl fmt::Display for ResourceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "wall={:.2}s cpu={:.2}s cores={:.2} rss={}MB procs={} disk={}MB io={}r/{}w polls={}",
            self.wall_secs,
            self.cpu_secs,
            self.peak_cores,
            self.peak_rss_mb,
            self.peak_processes,
            self.peak_disk_mb,
            self.read_bytes,
            self.write_bytes,
            self.polls
        )
    }
}

/// Which resource a task exceeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResourceKind {
    Cores,
    Memory,
    Disk,
    WallTime,
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ResourceKind::Cores => "cores",
            ResourceKind::Memory => "memory",
            ResourceKind::Disk => "disk",
            ResourceKind::WallTime => "wall-time",
        };
        f.write_str(s)
    }
}

/// How a monitored invocation ended.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MonitorOutcome {
    /// Ran to completion; report attached.
    Completed(ResourceReport),
    /// Killed for exceeding a limit; partial report attached.
    LimitExceeded {
        kind: ResourceKind,
        report: ResourceReport,
    },
    /// Killed by an *injected* monitor fault, not a real limit violation.
    /// Fault-injection harnesses must be able to tell the two apart:
    /// spurious kills carry no [`ResourceKind`], are never fed back into
    /// allocation learning, and are retried as infrastructure failures
    /// rather than resource retries.
    SpuriousKill { report: ResourceReport },
    /// The function itself failed (non-zero exit / raised exception).
    Failed {
        exit_code: i32,
        report: ResourceReport,
    },
}

impl MonitorOutcome {
    pub fn report(&self) -> &ResourceReport {
        match self {
            MonitorOutcome::Completed(r) => r,
            MonitorOutcome::LimitExceeded { report, .. } => report,
            MonitorOutcome::SpuriousKill { report } => report,
            MonitorOutcome::Failed { report, .. } => report,
        }
    }

    pub fn is_success(&self) -> bool {
        matches!(self, MonitorOutcome::Completed(_))
    }

    /// A *real* limit kill; spurious (injected) kills return false here.
    pub fn is_limit_exceeded(&self) -> bool {
        matches!(self, MonitorOutcome::LimitExceeded { .. })
    }

    pub fn is_spurious_kill(&self) -> bool {
        matches!(self, MonitorOutcome::SpuriousKill { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cores_from_cpu_derivative() {
        let a = UsageSnapshot {
            elapsed: 1.0,
            cpu_secs: 1.0,
            ..Default::default()
        };
        let b = UsageSnapshot {
            elapsed: 2.0,
            cpu_secs: 3.5,
            ..Default::default()
        };
        assert!((b.cores_since(&a) - 2.5).abs() < 1e-12);
        assert_eq!(a.cores_since(&b), 0.0); // reversed order clamps
    }

    #[test]
    fn report_absorbs_peaks() {
        let mut r = ResourceReport::default();
        let s1 = UsageSnapshot {
            elapsed: 1.0,
            cpu_secs: 0.9,
            rss_mb: 100,
            processes: 1,
            disk_mb: 10,
            ..Default::default()
        };
        let s2 = UsageSnapshot {
            elapsed: 2.0,
            cpu_secs: 2.9,
            rss_mb: 80,
            processes: 3,
            disk_mb: 50,
            ..Default::default()
        };
        r.absorb(&s1, None);
        r.absorb(&s2, Some(&s1));
        assert_eq!(r.peak_rss_mb, 100); // peak, not last
        assert_eq!(r.peak_processes, 3);
        assert_eq!(r.peak_disk_mb, 50);
        assert!((r.peak_cores - 2.0).abs() < 1e-12);
        assert_eq!(r.polls, 2);
    }

    #[test]
    fn outcome_accessors() {
        let r = ResourceReport {
            wall_secs: 5.0,
            ..Default::default()
        };
        let ok = MonitorOutcome::Completed(r.clone());
        assert!(ok.is_success());
        assert!(!ok.is_limit_exceeded());
        let killed = MonitorOutcome::LimitExceeded {
            kind: ResourceKind::Memory,
            report: r.clone(),
        };
        assert!(killed.is_limit_exceeded());
        assert_eq!(killed.report().wall_secs, 5.0);
        let spurious = MonitorOutcome::SpuriousKill { report: r };
        assert!(spurious.is_spurious_kill());
        assert!(!spurious.is_success());
        assert!(
            !spurious.is_limit_exceeded(),
            "injected kills must not read as real limit kills"
        );
        assert_eq!(spurious.report().wall_secs, 5.0);
    }
}
