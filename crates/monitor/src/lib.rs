//! # lfm-monitor — the lightweight function monitor
//!
//! The paper's core containment mechanism (§VI-B1): run each function
//! invocation in its own process, measure its resource consumption by
//! polling `/proc`, track the process tree, enforce limits by killing
//! violators, and report consumption back to the scheduler.
//!
//! Two implementations share the same [`report`] / [`limits`] vocabulary:
//!
//! * [`lfm::Lfm`] — the **real** monitor for Linux processes: procfs
//!   polling ([`procfs`]), tree diffing in place of LD_PRELOAD fork/exit
//!   interception ([`events`]), kill-on-limit, per-poll callbacks.
//! * [`sim::SimMonitor`] — the **deterministic** monitor used inside the
//!   discrete-event scheduler: given a task's true usage profile it
//!   computes, exactly, whether and when the task violates its limits,
//!   respecting the polling grid.

pub mod events;
pub mod lfm;
pub mod limits;
pub mod procfs;
pub mod report;
pub mod sim;
pub mod summary;

pub mod prelude {
    pub use crate::events::{ProcessEvent, ProcessTracker};
    pub use crate::lfm::{monitor_inline, Lfm};
    pub use crate::limits::ResourceLimits;
    pub use crate::report::{MonitorOutcome, ResourceKind, ResourceReport, UsageSnapshot};
    pub use crate::sim::{SimMonitor, SimMonitorResult, SimTaskProfile};
    pub use crate::summary::JsonObject;
}
