//! Deterministic simulated monitor.
//!
//! Inside the discrete-event simulator, tasks do not really run; each task
//! carries a *true usage profile* and the simulated LFM decides — exactly
//! and deterministically — whether the task completes under its limits or
//! gets killed, and when. The kill time respects the polling grid, so
//! shrinking the poll interval tightens enforcement the same way it does
//! for the real monitor.

use crate::limits::ResourceLimits;
use crate::report::{MonitorOutcome, ResourceKind, ResourceReport};
use serde::{Deserialize, Serialize};

/// The true resource behaviour of one task instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimTaskProfile {
    /// Wall-clock duration when allowed to run to completion, seconds.
    pub duration_secs: f64,
    /// Cores the task actually uses (constant over its life).
    pub cores_used: f64,
    /// Memory starts here...
    pub base_memory_mb: u64,
    /// ...and ramps linearly to this peak...
    pub peak_memory_mb: u64,
    /// ...over this fraction of the duration, then stays flat.
    pub mem_ramp_fraction: f64,
    /// Scratch disk grows linearly from 0 to this peak over the full run.
    pub peak_disk_mb: u64,
}

impl SimTaskProfile {
    /// A simple constant-shape profile (memory ramps over the first 20%).
    pub fn new(duration_secs: f64, cores: f64, memory_mb: u64, disk_mb: u64) -> Self {
        SimTaskProfile {
            duration_secs,
            cores_used: cores,
            base_memory_mb: memory_mb / 10,
            peak_memory_mb: memory_mb,
            mem_ramp_fraction: 0.2,
            peak_disk_mb: disk_mb,
        }
    }

    /// Memory in use at time `t`.
    pub fn memory_at(&self, t: f64) -> u64 {
        let ramp_end = (self.mem_ramp_fraction * self.duration_secs).max(f64::MIN_POSITIVE);
        let frac = (t / ramp_end).clamp(0.0, 1.0);
        self.base_memory_mb + ((self.peak_memory_mb - self.base_memory_mb) as f64 * frac) as u64
    }

    /// Disk in use at time `t`.
    pub fn disk_at(&self, t: f64) -> u64 {
        let frac = (t / self.duration_secs.max(f64::MIN_POSITIVE)).clamp(0.0, 1.0);
        (self.peak_disk_mb as f64 * frac) as u64
    }
}

/// Result of simulating one monitored invocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimMonitorResult {
    pub outcome: MonitorOutcome,
    /// Wall-clock the task occupied its allocation (full duration, or time
    /// until the kill).
    pub occupied_secs: f64,
}

/// Simulated monitor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimMonitor {
    /// Polling interval, seconds.
    pub poll_interval: f64,
    /// Monitor CPU cost per poll, seconds (the measured overhead of reading
    /// /proc for a whole tree is well under a millisecond).
    pub per_poll_cost: f64,
}

impl Default for SimMonitor {
    fn default() -> Self {
        SimMonitor {
            poll_interval: 1.0,
            per_poll_cost: 0.5e-3,
        }
    }
}

impl SimMonitor {
    /// Round `t` up to the next polling instant (polls happen at k·interval,
    /// k ≥ 1).
    fn next_poll_after(&self, t: f64) -> f64 {
        let k = (t / self.poll_interval).ceil().max(1.0);
        // If t falls exactly on a poll, that poll sees the violation.
        k * self.poll_interval
    }

    /// When would each limit first be *detectably* violated?
    fn violation_time(
        &self,
        profile: &SimTaskProfile,
        limits: &ResourceLimits,
    ) -> Option<(f64, ResourceKind)> {
        let mut first: Option<(f64, ResourceKind)> = None;
        let mut consider = |t: Option<f64>, kind: ResourceKind| {
            if let Some(t) = t {
                if t <= profile.duration_secs {
                    match first {
                        Some((best, _)) if best <= t => {}
                        _ => first = Some((t, kind)),
                    }
                }
            }
        };

        if let Some(limit) = limits.memory_mb {
            if profile.peak_memory_mb > limit {
                let crossing = if profile.base_memory_mb > limit {
                    0.0
                } else {
                    let span = (profile.peak_memory_mb - profile.base_memory_mb) as f64;
                    let need = (limit - profile.base_memory_mb) as f64;
                    profile.mem_ramp_fraction * profile.duration_secs * (need / span)
                };
                consider(
                    Some(self.next_poll_after(crossing + 1e-9)),
                    ResourceKind::Memory,
                );
            }
        }
        if let Some(limit) = limits.disk_mb {
            if profile.peak_disk_mb > limit {
                let crossing =
                    profile.duration_secs * (limit as f64 + 1.0) / profile.peak_disk_mb as f64;
                consider(Some(self.next_poll_after(crossing)), ResourceKind::Disk);
            }
        }
        if let Some(limit) = limits.cores {
            if profile.cores_used > limit + 0.5 {
                // The derivative needs two polls.
                consider(Some(2.0 * self.poll_interval), ResourceKind::Cores);
            }
        }
        if let Some(limit) = limits.wall_secs {
            if profile.duration_secs > limit {
                consider(
                    Some(self.next_poll_after(limit + 1e-9)),
                    ResourceKind::WallTime,
                );
            }
        }
        first
    }

    /// Simulate one invocation of `profile` under `limits`.
    pub fn run(&self, profile: &SimTaskProfile, limits: &ResourceLimits) -> SimMonitorResult {
        let violation = self.violation_time(profile, limits);
        let end = violation.map(|(t, _)| t).unwrap_or(profile.duration_secs);
        let polls = (end / self.poll_interval).floor().max(1.0) as u64;
        let report = ResourceReport {
            wall_secs: end,
            cpu_secs: profile.cores_used * end,
            peak_cores: profile.cores_used,
            peak_rss_mb: profile.memory_at(end),
            peak_processes: 1,
            peak_disk_mb: profile.disk_at(end),
            read_bytes: 0,
            write_bytes: (profile.disk_at(end)) * 1024 * 1024,
            polls,
            monitor_overhead_secs: polls as f64 * self.per_poll_cost,
        };
        let outcome = match violation {
            Some((_, kind)) => MonitorOutcome::LimitExceeded { kind, report },
            None => MonitorOutcome::Completed(report),
        };
        SimMonitorResult {
            outcome,
            occupied_secs: end,
        }
    }

    /// Simulate an invocation of `profile` truncated by an *injected*
    /// (spurious) monitor kill at `t_kill`. The partial report reflects the
    /// profile's true trajectory up to the kill; the outcome is
    /// [`MonitorOutcome::SpuriousKill`], distinguishable from a real limit
    /// kill.
    pub fn killed_at(&self, profile: &SimTaskProfile, t_kill: f64) -> SimMonitorResult {
        let end = t_kill.clamp(0.0, profile.duration_secs);
        let polls = (end / self.poll_interval).floor().max(1.0) as u64;
        let report = ResourceReport {
            wall_secs: end,
            cpu_secs: profile.cores_used * end,
            peak_cores: profile.cores_used,
            peak_rss_mb: profile.memory_at(end),
            peak_processes: 1,
            peak_disk_mb: profile.disk_at(end),
            read_bytes: 0,
            write_bytes: profile.disk_at(end) * 1024 * 1024,
            polls,
            monitor_overhead_secs: polls as f64 * self.per_poll_cost,
        };
        SimMonitorResult {
            outcome: MonitorOutcome::SpuriousKill { report },
            occupied_secs: end,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> SimTaskProfile {
        // 60 s, 1 core, 110 MB peak, 1 GB disk — the paper's HEP task.
        SimTaskProfile::new(60.0, 1.0, 110, 1024)
    }

    #[test]
    fn unlimited_runs_to_completion() {
        let m = SimMonitor::default();
        let r = m.run(&profile(), &ResourceLimits::unlimited());
        assert!(r.outcome.is_success());
        assert_eq!(r.occupied_secs, 60.0);
        let rep = r.outcome.report();
        assert_eq!(rep.peak_rss_mb, 110);
        assert_eq!(rep.peak_disk_mb, 1024);
        assert!((rep.peak_cores - 1.0).abs() < 1e-12);
    }

    #[test]
    fn generous_limits_run_to_completion() {
        let m = SimMonitor::default();
        let limits = ResourceLimits::unlimited()
            .with_memory_mb(1536)
            .with_cores(1.0)
            .with_disk_mb(2048);
        assert!(m.run(&profile(), &limits).outcome.is_success());
    }

    #[test]
    fn memory_violation_killed_during_ramp() {
        let m = SimMonitor::default();
        // Limit below peak: ramp reaches 84 MB somewhere in the first 12 s
        // (20% of 60 s).
        let limits = ResourceLimits::unlimited().with_memory_mb(84);
        let r = m.run(&profile(), &limits);
        match &r.outcome {
            MonitorOutcome::LimitExceeded { kind, .. } => {
                assert_eq!(*kind, ResourceKind::Memory)
            }
            other => panic!("expected memory kill, got {other:?}"),
        }
        assert!(r.occupied_secs < 13.0, "killed at {}", r.occupied_secs);
        assert!(r.occupied_secs >= 1.0, "cannot die before the first poll");
    }

    #[test]
    fn spurious_kill_truncates_and_is_distinguishable() {
        let m = SimMonitor::default();
        let r = m.killed_at(&profile(), 30.0);
        assert!(r.outcome.is_spurious_kill());
        assert!(!r.outcome.is_limit_exceeded());
        assert_eq!(r.occupied_secs, 30.0);
        let rep = r.outcome.report();
        assert_eq!(rep.wall_secs, 30.0);
        // Full memory peak already reached (ramp ends at 20% of 60 s), but
        // disk only half-grown at the kill.
        assert_eq!(rep.peak_rss_mb, 110);
        assert_eq!(rep.peak_disk_mb, 512);
        // Kill time beyond the duration clamps to a full (but still
        // spurious) run.
        assert_eq!(m.killed_at(&profile(), 500.0).occupied_secs, 60.0);
    }

    #[test]
    fn kill_time_snaps_to_poll_grid() {
        let m = SimMonitor {
            poll_interval: 5.0,
            per_poll_cost: 0.0,
        };
        let limits = ResourceLimits::unlimited().with_memory_mb(84);
        let r = m.run(&profile(), &limits);
        let t = r.occupied_secs;
        assert!(
            (t / 5.0 - (t / 5.0).round()).abs() < 1e-9,
            "kill at {t} not on grid"
        );
    }

    #[test]
    fn finer_polling_kills_sooner() {
        let coarse = SimMonitor {
            poll_interval: 10.0,
            per_poll_cost: 0.0,
        };
        let fine = SimMonitor {
            poll_interval: 0.5,
            per_poll_cost: 0.0,
        };
        let limits = ResourceLimits::unlimited().with_memory_mb(50);
        let tc = coarse.run(&profile(), &limits).occupied_secs;
        let tf = fine.run(&profile(), &limits).occupied_secs;
        assert!(tf <= tc);
    }

    #[test]
    fn cores_violation_needs_two_polls() {
        let m = SimMonitor::default();
        let fat = SimTaskProfile::new(30.0, 8.0, 100, 100);
        let limits = ResourceLimits::unlimited().with_cores(1.0);
        let r = m.run(&fat, &limits);
        assert!(r.outcome.is_limit_exceeded());
        assert_eq!(r.occupied_secs, 2.0 * m.poll_interval);
    }

    #[test]
    fn wall_violation() {
        let m = SimMonitor::default();
        let limits = ResourceLimits::unlimited().with_wall_secs(10.0);
        let r = m.run(&profile(), &limits);
        match &r.outcome {
            MonitorOutcome::LimitExceeded { kind, .. } => {
                assert_eq!(*kind, ResourceKind::WallTime)
            }
            other => panic!("{other:?}"),
        }
        assert!(r.occupied_secs >= 10.0 && r.occupied_secs <= 11.0);
    }

    #[test]
    fn earliest_violation_wins() {
        let m = SimMonitor::default();
        // Memory trips during the ramp (< 12 s); wall trips at 50 s.
        let limits = ResourceLimits::unlimited()
            .with_memory_mb(50)
            .with_wall_secs(50.0);
        match m.run(&profile(), &limits).outcome {
            MonitorOutcome::LimitExceeded { kind, .. } => {
                assert_eq!(kind, ResourceKind::Memory)
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn overhead_scales_with_polls() {
        let m = SimMonitor {
            poll_interval: 1.0,
            per_poll_cost: 1e-3,
        };
        let r = m.run(&profile(), &ResourceLimits::unlimited());
        let rep = r.outcome.report();
        assert_eq!(rep.polls, 60);
        assert!((rep.monitor_overhead_secs - 0.06).abs() < 1e-9);
        // "Lightweight": overhead is a vanishing fraction of the task.
        assert!(rep.monitor_overhead_secs < 0.01 * rep.wall_secs);
    }

    #[test]
    fn memory_at_profile_shape() {
        let p = profile();
        assert_eq!(p.memory_at(0.0), 11);
        assert_eq!(p.memory_at(12.0), 110); // ramp ends at 20% of 60 s
        assert_eq!(p.memory_at(60.0), 110);
        assert!(p.memory_at(6.0) > 11);
        assert!(p.memory_at(6.0) < 110);
    }
}
