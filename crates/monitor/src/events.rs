//! Process creation/exit tracking by tree diffing.
//!
//! The paper preloads a library (LD_PRELOAD) to capture `fork(2)` and
//! `exit(2)` so that short-lived children are never missed. Safe Rust cannot
//! inject into arbitrary binaries, so this module provides the closest
//! portable equivalent: re-walk the `/proc` process tree each poll and diff
//! membership, emitting synthetic fork/exit events. Children shorter than
//! one polling interval can be missed — the same truncation the paper
//! acknowledges for pure polling — which is why the default interval is
//! small (250 ms).

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A process lifecycle event observed by the tracker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProcessEvent {
    /// A new pid appeared in the tree.
    Forked { pid: u32 },
    /// A tracked pid disappeared.
    Exited { pid: u32 },
}

/// Tracks the set of live pids in a monitored tree across polls.
#[derive(Debug, Default, Clone)]
pub struct ProcessTracker {
    live: BTreeSet<u32>,
    /// Every pid ever seen (so exit events are emitted exactly once).
    pub total_forks: u64,
    pub total_exits: u64,
    pub peak_concurrent: u32,
}

impl ProcessTracker {
    pub fn new() -> Self {
        Self::default()
    }

    /// Update with the current tree membership; returns the events since the
    /// previous poll, forks before exits, each group in pid order.
    pub fn observe(&mut self, current: &[u32]) -> Vec<ProcessEvent> {
        let now: BTreeSet<u32> = current.iter().copied().collect();
        let mut events = Vec::new();
        for &pid in now.difference(&self.live) {
            events.push(ProcessEvent::Forked { pid });
            self.total_forks += 1;
        }
        for &pid in self.live.difference(&now) {
            events.push(ProcessEvent::Exited { pid });
            self.total_exits += 1;
        }
        self.live = now;
        self.peak_concurrent = self.peak_concurrent.max(self.live.len() as u32);
        events
    }

    /// Currently-live pids.
    pub fn live(&self) -> impl Iterator<Item = u32> + '_ {
        self.live.iter().copied()
    }

    pub fn live_count(&self) -> u32 {
        self.live.len() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_observation_forks_everything() {
        let mut t = ProcessTracker::new();
        let events = t.observe(&[10, 11, 12]);
        assert_eq!(events.len(), 3);
        assert!(events
            .iter()
            .all(|e| matches!(e, ProcessEvent::Forked { .. })));
        assert_eq!(t.live_count(), 3);
    }

    #[test]
    fn diffs_forks_and_exits() {
        let mut t = ProcessTracker::new();
        t.observe(&[10, 11]);
        let events = t.observe(&[11, 12]);
        assert_eq!(
            events,
            vec![
                ProcessEvent::Forked { pid: 12 },
                ProcessEvent::Exited { pid: 10 }
            ]
        );
        assert_eq!(t.total_forks, 3);
        assert_eq!(t.total_exits, 1);
    }

    #[test]
    fn steady_state_is_quiet() {
        let mut t = ProcessTracker::new();
        t.observe(&[1, 2, 3]);
        assert!(t.observe(&[1, 2, 3]).is_empty());
    }

    #[test]
    fn peak_concurrent_tracks_maximum() {
        let mut t = ProcessTracker::new();
        t.observe(&[1]);
        t.observe(&[1, 2, 3, 4]);
        t.observe(&[1]);
        assert_eq!(t.peak_concurrent, 4);
        assert_eq!(t.live_count(), 1);
    }

    #[test]
    fn full_exit_drains() {
        let mut t = ProcessTracker::new();
        t.observe(&[5, 6]);
        let events = t.observe(&[]);
        assert_eq!(events.len(), 2);
        assert_eq!(t.total_exits, 2);
        assert_eq!(t.live_count(), 0);
    }
}
